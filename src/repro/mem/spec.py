"""Declarative memory-system specification.

A :class:`MemorySpec` names a whole memory system the way a
:class:`~repro.core.config.ClockPlan` names the clocks: a frozen value
object carrying the cache-level chain (geometry + hit latency per
level), the line size, the DRAM latency, the miss-handling register
(MSHR) budget, the prefetcher and the write policy. It rides inside
:class:`~repro.core.config.CoreConfig` (``CoreConfig.mem``) so memory
configurations flow through ``MachineSpec``/``RunSpec`` payloads, cache
keys, campaign sweeps and both CLIs like any other machine axis.

``MemorySpec()`` (all defaults) describes *exactly* the legacy
Table-2 stack of :class:`~repro.mem.hierarchy.MemoryConfig`:
split 64K L1I / 64K L1D over a unified 512K L2, 32-byte lines, 2/10/100
cycle latencies, unbounded miss overlap (``mshrs=0``), no prefetcher,
allocate-on-write. The hierarchy detects that shape and takes the
historical fast path, which is what keeps the default spec
golden-equivalent (bit-identical ``SimStats``) with pre-spec trees.
``CoreConfig.mem=None`` means "derive the spec from ``CoreConfig.
memory``"; the kind registry's ``normalize_config`` folds an explicit
but redundant spec back to ``None`` so both spellings hash identically.

The interesting axes:

* ``mshrs`` — 0 models ideal, unbounded memory-level parallelism (the
  legacy behaviour: every miss pays its own latency, independent misses
  overlap freely). ``mshrs=1`` is a *blocking* cache: a second miss
  waits for the outstanding fill to complete before its own fill can
  start. ``mshrs>=2`` bounds the overlap: up to that many distinct
  lines may be in flight below L1D, misses to an in-flight line merge
  into its MSHR, and a full file stalls the requester until the
  earliest fill lands.
* ``prefetch`` — ``"none"``, ``"next_line"`` (install line+1 on every
  L1D demand miss) or ``"stride"`` (a last-miss stride detector that
  installs line+stride after two same-stride misses).
* ``write_policy`` — ``"allocate"`` (the legacy write-allocate stack)
  or ``"back"`` (write-allocate + dirty bits; evicting a dirty line
  writes it back to the next level and counts a ``writebacks`` event).
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Dict, Tuple

from repro.errors import ConfigError

__all__ = ["CacheLevelSpec", "MemorySpec", "PREFETCHERS", "WRITE_POLICIES"]

#: Valid ``MemorySpec.prefetch`` values.
PREFETCHERS = ("none", "next_line", "stride")

#: Valid ``MemorySpec.write_policy`` values.
WRITE_POLICIES = ("allocate", "back")

#: Hard bound on chain depth (L1D..L4 is already beyond the design space).
MAX_LEVELS = 4


@dataclass(frozen=True)
class CacheLevelSpec:
    """Geometry and hit latency of one cache level."""

    kb: int
    ways: int
    latency: int

    def __post_init__(self) -> None:
        if self.kb < 1 or self.ways < 1 or self.latency < 1:
            raise ConfigError(
                f"cache level ({self.kb}KB, {self.ways}w, "
                f"{self.latency}cyc): all fields must be >= 1")


@dataclass(frozen=True)
class MemorySpec:
    """Frozen, declarative description of one memory system.

    ``levels`` is the data-side chain (L1D first); ``levels[1:]`` are
    shared with the instruction side, whose private first level is
    ``l1i``. Defaults reproduce the paper's Table-2 stack exactly.
    """

    l1i: CacheLevelSpec = CacheLevelSpec(64, 2, 2)
    levels: Tuple[CacheLevelSpec, ...] = (CacheLevelSpec(64, 4, 2),
                                          CacheLevelSpec(512, 4, 10))
    line_bytes: int = 32
    dram_latency: int = 100
    mshrs: int = 0                 # 0 = ideal/unbounded miss overlap
    prefetch: str = "none"         # none | next_line | stride
    write_policy: str = "allocate"  # allocate | back

    def __post_init__(self) -> None:
        # Coerce payload dicts (RunSpec.from_dict, store records) and
        # lists back into the frozen value types, so specs rebuilt from
        # JSON compare and hash equal to the originals.
        if isinstance(self.l1i, dict):
            object.__setattr__(self, "l1i", CacheLevelSpec(**self.l1i))
        levels = tuple(CacheLevelSpec(**lvl) if isinstance(lvl, dict)
                       else lvl for lvl in self.levels)
        object.__setattr__(self, "levels", levels)
        if not levels or len(levels) > MAX_LEVELS:
            raise ConfigError(
                f"MemorySpec needs 1..{MAX_LEVELS} data levels, "
                f"got {len(levels)}")
        if self.line_bytes < 4 or self.line_bytes & (self.line_bytes - 1):
            raise ConfigError("line size must be a power of two >= 4")
        if self.dram_latency < 1:
            raise ConfigError("dram_latency must be >= 1")
        if self.mshrs < 0:
            raise ConfigError("mshrs must be >= 0 (0 = unbounded)")
        if self.prefetch not in PREFETCHERS:
            raise ConfigError(
                f"unknown prefetcher {self.prefetch!r}; expected one of "
                f"{PREFETCHERS}")
        if self.write_policy not in WRITE_POLICIES:
            raise ConfigError(
                f"unknown write policy {self.write_policy!r}; expected "
                f"one of {WRITE_POLICIES}")

    # ----------------------------------------------------------- derived

    @property
    def is_simple(self) -> bool:
        """True when the hierarchy may take the legacy L1-hit fast path:
        a two-level data chain with no MSHR modelling, no prefetcher and
        the allocate write policy — the exact semantics of the
        pre-spec hierarchy, whatever the geometry."""
        return (len(self.levels) == 2 and self.mshrs == 0
                and self.prefetch == "none"
                and self.write_policy == "allocate")

    @property
    def label(self) -> str:
        """Compact tag for run labels and ``campaign ls`` lines.

        Every non-default axis contributes a bit, so two different
        specs in the same sweep render different labels (the CSV/``ls``
        ``mem`` column is how runs differing only in memory shape are
        told apart — the spec is deliberately absent from the ``k=v``
        variant string).
        """
        default = type(self)()
        bits = []

        def lvl_tag(lvl: CacheLevelSpec) -> str:
            return f"{lvl.kb}kx{lvl.ways}@{lvl.latency}"

        if self.levels != default.levels:
            bits.append("/".join(lvl_tag(lvl) for lvl in self.levels))
        if self.l1i != default.l1i:
            bits.append("i" + lvl_tag(self.l1i))
        if self.line_bytes != default.line_bytes:
            bits.append(f"ln{self.line_bytes}")
        if self.dram_latency != default.dram_latency:
            bits.append(f"d{self.dram_latency}")
        bits.append(f"mshr{self.mshrs}" if self.mshrs else "ideal")
        if self.prefetch != "none":
            bits.append({"next_line": "nl", "stride": "st"}[self.prefetch])
        if self.write_policy == "back":
            bits.append("wb")
        return "+".join(bits)

    # ------------------------------------------------------- conversions

    @classmethod
    def from_config(cls, config) -> "MemorySpec":
        """The legacy-equivalent spec of a
        :class:`~repro.mem.hierarchy.MemoryConfig` (flat Table-2
        geometry, ideal overlap, no prefetch, allocate-on-write)."""
        return cls(
            l1i=CacheLevelSpec(config.l1i_kb, config.l1i_ways,
                               config.l1_latency),
            levels=(CacheLevelSpec(config.l1d_kb, config.l1d_ways,
                                   config.l1_latency),
                    CacheLevelSpec(config.l2_kb, config.l2_ways,
                                   config.l2_latency)),
            line_bytes=config.line_bytes,
            dram_latency=config.dram_latency,
        )

    def to_dict(self) -> Dict[str, object]:
        """JSON-safe payload; exact inverse of :meth:`from_dict`."""
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "MemorySpec":
        return cls(**data)
