"""Set-associative cache with true-LRU replacement.

Timing is handled by the callers (the hierarchy knows hit latencies; the
cores know how to overlap them); this model tracks *contents* so hit/miss
behaviour emerges from the actual address stream.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.errors import ConfigError


@dataclass
class CacheStats:
    """Access counters, also consumed by the power model.

    ``prefetches`` counts lines installed by a prefetcher (they bypass
    the demand ``accesses``/``hits``/``misses`` counters); ``writebacks``
    counts dirty-victim spills under the write-back policy.
    """

    accesses: int = 0
    hits: int = 0
    misses: int = 0
    evictions: int = 0
    writes: int = 0
    prefetches: int = 0
    writebacks: int = 0

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0

    @property
    def hit_rate(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0

    def to_dict(self) -> Dict[str, int]:
        return {
            "accesses": self.accesses, "hits": self.hits,
            "misses": self.misses, "evictions": self.evictions,
            "writes": self.writes, "prefetches": self.prefetches,
            "writebacks": self.writebacks,
        }

    def reset(self) -> None:
        self.accesses = self.hits = self.misses = self.evictions = 0
        self.writes = self.prefetches = self.writebacks = 0


def _is_pow2(n: int) -> bool:
    return n > 0 and (n & (n - 1)) == 0


@dataclass
class Cache:
    """One level of set-associative cache with LRU replacement."""

    name: str
    size_bytes: int
    ways: int
    line_bytes: int = 32
    stats: CacheStats = field(default_factory=CacheStats)

    def __post_init__(self) -> None:
        if self.ways < 1:
            raise ConfigError(f"{self.name}: ways must be >= 1")
        if not _is_pow2(self.line_bytes):
            raise ConfigError(f"{self.name}: line size must be a power of two")
        if self.size_bytes % (self.line_bytes * self.ways) != 0:
            raise ConfigError(
                f"{self.name}: size {self.size_bytes} not divisible by "
                f"line*ways ({self.line_bytes}*{self.ways})"
            )
        self.num_sets = self.size_bytes // (self.line_bytes * self.ways)
        if not _is_pow2(self.num_sets):
            raise ConfigError(f"{self.name}: set count must be a power of two")
        self._set_mask = self.num_sets - 1
        self._line_shift = self.line_bytes.bit_length() - 1
        self._tag_shift = self.num_sets.bit_length() - 1
        # Per-set map tag -> LRU stamp; eviction scans for the min stamp
        # (associativity is small, so the scan beats an ordered structure).
        self._sets: List[Dict[int, int]] = [dict() for _ in range(self.num_sets)]
        self._clock = 0

    def access(self, addr: int, write: bool = False) -> bool:
        """Access one address; returns True on hit. Misses allocate."""
        self._clock += 1
        self.stats.accesses += 1
        if write:
            self.stats.writes += 1
        line = addr >> self._line_shift
        set_idx = line & self._set_mask
        tag = line >> self._tag_shift
        cset = self._sets[set_idx]
        if tag in cset:
            cset[tag] = self._clock
            self.stats.hits += 1
            return True
        self.stats.misses += 1
        if len(cset) >= self.ways:
            victim = min(cset, key=cset.get)
            del cset[victim]
            self.stats.evictions += 1
        cset[tag] = self._clock
        return False

    def access_ex(self, addr: int, write: bool = False):
        """Like :meth:`access`, but also reports the evicted victim.

        Returns ``(hit, victim_line)`` where ``victim_line`` is the
        global line id (``addr >> line_shift``) of the line evicted to
        make room, or ``None``. Used by the general hierarchy path,
        whose write-back policy must know which line left the cache;
        the legacy fast path keeps the cheaper :meth:`access`.
        """
        self._clock += 1
        self.stats.accesses += 1
        if write:
            self.stats.writes += 1
        line = addr >> self._line_shift
        set_idx = line & self._set_mask
        tag = line >> self._tag_shift
        cset = self._sets[set_idx]
        if tag in cset:
            cset[tag] = self._clock
            self.stats.hits += 1
            return True, None
        self.stats.misses += 1
        victim = None
        if len(cset) >= self.ways:
            vtag = min(cset, key=cset.get)
            del cset[vtag]
            self.stats.evictions += 1
            victim = (vtag << self._tag_shift) | set_idx
        cset[tag] = self._clock
        return False, victim

    def install(self, addr: int):
        """Allocate a line without counting a demand access.

        Touches LRU state if already resident. Returns the evicted
        victim's global line id, or ``None``. Fills from prefetchers
        and write-back spills go through here so demand hit/miss
        counters stay meaningful.
        """
        line = addr >> self._line_shift
        set_idx = line & self._set_mask
        tag = line >> self._tag_shift
        cset = self._sets[set_idx]
        self._clock += 1
        if tag in cset:
            cset[tag] = self._clock
            return None
        victim = None
        if len(cset) >= self.ways:
            vtag = min(cset, key=cset.get)
            del cset[vtag]
            self.stats.evictions += 1
            victim = (vtag << self._tag_shift) | set_idx
        cset[tag] = self._clock
        return victim

    def probe(self, addr: int) -> bool:
        """Check residency without updating LRU state or counters."""
        line = addr >> self._line_shift
        set_idx = line & self._set_mask
        tag = line >> self._tag_shift
        return tag in self._sets[set_idx]

    def flush(self) -> None:
        """Invalidate all contents (stats are preserved)."""
        for cset in self._sets:
            cset.clear()
