"""Memory-system substrate: declarative specs, set-associative caches,
and the composable L1/L2/DRAM hierarchy with MSHRs and prefetch."""

from repro.mem.cache import Cache, CacheStats
from repro.mem.hierarchy import CacheLevel, MemoryConfig, MemoryHierarchy
from repro.mem.spec import (
    PREFETCHERS,
    WRITE_POLICIES,
    CacheLevelSpec,
    MemorySpec,
)

__all__ = [
    "Cache",
    "CacheStats",
    "CacheLevel",
    "CacheLevelSpec",
    "MemoryConfig",
    "MemoryHierarchy",
    "MemorySpec",
    "PREFETCHERS",
    "WRITE_POLICIES",
]
