"""Memory hierarchy substrate: set-associative caches and L1/L2/DRAM stack."""

from repro.mem.cache import Cache, CacheStats
from repro.mem.hierarchy import MemoryHierarchy, MemoryConfig

__all__ = ["Cache", "CacheStats", "MemoryHierarchy", "MemoryConfig"]
