"""The memory system: a composable cache-level chain with miss handling.

Built from a declarative :class:`~repro.mem.spec.MemorySpec` (or, for
backward compatibility, the flat Table-2 :class:`MemoryConfig`): a
private L1I in front of the shared tail of a data-side
:class:`CacheLevel` chain (L1D → L2 [→ L3 ...] → DRAM). Latencies are
returned in cycles *of the requesting clock domain*; the paper keeps
DRAM access time fixed in nanoseconds, so when a domain's clock is
raised the DRAM latency in cycles grows proportionally — callers pass a
``mem_scale`` factor for that (1.0 = baseline clock).

Two execution paths, chosen once at construction:

* **Fast path** — taken when ``spec.is_simple`` (two data levels, no
  MSHR modelling, no prefetcher, allocate-on-write): byte-for-byte the
  historical three-probe code, which keeps the default spec
  golden-equivalent with pre-spec trees and the L1-hit hot loop at full
  speed.
* **General path** — walks the chain level by level (allocating on the
  way down, so a store that misses L1 but hits L2 installs the line in
  L1 — allocation is part of the walk, not a side effect of the last
  probe), spills dirty victims to the next level under the write-back
  policy, trains the prefetcher on L1D demand misses, and models
  *non-blocking* loads through a bounded MSHR file: up to
  ``spec.mshrs`` distinct lines may be in flight below L1D, a miss to
  an in-flight line merges (paying only the remaining fill time), and a
  full file delays the request until the earliest fill lands. With
  ``mshrs=1`` the cache blocks — independent misses serialize — which
  is the contrast the ``mem`` experiment measures.

Timing model notes (DESIGN.md §6): MSHR occupancy is tracked on the
data side only (instruction fetch contends for neither MSHRs nor
prefetch state); ``now`` is the requester's cycle counter, which is
monotonic per run for every core kind; prefetch fills install
instantly (an ideal-timeliness prefetcher — the knob measures *what* to
prefetch, not bus contention). Functional warmup uses the ``warm_*``
entry points, which update contents and counters but never the MSHR
timeline, so a 60k-instruction warmup at cycle 0 cannot poison the
timed run's miss overlap.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from repro.mem.cache import Cache
from repro.mem.spec import CacheLevelSpec, MemorySpec


@dataclass(frozen=True)
class MemoryConfig:
    """Flat sizes and latencies, defaulting to the paper's Table 2.

    The historical description of the memory system; kept as the
    payload-stable default inside ``CoreConfig``. Richer shapes (MSHRs,
    prefetch, write policy, deeper chains) are described by
    :class:`~repro.mem.spec.MemorySpec` via ``CoreConfig.mem``.
    """

    l1i_kb: int = 64
    l1i_ways: int = 2
    l1d_kb: int = 64
    l1d_ways: int = 4
    l2_kb: int = 512
    l2_ways: int = 4
    line_bytes: int = 32
    l1_latency: int = 2          # cycles, pipelined
    l2_latency: int = 10         # cycles
    dram_latency: int = 100      # cycles at the baseline clock


class CacheLevel:
    """One composable level of the data chain: cache + latency + policy."""

    __slots__ = ("cache", "latency", "dirty")

    def __init__(self, name: str, spec: CacheLevelSpec, line_bytes: int,
                 write_back: bool):
        self.cache = Cache(name, spec.kb * 1024, spec.ways, line_bytes)
        self.latency = spec.latency
        #: Dirty line ids under the write-back policy, else None.
        self.dirty: Optional[Set[int]] = set() if write_back else None


#: Prefetcher kind codes (resolved once at construction).
_PF_NONE, _PF_NEXT_LINE, _PF_STRIDE = 0, 1, 2
_PF_KINDS = {"none": _PF_NONE, "next_line": _PF_NEXT_LINE,
             "stride": _PF_STRIDE}


class MemoryHierarchy:
    """Content-tracking memory stack shared by the simulated cores.

    ``ifetch``/``load``/``store`` take ``(addr, mem_scale, now)`` and
    return the access latency in requester cycles; ``now`` feeds the
    MSHR timeline and is ignored on the fast path. ``warm_*`` are the
    timing-free variants for functional warmup.
    """

    def __init__(self, config: Optional[MemoryConfig] = None,
                 spec: Optional[MemorySpec] = None,
                 force_general: bool = False):
        self.config = config or MemoryConfig()
        self.spec = spec or MemorySpec.from_config(self.config)
        spec = self.spec
        write_back = spec.write_policy == "back"

        self.l1i = Cache("l1i", spec.l1i.kb * 1024, spec.l1i.ways,
                         spec.line_bytes)
        self._l1i_latency = spec.l1i.latency
        names = ["l1d"] + [f"l{i}" for i in range(2, len(spec.levels) + 1)]
        self._dchain: List[CacheLevel] = [
            CacheLevel(name, lvl, spec.line_bytes, write_back)
            for name, lvl in zip(names, spec.levels)]
        self.l1d = self._dchain[0].cache
        # ``l2`` survives as the power/telemetry tap for shared-level
        # accesses; a one-level chain exposes an empty stand-in so
        # consumers (energy_report, DVFS telemetry) read zero.
        self.l2 = (self._dchain[1].cache if len(self._dchain) > 1
                   else Cache("l2", spec.line_bytes * 4, 4, spec.line_bytes))
        self._line_shift = spec.line_bytes.bit_length() - 1
        self._dram_lat = spec.dram_latency

        # MSHR file: line id -> fill-completion cycle, bounded to
        # ``spec.mshrs`` in-flight entries (0 = not modelled).
        self._mshr_count = spec.mshrs
        self._mshr_table: Dict[int, int] = {}
        self._mshr_allocs = 0
        self._mshr_merges = 0
        self._mshr_stall_cycles = 0
        self._mshr_peak = 0
        self._mshr_occ_sum = 0

        # Prefetcher state (stride detector trains on L1D miss lines).
        self._pf_kind = _PF_KINDS[spec.prefetch]
        self._pf_last_line = -1
        self._pf_last_stride = 0

        #: Flight recorder (set by the owning core when tracing is on).
        #: Consulted only on general-path miss/stall handling — the
        #: golden-pinned fast path and the L1-hit hot loop never read it.
        self.trace = None

        if spec.is_simple and not force_general:
            # Legacy fast path: identical probe sequence and latency
            # arithmetic to the pre-spec hierarchy (golden-pinned; the
            # I-side carries its own latency so a spec with a custom
            # L1I stays fast *and* correct — default l1i latency equals
            # l1d latency, so the default numbers are unchanged).
            self._l1_lat = self._dchain[0].latency
            self._l12_lat = self._dchain[0].latency + self._dchain[1].latency
            self._l1i_lat = self._l1i_latency
            self._l1i2_lat = self._l1i_latency + self._dchain[1].latency
            self.ifetch = self._ifetch_fast
            self.load = self._load_fast
            self.store = self._store_fast
            self.warm_ifetch = self._ifetch_fast
            self.warm_load = self._load_fast
            self.warm_store = self._store_fast
        else:
            # Instruction chain: private L1I level + the shared tail.
            l1i_level = CacheLevel.__new__(CacheLevel)
            l1i_level.cache = self.l1i
            l1i_level.latency = self._l1i_latency
            l1i_level.dirty = None
            self._ichain = [l1i_level] + self._dchain[1:]
            self.ifetch = self._ifetch_general
            self.load = self._load_general
            self.store = self._store_general
            # The I-side never touches the MSHR timeline, so its timed
            # entry point doubles as the warm one.
            self.warm_ifetch = self._ifetch_general
            self.warm_load = self._warm_load_general
            self.warm_store = self._warm_store_general

    # ------------------------------------------------------------ fast path

    def _ifetch_fast(self, pc: int, mem_scale: float = 1.0,
                     now: int = 0) -> int:
        """Instruction fetch; returns total latency in requester cycles."""
        if self.l1i.access(pc):
            return self._l1i_lat
        if self.l2.access(pc):
            return self._l1i2_lat
        return self._l1i2_lat + self._dram(mem_scale)

    def _load_fast(self, addr: int, mem_scale: float = 1.0,
                   now: int = 0) -> int:
        """Data load; returns total latency in requester cycles."""
        if self.l1d.access(addr):
            return self._l1_lat
        if self.l2.access(addr):
            return self._l12_lat
        return self._l12_lat + self._dram(mem_scale)

    def _store_fast(self, addr: int, mem_scale: float = 1.0,
                    now: int = 0) -> int:
        """Data store (write-allocate); latency matters only for LSQ drain."""
        if self.l1d.access(addr, write=True):
            return self._l1_lat
        if self.l2.access(addr, write=True):
            return self._l12_lat
        return self._l12_lat + self._dram(mem_scale)

    def _dram(self, mem_scale: float) -> int:
        return max(1, round(self._dram_lat * mem_scale))

    # --------------------------------------------------------- general path

    def _walk(self, chain: List[CacheLevel], addr: int, write: bool,
              mem_scale: float) -> Tuple[int, int]:
        """Access the chain top-down; returns ``(latency, hit_index)``.

        Every missed level allocates the line on the way down — so by
        the time a lower level hits (or DRAM supplies the line), every
        upper level holds it. That makes allocation explicit chain
        policy rather than a side effect of the last probe: in
        particular a *store* that misses L1D but hits L2 installs the
        line in L1D under both write policies (the historical
        ``store`` asymmetry this path is pinned against). Dirty victims
        spill into the next level and count ``writebacks``.
        """
        lat = 0
        hit_idx = -1
        n = len(chain)
        for i in range(n):
            lvl = chain[i]
            lat += lvl.latency
            hit, victim = lvl.cache.access_ex(addr, write)
            if (victim is not None and lvl.dirty is not None
                    and victim in lvl.dirty):
                lvl.dirty.discard(victim)
                lvl.cache.stats.writebacks += 1
                if i + 1 < n:
                    chain[i + 1].cache.stats.writes += 1
                    self._install_at(chain, i + 1, victim, dirty=True)
            if hit:
                hit_idx = i
                break
        if hit_idx < 0:
            lat += max(1, round(self._dram_lat * mem_scale))
        if write and chain[0].dirty is not None:
            chain[0].dirty.add(addr >> self._line_shift)
        return lat, hit_idx

    def _install_at(self, chain: List[CacheLevel], idx: int, line: int,
                    prefetch: bool = False, dirty: bool = False) -> bool:
        """Install ``line`` into ``chain[idx]`` (contents only), spilling
        dirty victims down the chain. ``dirty=True`` marks the line
        dirty at the receiving level — a spilled write-back victim stays
        dirty until it leaves the chain, so its own later eviction
        writes back in turn (the cascade). Returns True if newly
        installed.
        """
        lvl = chain[idx]
        addr = line << self._line_shift
        if dirty and lvl.dirty is not None:
            lvl.dirty.add(line)
        if lvl.cache.probe(addr):
            return False
        if prefetch:
            lvl.cache.stats.prefetches += 1
        victim = lvl.cache.install(addr)
        while victim is not None:
            if lvl.dirty is None or victim not in lvl.dirty:
                break
            lvl.dirty.discard(victim)
            lvl.cache.stats.writebacks += 1
            idx += 1
            if idx >= len(chain):
                break
            lvl = chain[idx]
            lvl.cache.stats.writes += 1
            if lvl.dirty is not None:
                lvl.dirty.add(victim)
            victim = lvl.cache.install(victim << self._line_shift)
        return True

    def _train_prefetch(self, miss_line: int) -> None:
        """Train on an L1D demand miss; install the predicted next line
        into L1D and the first shared level (ideal timeliness)."""
        kind = self._pf_kind
        if kind == _PF_NEXT_LINE:
            target = miss_line + 1
        else:  # stride
            stride = miss_line - self._pf_last_line
            prev = self._pf_last_stride
            self._pf_last_line = miss_line
            self._pf_last_stride = stride
            if stride == 0 or stride != prev:
                return
            target = miss_line + stride
        chain = self._dchain
        for idx in range(min(2, len(chain))):
            self._install_at(chain, idx, target, prefetch=True)

    def _mshr_below(self, now: int, line: int, below: int) -> int:
        """Effective below-L1D latency once the MSHR file is consulted.

        ``below`` is the unconstrained fill time (chain + DRAM). Misses
        to an in-flight line merge (remaining time only); a full file
        queues the request until an MSHR frees. Queued entries stay in
        the table — their fills are still in flight, so later accesses
        to those lines must keep merging — which means the table may
        transiently hold more than ``mshrs`` entries; the k-th newest
        request beyond capacity waits for the k-th completion.
        """
        table = self._mshr_table
        if table:
            for ln in [ln for ln, t in table.items() if t <= now]:
                del table[ln]
        fill = table.get(line)
        if fill is not None:
            self._mshr_merges += 1
            return fill - now
        wait = 0
        count = self._mshr_count
        if len(table) >= count:
            fills = sorted(table.values())
            wait = fills[len(fills) - count] - now
            self._mshr_stall_cycles += wait
            if self.trace is not None and wait > 0:
                self.trace.emit(now, "stall", -1, "mshr_full")
        table[line] = now + wait + below
        self._mshr_allocs += 1
        occ = min(len(table), count)       # queued entries don't hold slots
        self._mshr_occ_sum += occ
        if occ > self._mshr_peak:
            self._mshr_peak = occ
        return wait + below

    def _data_access(self, addr: int, write: bool, mem_scale: float,
                     now: int) -> int:
        lat, hit_idx = self._walk(self._dchain, addr, write, mem_scale)
        line = addr >> self._line_shift
        if hit_idx == 0:
            # Contents install on the walk, but the *data* of a line
            # whose fill is still in flight has not arrived: an access
            # to it merges into the outstanding MSHR and pays the
            # remaining fill time (hit-under-fill).
            if self._mshr_table:
                fill = self._mshr_table.get(line)
                if fill is not None and fill > now:
                    self._mshr_merges += 1
                    return self._dchain[0].latency + (fill - now)
            return lat                      # true L1 hit
        if self.trace is not None:
            # Miss serviced at data-chain level ``hit_idx`` (1 = the
            # first shared level), or DRAM when the walk ran off the end.
            self.trace.emit(now, "mem", -1,
                            hit_idx if hit_idx >= 0 else len(self._dchain))
        if self._pf_kind:
            self._train_prefetch(line)
        if self._mshr_count:
            head_lat = self._dchain[0].latency
            lat = head_lat + self._mshr_below(now, line, lat - head_lat)
        return lat

    def _ifetch_general(self, pc: int, mem_scale: float = 1.0,
                        now: int = 0) -> int:
        lat, _hit = self._walk(self._ichain, pc, False, mem_scale)
        return lat

    def _load_general(self, addr: int, mem_scale: float = 1.0,
                      now: int = 0) -> int:
        return self._data_access(addr, False, mem_scale, now)

    def _store_general(self, addr: int, mem_scale: float = 1.0,
                       now: int = 0) -> int:
        return self._data_access(addr, True, mem_scale, now)

    # Warmup variants: contents and counters, no MSHR timeline.
    def _warm_load_general(self, addr: int, mem_scale: float = 1.0,
                           now: int = 0) -> int:
        lat, hit_idx = self._walk(self._dchain, addr, False, mem_scale)
        if hit_idx != 0 and self._pf_kind:
            self._train_prefetch(addr >> self._line_shift)
        return lat

    def _warm_store_general(self, addr: int, mem_scale: float = 1.0,
                            now: int = 0) -> int:
        lat, hit_idx = self._walk(self._dchain, addr, True, mem_scale)
        if hit_idx != 0 and self._pf_kind:
            self._train_prefetch(addr >> self._line_shift)
        return lat

    # ----------------------------------------------------------- inspection

    def named_caches(self) -> List[Tuple[str, Cache]]:
        """(name, cache) pairs: ``l1i`` then the data chain."""
        out = [("l1i", self.l1i)]
        out.extend((lvl.cache.name, lvl.cache) for lvl in self._dchain)
        return out

    def stats_dict(self) -> Dict[str, Dict[str, object]]:
        """Per-level counters plus MSHR aggregates, for
        ``SimStats.cache_stats`` and the report/export layers."""
        out: Dict[str, Dict[str, object]] = {
            name: cache.stats.to_dict()
            for name, cache in self.named_caches()}
        if self._mshr_count:
            allocs = self._mshr_allocs
            out["mshr"] = {
                "size": self._mshr_count,
                "allocs": allocs,
                "merges": self._mshr_merges,
                "stall_cycles": self._mshr_stall_cycles,
                "peak": self._mshr_peak,
                "occupancy_avg": (round(self._mshr_occ_sum / allocs, 4)
                                  if allocs else 0.0),
            }
        return out

    def flush(self) -> None:
        """Invalidate all contents and miss-handling state (stats kept)."""
        self.l1i.flush()
        for lvl in self._dchain:
            lvl.cache.flush()
            if lvl.dirty is not None:
                lvl.dirty.clear()
        self._mshr_table.clear()
        self._pf_last_line = -1
        self._pf_last_stride = 0
