"""L1I / L1D / unified L2 / DRAM hierarchy (Table 2 of the paper).

Latencies are returned in cycles *of the requesting clock domain*. The
paper keeps DRAM access time fixed in nanoseconds, so when a domain's clock
is raised the DRAM latency in cycles grows proportionally — callers pass a
``mem_scale`` factor for that (1.0 = baseline clock).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.mem.cache import Cache


@dataclass(frozen=True)
class MemoryConfig:
    """Sizes and latencies, defaulting to the paper's Table 2."""

    l1i_kb: int = 64
    l1i_ways: int = 2
    l1d_kb: int = 64
    l1d_ways: int = 4
    l2_kb: int = 512
    l2_ways: int = 4
    line_bytes: int = 32
    l1_latency: int = 2          # cycles, pipelined
    l2_latency: int = 10         # cycles
    dram_latency: int = 100      # cycles at the baseline clock


@dataclass
class MemoryHierarchy:
    """Content-tracking memory stack shared by the simulated cores."""

    config: MemoryConfig = field(default_factory=MemoryConfig)

    def __post_init__(self) -> None:
        cfg = self.config
        self.l1i = Cache("l1i", cfg.l1i_kb * 1024, cfg.l1i_ways, cfg.line_bytes)
        self.l1d = Cache("l1d", cfg.l1d_kb * 1024, cfg.l1d_ways, cfg.line_bytes)
        self.l2 = Cache("l2", cfg.l2_kb * 1024, cfg.l2_ways, cfg.line_bytes)
        # Flat latency attrs: ifetch/load run per fetch group / per load.
        self._l1_lat = cfg.l1_latency
        self._l12_lat = cfg.l1_latency + cfg.l2_latency
        self._dram_lat = cfg.dram_latency

    def ifetch(self, pc: int, mem_scale: float = 1.0) -> int:
        """Instruction fetch; returns total latency in requester cycles."""
        if self.l1i.access(pc):
            return self._l1_lat
        if self.l2.access(pc):
            return self._l12_lat
        return self._l12_lat + self._dram(mem_scale)

    def load(self, addr: int, mem_scale: float = 1.0) -> int:
        """Data load; returns total latency in requester cycles."""
        if self.l1d.access(addr):
            return self._l1_lat
        if self.l2.access(addr):
            return self._l12_lat
        return self._l12_lat + self._dram(mem_scale)

    def store(self, addr: int, mem_scale: float = 1.0) -> int:
        """Data store (write-allocate); latency matters only for LSQ drain."""
        if self.l1d.access(addr, write=True):
            return self._l1_lat
        if self.l2.access(addr, write=True):
            return self._l12_lat
        return self._l12_lat + self._dram(mem_scale)

    def _dram(self, mem_scale: float) -> int:
        return max(1, round(self._dram_lat * mem_scale))

    def flush(self) -> None:
        for cache in (self.l1i, self.l1d, self.l2):
            cache.flush()
