"""Functional-unit pools (Table 2: 4 int ALU, 2 int mul/div, 2 memory
ports, 2 FP adders, 1 FP mul/div).

Pipelined units accept one operation per cycle; unpipelined units (the
dividers) are reserved for their whole latency.

Availability is tracked in flat arrays indexed by ``int(FuKind)`` — this
runs once per issue candidate per cycle, so the dict-of-enums bookkeeping
it replaced was measurable in whole-campaign profiles.
"""

from __future__ import annotations

from typing import List

from repro.isa.opclasses import FuKind, N_FU_KINDS


class FuPool:
    """Per-kind availability tracking for one clock domain."""

    __slots__ = ("_counts", "_used", "_reserved", "_n_reserved", "_cycle",
                 "ops", "_zeros", "_dirty")

    def __init__(self, int_alus: int, int_muldivs: int, mem_ports: int,
                 fp_adders: int, fp_muldivs: int):
        counts = [0] * N_FU_KINDS
        counts[FuKind.INT_ALU] = int_alus
        counts[FuKind.INT_MULDIV] = int_muldivs
        counts[FuKind.MEM_PORT] = mem_ports
        counts[FuKind.FP_ADD] = fp_adders
        counts[FuKind.FP_MULDIV] = fp_muldivs
        self._counts: List[int] = counts
        self._used: List[int] = [0] * N_FU_KINDS
        #: per-kind lists of cycle numbers until which a unit stays busy
        self._reserved: List[List[int]] = [[] for _ in range(N_FU_KINDS)]
        self._n_reserved = 0
        self._cycle = -1
        self.ops = 0  # total operations started (power events)
        self._zeros = (0,) * N_FU_KINDS
        self._dirty = False

    def begin_cycle(self, cycle: int) -> None:
        """Reset per-cycle issue slots and expire long reservations."""
        self._cycle = cycle
        if self._dirty:
            self._used[:] = self._zeros
            self._dirty = False
        if self._n_reserved:
            remaining = 0
            for res in self._reserved:
                if res:
                    res[:] = [t for t in res if t > cycle]
                    remaining += len(res)
            self._n_reserved = remaining

    def available(self, kind: int) -> int:
        return (self._counts[kind] - self._used[kind]
                - len(self._reserved[kind]))

    def try_issue(self, kind: int, cycle: int, latency: int,
                  unpipelined: bool = False) -> bool:
        """Claim an issue slot on a unit of ``kind``; False if none free."""
        if (self._counts[kind] - self._used[kind]
                - len(self._reserved[kind])) <= 0:
            return False
        self._used[kind] += 1
        self._dirty = True
        if unpipelined:
            self._reserved[kind].append(cycle + latency)
            self._n_reserved += 1
        self.ops += 1
        return True

    def try_issue_group(self, demands, cycle: int = None) -> bool:
        """Atomically claim units for a whole issue group (VLIW replay).

        ``demands`` is an iterable of (kind, cycle, latency, unpipelined)
        tuples; either every member gets a unit or nothing is claimed.
        ``cycle`` overrides the per-demand cycle stamp — callers reusing a
        cached demand tuple across cycles pass the live cycle here.
        """
        if not isinstance(demands, (list, tuple)):
            demands = list(demands)
        need = [0] * N_FU_KINDS
        for kind, _cycle, _lat, _unp in demands:
            need[kind] += 1
        for kind in range(N_FU_KINDS):
            if need[kind] and self.available(kind) < need[kind]:
                return False
        used = self._used
        for kind, stamp, latency, unpipelined in demands:
            used[kind] += 1
            if unpipelined:
                start = stamp if cycle is None else cycle
                self._reserved[kind].append(start + latency)
                self._n_reserved += 1
        self._dirty = True
        self.ops += len(demands)
        return True

    def flush(self) -> None:
        """Release all reservations (pipeline squash)."""
        for kind in range(N_FU_KINDS):
            self._reserved[kind].clear()
            self._used[kind] = 0
        self._n_reserved = 0
        self._dirty = False
