"""Functional-unit pools (Table 2: 4 int ALU, 2 int mul/div, 2 memory
ports, 2 FP adders, 1 FP mul/div).

Pipelined units accept one operation per cycle; unpipelined units (the
dividers) are reserved for their whole latency.
"""

from __future__ import annotations

from typing import Dict, List

from repro.isa.opclasses import FuKind


class FuPool:
    """Per-kind availability tracking for one clock domain."""

    def __init__(self, int_alus: int, int_muldivs: int, mem_ports: int,
                 fp_adders: int, fp_muldivs: int):
        self._counts: Dict[FuKind, int] = {
            FuKind.INT_ALU: int_alus,
            FuKind.INT_MULDIV: int_muldivs,
            FuKind.MEM_PORT: mem_ports,
            FuKind.FP_ADD: fp_adders,
            FuKind.FP_MULDIV: fp_muldivs,
        }
        self._used: Dict[FuKind, int] = {k: 0 for k in self._counts}
        self._reserved: Dict[FuKind, List[int]] = {k: [] for k in self._counts}
        self._cycle = -1
        self.ops = 0  # total operations started (power events)

    def begin_cycle(self, cycle: int) -> None:
        """Reset per-cycle issue slots and expire long reservations."""
        self._cycle = cycle
        for kind in self._used:
            self._used[kind] = 0
            res = self._reserved[kind]
            if res:
                self._reserved[kind] = [t for t in res if t > cycle]

    def available(self, kind: FuKind) -> int:
        return (self._counts[kind] - self._used[kind]
                - len(self._reserved[kind]))

    def try_issue(self, kind: FuKind, cycle: int, latency: int,
                  unpipelined: bool = False) -> bool:
        """Claim an issue slot on a unit of ``kind``; False if none free."""
        if self.available(kind) <= 0:
            return False
        self._used[kind] += 1
        if unpipelined:
            self._reserved[kind].append(cycle + latency)
        self.ops += 1
        return True

    def try_issue_group(self, demands) -> bool:
        """Atomically claim units for a whole issue group (VLIW replay).

        ``demands`` is an iterable of (kind, cycle, latency, unpipelined)
        tuples; either every member gets a unit or nothing is claimed.
        """
        demands = list(demands)
        need: Dict[FuKind, int] = {}
        for kind, _cycle, _lat, _unp in demands:
            need[kind] = need.get(kind, 0) + 1
        for kind, count in need.items():
            if self.available(kind) < count:
                return False
        for kind, cycle, latency, unpipelined in demands:
            self._used[kind] += 1
            if unpipelined:
                self._reserved[kind].append(cycle + latency)
            self.ops += 1
        return True

    def flush(self) -> None:
        """Release all reservations (pipeline squash)."""
        for kind in self._reserved:
            self._reserved[kind].clear()
            self._used[kind] = 0
