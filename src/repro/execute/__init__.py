"""Execution core substrates: functional-unit pools and the load/store queue."""

from repro.execute.fu import FuPool
from repro.execute.lsq import LoadStoreQueue

__all__ = ["FuPool", "LoadStoreQueue"]
