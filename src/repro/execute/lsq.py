"""Load/store queue occupancy model (64 entries, Table 2).

The simulator does not track data values, so the LSQ models the structural
resource: dispatch stalls when it is full and entries are released at
commit. Memory-ordering violations are out of scope (loads never replay);
this is a documented simplification shared with many performance models.
"""

from __future__ import annotations

from repro.errors import SimulationError


class LoadStoreQueue:
    """Simple occupancy counter with capacity semantics."""

    def __init__(self, entries: int):
        self.capacity = entries
        self._count = 0
        self.inserts = 0

    def __len__(self) -> int:
        return self._count

    @property
    def full(self) -> bool:
        return self._count >= self.capacity

    def insert(self) -> None:
        if self.full:
            raise SimulationError("LSQ overflow")
        self._count += 1
        self.inserts += 1

    def release(self) -> None:
        if self._count <= 0:
            raise SimulationError("LSQ underflow")
        self._count -= 1

    def flush(self) -> None:
        self._count = 0
