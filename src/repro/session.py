"""One front door for execution: :class:`MachineSpec` + :class:`Session`.

``MachineSpec`` is a frozen, declarative description of one machine+run
— kind, ``CoreConfig``/``FlywheelConfig`` overrides, ``ClockPlan``
(including an optional DVFS governor), benchmark, seed, instruction
budgets and memory scale. It validates and normalizes exactly like the
campaign layer's :class:`~repro.campaign.spec.RunSpec` — because its
:meth:`MachineSpec.run_spec` *is* that projection — so its
:meth:`cache_key` is byte-compatible with every record the
:class:`~repro.campaign.store.ResultStore` has ever written.

``Session`` executes specs::

    from repro import MachineSpec, Session

    with Session(store="~/.cache/repro-campaign", jobs=4) as session:
        base = session.run(MachineSpec("baseline", "gcc"))
        sweep = [MachineSpec("flywheel", "gcc",
                             clock=ClockPlan(fe_speedup=f, be_speedup=0.5))
                 for f in (0.0, 0.5, 1.0)]
        results = session.map(sweep)            # dedup + fan-out + memoize
        for event in session.stream(sweep):     # structured progress
            print(event)

A session is warm-cache aware on three levels: its in-memory memo table,
the optional persistent store, and the multiprocess campaign executor it
fans ``map``/``stream`` batches out through. Machine kinds resolve
through :mod:`repro.core.registry`, so a third-party
``register_kind(...)`` machine works here with no further wiring.

The historical ``run_baseline``/``run_flywheel``/``run_pipelined_wakeup``
functions are deprecated wrappers over :func:`default_session`.
"""

from __future__ import annotations

import dataclasses
import threading
from dataclasses import dataclass
from typing import (
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Union,
)

from repro.campaign.executor import CampaignReport, ProgressFn, run_campaign
from repro.campaign.spec import RunSpec
from repro.campaign.store import ResultStore
from repro.core.config import ClockPlan, CoreConfig, FlywheelConfig
from repro.core.sim import (
    DEFAULT_INSTRUCTIONS,
    DEFAULT_WARMUP,
    SimResult,
    execute_kind,
)

__all__ = [
    "MachineSpec",
    "Session",
    "SessionEvent",
    "default_session",
]


@dataclass(frozen=True)
class MachineSpec:
    """Frozen, declarative description of one machine + run.

    Construction validates the kind (against the core-kind registry),
    the benchmark name and the budgets, and *normalizes* the axes the
    same way the campaign layer does — ``None`` config/fly/clock
    resolve to the kind's defaults, synchronous kinds drop the clock
    speedup axes — so two ways of writing the same run compare, hash
    and cache identically.
    """

    kind: str
    bench: str
    config: Optional[CoreConfig] = None
    fly: Optional[FlywheelConfig] = None
    clock: Optional[ClockPlan] = None
    seed: Optional[int] = None
    instructions: int = DEFAULT_INSTRUCTIONS
    warmup: int = DEFAULT_WARMUP
    mem_scale: float = 1.0
    #: Constructor sugar for the engine-backend axis: ``engine="turbo"``
    #: folds into ``config.engine`` during normalization (overriding any
    #: value the config carries) and resets to ``None``, so
    #: ``MachineSpec("baseline", "gcc", engine="turbo")`` and the
    #: spelled-out ``config=CoreConfig(engine="turbo")`` are the same
    #: frozen spec — same equality, same cache key.
    engine: Optional[str] = None

    def __post_init__(self) -> None:
        # RunSpec owns validation + normalization; copy the normalized
        # axes back so MachineSpec equality/dedup sees through None, and
        # keep the projection (specs are frozen, so it can never drift).
        run = RunSpec(kind=self.kind, bench=self.bench, clock=self.clock,
                      config=self.config, fly=self.fly, seed=self.seed,
                      instructions=self.instructions, warmup=self.warmup,
                      mem_scale=self.mem_scale)
        if self.engine is not None and self.engine != run.config.engine:
            run = RunSpec(kind=self.kind, bench=self.bench, clock=self.clock,
                          config=run.config.with_variant(engine=self.engine),
                          fly=self.fly, seed=self.seed,
                          instructions=self.instructions, warmup=self.warmup,
                          mem_scale=self.mem_scale)
        object.__setattr__(self, "engine", None)
        for axis in ("clock", "config", "fly", "mem_scale"):
            object.__setattr__(self, axis, getattr(run, axis))
        object.__setattr__(self, "_run", run)

    # ------------------------------------------------------- projection

    def run_spec(self) -> RunSpec:
        """The campaign projection of this spec (same axes, same key)."""
        return self._run

    @classmethod
    def from_run_spec(cls, spec: RunSpec) -> "MachineSpec":
        return cls(kind=spec.kind, bench=spec.bench, clock=spec.clock,
                   config=spec.config, fly=spec.fly, seed=spec.seed,
                   instructions=spec.instructions, warmup=spec.warmup,
                   mem_scale=spec.mem_scale)

    def cache_key(self) -> str:
        """Content address, byte-compatible with stored campaign records."""
        return self.run_spec().cache_key()

    @property
    def label(self) -> str:
        return self.run_spec().label

    def replace(self, **overrides) -> "MachineSpec":
        """A copy with the given axes overridden (re-validated).

        Changing ``kind`` resets ``config``/``fly`` to the new kind's
        defaults unless they are overridden in the same call: the
        current values were normalized *for this spec's kind* (e.g. the
        flywheel's register-file sizing), and carrying them across
        would silently describe a machine nobody asked for.
        """
        if overrides.get("kind", self.kind) != self.kind:
            overrides.setdefault("config", None)
            overrides.setdefault("fly", None)
        return dataclasses.replace(self, **overrides)

    def to_dict(self) -> Dict[str, object]:
        return self.run_spec().to_dict()

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "MachineSpec":
        return cls.from_run_spec(RunSpec.from_dict(data))


#: Anything a Session accepts where a spec is expected.
SpecLike = Union[MachineSpec, RunSpec]


def _as_run_spec(spec: SpecLike) -> RunSpec:
    if isinstance(spec, MachineSpec):
        return spec.run_spec()
    if isinstance(spec, RunSpec):
        return spec
    raise TypeError(f"expected MachineSpec or RunSpec, got {type(spec)!r}")


@dataclass(frozen=True)
class SessionEvent:
    """One structured progress/result event from :meth:`Session.stream`.

    ``event`` is one of:

    * ``"plan"`` — batch accepted; ``total`` unique jobs after dedup.
    * ``"result"`` — one job finished; carries the ``spec``, the
      ``result`` and ``source`` (``"memory"``/``"store"``/``"run"``),
      with ``done`` counting finished jobs so far.
    * ``"quarantine"`` — a job the resumable scheduler gave up on
      after its retry budget; ``spec`` plus the final traceback in
      ``error`` (only the :mod:`repro.campaign.scheduler` path emits
      this — ``Session.stream`` raises on failure instead).
    * ``"summary"`` — batch complete; ``hits``/``executed`` counters
      (plus ``quarantined`` on the scheduler path) and ``elapsed_s``
      wall time.

    The serve daemon bridges these events 1:1 onto its SSE wire format
    (see ``repro.serve``), so the schema here *is* the service schema.
    """

    event: str
    spec: Optional[RunSpec] = None
    result: Optional[SimResult] = None
    source: str = ""
    done: int = 0
    total: int = 0
    hits: int = 0
    executed: int = 0
    elapsed_s: float = 0.0
    error: str = ""
    quarantined: int = 0


class Session:
    """The single front door for executing :class:`MachineSpec` s.

    ``store`` may be a :class:`ResultStore`, a directory path, or None
    (no persistence); ``jobs`` is the default worker-process count for
    :meth:`map`/:meth:`stream`. Results are memoized in-memory for the
    session's lifetime and (when a store is attached) on disk under the
    spec's content hash, so a warmed session re-simulates nothing.

    ``hits``/``executed`` count, across all entry points, the specs
    resolved from either cache level vs. actually simulated — tests and
    CLIs use them to *verify* a warm path performed zero new work.

    Context-managed: ``with Session(...) as s`` releases the in-memory
    memo table on exit (the store, if any, persists).
    """

    def __init__(self,
                 store: Union[ResultStore, str, None] = None,
                 jobs: int = 1,
                 timeout_s: Optional[float] = None,
                 trace_dir: Optional[str] = None):
        if store is not None and not isinstance(store, ResultStore):
            store = ResultStore(store)
        self.store = store
        self.jobs = max(1, jobs)
        self.timeout_s = timeout_s
        #: When set, every result carrying flight-recorder data gets its
        #: Chrome trace-event JSON written here (named by cache key) and
        #: ``result.trace_path`` points at the file.
        self.trace_dir = trace_dir
        self.hits = 0
        self.executed = 0
        self._cache: Dict[str, SimResult] = {}

    def _export_trace(self, key: str, result: SimResult) -> SimResult:
        """Write the Chrome trace artifact for a traced result, if asked."""
        if (self.trace_dir is None or result.trace is None
                or result.trace_path is not None):
            return result
        import json
        import os

        from repro.obs.render import chrome_trace

        os.makedirs(self.trace_dir, exist_ok=True)
        path = os.path.join(self.trace_dir, f"{key[:16]}.trace.json")
        label = f"{result.kind}/{result.name}"
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(chrome_trace(result.trace["events"], label=label), fh)
        result.trace_path = path
        return result

    # ------------------------------------------------------ single runs

    def run(self, spec: SpecLike) -> SimResult:
        """Execute one spec, memoized: memory, then store, then simulate."""
        run = _as_run_spec(spec)
        key = run.cache_key()
        hit = self._cache.get(key)
        if hit is not None:
            self.hits += 1
            return self._export_trace(key, hit)
        if self.store is not None:
            stored = self.store.get(key)
            if stored is not None:
                self._cache[key] = stored
                self.hits += 1
                return self._export_trace(key, stored)
        import time

        t0 = time.perf_counter()
        result = run.execute()
        elapsed_s = time.perf_counter() - t0
        if self.store is not None:
            self.store.put(key, run, result, elapsed_s=elapsed_s)
        self._cache[key] = result
        self.executed += 1
        return self._export_trace(key, result)

    def run_workload(self, kind: str, workload,
                     config: Optional[CoreConfig] = None,
                     fly: Optional[FlywheelConfig] = None,
                     clock: Optional[ClockPlan] = None,
                     max_instructions: int = DEFAULT_INSTRUCTIONS,
                     warmup: int = DEFAULT_WARMUP,
                     seed: Optional[int] = None,
                     mem_scale: float = 1.0) -> SimResult:
        """Imperative escape hatch: run any registered kind directly.

        Unlike :meth:`run` this accepts ad-hoc workloads (a
        :class:`WorkloadProfile` or pre-built :class:`Program`, not just
        a benchmark name) and never memoizes — every call simulates
        afresh and the result keeps its live ``core`` object. The
        deprecated ``run_*`` wrappers route here, which is what keeps
        their behaviour (fresh run, live core) exactly as it was.
        """
        result = execute_kind(kind, workload, config=config, fly=fly,
                              clock=clock,
                              max_instructions=max_instructions,
                              warmup=warmup, seed=seed, mem_scale=mem_scale)
        self.executed += 1
        return result

    def profile(self, spec: SpecLike,
                out: Optional[str] = None) -> Dict[str, object]:
        """Self-profile one spec: wall time bucketed per engine phase.

        Runs the spec's machine uncached (profiling wraps the engine's
        stage functions, so a memoized result would defeat the point)
        and returns the :func:`repro.obs.profiler.profile_machine`
        report; ``out`` additionally writes it as JSON.
        """
        from repro.obs.profiler import profile_machine, write_profile

        run = _as_run_spec(spec)
        report = profile_machine(
            run.kind, run.bench, config=run.config, fly=run.fly,
            clock=run.clock, instructions=run.instructions,
            warmup=run.warmup, seed=run.seed, mem_scale=run.mem_scale)
        if out is not None:
            write_profile(report, out)
        self.executed += 1
        return report

    # ----------------------------------------------------------- batches

    def warm(self, specs: Iterable[SpecLike],
             jobs: Optional[int] = None,
             timeout_s: Optional[float] = None,
             progress: Optional[ProgressFn] = None) -> CampaignReport:
        """Pre-execute a batch into the cache via the campaign executor.

        Specs already in the in-memory memo table are skipped outright
        (counted as hits); the rest resolve from the store or fan out
        over worker processes. Returns the executor's
        :class:`CampaignReport` (whose own counters cover only the
        non-memory portion of the batch).
        """
        seen = set()
        misses: List[RunSpec] = []
        for run in (_as_run_spec(s) for s in specs):
            key = run.cache_key()
            if key in seen:
                continue
            seen.add(key)
            if key in self._cache:
                self.hits += 1
            else:
                misses.append(run)
        report = run_campaign(misses, store=self.store,
                              jobs=self.jobs if jobs is None else jobs,
                              timeout_s=(self.timeout_s if timeout_s is None
                                         else timeout_s),
                              progress=progress)
        self._cache.update(report.results)
        for key, result in report.results.items():
            self._export_trace(key, result)
        self.hits += report.hits
        self.executed += report.executed
        return report

    def map(self, specs: Sequence[SpecLike],
            jobs: Optional[int] = None,
            timeout_s: Optional[float] = None,
            progress: Optional[ProgressFn] = None) -> List[SimResult]:
        """Execute a batch (deduplicated, parallel) and return results
        in input order — duplicates map to the same result object."""
        runs = [_as_run_spec(s) for s in specs]
        self.warm(runs, jobs=jobs, timeout_s=timeout_s, progress=progress)
        return [self._cache[r.cache_key()] for r in runs]

    def stream(self, specs: Iterable[SpecLike],
               jobs: Optional[int] = None,
               timeout_s: Optional[float] = None) -> Iterator[SessionEvent]:
        """Execute a batch, yielding structured events as jobs finish.

        Event order: one ``"plan"``, then one ``"result"`` per unique
        spec as each resolves (memory hits first, then store hits /
        simulations in completion order), then one ``"summary"``.
        Results are memoized exactly as :meth:`map` does; an error in
        the underlying campaign (worker failure, timeout) propagates
        after the events for already-finished jobs have been yielded.

        Once the first miss has been dispatched, abandoning the iterator
        does not cancel the campaign: the remaining jobs finish on a
        background thread and are still memoized and counted — only
        their events go unobserved. (Dropping the iterator before then —
        e.g. right after the ``"plan"`` event — runs nothing, as the
        generator body never reaches the executor.)
        """
        from repro.campaign.spec import dedup

        runs = dedup(_as_run_spec(s) for s in specs)
        total = len(runs)
        yield SessionEvent(event="plan", total=total)

        done = 0
        memory_hits: List[RunSpec] = []
        misses: List[RunSpec] = []
        for run in runs:
            (memory_hits if run.cache_key() in self._cache
             else misses).append(run)
        for run in memory_hits:
            done += 1
            self.hits += 1
            yield SessionEvent(event="result", spec=run,
                               result=self._cache[run.cache_key()],
                               source="memory", done=done, total=total)

        report = CampaignReport()
        if misses:
            # The executor is synchronous; run it on a thread and drain
            # its completion callbacks through a queue so results stream
            # out as they finish rather than after the whole batch.
            import queue

            events: "queue.Queue" = queue.Queue()

            def on_result(spec: RunSpec, result: SimResult,
                          source: str) -> None:
                # Memoize and count here, on the campaign thread, so an
                # abandoned consumer loses events but never results.
                self._cache[spec.cache_key()] = result
                self._export_trace(spec.cache_key(), result)
                if source == "hit":
                    self.hits += 1
                else:
                    self.executed += 1
                events.put(("result", spec, result, source))

            outcome: Dict[str, object] = {}

            def drive() -> None:
                try:
                    outcome["report"] = run_campaign(
                        misses, store=self.store,
                        jobs=self.jobs if jobs is None else jobs,
                        timeout_s=(self.timeout_s if timeout_s is None
                                   else timeout_s),
                        on_result=on_result)
                except BaseException as exc:  # re-raised on the consumer
                    outcome["error"] = exc
                finally:
                    events.put(("end",))

            worker = threading.Thread(target=drive, daemon=True)
            worker.start()
            while True:
                item = events.get()
                if item[0] == "end":
                    break
                _tag, spec, result, source = item
                done += 1
                source = "store" if source == "hit" else "run"
                yield SessionEvent(event="result", spec=spec, result=result,
                                   source=source, done=done, total=total)
            worker.join()
            error = outcome.get("error")
            if error is not None:
                raise error
            report = outcome["report"]

        yield SessionEvent(event="summary", done=done, total=total,
                           hits=len(memory_hits) + report.hits,
                           executed=report.executed,
                           elapsed_s=report.elapsed_s)

    # -------------------------------------------------------- lifecycle

    def close(self) -> None:
        """Drop the in-memory memo table (the store persists)."""
        self._cache.clear()

    def __enter__(self) -> "Session":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    def __repr__(self) -> str:
        root = str(self.store.root) if self.store is not None else None
        return (f"Session(store={root!r}, jobs={self.jobs}, "
                f"cached={len(self._cache)}, hits={self.hits}, "
                f"executed={self.executed})")


#: Lazily created module-level session backing the deprecated ``run_*``
#: wrappers: no store, no memoization surprises (wrappers go through
#: :meth:`Session.run_workload`, which always simulates afresh).
_DEFAULT_SESSION: Optional[Session] = None
_DEFAULT_LOCK = threading.Lock()


def default_session() -> Session:
    """The process-wide default :class:`Session` (created on first use)."""
    global _DEFAULT_SESSION
    with _DEFAULT_LOCK:
        if _DEFAULT_SESSION is None:
            _DEFAULT_SESSION = Session()
        return _DEFAULT_SESSION
