"""Governor configuration: the declarative half of the DVFS subsystem.

A :class:`GovernorConfig` rides inside :class:`~repro.core.config.ClockPlan`
(``ClockPlan.governor``), so it flows through every layer that already
carries a clock plan — the sim API, campaign :class:`RunSpec` payloads and
cache keys, the on-disk result store — without any of them growing a new
axis. ``governor=None`` (the default everywhere) means "no controller at
all" and is byte-for-byte the pre-DVFS machine.

The frequency ladder is discrete: the paper derives both back-end clocks
from one fast master clock by integer division, so a governor never picks
an arbitrary frequency — it moves between the ``scale_steps`` rungs
(multipliers on the plan's nominal frequency), one step per decision
interval.

This module must stay import-light (dataclasses + repro.errors only):
``repro.core.config`` materializes :class:`GovernorConfig` from stored
payloads, and ``repro.power.__init__`` transitively imports
``repro.core.sim`` — so importing either package here at module load
would cycle. The tech-node lookup is deferred into validation.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Tuple

from repro.errors import ConfigError

#: Governor policies shipped with the framework (see repro.dvfs.governors).
GOVERNOR_NAMES = ("static", "occupancy", "ipc_ladder", "energy_budget")

#: Default frequency ladder: throttle rungs below the plan's nominal
#: clock. 1.0 must be reachable so ``start_scale=1.0`` lands on a rung.
DEFAULT_SCALE_STEPS = (0.6, 0.7, 0.8, 0.9, 1.0)


@dataclass(frozen=True)
class GovernorConfig:
    """Everything that defines one adaptive-clock policy.

    Participates in ``cache_key()`` (via the enclosing ``ClockPlan``), so
    two runs that differ only in governor tuning are distinct campaign
    jobs and never alias in the result store.
    """

    #: Policy name; one of :data:`GOVERNOR_NAMES`.
    name: str = "static"
    #: Back-end cycles between governor decisions (interval boundaries).
    interval: int = 1000
    #: Discrete frequency ladder: ascending multipliers on the nominal
    #: domain frequency. Governors move one rung per interval.
    scale_steps: Tuple[float, ...] = DEFAULT_SCALE_STEPS
    #: Rung the run starts on (snapped to the nearest step).
    start_scale: float = 1.0

    # --- occupancy governor ------------------------------------------------
    #: Issue-window occupancy above which the clock steps up a rung.
    occ_high: float = 0.60
    #: Occupancy below which it steps down (window draining = idle engine).
    occ_low: float = 0.20

    # --- ipc_ladder governor -----------------------------------------------
    #: Half-width of the hill climber's hold band: scores within the band
    #: hold the rung, worsening beyond it reverses direction. Interval
    #: EDP is noisy (mispredict bursts, EC hit streaks), so a narrow band
    #: thrashes; 0.15 measurably beats 0.05 on both EDP and retune count.
    ladder_margin: float = 0.15

    # --- energy_budget governor --------------------------------------------
    #: Average-power envelope in watts; 0 auto-calibrates the budget to
    #: ``budget_headroom`` x the first interval's observed power.
    budget_watts: float = 0.0
    #: Fraction of the budget below which the clock may step back up (and
    #: the auto-calibration factor for ``budget_watts == 0``).
    budget_headroom: float = 0.85

    #: Technology node used for the interval power estimate
    #: (:data:`repro.power.technology.TECH_BY_NAME` key).
    tech: str = "130nm"

    def __post_init__(self) -> None:
        if self.name not in GOVERNOR_NAMES:
            raise ConfigError(
                f"unknown governor {self.name!r}; known: "
                f"{', '.join(GOVERNOR_NAMES)}")
        if self.interval < 1:
            raise ConfigError("governor interval must be >= 1 cycle")
        steps = tuple(float(s) for s in self.scale_steps)
        if not steps:
            raise ConfigError("scale_steps must not be empty")
        if any(s <= 0 for s in steps):
            raise ConfigError("scale_steps must be positive")
        if list(steps) != sorted(steps) or len(set(steps)) != len(steps):
            raise ConfigError("scale_steps must be strictly ascending")
        from repro.power.technology import TECH_BY_NAME  # deferred: cycle

        if self.tech not in TECH_BY_NAME:
            raise ConfigError(
                f"unknown tech node {self.tech!r}; known: "
                f"{', '.join(TECH_BY_NAME)}")
        if not 0.0 < self.budget_headroom <= 1.0:
            raise ConfigError("budget_headroom must be in (0, 1]")
        if not 0.0 <= self.occ_low < self.occ_high <= 1.0:
            raise ConfigError("need 0 <= occ_low < occ_high <= 1")
        # Coerce numeric fields exactly like ClockPlan does: equal configs
        # must serialize identically (JSON renders 1 and 1.0 differently),
        # and from_dict-style reconstruction hands us lists for tuples.
        object.__setattr__(self, "scale_steps", steps)
        for field_name in ("start_scale", "occ_high", "occ_low",
                          "ladder_margin", "budget_watts",
                          "budget_headroom"):
            object.__setattr__(self, field_name,
                               float(getattr(self, field_name)))

    @property
    def start_index(self) -> int:
        """Ladder rung closest to ``start_scale``."""
        steps = self.scale_steps
        return min(range(len(steps)),
                   key=lambda i: abs(steps[i] - self.start_scale))

    def cache_key(self) -> str:
        """Stable short hash of every field (for ad-hoc identity)."""
        from repro.core.config import stable_hash  # deferred: import cycle

        return stable_hash(asdict(self))


def governor_plan(base_plan, name: str, **overrides) -> "object":
    """Copy ``base_plan`` (a ClockPlan) with a governor attached."""
    from dataclasses import replace

    return replace(base_plan, governor=GovernorConfig(name=name,
                                                      **overrides))


__all__ = ["GovernorConfig", "GOVERNOR_NAMES", "DEFAULT_SCALE_STEPS",
           "governor_plan"]
