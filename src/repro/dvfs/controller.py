"""DVFS controllers: the runtime half of the governor subsystem.

A controller owns the governor instance, snapshots the core's counters at
interval boundaries, builds the :class:`IntervalTelemetry` delta, and
applies the governor's ladder move to the clock. The cores' run loops
carry exactly one cheap check per simulated cycle (``cycle >=
controller.next_check``; a ``None`` test when no governor is configured),
so the PR-2 skip-ahead fast paths are untouched — a skip that jumps past
a boundary just makes the next interval longer (see DESIGN.md section 4).

Two attachment flavours:

* :class:`SyncDvfsController` — for the single-clock cores, which have no
  :class:`ClockDomain`: it keeps the piecewise wall-clock sum itself
  (cycles x period per frequency segment, integer picoseconds) and
  retunes the DRAM-latency multiplier ``core.mem_scale`` (DRAM time is
  fixed in nanoseconds, so a slower core clock sees proportionally fewer
  stall cycles).
* :class:`FlywheelDvfsController` — re-divides the Flywheel's
  trace-execution fast clock through ``FlywheelCore._dvfs_rescale``,
  which scales the EC-replay frequency target (and its DRAM multiplier)
  and retimes ``be_dom`` via ``ClockDomain.set_frequency``; the
  trace-creation clock stays pinned at the window-limited ``be_mhz``.
  Wall-clock time needs no extra bookkeeping: the domain's picosecond
  timeline already spans the frequency changes exactly.

Frequency transitions are recorded in ``SimStats.freq_trace`` as
``[cycle, mhz]`` pairs (``dvfs_retunes`` counts them), which is what
``repro.analysis.report`` renders and the campaign store persists.
"""

from __future__ import annotations

from typing import Optional

from repro.clocks.domain import mhz_to_period_ps
from repro.core.stats import SimStats
from repro.dvfs.config import GovernorConfig
from repro.dvfs.governors import make_governor
from repro.dvfs.telemetry import IntervalTelemetry
from repro.power.clocktree import clock_energy_pj
from repro.power.energy import dynamic_energy_pj
from repro.power.leakage import (
    baseline_structures,
    flywheel_structures,
    leakage_power_w,
)
from repro.power.technology import TECH_BY_NAME


class _DvfsController:
    """Shared snapshot/decide machinery; subclasses apply the retiming."""

    def __init__(self, cfg: GovernorConfig, stats: SimStats,
                 is_flywheel: bool):
        self.cfg = cfg
        self.governor = make_governor(cfg)
        self.steps = cfg.scale_steps
        self.idx = cfg.start_index
        self.scale = self.steps[self.idx]
        self.next_check: Optional[int] = cfg.interval
        self.stats = stats
        self.is_flywheel = is_flywheel
        self.intervals = 0
        # Interval-delta snapshots.
        self._last_cycle = 0
        self._last_committed = 0
        self._last_issued = 0
        self._last_mispredicts = 0
        self._last_pool_stalls = 0
        self._last_exec_cycles = 0
        self._last_fe_active = 0
        self._last_fe_gated = 0
        self._last_l1d_accesses = 0
        self._last_l1d_misses = 0
        self._needs_energy = self.governor.needs_energy
        if self._needs_energy:
            self._tech = TECH_BY_NAME[cfg.tech]
            structures = (flywheel_structures() if is_flywheel
                          else baseline_structures())
            self._leak_w = leakage_power_w(self._tech, structures)
            self._last_events = dict(stats.events)
            self._last_l2 = 0

    def reset_baseline(self, core) -> None:
        """Re-snapshot the energy baselines at the start of timed simulation.

        The controller is built in the core's constructor, but functional
        warmup runs *afterwards* and drives thousands of accesses through
        the memory hierarchy. Without this reset the first interval's
        event/L2 deltas would include the whole warmup, inflating its
        power estimate — and ``energy_budget``'s auto-calibrated envelope
        with it. The cores call this after warmup, before the first cycle.
        The L1D snapshot resets with it so the first interval's miss
        rate covers timed accesses only.
        """
        l1d = core.hierarchy.l1d.stats
        self._last_l1d_accesses = l1d.accesses
        self._last_l1d_misses = l1d.misses
        if self._needs_energy:
            self._last_events = dict(self.stats.events)
            self._last_l2 = core.hierarchy.l2.stats.accesses

    # ----------------------------------------------------------- telemetry

    def _build(self, core, c: int, time_ps: int,
               freq_mhz: float) -> IntervalTelemetry:
        stats = self.stats
        cycles = max(1, c - self._last_cycle)
        fe_active_d = stats.fe_cycles_active - self._last_fe_active
        fe_gated_d = stats.fe_cycles_gated - self._last_fe_gated
        fe_total = fe_active_d + fe_gated_d
        l1d = core.hierarchy.l1d.stats
        l1d_acc_d = l1d.accesses - self._last_l1d_accesses
        l1d_miss_d = l1d.misses - self._last_l1d_misses
        t = IntervalTelemetry(
            cycle=c,
            cycles=cycles,
            time_ps=max(1, time_ps),
            committed=stats.committed - self._last_committed,
            issued=stats.issued - self._last_issued,
            mispredicts=stats.mispredicts - self._last_mispredicts,
            iw_occ=core.iw._count / core.iw.capacity,
            rob_occ=len(core.be.rob) / core.be.rob.capacity,
            lsq_occ=len(core.be.lsq) / core.be.lsq.capacity,
            l1d_miss_rate=(l1d_miss_d / l1d_acc_d) if l1d_acc_d else 0.0,
            replay_frac=(stats.be_cycles_execute
                         - self._last_exec_cycles) / cycles,
            gated_frac=fe_gated_d / fe_total if fe_total else 0.0,
            pool_stalls=stats.rename_pool_stalls - self._last_pool_stalls,
            scale=self.scale,
            freq_mhz=freq_mhz,
            is_flywheel=self.is_flywheel,
        )
        if self._needs_energy:
            events = stats.events
            last = self._last_events
            delta = {k: v - last.get(k, 0) for k, v in events.items()}
            l2 = core.hierarchy.l2.stats.accesses
            delta["l2_access"] = l2 - self._last_l2
            t.events = delta
            tech = self._tech
            dyn = sum(dynamic_energy_pj(delta, tech,
                                        flywheel_rf=self.is_flywheel).values())
            # Synchronous cores only stamp fe_cycles_active at finalize;
            # their front end shares the single clock, so the interval's
            # BE cycle count is the FE grid's cycle count too.
            fe_for_clock = fe_active_d if self.is_flywheel else cycles
            clk = clock_energy_pj(tech, cycles, fe_for_clock, cycles)
            t.energy_pj = dyn + clk + self._leak_w * t.time_ps
            self._last_events = dict(events)
            self._last_l2 = l2
        self._last_cycle = c
        self._last_committed = stats.committed
        self._last_issued = stats.issued
        self._last_mispredicts = stats.mispredicts
        self._last_pool_stalls = stats.rename_pool_stalls
        self._last_exec_cycles = stats.be_cycles_execute
        self._last_fe_active = stats.fe_cycles_active
        self._last_fe_gated = stats.fe_cycles_gated
        self._last_l1d_accesses = l1d.accesses
        self._last_l1d_misses = l1d.misses
        return t

    def _next_index(self, t: IntervalTelemetry) -> int:
        """Run the governor and clamp its move to the ladder."""
        self.intervals += 1
        move = self.governor.decide(t)
        if not move:
            return self.idx
        return min(len(self.steps) - 1, max(0, self.idx + move))


class SyncDvfsController(_DvfsController):
    """DVFS for the single-clock cores (baseline / pipelined_wakeup).

    Keeps the piecewise time sum the runner needs for ``sim_time_ps``:
    with no retunes it degenerates to ``total_cycles x period`` — the
    exact pre-DVFS formula, which is what keeps the ``static`` governor
    bit-identical.
    """

    def __init__(self, cfg: GovernorConfig, nominal_mhz: float, core):
        super().__init__(cfg, core.stats, is_flywheel=False)
        self.nominal_mhz = nominal_mhz
        self._mem_base = core.mem_scale
        self._seg_start_cycle = 0
        self._elapsed_ps = 0
        self.freq_mhz = nominal_mhz * self.scale
        self.period_ps = mhz_to_period_ps(self.freq_mhz)
        core.mem_scale = self._mem_base * self.scale
        self.stats.freq_trace.append([0, self.freq_mhz])

    def on_interval(self, core, c: int) -> int:
        time_ps = (c - self._last_cycle) * self.period_ps
        t = self._build(core, c, time_ps, self.freq_mhz)
        idx = self._next_index(t)
        if idx != self.idx:
            self.idx = idx
            self.scale = self.steps[idx]
            self._retime(core, c)
        self.next_check = c + self.cfg.interval
        return self.next_check

    def _retime(self, core, c: int) -> None:
        self._elapsed_ps += (c - self._seg_start_cycle) * self.period_ps
        self._seg_start_cycle = c
        self.freq_mhz = self.nominal_mhz * self.scale
        self.period_ps = mhz_to_period_ps(self.freq_mhz)
        core.mem_scale = self._mem_base * self.scale
        self.stats.dvfs_retunes += 1
        self.stats.freq_trace.append([c, self.freq_mhz])
        tr = getattr(core, "trace", None)
        if tr is not None:
            tr.emit(c, "clock", -1, self.freq_mhz)

    def finalize(self, total_cycles: int) -> int:
        """Piecewise wall-clock time of the whole run, in picoseconds."""
        return (self._elapsed_ps
                + (total_cycles - self._seg_start_cycle) * self.period_ps)


class FlywheelDvfsController(_DvfsController):
    """DVFS for the dual-clock core: re-divides the trace-execution clock.

    The trace-creation clock is pinned by the issue window's single-cycle
    loop, so the ladder scales only ``be_fast_mhz`` (the EC-replay
    divisor); ``freq_trace`` records that scaled fast-clock target.
    """

    def __init__(self, cfg: GovernorConfig, core):
        super().__init__(cfg, core.stats, is_flywheel=True)
        self._last_now_ps = 0
        self._fast_mhz = core.clock.be_fast_mhz
        if self.scale != 1.0:
            core._dvfs_rescale(self.scale, 0)
        self.stats.freq_trace.append([0, self._fast_mhz * self.scale])

    def on_interval(self, core, c: int, now_ps: int) -> int:
        t = self._build(core, c, now_ps - self._last_now_ps,
                        self._fast_mhz * self.scale)
        self._last_now_ps = now_ps
        idx = self._next_index(t)
        if idx != self.idx:
            self.idx = idx
            self.scale = self.steps[idx]
            core._dvfs_rescale(self.scale, now_ps)
            self.stats.dvfs_retunes += 1
            self.stats.freq_trace.append([c, self._fast_mhz * self.scale])
            tr = getattr(core, "trace", None)
            if tr is not None:
                tr.emit(c, "clock", -1, self._fast_mhz * self.scale)
        self.next_check = c + self.cfg.interval
        return self.next_check


__all__ = ["SyncDvfsController", "FlywheelDvfsController"]
