"""Adaptive clock governors: runtime DVFS for the dual-clock back end.

The paper's machine derives both back-end clocks from one fast master
clock and switches the execution-cache domain between trace-mode and
conventional-mode frequencies; this package generalizes that single
hard-coded switch into a governor framework. A governor observes
per-interval telemetry (IPC, issue-window occupancy, EC replay fraction,
LSQ pressure, gated-cycle fraction, interval energy) and retunes domain
frequencies at interval boundaries over a discrete ladder of
master-clock divisors, via ``ClockDomain.set_frequency``.

Configuration rides in ``ClockPlan.governor`` (a
:class:`GovernorConfig`), so governed runs flow through the sim API,
campaign specs and the content-addressed result store like any other
clock-plan point. ``governor=None`` — the default — means no controller
is attached at all, and ``GovernorConfig(name="static")`` is pinned
bit-identical to that by the golden-stats tests.
"""

from repro.dvfs.config import (
    DEFAULT_SCALE_STEPS,
    GOVERNOR_NAMES,
    GovernorConfig,
    governor_plan,
)
from repro.dvfs.controller import FlywheelDvfsController, SyncDvfsController
from repro.dvfs.governors import (
    GOVERNORS,
    EnergyBudgetGovernor,
    Governor,
    IpcLadderGovernor,
    OccupancyGovernor,
    StaticGovernor,
    make_governor,
)
from repro.dvfs.telemetry import IntervalTelemetry

__all__ = [
    "GovernorConfig",
    "GOVERNOR_NAMES",
    "DEFAULT_SCALE_STEPS",
    "governor_plan",
    "IntervalTelemetry",
    "Governor",
    "StaticGovernor",
    "OccupancyGovernor",
    "IpcLadderGovernor",
    "EnergyBudgetGovernor",
    "GOVERNORS",
    "make_governor",
    "SyncDvfsController",
    "FlywheelDvfsController",
]
