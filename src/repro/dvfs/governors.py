"""Governor policies: telemetry in, ladder moves out.

A governor is a tiny pure-ish object: ``decide(telemetry)`` returns a
*step delta* (-1 / 0 / +1) on the discrete frequency ladder; the
controller clamps it to the ladder ends and performs the actual retiming
through ``ClockDomain.set_frequency``. Governors may keep history (the
hill climber does) but never touch the core.

Shipped policies:

* ``static`` — never moves; bit-identical timing to a governor-less run
  (pinned by the golden-stats tests). Exists so the hook itself can be
  exercised — and benchmarked — without changing behaviour.
* ``occupancy`` — ratio control on issue-window pressure: a full window
  means the back end is the bottleneck (step up), a draining window means
  the engine is starved and burning clock energy for nothing (step down).
* ``ipc_ladder`` — hill-climbs the ladder minimizing the measured
  per-instruction energy-delay product of each interval, with hysteresis;
  bounces off the ladder ends.
* ``energy_budget`` — throttles to hold an average-power envelope
  (``budget_watts``, auto-calibrated when 0) using the same power models
  as :func:`repro.power.accounting.energy_report`.
"""

from __future__ import annotations

from typing import Dict, Type

from repro.dvfs.config import GovernorConfig
from repro.dvfs.telemetry import IntervalTelemetry
from repro.errors import ConfigError


class Governor:
    """Base policy: holds the config, decides one rung move per interval."""

    #: Set by subclasses that need the interval energy estimate (costs an
    #: event-counter snapshot per interval; skipped otherwise).
    needs_energy = False

    def __init__(self, cfg: GovernorConfig):
        self.cfg = cfg

    def decide(self, t: IntervalTelemetry) -> int:
        """Return the ladder move for the next interval: -1, 0 or +1."""
        raise NotImplementedError


class StaticGovernor(Governor):
    """Pinned clock: the hook fires, the frequency never moves."""

    def decide(self, t: IntervalTelemetry) -> int:
        return 0


#: L1D miss rate above which an interval counts as memory-bound for the
#: occupancy policy: the machine is backed up on DRAM, whose time is
#: fixed in nanoseconds, so a faster clock only buys more stall cycles.
#: Well above the SPEC-like profiles' steady-state rates (<~0.3), so the
#: guard engages only on genuinely DRAM-bound phases.
MEMBOUND_MISS_RATE = 0.5


class OccupancyGovernor(Governor):
    """Ratio up/down control on back-end pressure.

    Pressure is ``max(window, ROB)`` occupancy (the window is bypassed
    during EC replay, the ROB tracks both modes): a backed-up engine is
    the bottleneck and steps up a rung, a draining one is starved and
    gives the clock back. The L1D miss rate disambiguates *why* the
    engine is backed up: a full ROB behind a DRAM-bound access stream
    (miss rate >= :data:`MEMBOUND_MISS_RATE`) is waiting, not working —
    stepping up would stretch every miss in cycles for no progress, so
    the governor steps down instead.
    """

    def decide(self, t: IntervalTelemetry) -> int:
        if t.pressure >= self.cfg.occ_high:
            if t.l1d_miss_rate >= MEMBOUND_MISS_RATE:
                return -1
            return +1
        if t.pressure <= self.cfg.occ_low:
            return -1
        return 0


class IpcLadderGovernor(Governor):
    """Hill-climb the ladder minimizing per-instruction EDP.

    Score: (interval energy / instruction) x (interval time /
    instruction), both from the measured interval. The climber keeps
    moving in its current direction while the score clearly improves,
    reverses when it worsens by more than ``ladder_margin``, *holds the
    rung* while the score sits inside the margin band (so a settled
    climber stops retuning — ``freq_trace`` stays amortized to real
    moves, not one entry per interval), and bounces off the ladder
    ends. Memory-bound phases reward low rungs (time barely stretches,
    clock energy shrinks); compute-bound phases reward high rungs (time
    shrinks linearly). A phase change pushes the score out of the band
    and the climb resumes.
    """

    needs_energy = True

    def __init__(self, cfg: GovernorConfig):
        super().__init__(cfg)
        self._direction = -1        # probe below nominal first
        self._prev_score = None

    def decide(self, t: IntervalTelemetry) -> int:
        if not t.committed:
            return 0                # no progress, no signal: hold
        e_per_i = t.energy_pj / t.committed
        t_per_i = t.time_ps / t.committed
        score = e_per_i * t_per_i   # lower is better
        prev = self._prev_score
        self._prev_score = score
        margin = self.cfg.ladder_margin
        if prev is not None:
            if score > prev * (1.0 + margin):
                self._direction = -self._direction
            elif score >= prev * (1.0 - margin):
                return 0            # plateau: hold the rung
        steps = self.cfg.scale_steps
        if t.scale <= steps[0] and self._direction < 0:
            self._direction = +1
        elif t.scale >= steps[-1] and self._direction > 0:
            self._direction = -1
        return self._direction


class EnergyBudgetGovernor(Governor):
    """Throttle to hold an average-power envelope.

    With ``budget_watts == 0`` the envelope is auto-calibrated to
    ``budget_headroom`` x the first interval's measured power, i.e. "give
    back the headroom fraction of nominal power and buy it with the
    cheapest cycles".
    """

    needs_energy = True

    def __init__(self, cfg: GovernorConfig):
        super().__init__(cfg)
        self._budget_w = cfg.budget_watts or None

    def decide(self, t: IntervalTelemetry) -> int:
        watts = t.watts
        if watts <= 0.0:
            return 0
        if self._budget_w is None:
            self._budget_w = watts * self.cfg.budget_headroom
            return -1               # start paying the envelope back
        if watts > self._budget_w:
            return -1
        if watts < self._budget_w * self.cfg.budget_headroom:
            return +1
        return 0


GOVERNORS: Dict[str, Type[Governor]] = {
    "static": StaticGovernor,
    "occupancy": OccupancyGovernor,
    "ipc_ladder": IpcLadderGovernor,
    "energy_budget": EnergyBudgetGovernor,
}


def make_governor(cfg: GovernorConfig) -> Governor:
    """Instantiate the policy named by ``cfg`` (validated at config time)."""
    try:
        return GOVERNORS[cfg.name](cfg)
    except KeyError:
        raise ConfigError(f"unknown governor {cfg.name!r}") from None


__all__ = ["Governor", "StaticGovernor", "OccupancyGovernor",
           "IpcLadderGovernor", "EnergyBudgetGovernor", "GOVERNORS",
           "make_governor"]
