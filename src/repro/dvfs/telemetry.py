"""Per-interval telemetry visible to governors.

One :class:`IntervalTelemetry` is built by the controller at each interval
boundary from *deltas* of the core's counters since the previous boundary,
plus a few instantaneous structure occupancies. Governors see only this
snapshot — never the core — which keeps policies trivially portable
across core kinds and cheap to unit-test.

Intervals are not exactly ``GovernorConfig.interval`` cycles long: the
cores' skip-ahead fast paths may jump the cycle counter past a boundary,
in which case the hook fires at the next simulated cycle and the interval
is simply longer (``cycles`` carries the true length). See DESIGN.md
section 4 for the full contract.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict


@dataclass
class IntervalTelemetry:
    """Counter deltas + occupancies for one governor decision."""

    #: Back-end cycle at the interval's end (decision timestamp).
    cycle: int = 0
    #: True interval length in back-end cycles (>= the configured
    #: interval when a skip-ahead jumped the boundary).
    cycles: int = 1
    #: Wall-clock length of the interval in picoseconds.
    time_ps: int = 1

    # --- architectural progress (deltas) -----------------------------------
    committed: int = 0
    issued: int = 0
    mispredicts: int = 0

    # --- structure pressure (instantaneous occupancies, 0..1) ---------------
    iw_occ: float = 0.0
    rob_occ: float = 0.0
    lsq_occ: float = 0.0

    # --- memory behaviour (deltas over the interval) -------------------------
    #: L1D demand miss rate of the interval's accesses (0.0 with no
    #: accesses). A memory-bound interval is one where raising the core
    #: clock buys nothing: DRAM time is fixed in nanoseconds, so the
    #: faster clock just pays more stall cycles per miss — governors use
    #: this to tell DRAM-induced back-pressure from real compute demand.
    l1d_miss_rate: float = 0.0

    # --- mode mix (Flywheel; zero on synchronous cores) ---------------------
    #: Fraction of interval BE cycles spent replaying from the EC.
    replay_frac: float = 0.0
    #: Fraction of interval FE cycles spent clock-gated.
    gated_frac: float = 0.0
    #: Rename-pool stall cycles in the interval.
    pool_stalls: int = 0

    # --- clock state ---------------------------------------------------------
    #: Current ladder multiplier (what the last decision chose).
    scale: float = 1.0
    #: Current domain frequency in MHz.
    freq_mhz: float = 0.0

    #: Interval energy estimate in pJ (dynamic + clock + leakage at the
    #: governor's tech node). Only populated when the governor's class
    #: sets ``needs_energy`` — it costs an event-counter snapshot.
    energy_pj: float = 0.0
    #: Event-count deltas backing ``energy_pj`` (same gating).
    events: Dict[str, int] = field(default_factory=dict)

    is_flywheel: bool = False

    @property
    def ipc(self) -> float:
        """Committed instructions per back-end cycle over the interval."""
        return self.committed / self.cycles if self.cycles else 0.0

    @property
    def pressure(self) -> float:
        """Back-end pressure: the fuller of window and ROB.

        During EC replay the issue window is bypassed (units issue from
        the fill buffer), so the window alone reads empty; the ROB keeps
        tracking how backed-up the engine is in both modes.
        """
        return max(self.iw_occ, self.rob_occ)

    @property
    def watts(self) -> float:
        """Average power over the interval (pJ / ps == W)."""
        return self.energy_pj / self.time_ps if self.time_ps else 0.0


__all__ = ["IntervalTelemetry"]
