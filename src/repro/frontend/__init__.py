"""Front-end substrate: branch prediction (gshare + BTB + RAS)."""

from repro.frontend.bpred import BPredConfig, BPredStats, BranchPredictor, GShare, BTB, ReturnStack

__all__ = ["BPredConfig", "BPredStats", "BranchPredictor", "GShare", "BTB", "ReturnStack"]
