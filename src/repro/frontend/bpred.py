"""Branch prediction: gshare direction predictor, BTB, return-address stack.

The paper's configuration (Table 2): G-share with 12 bits of history and a
2048-entry pattern history table of 2-bit saturating counters. The BTB and
RAS are standard additions needed for a complete fetch model: a BTB miss on
a taken branch behaves like a misprediction (fetch cannot follow an unknown
target), and returns are predicted through the RAS.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.errors import ConfigError
from repro.isa import BranchKind, DynInstr


@dataclass(frozen=True)
class BPredConfig:
    history_bits: int = 12
    pht_entries: int = 2048
    btb_entries: int = 2048
    btb_ways: int = 4
    ras_entries: int = 16

    def __post_init__(self) -> None:
        if self.pht_entries & (self.pht_entries - 1):
            raise ConfigError("PHT entries must be a power of two")
        if self.btb_entries % self.btb_ways:
            raise ConfigError("BTB entries must divide evenly into ways")


@dataclass
class BPredStats:
    lookups: int = 0
    cond_lookups: int = 0
    mispredicts: int = 0
    dir_mispredicts: int = 0
    btb_misses: int = 0

    @property
    def mispredict_rate(self) -> float:
        return self.mispredicts / self.lookups if self.lookups else 0.0


class GShare:
    """Global-history XOR-indexed table of 2-bit saturating counters."""

    def __init__(self, config: BPredConfig):
        self._mask = config.pht_entries - 1
        self._hist_mask = (1 << config.history_bits) - 1
        self._pht: List[int] = [2] * config.pht_entries  # weakly taken
        self._history = 0

    def _index(self, pc: int) -> int:
        return ((pc >> 2) ^ (self._history & self._hist_mask)) & self._mask

    def predict(self, pc: int) -> bool:
        return self._pht[self._index(pc)] >= 2

    def update(self, pc: int, taken: bool) -> None:
        """Update counter and speculative history for one resolved branch."""
        idx = self._index(pc)
        ctr = self._pht[idx]
        if taken:
            self._pht[idx] = min(3, ctr + 1)
        else:
            self._pht[idx] = max(0, ctr - 1)
        self._history = ((self._history << 1) | int(taken)) & self._hist_mask


class BTB:
    """Set-associative branch target buffer with LRU replacement."""

    def __init__(self, config: BPredConfig):
        self._sets = config.btb_entries // config.btb_ways
        self._ways = config.btb_ways
        self._table: List[dict] = [dict() for _ in range(self._sets)]
        self._clock = 0

    def lookup(self, pc: int) -> Optional[int]:
        self._clock += 1
        entry = self._table[(pc >> 2) % self._sets]
        rec = entry.get(pc)
        if rec is None:
            return None
        entry[pc] = (rec[0], self._clock)
        return rec[0]

    def update(self, pc: int, target: int) -> None:
        self._clock += 1
        entry = self._table[(pc >> 2) % self._sets]
        if pc not in entry and len(entry) >= self._ways:
            victim = min(entry, key=lambda k: entry[k][1])
            del entry[victim]
        entry[pc] = (target, self._clock)


class ReturnStack:
    """Bounded return-address stack; overflow drops the oldest entry."""

    def __init__(self, entries: int):
        self._entries = entries
        self._stack: List[int] = []

    def push(self, ret_pc: int) -> None:
        if len(self._stack) >= self._entries:
            self._stack.pop(0)
        self._stack.append(ret_pc)

    def pop(self) -> Optional[int]:
        return self._stack.pop() if self._stack else None


@dataclass
class BranchPredictor:
    """Complete fetch-side predictor; one per simulated core."""

    config: BPredConfig = field(default_factory=BPredConfig)

    def __post_init__(self) -> None:
        self.gshare = GShare(self.config)
        self.btb = BTB(self.config)
        self.ras = ReturnStack(self.config.ras_entries)
        self.stats = BPredStats()

    def predict(self, dyn: DynInstr) -> bool:
        """Predict one fetched branch; returns True if prediction is correct.

        Because the simulator models wrong paths as stall + flush, only
        correctness (and the structures' training) matters; the predicted
        PC itself is never followed.
        """
        self.stats.lookups += 1
        kind = dyn.branch_kind

        if kind == BranchKind.RET:
            pred_target = self.ras.pop()
            correct = pred_target == dyn.target_pc
            if not correct:
                self.stats.mispredicts += 1
            return correct

        if kind == BranchKind.CALL:
            self.ras.push(dyn.fall_pc)

        btb_target = self.btb.lookup(dyn.pc)

        if kind == BranchKind.COND:
            self.stats.cond_lookups += 1
            pred_taken = self.gshare.predict(dyn.pc)
            self.gshare.update(dyn.pc, dyn.taken)
            if pred_taken != dyn.taken:
                self.stats.mispredicts += 1
                self.stats.dir_mispredicts += 1
                if dyn.taken:
                    self.btb.update(dyn.pc, dyn.target_pc)
                return False
            if dyn.taken and btb_target != dyn.target_pc:
                # Direction right but target unknown: fetch break.
                self.stats.mispredicts += 1
                self.stats.btb_misses += 1
                self.btb.update(dyn.pc, dyn.target_pc)
                return False
            return True

        # Unconditional direct (UNCOND/CALL): correct iff the BTB knows it.
        if btb_target != dyn.target_pc:
            self.stats.mispredicts += 1
            self.stats.btb_misses += 1
            self.btb.update(dyn.pc, dyn.target_pc)
            return False
        return True
