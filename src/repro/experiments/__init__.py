"""Experiment harness: one module per table/figure of the paper.

Every experiment exposes ``run(ctx) -> rows`` returning a list of dicts
(one per table row / plotted point) and ``main()`` that prints the table.
``ExperimentContext`` caches simulation runs so figures that share a sweep
(12/13/14) pay for it once.
"""

from repro.experiments.common import ExperimentContext, geomean, print_table

__all__ = ["ExperimentContext", "geomean", "print_table"]
