"""Table 1 — achievable module clock frequencies per technology node."""

from __future__ import annotations

from typing import List

from repro.experiments.common import ExperimentContext, print_table
from repro.timing.frequency import (
    PAPER_TABLE1,
    TABLE1_NODES,
    module_frequencies_mhz,
)


def run(ctx: ExperimentContext = None) -> List[dict]:
    per_node = {n: module_frequencies_mhz(n) for n in TABLE1_NODES}
    rows = []
    for module in PAPER_TABLE1:
        row = {"module": module}
        for node in TABLE1_NODES:
            row[f"{node}um"] = per_node[node][module]
            row[f"paper@{node}"] = float(PAPER_TABLE1[module][node])
        rows.append(row)
    return rows


def main(ctx: ExperimentContext = None) -> List[dict]:
    rows = run(ctx)
    cols = ["module"]
    for node in TABLE1_NODES:
        cols += [f"{node}um", f"paper@{node}"]
    print_table("Table 1: module clock frequencies (MHz), model vs paper",
                rows, cols, fmt="{:>12}")
    return rows


if __name__ == "__main__":
    main()
