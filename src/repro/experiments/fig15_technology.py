"""Fig. 15 — energy savings across technology nodes (130/90/60nm).

Runs the (FE100%, BE50%) Flywheel and the baseline at each node's own
clock (Table 1's issue-window frequency) and evaluates the node's energy
model. The shape: as leakage grows from 130nm to 60nm, the dynamic power
the Flywheel saves becomes a smaller share of the total, so the relative
energy creeps up (paper: ~0.70 at 130nm to ~0.80 at 60nm).
"""

from __future__ import annotations

from typing import List

from repro.core.config import ClockPlan
from repro.experiments.common import ExperimentContext, geomean, print_table
from repro.power import TECH_130, TECH_60, TECH_90, energy_report
from repro.timing.frequency import module_frequencies_mhz

NODES = ((TECH_130, 0.13), (TECH_90, 0.09), (TECH_60, 0.06))


def run(ctx: ExperimentContext) -> List[dict]:
    rows = []
    for bench in ctx.benchmarks:
        row = {"benchmark": bench}
        for tech, node in NODES:
            base_mhz = module_frequencies_mhz(node)["iw_single_cycle"]
            bclock = ClockPlan(base_mhz=base_mhz)
            fclock = ClockPlan(base_mhz=base_mhz, fe_speedup=1.0,
                               be_speedup=0.5)
            base = energy_report(ctx.baseline(bench, bclock), tech)
            fly = energy_report(ctx.flywheel(bench, fclock), tech)
            row[tech.name] = fly.total_pj / base.total_pj
        rows.append(row)
    avg = {"benchmark": "geomean"}
    for tech, _node in NODES:
        avg[tech.name] = geomean(r[tech.name] for r in rows)
    rows.append(avg)
    return rows


def main(ctx: ExperimentContext = None) -> List[dict]:
    ctx = ctx or ExperimentContext()
    rows = run(ctx)
    print_table(
        "Fig. 15: normalized energy, (FE100%, BE50%) per technology node",
        rows, ["benchmark", "130nm", "90nm", "60nm"], fmt="{:>12}")
    return rows


if __name__ == "__main__":
    main()
