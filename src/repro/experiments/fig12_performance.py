"""Fig. 12 — performance of the Flywheel across clock-speedup pairs.

Sweeps the front-end speedup from 0% to 100% with the trace-execution
back-end 50% faster (the Table 1 projection), reporting execution time
normalized to the fully synchronous baseline. The paper's shape: large
speedups that grow with the front-end clock, super-linear on benchmarks
where the faster front-end exposes more parallelism to the traces, and
the biggest front-end sensitivity on vortex (lowest EC residency).
"""

from __future__ import annotations

from typing import List

from repro.core.config import ClockPlan
from repro.experiments.common import ExperimentContext, geomean, print_table

#: (front-end speedup, back-end speedup) pairs, as in the paper.
SWEEP = (
    ("FE0%,BE50%", ClockPlan(fe_speedup=0.0, be_speedup=0.5)),
    ("FE25%,BE50%", ClockPlan(fe_speedup=0.25, be_speedup=0.5)),
    ("FE50%,BE50%", ClockPlan(fe_speedup=0.5, be_speedup=0.5)),
    ("FE75%,BE50%", ClockPlan(fe_speedup=0.75, be_speedup=0.5)),
    ("FE100%,BE50%", ClockPlan(fe_speedup=1.0, be_speedup=0.5)),
)


def run(ctx: ExperimentContext) -> List[dict]:
    rows = []
    for bench in ctx.benchmarks:
        row = {"benchmark": bench}
        for label, clock in SWEEP:
            row[label] = ctx.speedup(bench, clock)
        rows.append(row)
    avg = {"benchmark": "geomean"}
    for label, _clock in SWEEP:
        avg[label] = geomean(r[label] for r in rows)
    rows.append(avg)
    return rows


def main(ctx: ExperimentContext = None) -> List[dict]:
    ctx = ctx or ExperimentContext()
    rows = run(ctx)
    print_table("Fig. 12: normalized performance vs clock speedups",
                rows, ["benchmark"] + [l for l, _ in SWEEP], fmt="{:>14}")
    return rows


if __name__ == "__main__":
    main()
