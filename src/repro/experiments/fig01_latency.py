"""Fig. 1 — latency scaling for issue windows, caches and register files.

Reproduces the six curves of the paper's Figure 1: access latency in
picoseconds across 0.25um..0.06um. The shape to verify: caches and
register files (transistor-dominated) improve ~linearly with feature size
while the wire-dominated issue window flattens, so a reasonably sized
cache that is ~2x slower than the 128-entry window at 0.25um reaches
parity by 0.06um.
"""

from __future__ import annotations

from typing import List

from repro.experiments.common import ExperimentContext, print_table
from repro.timing.delay import TECH_NODES
from repro.timing.structures import (
    cache_latency_ps,
    iw_latency_ps,
    rf_latency_ps,
)

CONFIGS = (
    ("IW 128e/6w", lambda n: iw_latency_ps(n, 128, 6)),
    ("IW 64e/4w", lambda n: iw_latency_ps(n, 64, 4)),
    ("Cache 64K/2w/1p", lambda n: cache_latency_ps(n, 64, 2, 1)),
    ("Cache 32K/4w/2p", lambda n: cache_latency_ps(n, 32, 4, 2)),
    ("RF 128", lambda n: rf_latency_ps(n, 128)),
    ("RF 256", lambda n: rf_latency_ps(n, 256)),
)


def run(ctx: ExperimentContext = None) -> List[dict]:
    rows = []
    for name, fn in CONFIGS:
        row = {"structure": name}
        for node in TECH_NODES:
            row[f"{node}um"] = fn(node)
        rows.append(row)
    return rows


def main(ctx: ExperimentContext = None) -> List[dict]:
    rows = run(ctx)
    cols = ["structure"] + [f"{n}um" for n in TECH_NODES]
    print_table("Fig. 1: access latency (ps) vs technology node",
                rows, cols, fmt="{:>16}")
    iw25 = rows[0]["0.25um"]
    c25 = rows[2]["0.25um"]
    iw06 = rows[0]["0.06um"]
    c06 = rows[2]["0.06um"]
    print(f"\ncache/IW latency ratio: {c25 / iw25:.2f} at 0.25um -> "
          f"{c06 / iw06:.2f} at 0.06um (paper: ~2x -> ~1x)")
    return rows


if __name__ == "__main__":
    main()
