"""Issue-window size sensitivity (extension).

The paper's whole premise is a trade-off: a *large* issue window exposes
more ILP but dictates a slow clock; a *small* one clocks fast but finds
less parallelism. This experiment quantifies both sides with the
library's models:

* baseline IPC as the window shrinks 128 -> 64 -> 32 entries, and
* the clock each window size would permit (from the Fig. 1 delay model),

then combines them into delivered performance (IPC x frequency), showing
why neither extreme wins — the gap the Flywheel is designed to escape.
"""

from __future__ import annotations

from typing import List

from repro.core.config import CoreConfig
from repro.experiments.common import ExperimentContext, geomean, print_table
from repro.timing.structures import iw_latency_ps

#: (entries, issue width) points; 128/6 is the paper's baseline.
IW_POINTS = ((32, 4), (64, 4), (128, 6), (256, 8))
_NODE_UM = 0.13


def run(ctx: ExperimentContext) -> List[dict]:
    rows = []
    freqs = {pt: 1e6 / iw_latency_ps(_NODE_UM, *pt) for pt in IW_POINTS}
    base_freq = freqs[(128, 6)]
    for bench in ctx.benchmarks:
        row = {"benchmark": bench}
        ref_ipc = None
        for entries, width in IW_POINTS:
            cfg = CoreConfig(iw_entries=entries, issue_width=width)
            res = ctx.baseline(bench, config=cfg)
            ipc = res.stats.ipc
            if (entries, width) == (128, 6):
                ref_ipc = ipc
            row[f"ipc_{entries}"] = ipc
            # Delivered performance if this window set the clock.
            row[f"perf_{entries}"] = ipc * freqs[(entries, width)] / base_freq
        rows.append(row)
    avg = {"benchmark": "geomean"}
    for entries, _w in IW_POINTS:
        avg[f"ipc_{entries}"] = geomean(r[f"ipc_{entries}"] for r in rows)
        avg[f"perf_{entries}"] = geomean(r[f"perf_{entries}"] for r in rows)
    rows.append(avg)
    return rows


def main(ctx: ExperimentContext = None) -> List[dict]:
    ctx = ctx or ExperimentContext()
    rows = run(ctx)
    cols = (["benchmark"]
            + [f"ipc_{e}" for e, _ in IW_POINTS]
            + [f"perf_{e}" for e, _ in IW_POINTS])
    print_table(
        f"IW sensitivity at {_NODE_UM}um: IPC and clock-adjusted "
        "performance (128-entry clock = 1.0)",
        rows, cols, fmt="{:>11}")
    return rows


if __name__ == "__main__":
    main()
