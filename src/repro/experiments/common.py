"""Shared experiment plumbing: cached runs, normalization, table printing.

``ExperimentContext`` is a thin experiment-facing veneer over the
:class:`repro.Session` front door: every ``baseline()``/``flywheel()``
call is materialized as a :class:`~repro.session.MachineSpec` and
executed through the session, memoized under its content hash. That
keying covers the *entire* run configuration — benchmark, clock plan,
core/flywheel config overrides, seed, budgets and memory scale — so two
calls that differ only in ``config=``/``fly=`` can never alias.

Attach a :class:`~repro.campaign.store.ResultStore` (or pass a
ready-made :class:`~repro.session.Session`) to make the cache
persistent across invocations, and use :meth:`ExperimentContext.warm`
to fan a job list out over worker processes before the (serial)
experiment code reads the results back.
"""

from __future__ import annotations

import math
from typing import Iterable, List, Optional, Tuple

from repro.campaign.executor import CampaignReport, ProgressFn
from repro.campaign.store import ResultStore
from repro.core.config import ClockPlan, CoreConfig, FlywheelConfig
from repro.core.sim import (
    KIND_BASELINE,
    KIND_FLYWHEEL,
    KIND_PIPELINED_WAKEUP,
    SimResult,
)
from repro.errors import ConfigError
from repro.session import MachineSpec, Session, SpecLike
from repro.workloads.profiles import SPEC_NAMES

#: Default measurement budgets. The paper fast-forwards 500M instructions
#: and measures 100M; a pure-Python simulator scales both down ~3000x,
#: which is enough for the normalized ratios these experiments report.
DEFAULT_INSTRUCTIONS = 30_000
DEFAULT_WARMUP = 60_000


class ExperimentContext:
    """Session + budgets shared by all experiments in one invocation.

    ``seed`` applies to every run (None = each benchmark's stable default
    seed); ``store`` adds a persistent second cache level; ``executed``
    counts simulations the underlying session actually ran, so tests can
    verify a warmed context performs zero new work. Pass ``session`` to
    share one (and its warm cache) across several contexts.
    """

    def __init__(self,
                 instructions: int = DEFAULT_INSTRUCTIONS,
                 warmup: int = DEFAULT_WARMUP,
                 benchmarks: Tuple[str, ...] = SPEC_NAMES,
                 seed: Optional[int] = None,
                 store: Optional[ResultStore] = None,
                 session: Optional[Session] = None):
        self.instructions = instructions
        self.warmup = warmup
        self.benchmarks = benchmarks
        self.seed = seed
        if session is not None and store is not None:
            raise ConfigError(
                "pass either store= or session= to ExperimentContext, "
                "not both (attach the store to the session instead)")
        self.session = session if session is not None else Session(store=store)
        self.store = self.session.store
        # Snapshot so a shared session's earlier work (and this
        # context's own warm() batches) never count as on-demand runs.
        self._executed_before = self.session.executed
        self._warm_executed = 0

    @property
    def executed(self) -> int:
        """Simulations run *on demand* by this context — outside
        :meth:`warm` and after construction.

        Zero after a fully warmed experiment pass; the CLIs report a
        positive value as presets drifting from the experiment code.
        """
        return (self.session.executed - self._executed_before
                - self._warm_executed)

    # ------------------------------------------------------------- runs

    def _spec(self, kind: str, bench: str,
              clock: Optional[ClockPlan] = None,
              config: Optional[CoreConfig] = None,
              fly: Optional[FlywheelConfig] = None,
              mem_scale: float = 1.0) -> MachineSpec:
        return MachineSpec(kind=kind, bench=bench, clock=clock,
                           config=config, fly=fly, seed=self.seed,
                           instructions=self.instructions,
                           warmup=self.warmup, mem_scale=mem_scale)

    def run_spec(self, spec: SpecLike) -> SimResult:
        """Memoized execution: memory cache, then store, then simulate."""
        return self.session.run(spec)

    def baseline(self, bench: str, clock: Optional[ClockPlan] = None,
                 config: Optional[CoreConfig] = None,
                 mem_scale: float = 1.0) -> SimResult:
        return self.run_spec(self._spec(KIND_BASELINE, bench, clock=clock,
                                        config=config, mem_scale=mem_scale))

    def flywheel(self, bench: str, clock: Optional[ClockPlan] = None,
                 fly: Optional[FlywheelConfig] = None,
                 mem_scale: float = 1.0) -> SimResult:
        return self.run_spec(self._spec(KIND_FLYWHEEL, bench, clock=clock,
                                        fly=fly, mem_scale=mem_scale))

    def pipelined_wakeup(self, bench: str,
                         clock: Optional[ClockPlan] = None,
                         config: Optional[CoreConfig] = None,
                         mem_scale: float = 1.0) -> SimResult:
        """The Fig. 2 pipelined Wake-Up/Select machine (its own kind)."""
        return self.run_spec(self._spec(KIND_PIPELINED_WAKEUP, bench,
                                        clock=clock, config=config,
                                        mem_scale=mem_scale))

    def speedup(self, bench: str, clock: ClockPlan,
                fly: Optional[FlywheelConfig] = None) -> float:
        """Baseline time / Flywheel time (>1 means the Flywheel wins)."""
        base = self.baseline(bench, ClockPlan(base_mhz=clock.base_mhz))
        flyr = self.flywheel(bench, clock, fly=fly)
        return base.stats.sim_time_ps / max(1, flyr.stats.sim_time_ps)

    # --------------------------------------------------------- campaigns

    def warm(self, specs: Iterable[SpecLike], jobs: Optional[int] = None,
             timeout_s: Optional[float] = None,
             progress: Optional[ProgressFn] = None) -> CampaignReport:
        """Pre-execute a job list (parallel) into the session's cache.

        ``jobs=None`` defers to the session's configured worker count.
        Experiments run afterwards hit the session's in-memory cache
        instead of simulating; any spec the list missed still runs on
        demand. Specs already in the in-memory cache are skipped
        outright.
        """
        report = self.session.warm(specs, jobs=jobs, timeout_s=timeout_s,
                                   progress=progress)
        self._warm_executed += report.executed
        return report


def geomean(values: Iterable[float]) -> float:
    vals = [v for v in values if v > 0]
    if not vals:
        return 0.0
    return math.exp(sum(math.log(v) for v in vals) / len(vals))


def print_table(title: str, rows: List[dict], columns: List[str],
                fmt: str = "{:>10}") -> None:
    """Print rows as a fixed-width table (the figures' data series)."""
    print(f"\n== {title} ==")
    header = "".join(fmt.format(c[:10]) for c in columns)
    print(header)
    for row in rows:
        line = ""
        for c in columns:
            v = row.get(c, "")
            if isinstance(v, float):
                line += fmt.format(f"{v:.3f}")
            else:
                line += fmt.format(str(v))
        print(line)
