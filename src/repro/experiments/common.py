"""Shared experiment plumbing: cached runs, normalization, table printing.

``ExperimentContext`` executes on top of the campaign engine: every
``baseline()``/``flywheel()`` call is materialized as a
:class:`~repro.campaign.spec.RunSpec` and memoized under its content
hash. That keying covers the *entire* run configuration — benchmark,
clock plan, core/flywheel config overrides, seed, budgets and memory
scale — so two calls that differ only in ``config=``/``fly=`` can never
alias (the old ``(kind, bench, clock, tag)`` key silently returned stale
results for exactly that case, and its ``tag`` parameter is gone).

Attach a :class:`~repro.campaign.store.ResultStore` to make the cache
persistent across invocations, and use :meth:`ExperimentContext.warm`
to fan a job list out over worker processes before the (serial)
experiment code reads the results back.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from repro.campaign.executor import CampaignReport, ProgressFn, run_campaign
from repro.campaign.spec import RunSpec
from repro.campaign.store import ResultStore
from repro.core.config import ClockPlan, CoreConfig, FlywheelConfig
from repro.core.sim import (
    KIND_BASELINE,
    KIND_FLYWHEEL,
    KIND_PIPELINED_WAKEUP,
    SimResult,
)
from repro.workloads.profiles import SPEC_NAMES

#: Default measurement budgets. The paper fast-forwards 500M instructions
#: and measures 100M; a pure-Python simulator scales both down ~3000x,
#: which is enough for the normalized ratios these experiments report.
DEFAULT_INSTRUCTIONS = 30_000
DEFAULT_WARMUP = 60_000


@dataclass
class ExperimentContext:
    """Run cache + budgets shared by all experiments in one invocation.

    ``seed`` applies to every run (None = each benchmark's stable default
    seed); ``store`` adds a persistent second cache level; ``executed``
    counts simulations this context actually ran, so tests can verify a
    warmed context performs zero new work.
    """

    instructions: int = DEFAULT_INSTRUCTIONS
    warmup: int = DEFAULT_WARMUP
    benchmarks: Tuple[str, ...] = SPEC_NAMES
    seed: Optional[int] = None
    store: Optional[ResultStore] = None
    executed: int = 0
    _cache: Dict[str, SimResult] = field(default_factory=dict)

    # ------------------------------------------------------------- runs

    def _spec(self, kind: str, bench: str,
              clock: Optional[ClockPlan] = None,
              config: Optional[CoreConfig] = None,
              fly: Optional[FlywheelConfig] = None,
              mem_scale: float = 1.0) -> RunSpec:
        return RunSpec(kind=kind, bench=bench, clock=clock, config=config,
                       fly=fly, seed=self.seed,
                       instructions=self.instructions, warmup=self.warmup,
                       mem_scale=mem_scale)

    def run_spec(self, spec: RunSpec) -> SimResult:
        """Memoized execution: memory cache, then store, then simulate."""
        key = spec.cache_key()
        hit = self._cache.get(key)
        if hit is not None:
            return hit
        if self.store is not None:
            stored = self.store.get(key)
            if stored is not None:
                self._cache[key] = stored
                return stored
        result = spec.execute()
        if self.store is not None:
            self.store.put(key, spec, result)
        self._cache[key] = result
        self.executed += 1
        return result

    def baseline(self, bench: str, clock: Optional[ClockPlan] = None,
                 config: Optional[CoreConfig] = None,
                 mem_scale: float = 1.0) -> SimResult:
        return self.run_spec(self._spec(KIND_BASELINE, bench, clock=clock,
                                        config=config, mem_scale=mem_scale))

    def flywheel(self, bench: str, clock: Optional[ClockPlan] = None,
                 fly: Optional[FlywheelConfig] = None,
                 mem_scale: float = 1.0) -> SimResult:
        return self.run_spec(self._spec(KIND_FLYWHEEL, bench, clock=clock,
                                        fly=fly, mem_scale=mem_scale))

    def pipelined_wakeup(self, bench: str,
                         clock: Optional[ClockPlan] = None,
                         config: Optional[CoreConfig] = None,
                         mem_scale: float = 1.0) -> SimResult:
        """The Fig. 2 pipelined Wake-Up/Select machine (its own kind)."""
        return self.run_spec(self._spec(KIND_PIPELINED_WAKEUP, bench,
                                        clock=clock, config=config,
                                        mem_scale=mem_scale))

    def speedup(self, bench: str, clock: ClockPlan,
                fly: Optional[FlywheelConfig] = None) -> float:
        """Baseline time / Flywheel time (>1 means the Flywheel wins)."""
        base = self.baseline(bench, ClockPlan(base_mhz=clock.base_mhz))
        flyr = self.flywheel(bench, clock, fly=fly)
        return base.stats.sim_time_ps / max(1, flyr.stats.sim_time_ps)

    # --------------------------------------------------------- campaigns

    def warm(self, specs: Iterable[RunSpec], jobs: int = 1,
             timeout_s: Optional[float] = None,
             progress: Optional[ProgressFn] = None) -> CampaignReport:
        """Pre-execute a job list (parallel if ``jobs > 1``) into the cache.

        Experiments run afterwards hit the in-memory cache instead of
        simulating; any spec the list missed still runs on demand.
        Specs already in the in-memory cache are skipped outright.
        """
        specs = [s for s in specs if s.cache_key() not in self._cache]
        report = run_campaign(specs, store=self.store, jobs=jobs,
                              timeout_s=timeout_s, progress=progress)
        self._cache.update(report.results)
        return report


def geomean(values: Iterable[float]) -> float:
    vals = [v for v in values if v > 0]
    if not vals:
        return 0.0
    return math.exp(sum(math.log(v) for v in vals) / len(vals))


def print_table(title: str, rows: List[dict], columns: List[str],
                fmt: str = "{:>10}") -> None:
    """Print rows as a fixed-width table (the figures' data series)."""
    print(f"\n== {title} ==")
    header = "".join(fmt.format(c[:10]) for c in columns)
    print(header)
    for row in rows:
        line = ""
        for c in columns:
            v = row.get(c, "")
            if isinstance(v, float):
                line += fmt.format(f"{v:.3f}")
            else:
                line += fmt.format(str(v))
        print(line)
