"""Shared experiment plumbing: cached runs, normalization, table printing."""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from repro.core.config import ClockPlan, CoreConfig, FlywheelConfig
from repro.core.sim import SimResult, run_baseline, run_flywheel
from repro.workloads.profiles import SPEC_NAMES

#: Default measurement budgets. The paper fast-forwards 500M instructions
#: and measures 100M; a pure-Python simulator scales both down ~3000x,
#: which is enough for the normalized ratios these experiments report.
DEFAULT_INSTRUCTIONS = 30_000
DEFAULT_WARMUP = 60_000


@dataclass
class ExperimentContext:
    """Run cache + budgets shared by all experiments in one invocation."""

    instructions: int = DEFAULT_INSTRUCTIONS
    warmup: int = DEFAULT_WARMUP
    benchmarks: Tuple[str, ...] = SPEC_NAMES
    _cache: Dict[tuple, SimResult] = field(default_factory=dict)

    def baseline(self, bench: str, clock: Optional[ClockPlan] = None,
                 config: Optional[CoreConfig] = None,
                 tag: str = "") -> SimResult:
        clock = clock or ClockPlan()
        key = ("base", bench, clock, tag)
        if key not in self._cache:
            self._cache[key] = run_baseline(
                bench, config=config, clock=clock,
                max_instructions=self.instructions, warmup=self.warmup)
        return self._cache[key]

    def flywheel(self, bench: str, clock: Optional[ClockPlan] = None,
                 fly: Optional[FlywheelConfig] = None,
                 tag: str = "") -> SimResult:
        clock = clock or ClockPlan()
        key = ("fly", bench, clock, tag)
        if key not in self._cache:
            self._cache[key] = run_flywheel(
                bench, fly=fly, clock=clock,
                max_instructions=self.instructions, warmup=self.warmup)
        return self._cache[key]

    def speedup(self, bench: str, clock: ClockPlan,
                fly: Optional[FlywheelConfig] = None, tag: str = "") -> float:
        """Baseline time / Flywheel time (>1 means the Flywheel wins)."""
        base = self.baseline(bench, ClockPlan(base_mhz=clock.base_mhz))
        flyr = self.flywheel(bench, clock, fly=fly, tag=tag)
        return base.stats.sim_time_ps / max(1, flyr.stats.sim_time_ps)


def geomean(values: Iterable[float]) -> float:
    vals = [v for v in values if v > 0]
    if not vals:
        return 0.0
    return math.exp(sum(math.log(v) for v in vals) / len(vals))


def print_table(title: str, rows: List[dict], columns: List[str],
                fmt: str = "{:>10}") -> None:
    """Print rows as a fixed-width table (the figures' data series)."""
    print(f"\n== {title} ==")
    header = "".join(fmt.format(c[:10]) for c in columns)
    print(header)
    for row in rows:
        line = ""
        for c in columns:
            v = row.get(c, "")
            if isinstance(v, float):
                line += fmt.format(f"{v:.3f}")
            else:
                line += fmt.format(str(v))
        print(line)
