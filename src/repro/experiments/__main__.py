"""CLI: regenerate any table or figure of the paper.

Usage::

    python -m repro.experiments fig12 [--instructions N] [--warmup N]
    python -m repro.experiments all --jobs 4 --benchmarks gcc,gzip
    python -m repro.experiments all --store ~/.cache/repro-campaign

``--jobs`` fans the experiments' simulations out over worker processes
through the campaign engine before the tables are printed; ``--store``
additionally memoizes every run on disk so repeated invocations are
near-instant. See ``python -m repro.campaign --help`` for managing the
store.
"""

from __future__ import annotations

import argparse
import sys

from repro.campaign.executor import print_progress
from repro.campaign.store import ResultStore
from repro.session import Session
from repro.experiments import fig01_latency, fig02_loops, fig11_same_clock
from repro.experiments import fig12_performance, fig13_energy, fig14_power
from repro.experiments import fig15_technology, residency, table1_freq
from repro.experiments import ablations, dvfs_sweep, mem_sweep, sensitivity
from repro.experiments.common import (
    DEFAULT_INSTRUCTIONS,
    DEFAULT_WARMUP,
    ExperimentContext,
)
from repro.workloads.profiles import SPEC_NAMES, get_profile

EXPERIMENTS = {
    "fig1": fig01_latency,
    "fig2": fig02_loops,
    "table1": table1_freq,
    "fig11": fig11_same_clock,
    "fig12": fig12_performance,
    "fig13": fig13_energy,
    "fig14": fig14_power,
    "fig15": fig15_technology,
    "residency": residency,
    "ablations": ablations,
    "sensitivity": sensitivity,
    "dvfs": dvfs_sweep,
    "mem": mem_sweep,
}

#: Presentation order for ``all``.
ALL_ORDER = ("fig1", "table1", "fig2", "fig11", "residency", "fig12",
             "fig13", "fig14", "fig15", "ablations", "sensitivity",
             "dvfs", "mem")


def parse_benchmarks(arg: str) -> tuple:
    """Validate a comma-separated benchmark list early (clear CLI error)."""
    from repro.errors import WorkloadError

    names = tuple(dict.fromkeys(n.strip() for n in arg.split(",")
                                if n.strip()))
    try:
        for name in names:
            get_profile(name)
    except WorkloadError as exc:
        raise argparse.ArgumentTypeError(str(exc)) from None
    if not names:
        raise argparse.ArgumentTypeError("empty benchmark list")
    return names


def add_run_flags(parser: argparse.ArgumentParser) -> None:
    """Flags shared with ``python -m repro.campaign run``."""
    parser.add_argument("--instructions", type=int,
                        default=DEFAULT_INSTRUCTIONS,
                        help="measured instructions per run")
    parser.add_argument("--warmup", type=int, default=DEFAULT_WARMUP,
                        help="functional warmup instructions per run")
    parser.add_argument("--benchmarks", type=parse_benchmarks,
                        default=SPEC_NAMES, metavar="A,B,...",
                        help="comma-separated benchmark subset "
                             f"(default: {','.join(SPEC_NAMES)})")
    parser.add_argument("--seed", type=int, default=None,
                        help="workload generation seed shared by all runs "
                             "(default: each benchmark's stable seed)")
    parser.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="worker processes for the simulations")
    parser.add_argument("--store", default=None, metavar="DIR",
                        help="persist results in a campaign store at DIR")
    parser.add_argument("--timeout", type=float, default=None, metavar="S",
                        help="per-job timeout in seconds (parallel runs)")


def build_context(args) -> ExperimentContext:
    """One Session per invocation; the experiments share its caches."""
    session = Session(store=ResultStore(args.store) if args.store else None,
                      jobs=args.jobs, timeout_s=args.timeout)
    return ExperimentContext(instructions=args.instructions,
                             warmup=args.warmup,
                             benchmarks=args.benchmarks,
                             seed=args.seed,
                             session=session)


def warm_experiments(ctx: ExperimentContext, names, jobs=1, timeout=None,
                     progress=print_progress):
    """Fan the named experiments' simulations out through the campaign
    engine into ``ctx``'s cache; shared by both CLI entry points."""
    from repro.campaign.presets import experiment_specs

    specs = experiment_specs(names, benchmarks=ctx.benchmarks,
                             instructions=ctx.instructions,
                             warmup=ctx.warmup, seed=ctx.seed)
    return ctx.warm(specs, jobs=jobs, timeout_s=timeout, progress=progress)


def print_experiments(ctx: ExperimentContext, names) -> None:
    for name in names:
        EXPERIMENTS[name].main(ctx)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.experiments",
        description="Regenerate the paper's tables and figures.")
    parser.add_argument("experiment",
                        choices=sorted(EXPERIMENTS) + ["all"],
                        help="which table/figure to regenerate")
    add_run_flags(parser)
    args = parser.parse_args(argv)

    ctx = build_context(args)
    names = list(ALL_ORDER) if args.experiment == "all" else [args.experiment]

    # Any of the campaign-engine features (parallelism, persistence,
    # timeout enforcement) routes the simulations through the engine.
    if args.jobs > 1 or ctx.store is not None or args.timeout is not None:
        from repro.errors import ReproError

        try:
            report = warm_experiments(ctx, names, jobs=args.jobs,
                                      timeout=args.timeout)
        except ReproError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1
        print(f"campaign: {report.summary()}", file=sys.stderr)

    print_experiments(ctx, names)
    return 0


if __name__ == "__main__":
    sys.exit(main())
