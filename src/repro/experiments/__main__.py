"""CLI: regenerate any table or figure of the paper.

Usage::

    python -m repro.experiments fig12 [--instructions N] [--warmup N]
    python -m repro.experiments all
"""

from __future__ import annotations

import argparse
import sys

from repro.experiments import fig01_latency, fig02_loops, fig11_same_clock
from repro.experiments import fig12_performance, fig13_energy, fig14_power
from repro.experiments import fig15_technology, residency, table1_freq
from repro.experiments import ablations, sensitivity
from repro.experiments.common import (
    DEFAULT_INSTRUCTIONS,
    DEFAULT_WARMUP,
    ExperimentContext,
)

EXPERIMENTS = {
    "fig1": fig01_latency,
    "fig2": fig02_loops,
    "table1": table1_freq,
    "fig11": fig11_same_clock,
    "fig12": fig12_performance,
    "fig13": fig13_energy,
    "fig14": fig14_power,
    "fig15": fig15_technology,
    "residency": residency,
    "ablations": ablations,
    "sensitivity": sensitivity,
}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.experiments",
        description="Regenerate the paper's tables and figures.")
    parser.add_argument("experiment",
                        choices=sorted(EXPERIMENTS) + ["all"],
                        help="which table/figure to regenerate")
    parser.add_argument("--instructions", type=int,
                        default=DEFAULT_INSTRUCTIONS,
                        help="measured instructions per run")
    parser.add_argument("--warmup", type=int, default=DEFAULT_WARMUP,
                        help="functional warmup instructions per run")
    args = parser.parse_args(argv)

    ctx = ExperimentContext(instructions=args.instructions,
                            warmup=args.warmup)
    if args.experiment == "all":
        for name in ("fig1", "table1", "fig2", "fig11", "residency",
                     "fig12", "fig13", "fig14", "fig15", "ablations",
                     "sensitivity"):
            EXPERIMENTS[name].main(ctx)
    else:
        EXPERIMENTS[args.experiment].main(ctx)
    return 0


if __name__ == "__main__":
    sys.exit(main())
