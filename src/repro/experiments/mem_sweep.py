"""Memory-system sweep — MSHR budget and prefetching vs IPC.

Not a paper figure: this exercises the axis the paper's memory argument
rests on. DRAM time is fixed in nanoseconds, so every cycle of miss
latency the memory system fails to hide is paid in core cycles — and
paid *proportionally more* by the faster trace-execution clock. The
sweep runs two deliberately memory-bound workloads through a ladder of
:class:`~repro.mem.MemorySpec` points on both the baseline and the
Flywheel:

* ``ideal`` — the golden default: unbounded miss overlap (the
  pre-MemorySpec behaviour, every miss pays only its own latency).
* ``blocking`` — ``mshrs=1``: one outstanding miss; independent misses
  serialize behind each other.
* ``mshr4`` / ``mshr8`` — bounded non-blocking miss handling.
* ``mshr8+nl`` — non-blocking plus a next-line prefetcher.

The shape to expect: ``stream_copy`` (independent strided misses) gains
IPC nearly linearly with MSHR budget and jumps again with the
prefetcher; ``pointer_chase`` (dependent random misses) gains little
from either — its loads serialize on the dependence chain, not the miss
file — which is exactly the MLP-vs-latency distinction a flat blocking
hierarchy cannot express. The ``nonblocking_wins`` column (mshr4 beats
blocking on IPC) is this PR's acceptance gate.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.analysis.report import cache_stats_rows, format_cache_stats
from repro.core.config import ClockPlan
from repro.core.registry import get_kind
from repro.core.sim import KIND_BASELINE, KIND_FLYWHEEL
from repro.experiments.common import ExperimentContext, print_table
from repro.mem import MemorySpec
from repro.session import MachineSpec

#: The memory-bound workloads this sweep measures (its own set — the
#: SPEC-like profiles are cache-resident by design and barely move).
MEM_BENCHMARKS: Tuple[str, ...] = ("pointer_chase", "stream_copy")

#: Machine kinds swept; the Flywheel leg runs the paper's headline
#: clock so the faster back end's inflated DRAM cycles are in play.
KINDS: Tuple[str, ...] = (KIND_BASELINE, KIND_FLYWHEEL)

_FLY_CLOCK = ClockPlan(fe_speedup=1.0, be_speedup=0.5)

#: (label, MemorySpec-or-None) ladder; None is the golden default.
POINTS: Tuple[Tuple[str, object], ...] = (
    ("ideal", None),
    ("blocking", MemorySpec(mshrs=1)),
    ("mshr4", MemorySpec(mshrs=4)),
    ("mshr8", MemorySpec(mshrs=8)),
    ("mshr8+nl", MemorySpec(mshrs=8, prefetch="next_line")),
)


def sweep_specs(instructions: int, warmup: int,
                seed=None) -> List[MachineSpec]:
    """Every (kind, bench, point) spec of the sweep, for warming.

    Takes plain budgets (not a context) so the campaign presets can
    enumerate the exact same grid without building a session.
    """
    return [_spec(kind, bench, mem, instructions, warmup, seed)
            for kind in KINDS
            for bench in MEM_BENCHMARKS
            for _label, mem in POINTS]


def _spec(kind: str, bench: str, mem, instructions: int, warmup: int,
          seed) -> MachineSpec:
    config = None
    if mem is not None:
        config = get_kind(kind).default_config().with_variant(mem=mem)
    clock = _FLY_CLOCK if kind == KIND_FLYWHEEL else None
    return MachineSpec(kind, bench, config=config, clock=clock,
                       seed=seed, instructions=instructions,
                       warmup=warmup)


def run(ctx: ExperimentContext) -> List[Dict]:
    """IPC of every sweep point per (benchmark, kind) row.

    Each row carries ``nonblocking_wins``: True when the ``mshr4``
    point beats ``blocking`` on IPC — the memory-level parallelism the
    blocking hierarchy hides.
    """
    ctx.session.map(sweep_specs(ctx.instructions, ctx.warmup, ctx.seed))
    rows: List[Dict] = []
    for bench in MEM_BENCHMARKS:
        for kind in KINDS:
            row: Dict = {"benchmark": bench, "kind": kind}
            ipcs = {}
            for label, mem in POINTS:
                result = ctx.session.run(
                    _spec(kind, bench, mem, ctx.instructions, ctx.warmup,
                          ctx.seed))
                ipcs[label] = result.stats.ipc
                row[label] = result.stats.ipc
            row["nonblocking_wins"] = ipcs["mshr4"] > ipcs["blocking"]
            rows.append(row)
    return rows


def main(ctx: ExperimentContext = None) -> List[Dict]:
    ctx = ctx or ExperimentContext()
    rows = run(ctx)
    labels = [label for label, _mem in POINTS]
    print_table("Memory-system sweep: IPC per MemorySpec point "
                "(higher is better)",
                rows, ["benchmark", "kind"] + labels, fmt="{:>12}")
    winners = [f"{r['benchmark']}/{r['kind']}" for r in rows
               if r["nonblocking_wins"]]
    if winners:
        print(f"\nnon-blocking (mshr4) beats blocking on IPC for: "
              f"{', '.join(winners)}")
    else:
        print("\nno configuration saw non-blocking beat blocking "
              "(workloads not memory-bound at this budget)")
    # Show one per-level breakdown so the mechanism is visible.
    sample = ctx.session.run(_spec(KIND_BASELINE, "stream_copy",
                                   dict(POINTS)["mshr8+nl"],
                                   ctx.instructions, ctx.warmup, ctx.seed))
    level_rows = [{"level": r["level"], "accesses": r["accesses"],
                   "hit_rate": r["hit_rate"],
                   "prefetch": r.get("prefetches", ""),
                   "writeback": r.get("writebacks", ""),
                   "mshr_occ": r.get("occupancy_avg", ""),
                   "stalls": r.get("stall_cycles", "")}
                  for r in cache_stats_rows(sample.stats)]
    print_table("stream_copy mshr8+nl: per-level memory counters",
                level_rows, ["level", "accesses", "hit_rate", "prefetch",
                             "writeback", "mshr_occ", "stalls"])
    print(f"summary: {format_cache_stats(sample.stats)}")
    return rows


if __name__ == "__main__":
    main()
