"""Fig. 14 — average power of the Flywheel, normalized to the baseline.

Same sweep as Figs. 12/13. The shape: power grows with the front-end
clock (from roughly parity at FE0% to ~+15% at FE100% in the paper), but
far more slowly than performance — the paper's headline being ~54% more
performance for ~8% more power at (FE50%, BE50%).
"""

from __future__ import annotations

from typing import List

from repro.core.config import ClockPlan
from repro.experiments.common import ExperimentContext, geomean, print_table
from repro.experiments.fig12_performance import SWEEP
from repro.power import TECH_130, energy_report


def run(ctx: ExperimentContext, tech=TECH_130) -> List[dict]:
    rows = []
    for bench in ctx.benchmarks:
        base = energy_report(ctx.baseline(bench, ClockPlan()), tech)
        row = {"benchmark": bench}
        for label, clock in SWEEP:
            fly = energy_report(ctx.flywheel(bench, clock), tech)
            row[label] = fly.power_w / base.power_w
        rows.append(row)
    avg = {"benchmark": "geomean"}
    for label, _clock in SWEEP:
        avg[label] = geomean(r[label] for r in rows)
    rows.append(avg)
    return rows


def main(ctx: ExperimentContext = None) -> List[dict]:
    ctx = ctx or ExperimentContext()
    rows = run(ctx)
    print_table("Fig. 14: normalized power (130nm) vs clock speedups",
                rows, ["benchmark"] + [l for l, _ in SWEEP], fmt="{:>14}")
    return rows


if __name__ == "__main__":
    main()
