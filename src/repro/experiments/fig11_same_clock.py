"""Fig. 11 — Flywheel at the baseline clock speed.

Two configurations, both normalized to the fully synchronous baseline's
execution time (higher = faster):

* **Register Allocation** — the dual-clock issue window plus the new
  pool-based register allocation, *without* the Execution Cache. The
  paper's shape: the ~3-stage-longer pipeline and the limited rename
  capacity cost >10% on gzip/vpr/parser and little elsewhere.
* **Flywheel** — the full design (EC enabled) still at equal clocks; the
  shorter replay path recovers the loss (paper: +5% average).
"""

from __future__ import annotations

from dataclasses import replace
from typing import List

from repro.core.config import ClockPlan, FlywheelConfig
from repro.experiments.common import ExperimentContext, geomean, print_table

_EQUAL = ClockPlan(fe_speedup=0.0, be_speedup=0.0)


def run(ctx: ExperimentContext) -> List[dict]:
    rows = []
    no_ec = FlywheelConfig(ec_enabled=False)
    for bench in ctx.benchmarks:
        base = ctx.baseline(bench, ClockPlan())
        ra = ctx.flywheel(bench, _EQUAL, fly=no_ec)
        fw = ctx.flywheel(bench, _EQUAL)
        rows.append({
            "benchmark": bench,
            "register_allocation": base.stats.sim_time_ps / max(1, ra.stats.sim_time_ps),
            "flywheel": base.stats.sim_time_ps / max(1, fw.stats.sim_time_ps),
        })
    rows.append({
        "benchmark": "geomean",
        "register_allocation": geomean(r["register_allocation"] for r in rows),
        "flywheel": geomean(r["flywheel"] for r in rows),
    })
    return rows


def main(ctx: ExperimentContext = None) -> List[dict]:
    ctx = ctx or ExperimentContext()
    rows = run(ctx)
    print_table("Fig. 11: normalized performance at the baseline clock",
                rows, ["benchmark", "register_allocation", "flywheel"],
                fmt="{:>22}")
    from repro.analysis import bar_chart
    print()
    print(bar_chart({r["benchmark"]: r["flywheel"] for r in rows},
                    baseline=1.0, title="Flywheel vs baseline (| = 1.0)"))
    return rows


if __name__ == "__main__":
    main()
