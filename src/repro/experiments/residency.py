"""Section 5 statistic — time spent on the alternative (EC) path.

The paper reports the Flywheel fetching from the Execution Cache 88% of
the time on average, above 90% on most benchmarks, and below 60% on
vortex (the huge-code outlier).
"""

from __future__ import annotations

from typing import List

from repro.core.config import ClockPlan
from repro.experiments.common import ExperimentContext, print_table

_EQUAL = ClockPlan(fe_speedup=0.0, be_speedup=0.0)


def run(ctx: ExperimentContext) -> List[dict]:
    rows = []
    for bench in ctx.benchmarks:
        res = ctx.flywheel(bench, _EQUAL)
        stats = res.stats
        rows.append({
            "benchmark": bench,
            "ec_residency_%": 100.0 * stats.ec_residency,
            "traces_built": stats.traces_built,
            "trace_hits": stats.trace_hits,
            "mispredict_%": 100.0 * stats.mispredict_rate,
        })
    avg = sum(r["ec_residency_%"] for r in rows) / len(rows)
    rows.append({"benchmark": "average", "ec_residency_%": avg,
                 "traces_built": "", "trace_hits": "", "mispredict_%": ""})
    return rows


def main(ctx: ExperimentContext = None) -> List[dict]:
    ctx = ctx or ExperimentContext()
    rows = run(ctx)
    print_table("EC-path residency (Section 5; paper avg 88%, vortex <60%)",
                rows, ["benchmark", "ec_residency_%", "traces_built",
                       "trace_hits", "mispredict_%"], fmt="{:>16}")
    return rows


if __name__ == "__main__":
    main()
