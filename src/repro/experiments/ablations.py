"""Ablation studies for the Flywheel's individual design choices.

The paper motivates several mechanisms qualitatively; these experiments
quantify each one by knocking it out:

* **SRT** (Section 3.5) — without the Speculative Remapping Table every
  trace change waits for full retirement before the FRT checkpoint.
* **Delay network vs duplicated tag match** (Section 3.2) — the cheap
  alternative to duplicated match lines loses back-to-back scheduling for
  instructions entering the dual-clock window.
* **Register redistribution** (Section 3.5, [12]) — without it, hot
  architected registers are stuck with default-sized pools.
* **EC capacity** (Table 2 uses 128K) — halving/quartering the Execution
  Cache shows the trace-locality pressure of big-footprint workloads.
* **EC block size** (Section 3.3 settles on 8-instruction blocks) —
  smaller blocks waste bandwidth on end-of-block fragmentation; larger
  ones waste storage.
"""

from __future__ import annotations

from dataclasses import replace
from typing import List

from repro.core.config import ClockPlan, FlywheelConfig
from repro.experiments.common import ExperimentContext, geomean, print_table

#: Clock plan used for all ablations (the paper's headline point).
_CLOCK = ClockPlan(fe_speedup=0.5, be_speedup=0.5)

ABLATIONS = (
    ("full", FlywheelConfig()),
    ("no_srt", FlywheelConfig(use_srt=False)),
    ("delay_network", FlywheelConfig(delay_network=True)),
    ("no_redistribution", FlywheelConfig(redistribution_enabled=False)),
    ("ec_64k", FlywheelConfig(ec_kb=64)),
    ("ec_4k", FlywheelConfig(ec_kb=4)),
    ("block_4", FlywheelConfig(ec_block_slots=4)),
    ("block_16", FlywheelConfig(ec_block_slots=16)),
)


def run(ctx: ExperimentContext) -> List[dict]:
    rows = []
    for bench in ctx.benchmarks:
        base = ctx.baseline(bench, ClockPlan())
        row = {"benchmark": bench}
        for label, fly in ABLATIONS:
            res = ctx.flywheel(bench, _CLOCK, fly=fly)
            row[label] = base.stats.sim_time_ps / max(1, res.stats.sim_time_ps)
        rows.append(row)
    avg = {"benchmark": "geomean"}
    for label, _fly in ABLATIONS:
        avg[label] = geomean(r[label] for r in rows)
    rows.append(avg)
    return rows


def main(ctx: ExperimentContext = None) -> List[dict]:
    ctx = ctx or ExperimentContext()
    rows = run(ctx)
    print_table(
        "Ablations: normalized performance at (FE50%, BE50%)",
        rows, ["benchmark"] + [l for l, _ in ABLATIONS], fmt="{:>14}")
    return rows


if __name__ == "__main__":
    main()
