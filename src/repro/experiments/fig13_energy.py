"""Fig. 13 — total energy of the Flywheel, normalized to the baseline.

Uses the same clock sweep as Fig. 12 at the 130nm node. The shape: the
Flywheel burns less total energy (~0.7x in the paper) because the whole
front-end — including the issue window — is clock-gated for the large
fraction of time spent on the Execution Cache path; benchmarks with low
EC residency (vortex) save the least.
"""

from __future__ import annotations

from typing import List

from repro.core.config import ClockPlan
from repro.experiments.common import ExperimentContext, geomean, print_table
from repro.experiments.fig12_performance import SWEEP
from repro.power import TECH_130, energy_report


def run(ctx: ExperimentContext, tech=TECH_130) -> List[dict]:
    rows = []
    for bench in ctx.benchmarks:
        base = energy_report(ctx.baseline(bench, ClockPlan()), tech)
        row = {"benchmark": bench}
        for label, clock in SWEEP:
            fly = energy_report(ctx.flywheel(bench, clock), tech)
            row[label] = fly.total_pj / base.total_pj
        rows.append(row)
    avg = {"benchmark": "geomean"}
    for label, _clock in SWEEP:
        avg[label] = geomean(r[label] for r in rows)
    rows.append(avg)
    return rows


def main(ctx: ExperimentContext = None) -> List[dict]:
    ctx = ctx or ExperimentContext()
    rows = run(ctx)
    print_table("Fig. 13: normalized energy (130nm) vs clock speedups",
                rows, ["benchmark"] + [l for l, _ in SWEEP], fmt="{:>14}")
    return rows


if __name__ == "__main__":
    main()
