"""Fig. 2 — IPC cost of stretching the two critical pipeline loops.

Adds one stage to the front-end (Fetch/Mispredict loop) versus pipelining
the Wake-Up/Select loop of the issue window, on the baseline core. The
paper's shape: the extra front-end stage costs <3% on average, while
losing back-to-back scheduling costs ~30% on average and >40% on the
worst benchmarks.
"""

from __future__ import annotations

from typing import List

from repro.core.config import CoreConfig
from repro.experiments.common import ExperimentContext, geomean, print_table


def run(ctx: ExperimentContext) -> List[dict]:
    rows = []
    for bench in ctx.benchmarks:
        base = ctx.baseline(bench)
        fe = ctx.baseline(
            bench, config=CoreConfig(extra_frontend_stages=1))
        ws = ctx.pipelined_wakeup(bench)
        base_ipc = base.stats.ipc
        rows.append({
            "benchmark": bench,
            "fetch_mispredict_%": 100.0 * (1.0 - fe.stats.ipc / base_ipc),
            "wakeup_select_%": 100.0 * (1.0 - ws.stats.ipc / base_ipc),
        })
    rows.append({
        "benchmark": "average",
        "fetch_mispredict_%": sum(r["fetch_mispredict_%"] for r in rows) / len(rows),
        "wakeup_select_%": sum(r["wakeup_select_%"] for r in rows) / len(rows),
    })
    return rows


def main(ctx: ExperimentContext = None) -> List[dict]:
    ctx = ctx or ExperimentContext()
    rows = run(ctx)
    print_table("Fig. 2: IPC degradation (%) from pipelining each loop",
                rows, ["benchmark", "fetch_mispredict_%", "wakeup_select_%"],
                fmt="{:>20}")
    return rows


if __name__ == "__main__":
    main()
