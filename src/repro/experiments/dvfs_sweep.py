"""DVFS sweep — adaptive clock governors vs static clock plans (EDP).

Not a paper figure: this explores the axis the paper leaves open. The
machine derives both back-end clocks from one fast master clock, so
nothing stops it from *re-dividing* that master at runtime. The sweep
pits the static ``ClockPlan`` points (the paper's design space) against
the adaptive governors of :mod:`repro.dvfs` running on the same Flywheel
hardware, and scores every point on energy, delay and the energy-delay
product at the 130nm node (where the paper reports power).

The shape to expect: throttling the back end during low-IPC intervals
(mispredict drains, DRAM-bound stretches, trace-creation refills) cuts
clock-grid cycles — the dominant dynamic term — while barely stretching
wall-clock time, so a reactive governor lands below every fixed-frequency
point on EDP for phase-y workloads; uniformly compute-bound workloads
pin the ladder at nominal and tie the static plan instead.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, List, Tuple

from repro.analysis.report import format_freq_trace
from repro.core.config import ClockPlan
from repro.dvfs import GovernorConfig
from repro.experiments.common import ExperimentContext, print_table
from repro.power import TECH_130, energy_report
from repro.session import MachineSpec

#: The nominal plan every governor modulates: the paper's headline
#: configuration (front end +100%, trace-execution back end +50%).
NOMINAL = ClockPlan(fe_speedup=1.0, be_speedup=0.5)

#: Static comparison points — fixed divisor choices of the same master.
STATIC_POINTS: Tuple[Tuple[str, ClockPlan], ...] = (
    ("be+0%", ClockPlan(fe_speedup=1.0, be_speedup=0.0)),
    ("be+20%", ClockPlan(fe_speedup=1.0, be_speedup=0.2)),
    ("be+50%", NOMINAL),
)

#: Adaptive governors swept over the nominal plan.
SWEEP_GOVERNORS: Tuple[str, ...] = ("occupancy", "ipc_ladder",
                                    "energy_budget")

#: Decision interval in back-end cycles. Short enough that the scaled-down
#: runs (30k instructions) see dozens of decisions, as the paper's scaled
#: redistribution interval does for the same reason.
GOV_INTERVAL = 500

#: Fast-clock ladder spanning the static axis: on the nominal be+50%
#: plan, scale 0.667 is the be+0% execute clock and 1.0 is be+50%, with
#: finer rungs in between than the static grid samples.
GOV_STEPS = (0.667, 0.733, 0.8, 0.867, 0.933, 1.0)


def governor_points(names: Tuple[str, ...] = SWEEP_GOVERNORS,
                    ) -> List[Tuple[str, ClockPlan]]:
    """(label, plan) for each named governor on the nominal plan.

    Accepts any :data:`repro.dvfs.GOVERNOR_NAMES` entry — including
    ``static``, whose curve (hook attached, clock pinned) is the
    be+50% plan and useful as a hook-overhead control.
    """
    return [(f"gov:{name}",
             replace(NOMINAL,
                     governor=GovernorConfig(name=name,
                                             interval=GOV_INTERVAL,
                                             scale_steps=GOV_STEPS)))
            for name in names]


def sweep_points() -> List[Tuple[str, ClockPlan]]:
    """All sweep points, static first (the first is the EDP denominator)."""
    return list(STATIC_POINTS) + governor_points()


def _spec(ctx: ExperimentContext, bench: str, clock: ClockPlan) -> MachineSpec:
    """One sweep point as a declarative spec (the session dedups these)."""
    return MachineSpec("flywheel", bench, clock=clock, seed=ctx.seed,
                       instructions=ctx.instructions, warmup=ctx.warmup)


def warm_sweep(ctx: ExperimentContext) -> None:
    """Batch the whole sweep through ``Session.map`` before the serial
    table code reads results back (parallel when the session has
    ``jobs > 1``; a no-op on a warmed store)."""
    ctx.session.map([_spec(ctx, bench, clock)
                     for bench in ctx.benchmarks
                     for _label, clock in sweep_points()])


def evaluate(ctx: ExperimentContext, bench: str,
             tech=TECH_130) -> List[Dict]:
    """Absolute time/energy/EDP for every sweep point on one benchmark."""
    points = []
    for label, clock in sweep_points():
        result = ctx.session.run(_spec(ctx, bench, clock))
        rep = energy_report(result, tech)
        points.append({
            "label": label,
            "adaptive": clock.governor is not None,
            "time_s": rep.time_s,
            "energy_j": rep.total_j,
            "edp": rep.total_j * rep.time_s,
            "power_w": rep.power_w,
            "ipc": result.stats.ipc,
            "retunes": result.stats.dvfs_retunes,
            "stats": result.stats,
        })
    return points


def run(ctx: ExperimentContext, tech=TECH_130) -> List[dict]:
    """Per-benchmark EDP of every point, normalized to the be+0% plan.

    Each row also carries ``best`` (the lowest-EDP point's label) and
    ``adaptive_wins`` (True when some governor beats *every* static
    point on EDP for that benchmark).
    """
    warm_sweep(ctx)
    rows = []
    for bench in ctx.benchmarks:
        points = evaluate(ctx, bench, tech)
        base_edp = points[0]["edp"]
        row = {"benchmark": bench}
        for p in points:
            row[p["label"]] = p["edp"] / base_edp if base_edp else 0.0
        best = min(points, key=lambda p: p["edp"])
        best_static = min(p["edp"] for p in points if not p["adaptive"])
        best_adaptive = min((p["edp"] for p in points if p["adaptive"]),
                            default=float("inf"))
        row["best"] = best["label"]
        row["adaptive_wins"] = best_adaptive < best_static
        rows.append(row)
    return rows


def main(ctx: ExperimentContext = None) -> List[dict]:
    ctx = ctx or ExperimentContext()
    rows = run(ctx)
    labels = [label for label, _clock in sweep_points()]
    print_table("DVFS sweep: EDP normalized to the be+0% static plan "
                "(130nm, lower is better)",
                rows, ["benchmark"] + labels + ["best"], fmt="{:>16}")
    winners = [r["benchmark"] for r in rows if r["adaptive_wins"]]
    if winners:
        print(f"\nadaptive governor beats every static plan on EDP for: "
              f"{', '.join(winners)}")
    else:
        print("\nno adaptive governor beat the static plans "
              "(workloads too uniform at this budget)")
    # Show one frequency trajectory so the mechanism is visible.
    sample_bench = winners[0] if winners else rows[0]["benchmark"]
    for p in evaluate(ctx, sample_bench):
        if p["adaptive"]:
            print(f"{sample_bench} {p['label']}: "
                  f"{format_freq_trace(p['stats'])}")
    return rows


if __name__ == "__main__":
    main()
