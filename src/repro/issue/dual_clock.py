"""Dual Clock Issue Window (Section 3.2 of the paper).

Instructions are written into free entries synchronously with the producer
(front-end) clock and become visible to the Wake-Up/Select circuitry after
a synchronization delay in consumer (back-end) cycles. Because the RAT is
read in the front-end domain while tag broadcasts happen in the back-end
domain, a tag can arrive after the RAT read but before the entry is seen by
Wake-Up — the race of Fig. 4.

Two hardware solutions exist (Section 3.2); both are modelled:

* **Duplicated tag matching** (default): wake-up also matches tags
  broadcast in the previous ``tag_window`` back-end cycles, preserving
  back-to-back scheduling at the cost of extra match lines (the power
  model charges ``1 + tag_window`` match energy per broadcast).
* **Delay network** (``delay_network=True``): entries only become
  selectable one extra back-end cycle after insertion, losing exactly the
  back-to-back capability the paper set out to preserve.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Tuple

from repro.isa import DynInstr
from repro.issue.window import IssueWindow, IWEntry


class DualClockIssueWindow(IssueWindow):
    """Issue window bridging the front-end and back-end clock domains."""

    def __init__(self, entries: int, issue_width: int,
                 wakeup_extra_delay: int = 0, tag_window: int = 2,
                 delay_network: bool = False):
        super().__init__(entries, issue_width, wakeup_extra_delay)
        self.tag_window = tag_window
        self.delay_network = delay_network
        #: broadcasts kept for the duplicated match, as (be_cycle, tag)
        self._recent: Deque[Tuple[int, int]] = deque()
        #: count of dependences that the duplicated window saved from the
        #: race (they became ready between RAT read and insertion)
        self.caught_by_dup_match = 0

    def broadcast(self, tag: int, cycle: int) -> None:
        super().broadcast(tag, cycle)
        self._recent.append((cycle, tag))
        horizon = cycle - self.tag_window
        while self._recent and self._recent[0][0] < horizon:
            self._recent.popleft()

    def broadcast_many(self, tags, cycle: int) -> None:
        super().broadcast_many(tags, cycle)
        recent = self._recent
        for tag in tags:
            recent.append((cycle, tag))
        horizon = cycle - self.tag_window
        while recent and recent[0][0] < horizon:
            recent.popleft()

    def insert_synced(self, dyn: DynInstr, ready: Callable[[int], bool],
                      earliest: int, raced_tags: int = 0) -> IWEntry:
        """Insert an instruction arriving through the sync FIFO.

        ``raced_tags`` is the number of this instruction's source tags that
        became ready between its RAT read (front-end time) and now; with
        duplicated tag matching they are caught (no penalty), with the
        delay network every insertion pays one extra cycle instead.
        """
        if self.delay_network:
            earliest += 1
        else:
            self.caught_by_dup_match += raced_tags
        return self.insert(dyn, ready, earliest)
