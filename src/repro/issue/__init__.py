"""Issue window substrates: unified wakeup/select and the dual-clock variant."""

from repro.issue.window import IssueWindow, IWEntry
from repro.issue.dual_clock import DualClockIssueWindow

__all__ = ["IssueWindow", "IWEntry", "DualClockIssueWindow"]
