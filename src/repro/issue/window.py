"""Monolithic issue window with single-cycle Wake-Up/Select.

The window holds dispatched instructions until their source operands are
ready and a functional unit is available. Wake-up is modelled with a
waiters index (tag -> entries), equivalent in outcome to the CAM broadcast
of a real window; selection is oldest-first up to the issue width, subject
to functional-unit availability.

Selection is driven by two small heaps instead of a scan over every
occupied slot: ``_future`` holds operand-ready entries whose earliest
selection cycle has not arrived, ``_eligible`` holds entries selectable
now, both ordered so the oldest entry always surfaces first. A 128-entry
window at high occupancy used to cost ~100 slot visits per select; the
heaps visit only the handful of entries that can actually issue, with
identical selection order (age priority among ready entries).

``wakeup_extra_delay`` models the paper's Fig. 2 experiment: pipelining the
Wake-Up/Select loop adds one cycle between a producer's tag broadcast and
the earliest cycle a dependent can be selected, destroying back-to-back
scheduling.
"""

from __future__ import annotations

from heapq import heappop, heappush
from typing import Callable, Dict, List

from repro.errors import SimulationError
from repro.isa import DynInstr
from repro.isa.opclasses import (
    EXEC_LATENCY_TAB,
    FU_KIND_TAB,
    UNPIPELINED_TAB,
    OpClass,
)


class IWEntry:
    """One issue-window slot."""

    __slots__ = ("dyn", "not_ready", "earliest", "alive", "order")

    def __init__(self, dyn: DynInstr, not_ready: int, earliest: int,
                 order: int):
        self.dyn = dyn
        self.not_ready = not_ready
        self.earliest = earliest
        self.alive = True
        self.order = order          # age stamp: smaller = older


class IssueWindow:
    """Unified window shared by integer, FP and memory instructions."""

    def __init__(self, entries: int, issue_width: int,
                 wakeup_extra_delay: int = 0):
        self.capacity = entries
        self.issue_width = issue_width
        self.wakeup_extra_delay = wakeup_extra_delay
        self._waiters: Dict[int, List[IWEntry]] = {}
        #: (earliest, order, entry): operands ready, selectable later
        self._future: List[tuple] = []
        #: (order, entry): selectable now (earliest already passed)
        self._eligible: List[tuple] = []
        self._order = 0
        self._count = 0
        self.broadcasts = 0       # tag broadcasts (power events)
        self.writes = 0           # window writes (dispatches)

    def __len__(self) -> int:
        return self._count

    @property
    def free_slots(self) -> int:
        return self.capacity - self._count

    def insert(self, dyn: DynInstr, ready: Callable[[int], bool],
               earliest: int) -> IWEntry:
        """Dispatch one instruction into the window.

        ``ready(tag)`` consults the core's scoreboard at insertion time
        (the cores pass the scoreboard bytearray's ``__getitem__``);
        unready sources register the entry with the waiters index.
        """
        if self._count >= self.capacity:
            raise SimulationError("issue window overflow")
        not_ready = 0
        entry = IWEntry(dyn, 0, earliest, self._order)
        self._order += 1
        # Stores do not wait for operands: address generation uses ready
        # base registers and the data drains from the store queue at
        # commit, so they never gate dependent scheduling.
        if dyn.op is not OpClass.STORE:
            for tag in dyn.src_tags:
                if tag >= 0 and not ready(tag):
                    not_ready += 1
                    self._waiters.setdefault(tag, []).append(entry)
        entry.not_ready = not_ready
        if not_ready == 0:
            heappush(self._future, (earliest, entry.order, entry))
        self._count += 1
        self.writes += 1
        return entry

    def broadcast(self, tag: int, cycle: int) -> None:
        """Producer result tag broadcast: wake dependents.

        Dependents become selectable at ``cycle + wakeup_extra_delay``.
        """
        self.broadcasts += 1
        waiters = self._waiters.pop(tag, None)
        if not waiters:
            return
        ready_at = cycle + self.wakeup_extra_delay
        for entry in waiters:
            if entry.alive:
                entry.not_ready -= 1
                if ready_at > entry.earliest:
                    entry.earliest = ready_at
                if entry.not_ready == 0:
                    heappush(self._future,
                             (entry.earliest, entry.order, entry))
                elif entry.not_ready < 0:
                    raise SimulationError("negative wait count in issue window")

    def broadcast_many(self, tags, cycle: int) -> None:
        """Broadcast a full writeback group (one call per cycle).

        Equivalent to calling :meth:`broadcast` per tag, in order.
        """
        self.broadcasts += len(tags)
        waiters_map = self._waiters
        future = self._future
        ready_at = cycle + self.wakeup_extra_delay
        for tag in tags:
            waiters = waiters_map.pop(tag, None)
            if not waiters:
                continue
            for entry in waiters:
                if entry.alive:
                    entry.not_ready -= 1
                    if ready_at > entry.earliest:
                        entry.earliest = ready_at
                    if entry.not_ready == 0:
                        heappush(future,
                                 (entry.earliest, entry.order, entry))
                    elif entry.not_ready < 0:
                        raise SimulationError(
                            "negative wait count in issue window")

    def select(self, cycle: int, fu_pool) -> List[DynInstr]:
        """Oldest-first selection of up to ``issue_width`` ready entries."""
        future, eligible = self._future, self._eligible
        while future and future[0][0] <= cycle:
            _earliest, order, entry = heappop(future)
            heappush(eligible, (order, entry))
        if not eligible:
            return []
        selected: List[DynInstr] = []
        blocked: List[tuple] = []
        width = self.issue_width
        # Inline FuPool.try_issue: this loop visits every issue candidate
        # every cycle, and the pool's flat arrays are stable objects.
        counts = fu_pool._counts
        used = fu_pool._used
        reserved = fu_pool._reserved
        while eligible:
            item = eligible[0]
            entry = item[1]
            if not entry.alive:
                heappop(eligible)
                continue
            if len(selected) >= width:
                break
            heappop(eligible)
            op = entry.dyn.op
            kind = FU_KIND_TAB[op]
            if counts[kind] - used[kind] - len(reserved[kind]) > 0:
                used[kind] += 1
                fu_pool._dirty = True
                if UNPIPELINED_TAB[op]:
                    reserved[kind].append(cycle + EXEC_LATENCY_TAB[op])
                    fu_pool._n_reserved += 1
                fu_pool.ops += 1
                entry.alive = False
                self._count -= 1
                selected.append(entry.dyn)
            else:
                blocked.append(item)    # no unit this cycle; stays eligible
        for item in blocked:
            heappush(eligible, item)
        return selected

    def flush(self) -> None:
        """Drop all entries (used on mode switches / full squash)."""
        for _order, entry in self._eligible:
            entry.alive = False
        for _earliest, _order, entry in self._future:
            entry.alive = False
        for waiters in self._waiters.values():
            for entry in waiters:
                entry.alive = False
        self._eligible.clear()
        self._future.clear()
        self._waiters.clear()
        self._count = 0
