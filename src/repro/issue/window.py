"""Monolithic issue window with single-cycle Wake-Up/Select.

The window holds dispatched instructions until their source operands are
ready and a functional unit is available. Wake-up is modelled with a
waiters index (tag -> entries), equivalent in outcome to the CAM broadcast
of a real window; selection is oldest-first up to the issue width, subject
to functional-unit availability.

``wakeup_extra_delay`` models the paper's Fig. 2 experiment: pipelining the
Wake-Up/Select loop adds one cycle between a producer's tag broadcast and
the earliest cycle a dependent can be selected, destroying back-to-back
scheduling.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.errors import SimulationError
from repro.isa import DynInstr
from repro.isa.opclasses import EXEC_LATENCY, FU_KIND, UNPIPELINED, OpClass


class IWEntry:
    """One issue-window slot."""

    __slots__ = ("dyn", "not_ready", "earliest", "alive")

    def __init__(self, dyn: DynInstr, not_ready: int, earliest: int):
        self.dyn = dyn
        self.not_ready = not_ready
        self.earliest = earliest
        self.alive = True


class IssueWindow:
    """Unified window shared by integer, FP and memory instructions."""

    def __init__(self, entries: int, issue_width: int,
                 wakeup_extra_delay: int = 0):
        self.capacity = entries
        self.issue_width = issue_width
        self.wakeup_extra_delay = wakeup_extra_delay
        self._entries: List[IWEntry] = []
        self._waiters: Dict[int, List[IWEntry]] = {}
        self._count = 0
        self.broadcasts = 0       # tag broadcasts (power events)
        self.writes = 0           # window writes (dispatches)

    def __len__(self) -> int:
        return self._count

    @property
    def free_slots(self) -> int:
        return self.capacity - self._count

    def insert(self, dyn: DynInstr, ready: Callable[[int], bool],
               earliest: int) -> IWEntry:
        """Dispatch one instruction into the window.

        ``ready(tag)`` consults the core's scoreboard at insertion time;
        unready sources register the entry with the waiters index.
        """
        if self._count >= self.capacity:
            raise SimulationError("issue window overflow")
        not_ready = 0
        entry = IWEntry(dyn, 0, earliest)
        # Stores do not wait for operands: address generation uses ready
        # base registers and the data drains from the store queue at
        # commit, so they never gate dependent scheduling.
        if dyn.op is not OpClass.STORE:
            for tag in dyn.src_tags:
                if tag >= 0 and not ready(tag):
                    not_ready += 1
                    self._waiters.setdefault(tag, []).append(entry)
        entry.not_ready = not_ready
        self._entries.append(entry)
        self._count += 1
        self.writes += 1
        return entry

    def broadcast(self, tag: int, cycle: int) -> None:
        """Producer result tag broadcast: wake dependents.

        Dependents become selectable at ``cycle + wakeup_extra_delay``.
        """
        self.broadcasts += 1
        waiters = self._waiters.pop(tag, None)
        if not waiters:
            return
        ready_at = cycle + self.wakeup_extra_delay
        for entry in waiters:
            if entry.alive:
                entry.not_ready -= 1
                if ready_at > entry.earliest:
                    entry.earliest = ready_at
                if entry.not_ready < 0:
                    raise SimulationError("negative wait count in issue window")

    def select(self, cycle: int, fu_pool) -> List[DynInstr]:
        """Oldest-first selection of up to ``issue_width`` ready entries."""
        selected: List[DynInstr] = []
        compact_needed = False
        for entry in self._entries:
            if not entry.alive:
                compact_needed = True
                continue
            if len(selected) >= self.issue_width:
                break
            if entry.not_ready or entry.earliest > cycle:
                continue
            op = entry.dyn.op
            if not fu_pool.try_issue(FU_KIND[op], cycle,
                                     EXEC_LATENCY[op],
                                     unpipelined=op in UNPIPELINED):
                continue
            entry.alive = False
            compact_needed = True
            self._count -= 1
            selected.append(entry.dyn)
        if compact_needed and len(self._entries) > 2 * max(1, self._count):
            self._entries = [e for e in self._entries if e.alive]
        return selected

    def flush(self) -> None:
        """Drop all entries (used on mode switches / full squash)."""
        for entry in self._entries:
            entry.alive = False
        self._entries.clear()
        self._waiters.clear()
        self._count = 0
