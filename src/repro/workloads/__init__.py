"""Synthetic workload substrate.

The paper evaluates on SPEC95/SPEC2000 binaries, which are not available
here. This package builds the closest synthetic equivalent: seeded static
programs (control-flow graphs with loop nests, calls, biased and random
branches, and typed memory regions) plus an architectural walker that
executes them, producing the dynamic instruction stream consumed by the
cycle-level cores.

Each benchmark the paper reports (ijpeg, gcc, gzip, vpr, mesa, equake,
parser, vortex, bzip2, turb3d) has a :class:`WorkloadProfile` calibrated to
the characteristics the paper's results depend on: instruction-level
parallelism, branch predictability, code footprint (trace locality), memory
working set, FP mix, and rename-pool pressure.
"""

from repro.workloads.cfg import Region, BasicBlock, Program
from repro.workloads.profiles import WorkloadProfile, PROFILES, SPEC_NAMES, get_profile
from repro.workloads.generator import ProgramGenerator, generate_program
from repro.workloads.stream import InstructionStream

__all__ = [
    "Region",
    "BasicBlock",
    "Program",
    "WorkloadProfile",
    "PROFILES",
    "SPEC_NAMES",
    "get_profile",
    "ProgramGenerator",
    "generate_program",
    "InstructionStream",
]
