"""Architectural walker: executes a synthetic program in program order.

The :class:`InstructionStream` is the oracle for the cycle-level cores: it
yields :class:`~repro.isa.DynInstr` instances in committed program order,
resolving loop counters, Bernoulli branch outcomes, call/return stacks and
memory addresses deterministically from the program's seed.

Cores consume the stream to drive fetch (trace-creation mode) or trace
replay (trace-execution mode); because wrong paths are modelled as timing
penalties rather than executed instructions, the stream never needs to be
rolled back.
"""

from __future__ import annotations

import random
from typing import Dict, Iterator, List

from repro.errors import SimulationError, WorkloadError
from repro.isa import BranchKind, DynInstr, OpClass
from repro.workloads.cfg import INSTR_BYTES, BasicBlock, Program

#: Call-stack depth limit; the generated dispatcher/function structure never
#: nests deeper than one call, so hitting this indicates a CFG bug.
_MAX_CALL_DEPTH = 64


class InstructionStream:
    """Endless iterator of dynamic instructions in program order."""

    def __init__(self, program: Program, seed: int = 0):
        if not program.finalized:
            raise WorkloadError("program must be finalized before streaming")
        self.program = program
        #: Stream-level seed (not the program's): recorded so pooled
        #: replays (the turbo engine's SoA precompute) can construct an
        #: identical walker from scratch.
        self.seed = seed
        self._rng = random.Random((program.seed << 16) ^ seed)
        self._loop_counters: Dict[int, int] = {}
        self._mem_cursors: Dict[int, int] = {}
        self._call_stack: List[int] = []
        self._block: BasicBlock = program.blocks[program.entry]
        self._idx = 0
        self._seq = 0
        self._regions = {r.rid: r for r in program.regions}
        # Warm-region recency model: addresses are drawn mostly from a ring
        # of recently touched lines sized beyond the L1 but within the L2,
        # so the steady-state L1-miss/L2-hit behaviour of a mid-sized
        # working set appears at any run length (a pure strided walk would
        # never revisit a line within a short run, turning every access
        # into a compulsory DRAM miss the paper's workloads do not have).
        self._warm_ring: list = []
        self._warm_ring_cap = 3072        # x 32B lines = 96 KiB footprint
        self._warm_cursor = 0

    def __iter__(self) -> Iterator[DynInstr]:
        return self

    def __next__(self) -> DynInstr:
        return self.next_instr()

    @property
    def emitted(self) -> int:
        """Number of dynamic instructions produced so far."""
        return self._seq

    def next_instr(self) -> DynInstr:
        """Produce the next dynamic instruction in program order."""
        block = self._block
        idx = self._idx
        static = block.instrs[idx]
        pc = block.pc + idx * INSTR_BYTES

        # Positional construction (seq, pc, op, dest, srcs, sid, mem_addr,
        # branch_kind): this runs once per dynamic instruction and kwargs
        # dispatch on a 19-field dataclass is measurable at that rate.
        dyn = DynInstr(self._seq, pc, static.op, static.dest, static.srcs,
                       static.sid, None, static.branch_kind)
        self._seq += 1

        if static.mem is not None:
            dyn.mem_addr = self._resolve_addr(static)

        if static.branch_kind != BranchKind.NONE:
            self._resolve_branch(dyn, static, block)
        elif idx + 1 < len(block.instrs):
            dyn.fall_pc = pc + INSTR_BYTES
            self._idx = idx + 1
        else:
            nxt = self.program.blocks[block.fall_block]
            dyn.fall_pc = nxt.pc
            self._block = nxt
            self._idx = 0
        return dyn

    # ------------------------------------------------------------ internal

    def _fall_pc(self, block: BasicBlock, last: bool) -> int:
        if not last:
            return block.instr_pc(self._idx) + INSTR_BYTES
        return self.program.blocks[block.fall_block].pc

    def _enter(self, bid: int) -> None:
        self._block = self.program.blocks[bid]
        self._idx = 0

    def _resolve_branch(self, dyn: DynInstr, static, block: BasicBlock) -> None:
        kind = static.branch_kind
        blocks = self.program.blocks

        if kind == BranchKind.COND:
            spec = static.branch
            if spec.loop_trip > 0:
                count = self._loop_counters.get(static.sid, 0) + 1
                if count < spec.loop_trip:
                    self._loop_counters[static.sid] = count
                    dyn.taken = True
                else:
                    self._loop_counters[static.sid] = 0
                    dyn.taken = False
            else:
                dyn.taken = self._rng.random() < spec.taken_prob
            dyn.target_pc = blocks[static.taken_target].pc
            dyn.fall_pc = blocks[static.fall_target].pc
            self._enter(static.taken_target if dyn.taken else static.fall_target)

        elif kind == BranchKind.UNCOND:
            dyn.taken = True
            dyn.target_pc = blocks[static.taken_target].pc
            dyn.fall_pc = dyn.pc + INSTR_BYTES
            self._enter(static.taken_target)

        elif kind == BranchKind.CALL:
            if len(self._call_stack) >= _MAX_CALL_DEPTH:
                raise SimulationError("call stack overflow in synthetic program")
            dyn.taken = True
            dyn.target_pc = blocks[static.taken_target].pc
            dyn.fall_pc = blocks[static.fall_target].pc
            self._call_stack.append(static.fall_target)
            self._enter(static.taken_target)

        elif kind == BranchKind.RET:
            if not self._call_stack:
                raise SimulationError("return with empty call stack")
            ret_bid = self._call_stack.pop()
            dyn.taken = True
            dyn.target_pc = blocks[ret_bid].pc
            dyn.fall_pc = dyn.pc + INSTR_BYTES
            self._enter(ret_bid)

        else:  # pragma: no cover - enum is exhaustive
            raise SimulationError(f"unknown branch kind {kind}")

    _WARM_REGION = 1

    def _resolve_addr(self, static) -> int:
        mem = static.mem
        region = self._regions[mem.region]
        if mem.region == self._WARM_REGION:
            return self._warm_addr(region)
        if mem.random:
            slots = max(1, region.size // mem.stride)
            return region.base + self._rng.randrange(slots) * mem.stride
        if mem.stream:
            # One cursor per region (keyed negatively so it can never
            # collide with a static sid): all streaming accesses advance
            # the same front, like a copy kernel marching its buffers.
            key = -1 - mem.region
            cursor = self._mem_cursors.get(key, 0)
            self._mem_cursors[key] = cursor + 1
            return region.base + (cursor * mem.stride) % region.size
        cursor = self._mem_cursors.get(static.sid, 0)
        self._mem_cursors[static.sid] = cursor + 1
        return region.base + (cursor * mem.stride) % region.size

    def _warm_addr(self, region) -> int:
        """L2-resident working set: mostly ring reuse, some fresh lines.

        The ring is prepopulated to its full span at first use — the
        program conceptually ran long before measurement starts — so the
        working set exceeds the L1 and fits the L2 from the first access,
        independent of how short the simulated window is.
        """
        ring = self._warm_ring
        if not ring:
            cap = min(self._warm_ring_cap, max(1, region.size // 32))
            ring.extend(region.base + (i * 32) % region.size
                        for i in range(cap))
            self._warm_cursor = cap
        if self._rng.random() < 0.90:
            addr = ring[self._rng.randrange(len(ring))]
        else:
            addr = region.base + (self._warm_cursor * 32) % region.size
            self._warm_cursor += 1
            ring[self._warm_cursor % len(ring)] = addr
        return addr
