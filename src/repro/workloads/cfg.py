"""Static program representation: regions, basic blocks, control-flow graph.

A :class:`Program` is a closed synthetic unit of work: a list of basic
blocks wired by explicit block ids, a set of memory regions, and an entry
block. The generator lays blocks out at consecutive byte addresses (4 bytes
per instruction) so the instruction footprint seen by the I-cache and the
Execution Cache is a real, program-dependent quantity.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.errors import WorkloadError
from repro.isa import BranchKind, StaticInstr

INSTR_BYTES = 4


@dataclass(frozen=True)
class Region:
    """A contiguous memory region with a fixed size.

    ``rid`` is the index used by :class:`repro.isa.MemRef`; ``base`` is the
    starting byte address; ``size`` the length in bytes. Working-set size
    relative to the cache hierarchy determines hit rates.
    """

    rid: int
    base: int
    size: int

    def __post_init__(self) -> None:
        if self.size <= 0:
            raise WorkloadError(f"region {self.rid} has non-positive size")
        if self.base < 0:
            raise WorkloadError(f"region {self.rid} has negative base")


@dataclass
class BasicBlock:
    """A straight-line sequence of instructions with explicit successors.

    If the last instruction is a control transfer, its targets define the
    successors; otherwise ``fall_block`` names the block executed next.
    """

    bid: int
    instrs: List[StaticInstr] = field(default_factory=list)
    fall_block: Optional[int] = None
    pc: int = 0  # assigned by Program.finalize()

    @property
    def terminator(self) -> Optional[StaticInstr]:
        """The control-transfer instruction ending the block, if any."""
        if self.instrs and self.instrs[-1].branch_kind != BranchKind.NONE:
            return self.instrs[-1]
        return None

    def instr_pc(self, idx: int) -> int:
        """Byte address of the ``idx``-th instruction in this block."""
        return self.pc + idx * INSTR_BYTES


@dataclass
class Program:
    """A synthetic program: blocks + regions + entry point."""

    name: str
    blocks: Dict[int, BasicBlock] = field(default_factory=dict)
    regions: List[Region] = field(default_factory=list)
    entry: int = 0
    seed: int = 0
    _finalized: bool = False

    def add_block(self, block: BasicBlock) -> None:
        if block.bid in self.blocks:
            raise WorkloadError(f"duplicate block id {block.bid}")
        self.blocks[block.bid] = block

    @property
    def num_static_instrs(self) -> int:
        return sum(len(b.instrs) for b in self.blocks.values())

    @property
    def code_bytes(self) -> int:
        """Total instruction footprint in bytes."""
        return self.num_static_instrs * INSTR_BYTES

    def finalize(self) -> None:
        """Assign PCs and validate the control-flow graph.

        Must be called once after all blocks have been added; the walker
        refuses to run over a non-finalized program.
        """
        pc = 0x1000  # leave page zero unused, as real loaders do
        for bid in sorted(self.blocks):
            block = self.blocks[bid]
            if not block.instrs:
                raise WorkloadError(f"block {bid} is empty")
            block.pc = pc
            pc += len(block.instrs) * INSTR_BYTES
        self._validate()
        self._finalized = True

    @property
    def finalized(self) -> bool:
        return self._finalized

    def _validate(self) -> None:
        if self.entry not in self.blocks:
            raise WorkloadError(f"entry block {self.entry} does not exist")
        region_ids = {r.rid for r in self.regions}
        for block in self.blocks.values():
            term = block.terminator
            for instr in block.instrs:
                if instr.mem is not None and instr.mem.region not in region_ids:
                    raise WorkloadError(
                        f"instr {instr.sid} references unknown region "
                        f"{instr.mem.region}"
                    )
                if instr.branch_kind != BranchKind.NONE and instr is not term:
                    raise WorkloadError(
                        f"branch {instr.sid} is not the last instruction of "
                        f"block {block.bid}"
                    )
            if term is None:
                if block.fall_block is None:
                    raise WorkloadError(
                        f"block {block.bid} has neither terminator nor fall_block"
                    )
                if block.fall_block not in self.blocks:
                    raise WorkloadError(
                        f"block {block.bid} falls to unknown block "
                        f"{block.fall_block}"
                    )
            else:
                self._validate_terminator(block, term)

    def _validate_terminator(self, block: BasicBlock, term: StaticInstr) -> None:
        kind = term.branch_kind
        if kind in (BranchKind.COND, BranchKind.UNCOND, BranchKind.CALL):
            if term.taken_target not in self.blocks:
                raise WorkloadError(
                    f"branch {term.sid} targets unknown block {term.taken_target}"
                )
        if kind in (BranchKind.COND, BranchKind.CALL):
            if term.fall_target not in self.blocks:
                raise WorkloadError(
                    f"branch {term.sid} falls to unknown block {term.fall_target}"
                )
        # RET needs no static targets: the walker's call stack supplies them.
