"""Per-benchmark workload profiles.

Each profile is calibrated to the characteristic behaviour of the SPEC
benchmark it stands in for, as far as those characteristics matter to the
paper's experiments:

* **ILP / dependence depth** (``serial_frac``) — drives how much a larger,
  faster-filled issue window helps (Fig. 12's super-linear scaling).
* **Branch predictability** (``random_branch_frac``, ``biased_taken_prob``)
  — drives mispredict rate, hence trace length and front-end restarts.
* **Code footprint** (``num_funcs``, ``blocks_per_func``) — drives I-cache
  and Execution Cache locality; ``vortex`` is the paper's low-residency
  outlier (<60% time on the EC path).
* **Rename-pool pressure** (``hot_dest_bias``) — repeated writes to few
  architected registers stall the pool-based renamer (Fig. 11's >10% loss
  on gzip/vpr/parser).
* **Memory behaviour** (region sizes and access mix) — L1/L2/DRAM rates.
* **FP mix** (``fp_frac``) — mesa/equake/turb3d are FP codes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Tuple

from repro.errors import WorkloadError


@dataclass(frozen=True)
class WorkloadProfile:
    """Tunable description of a synthetic benchmark."""

    name: str

    # --- static code shape -------------------------------------------------
    num_funcs: int = 8                       # functions called by dispatcher
    blocks_per_func: Tuple[int, int] = (3, 6)
    instrs_per_block: Tuple[int, int] = (6, 12)
    inner_loop_prob: float = 0.5             # chance a function has an inner loop
    diamond_prob: float = 0.5                # chance of an if/else diamond
    loop_trip: Tuple[int, int] = (8, 64)     # trip counts of loops

    # --- instruction mix (fractions of non-branch slots) --------------------
    fp_frac: float = 0.0
    load_frac: float = 0.25
    store_frac: float = 0.10
    mul_frac: float = 0.04
    div_frac: float = 0.01

    # --- dependence structure ----------------------------------------------
    serial_frac: float = 0.35       # src = most recent dest (chain-forming)
    acc_frac: float = 0.0           # loop-carried accumulator updates (study knob)
    hot_dest_bias: float = 0.15     # dest drawn from small hot set
    hot_dest_count: int = 3         # size of the hot destination set
    #: Fraction of loads whose address register is the previous
    #: instruction's destination — pointer chasing: each such load
    #: cannot issue until its predecessor completes, so its miss
    #: latency serializes regardless of MSHR budget. 0.0 keeps the
    #: historical generator RNG stream untouched.
    dep_load_frac: float = 0.0

    # --- branch behaviour ---------------------------------------------------
    random_branch_frac: float = 0.25  # fraction of diamonds that are 50/50
    biased_taken_prob: float = 0.92   # takenness of biased diamonds

    # --- memory behaviour ----------------------------------------------------
    hot_region_kb: int = 16           # fits in L1
    warm_region_kb: int = 192         # fits in L2, misses L1
    cold_region_kb: int = 16384       # misses everything
    hot_frac: float = 0.80            # fraction of accesses to hot region
    warm_frac: float = 0.15           # ... to warm region (rest go cold)
    random_access_frac: float = 0.20  # random (vs strided) within region
    mem_stride: int = 8               # bytes per sequential access
    #: Strided accesses share one cursor per region (a copy/scan kernel
    #: marching its buffers) instead of one per static instruction —
    #: sustained sequential miss traffic for the memory experiments.
    stream_mem: bool = False

    def __post_init__(self) -> None:
        fracs = (
            self.fp_frac, self.load_frac, self.store_frac, self.mul_frac,
            self.div_frac, self.serial_frac, self.hot_dest_bias,
            self.acc_frac, self.dep_load_frac,
            self.random_branch_frac, self.hot_frac, self.warm_frac,
            self.random_access_frac,
        )
        for f in fracs:
            if not 0.0 <= f <= 1.0:
                raise WorkloadError(f"profile {self.name}: fraction {f} out of range")
        if self.hot_frac + self.warm_frac > 1.0:
            raise WorkloadError(f"profile {self.name}: hot+warm fractions exceed 1")
        if self.num_funcs < 1:
            raise WorkloadError(f"profile {self.name}: needs at least one function")
        for lo, hi in (self.blocks_per_func, self.instrs_per_block, self.loop_trip):
            if lo < 1 or hi < lo:
                raise WorkloadError(f"profile {self.name}: bad range ({lo},{hi})")


def _p(**kw) -> WorkloadProfile:
    return WorkloadProfile(**kw)


#: The ten benchmarks reported in the paper (SPEC95 + SPEC2000), in the
#: order they appear on the x-axes of Figs. 2 and 11-15.
SPEC_NAMES = (
    "ijpeg", "gcc", "gzip", "vpr", "mesa",
    "equake", "parser", "vortex", "bzip2", "turb3d",
)

PROFILES: Dict[str, WorkloadProfile] = {
    # Image compression: small loopy kernels, very predictable, high ILP.
    "ijpeg": _p(
        name="ijpeg", num_funcs=6, blocks_per_func=(3, 5),
        instrs_per_block=(8, 14), inner_loop_prob=0.8, diamond_prob=0.3,
        loop_trip=(16, 96), serial_frac=0.22, hot_dest_bias=0.05,
        random_branch_frac=0.10, hot_frac=0.86, warm_frac=0.12,
        random_access_frac=0.05, load_frac=0.28, store_frac=0.12,
        mul_frac=0.08,
    ),
    # Compiler: big code footprint, branchy, hard-to-predict, pointer-chasing.
    "gcc": _p(
        name="gcc", num_funcs=40, blocks_per_func=(4, 9),
        instrs_per_block=(4, 9), inner_loop_prob=0.35, diamond_prob=0.8,
        loop_trip=(4, 24), serial_frac=0.40, hot_dest_bias=0.10,
        random_branch_frac=0.40, hot_frac=0.72, warm_frac=0.24,
        random_access_frac=0.25, load_frac=0.30, store_frac=0.12,
    ),
    # Compression: data-dependent branches, tight int loops, hot registers.
    "gzip": _p(
        name="gzip", num_funcs=7, blocks_per_func=(3, 6),
        instrs_per_block=(5, 10), inner_loop_prob=0.7, diamond_prob=0.7,
        loop_trip=(12, 64), serial_frac=0.45, hot_dest_bias=0.30,
        hot_dest_count=2, random_branch_frac=0.35, hot_frac=0.76,
        warm_frac=0.21, random_access_frac=0.25, load_frac=0.30,
        store_frac=0.12,
    ),
    # FPGA place & route: long serial chains, unpredictable, pool pressure.
    "vpr": _p(
        name="vpr", num_funcs=12, blocks_per_func=(3, 7),
        instrs_per_block=(4, 8), inner_loop_prob=0.5, diamond_prob=0.8,
        loop_trip=(6, 32), serial_frac=0.60, hot_dest_bias=0.32,
        hot_dest_count=2, random_branch_frac=0.45, hot_frac=0.66,
        warm_frac=0.29, random_access_frac=0.30, load_frac=0.32,
        store_frac=0.10, fp_frac=0.10,
    ),
    # 3D graphics: FP heavy, loopy, predictable, high ILP.
    "mesa": _p(
        name="mesa", num_funcs=8, blocks_per_func=(3, 5),
        instrs_per_block=(8, 14), inner_loop_prob=0.85, diamond_prob=0.25,
        loop_trip=(24, 128), serial_frac=0.20, hot_dest_bias=0.04,
        random_branch_frac=0.08, fp_frac=0.45, hot_frac=0.84,
        warm_frac=0.14, random_access_frac=0.08, load_frac=0.28,
        store_frac=0.14, mul_frac=0.06,
    ),
    # Seismic FP simulation: long vector-ish loops, big data, predictable.
    "equake": _p(
        name="equake", num_funcs=5, blocks_per_func=(2, 4),
        instrs_per_block=(10, 16), inner_loop_prob=0.9, diamond_prob=0.15,
        loop_trip=(32, 160), serial_frac=0.18, hot_dest_bias=0.04,
        random_branch_frac=0.05, fp_frac=0.50, hot_frac=0.66,
        warm_frac=0.29, random_access_frac=0.10, load_frac=0.34,
        store_frac=0.12, mul_frac=0.08,
    ),
    # NL parser: pointer chasing, serial, branchy, hot destination regs.
    "parser": _p(
        name="parser", num_funcs=18, blocks_per_func=(3, 7),
        instrs_per_block=(4, 8), inner_loop_prob=0.4, diamond_prob=0.85,
        loop_trip=(4, 20), serial_frac=0.62, hot_dest_bias=0.30,
        hot_dest_count=2, random_branch_frac=0.42, hot_frac=0.66,
        warm_frac=0.29, random_access_frac=0.35, load_frac=0.34,
        store_frac=0.10,
    ),
    # OO database: enormous code footprint, call-heavy, moderate branches.
    "vortex": _p(
        name="vortex", num_funcs=60, blocks_per_func=(4, 9),
        instrs_per_block=(5, 10), inner_loop_prob=0.25, diamond_prob=0.7,
        loop_trip=(3, 12), serial_frac=0.35, hot_dest_bias=0.08,
        random_branch_frac=0.12, hot_frac=0.62, warm_frac=0.33,
        random_access_frac=0.25, load_frac=0.32, store_frac=0.16,
    ),
    # Compression: like gzip but larger blocks and working set.
    "bzip2": _p(
        name="bzip2", num_funcs=8, blocks_per_func=(3, 6),
        instrs_per_block=(6, 11), inner_loop_prob=0.7, diamond_prob=0.65,
        loop_trip=(16, 96), serial_frac=0.42, hot_dest_bias=0.25,
        random_branch_frac=0.30, hot_frac=0.70, warm_frac=0.26,
        random_access_frac=0.25, load_frac=0.30, store_frac=0.13,
    ),
    # Turbulence FP code: deep loop nests, predictable, high ILP.
    "turb3d": _p(
        name="turb3d", num_funcs=6, blocks_per_func=(2, 4),
        instrs_per_block=(9, 15), inner_loop_prob=0.9, diamond_prob=0.15,
        loop_trip=(24, 128), serial_frac=0.20, hot_dest_bias=0.04,
        random_branch_frac=0.06, fp_frac=0.48, hot_frac=0.78,
        warm_frac=0.19, random_access_frac=0.06, load_frac=0.30,
        store_frac=0.13, mul_frac=0.08,
    ),
}

#: Memory-bound profiles for the memory-system experiments (not part of
#: the paper's SPEC set, so they stay out of SPEC_NAMES and the figure
#: sweeps). ``pointer_chase`` is latency-bound: mostly-random loads over
#: a DRAM-sized region with a heavy dependent-load chain, so each miss
#: serializes behind its predecessor and MSHR overlap buys little —
#: what helps is the raw miss path. ``stream_copy`` is bandwidth-bound:
#: strided, independent loads/stores marching through a cold region, so
#: misses are plentiful *and* parallel — non-blocking MSHRs and the
#: next-line/stride prefetchers pay off directly.
PROFILES["pointer_chase"] = _p(
    name="pointer_chase", num_funcs=4, blocks_per_func=(2, 4),
    instrs_per_block=(6, 10), inner_loop_prob=0.7, diamond_prob=0.3,
    loop_trip=(16, 64), load_frac=0.45, store_frac=0.05,
    serial_frac=0.55, dep_load_frac=0.8, hot_dest_bias=0.05,
    random_branch_frac=0.10, hot_frac=0.06, warm_frac=0.14,
    cold_region_kb=65536, random_access_frac=0.9,
)
PROFILES["stream_copy"] = _p(
    name="stream_copy", num_funcs=3, blocks_per_func=(2, 3),
    instrs_per_block=(8, 14), inner_loop_prob=0.9, diamond_prob=0.1,
    loop_trip=(32, 160), load_frac=0.38, store_frac=0.27,
    serial_frac=0.15, hot_dest_bias=0.04, random_branch_frac=0.05,
    hot_frac=0.02, warm_frac=0.03, cold_region_kb=131072,
    random_access_frac=0.0, stream_mem=True,
)

#: A tiny, fast profile for unit tests and smoke runs.
PROFILES["smoke"] = _p(
    name="smoke", num_funcs=2, blocks_per_func=(2, 3),
    instrs_per_block=(4, 6), inner_loop_prob=0.5, diamond_prob=0.5,
    loop_trip=(4, 8),
)


def get_profile(name: str) -> WorkloadProfile:
    """Look up a profile by benchmark name.

    Raises :class:`WorkloadError` for unknown names, listing valid ones.
    """
    try:
        return PROFILES[name]
    except KeyError:
        known = ", ".join(sorted(PROFILES))
        raise WorkloadError(f"unknown workload {name!r}; known: {known}") from None
