"""Seeded synthetic program generator.

Builds a :class:`~repro.workloads.cfg.Program` from a
:class:`~repro.workloads.profiles.WorkloadProfile`. The generated code has
the static shape of a real integer/FP benchmark:

* a top-level *dispatcher* loop that calls a set of functions in a fixed
  (but seeded) hot/cold order, forever;
* each function is a loop nest — an outer loop whose body may contain an
  if/else diamond (biased or random condition) and an inner loop — ending
  in a return;
* every instruction slot draws its op class, destination and sources from
  the profile's mix, with ``serial_frac`` controlling dependence-chain
  depth and ``hot_dest_bias`` concentrating writes on few architected
  registers (rename-pool pressure).

Generation is fully deterministic given (profile, seed).
"""

from __future__ import annotations

import random
import zlib
from collections import deque
from typing import Deque, List, Optional, Tuple

from repro.isa import (
    BranchKind,
    BranchSpec,
    MemRef,
    OpClass,
    StaticInstr,
)
from repro.isa.registers import FP_REG_BASE, NUM_INT_REGS
from repro.workloads.cfg import BasicBlock, Program, Region
from repro.workloads.profiles import WorkloadProfile

# Register conventions used by generated code (flat indices).
_INT_INVARIANT = tuple(range(1, 8))            # loop counters, base pointers
_INT_ACCUM = (6, 7)          # loop-carried accumulators (acc_frac knob)
_INT_GENERAL = tuple(range(8, NUM_INT_REGS))   # general int destinations
_FP_INVARIANT = tuple(range(FP_REG_BASE + 1, FP_REG_BASE + 6))
_FP_ACCUM = (FP_REG_BASE + 4, FP_REG_BASE + 5)
_FP_GENERAL = tuple(range(FP_REG_BASE + 6, FP_REG_BASE + 32))

_HOT_REGION, _WARM_REGION, _COLD_REGION = 0, 1, 2
_REGION_BASES = (0x1000_0000, 0x2000_0000, 0x4000_0000)


def _seed_for(profile_name: str, seed: Optional[int]) -> int:
    """Stable per-profile default seed (crc32 of the name)."""
    if seed is not None:
        return seed
    return zlib.crc32(profile_name.encode("utf-8"))


class ProgramGenerator:
    """Builds one synthetic program for a workload profile."""

    def __init__(self, profile: WorkloadProfile, seed: Optional[int] = None):
        self.profile = profile
        self.seed = _seed_for(profile.name, seed)
        self._rng = random.Random(self.seed)
        self._next_sid = 0
        self._next_bid = 0
        self._program = Program(name=profile.name, seed=self.seed)
        # Rolling window of recently written registers, per class, used to
        # wire realistic cross-block dependences.
        self._recent_int: Deque[int] = deque(maxlen=8)
        self._recent_fp: Deque[int] = deque(maxlen=8)
        hot = self._rng.sample(_INT_GENERAL, profile.hot_dest_count)
        self._hot_int = tuple(hot)
        self._hot_fp = tuple(
            self._rng.sample(_FP_GENERAL, profile.hot_dest_count)
        )
        # Destinations rotate round-robin over the general sets, the way a
        # register allocator spreads live ranges; ``hot_dest_bias`` breaks
        # the rotation to concentrate writes (rename-pool pressure).
        self._dest_cursor_int = 0
        self._dest_cursor_fp = 0

    # ------------------------------------------------------------------ API

    def build(self) -> Program:
        """Generate, finalize and return the program."""
        prog = self._program
        prog.regions = [
            Region(_HOT_REGION, _REGION_BASES[0], self.profile.hot_region_kb * 1024),
            Region(_WARM_REGION, _REGION_BASES[1], self.profile.warm_region_kb * 1024),
            Region(_COLD_REGION, _REGION_BASES[2], self.profile.cold_region_kb * 1024),
        ]
        entries = [self._build_function() for _ in range(self.profile.num_funcs)]
        self._build_dispatcher(entries)
        prog.finalize()
        return prog

    # ----------------------------------------------------------- structure

    def _build_dispatcher(self, func_entries: List[int]) -> None:
        """Top-level infinite loop calling functions in a seeded hot order."""
        rng = self._rng
        # Call sequence: every function at least once, hot functions repeated.
        seq = list(range(len(func_entries)))
        extra = max(2, len(func_entries) // 2)
        hot_funcs = seq[: max(1, len(seq) // 3)]
        seq += [rng.choice(hot_funcs) for _ in range(extra)]
        rng.shuffle(seq)

        call_bids = [self._alloc_bid() for _ in seq]
        loop_bid = self._alloc_bid()
        self._program.entry = call_bids[0]

        for i, fidx in enumerate(seq):
            after = call_bids[i + 1] if i + 1 < len(seq) else loop_bid
            block = BasicBlock(bid=call_bids[i])
            block.instrs = self._gen_body(2, fp_ok=False)
            block.instrs.append(
                StaticInstr(
                    sid=self._alloc_sid(), op=OpClass.BRANCH,
                    srcs=(rng.choice(_INT_INVARIANT),),
                    branch_kind=BranchKind.CALL,
                    taken_target=func_entries[fidx], fall_target=after,
                )
            )
            self._program.add_block(block)

        back = BasicBlock(bid=loop_bid)
        back.instrs = self._gen_body(1, fp_ok=False)
        back.instrs.append(
            StaticInstr(
                sid=self._alloc_sid(), op=OpClass.BRANCH,
                srcs=(rng.choice(_INT_INVARIANT),),
                branch_kind=BranchKind.UNCOND, taken_target=call_bids[0],
            )
        )
        self._program.add_block(back)

    def _build_function(self) -> int:
        """Build one function (outer loop + optional diamond/inner loop).

        Returns the entry block id.
        """
        rng = self._rng
        p = self.profile
        n_blocks = rng.randint(*p.blocks_per_func)
        want_diamond = rng.random() < p.diamond_prob
        want_inner = rng.random() < p.inner_loop_prob

        head_bid = self._alloc_bid()
        bids: List[int] = [head_bid]
        # Reserve ids so block PCs are laid out contiguously per function.
        segments = n_blocks + (3 if want_diamond else 0) + (1 if want_inner else 0)
        for _ in range(segments + 1):  # +1 for the exit/RET block
            bids.append(self._alloc_bid())

        cursor = 0

        def next_bid() -> int:
            nonlocal cursor
            cursor += 1
            return bids[cursor]

        current = head_bid
        # Plain body blocks before any structure.
        for _ in range(max(1, n_blocks // 2)):
            nxt = next_bid()
            self._add_plain_block(current, nxt)
            current = nxt

        if want_diamond:
            then_bid, else_bid, join_bid = next_bid(), next_bid(), next_bid()
            self._add_diamond(current, then_bid, else_bid, join_bid)
            current = join_bid

        if want_inner:
            after_bid = next_bid()
            self._add_inner_loop(current, after_bid)
            current = after_bid

        # Remaining plain blocks up to the latch.
        while cursor < len(bids) - 1:
            nxt = next_bid()
            self._add_plain_block(current, nxt)
            current = nxt

        # `current` is now the latch: loop back to head, else fall to exit.
        exit_bid = self._alloc_bid()
        latch = BasicBlock(bid=current)
        latch.instrs = self._gen_body(self._block_len() - 1)
        latch.instrs.append(
            StaticInstr(
                sid=self._alloc_sid(), op=OpClass.BRANCH,
                srcs=(rng.choice(_INT_INVARIANT),),
                branch_kind=BranchKind.COND,
                branch=BranchSpec(loop_trip=rng.randint(*p.loop_trip)),
                taken_target=head_bid, fall_target=exit_bid,
            )
        )
        self._program.add_block(latch)

        exit_block = BasicBlock(bid=exit_bid)
        exit_block.instrs = self._gen_body(2)
        exit_block.instrs.append(
            StaticInstr(
                sid=self._alloc_sid(), op=OpClass.BRANCH,
                srcs=(rng.choice(_INT_INVARIANT),),
                branch_kind=BranchKind.RET,
            )
        )
        self._program.add_block(exit_block)
        return head_bid

    def _add_plain_block(self, bid: int, fall_bid: int) -> None:
        block = BasicBlock(bid=bid, fall_block=fall_bid)
        block.instrs = self._gen_body(self._block_len())
        self._program.add_block(block)

    def _add_diamond(self, cond_bid: int, then_bid: int, else_bid: int,
                     join_bid: int) -> None:
        """if/else diamond: cond jumps to `else`, falls into `then`."""
        rng = self._rng
        p = self.profile
        if rng.random() < p.random_branch_frac:
            prob = 0.5
        else:
            prob = p.biased_taken_prob if rng.random() < 0.5 else 1.0 - p.biased_taken_prob

        cond = BasicBlock(bid=cond_bid)
        cond.instrs = self._gen_body(self._block_len() - 1)
        cond.instrs.append(
            StaticInstr(
                sid=self._alloc_sid(), op=OpClass.BRANCH,
                srcs=self._pick_srcs(1, fp=False),
                branch_kind=BranchKind.COND,
                branch=BranchSpec(taken_prob=prob),
                taken_target=else_bid, fall_target=then_bid,
            )
        )
        self._program.add_block(cond)

        then_block = BasicBlock(bid=then_bid)
        then_block.instrs = self._gen_body(self._block_len() - 1)
        then_block.instrs.append(
            StaticInstr(
                sid=self._alloc_sid(), op=OpClass.BRANCH,
                srcs=(rng.choice(_INT_INVARIANT),),
                branch_kind=BranchKind.UNCOND, taken_target=join_bid,
            )
        )
        self._program.add_block(then_block)

        else_block = BasicBlock(bid=else_bid, fall_block=join_bid)
        else_block.instrs = self._gen_body(self._block_len())
        self._program.add_block(else_block)
        # The join block (`join_bid`) is *not* created here: the caller's
        # next structural step (plain block, inner loop or latch) creates it,
        # which keeps the "current bid is always un-created" invariant.

    def _add_inner_loop(self, head_bid: int, after_bid: int) -> None:
        rng = self._rng
        p = self.profile
        block = BasicBlock(bid=head_bid)
        block.instrs = self._gen_body(self._block_len() - 1)
        block.instrs.append(
            StaticInstr(
                sid=self._alloc_sid(), op=OpClass.BRANCH,
                srcs=(rng.choice(_INT_INVARIANT),),
                branch_kind=BranchKind.COND,
                branch=BranchSpec(loop_trip=rng.randint(*p.loop_trip)),
                taken_target=head_bid, fall_target=after_bid,
            )
        )
        self._program.add_block(block)

    # ------------------------------------------------------- instructions

    def _block_len(self) -> int:
        return self._rng.randint(*self.profile.instrs_per_block)

    def _gen_body(self, count: int, fp_ok: bool = True) -> List[StaticInstr]:
        """Generate `count` non-branch instructions."""
        out: List[StaticInstr] = []
        last_dest: Optional[int] = None
        for _ in range(max(1, count)):
            instr, last_dest = self._gen_instr(last_dest, fp_ok)
            out.append(instr)
        return out

    def _gen_instr(self, last_dest: Optional[int],
                   fp_ok: bool) -> Tuple[StaticInstr, Optional[int]]:
        rng = self._rng
        p = self.profile
        u = rng.random()
        fp = fp_ok and rng.random() < p.fp_frac

        if p.acc_frac and rng.random() < p.acc_frac:
            # Loop-carried accumulator update: a read-modify-write of a
            # dedicated register. These recurrences make the Wake-Up/
            # Select loop critical, as in real loop bodies (sums, indices,
            # hash states) — the behaviour behind the paper's Fig. 2.
            acc = rng.choice(_FP_ACCUM if fp else _INT_ACCUM)
            op = OpClass.FP_ADD if fp else OpClass.INT_ALU
            other = self._pick_srcs(1, fp=fp, last_dest=last_dest)
            instr = StaticInstr(sid=self._alloc_sid(), op=op, dest=acc,
                                srcs=(acc,) + other)
            return instr, acc

        if u < p.load_frac:
            op = OpClass.LOAD
        elif u < p.load_frac + p.store_frac:
            op = OpClass.STORE
        elif u < p.load_frac + p.store_frac + p.mul_frac:
            op = OpClass.FP_MUL if fp else OpClass.INT_MUL
        elif u < p.load_frac + p.store_frac + p.mul_frac + p.div_frac:
            op = OpClass.FP_DIV if fp else OpClass.INT_DIV
        else:
            op = OpClass.FP_ADD if fp else OpClass.INT_ALU

        mem = None
        if op is OpClass.LOAD or op is OpClass.STORE:
            mem = self._pick_memref()

        if op is OpClass.STORE:
            dest = None
            srcs = self._pick_srcs(2, fp=fp, last_dest=last_dest)
        elif op is OpClass.LOAD:
            dest = self._pick_dest(fp)
            # Pointer chasing: the address register is the previous
            # instruction's result, so this load cannot issue until its
            # producer (often itself a load) completes. The knob guard
            # short-circuits so profiles with dep_load_frac == 0 draw
            # the exact historical RNG stream.
            if (p.dep_load_frac and last_dest is not None
                    and rng.random() < p.dep_load_frac):
                srcs = (last_dest,)
            else:
                srcs = (rng.choice(_FP_INVARIANT if fp else _INT_INVARIANT),)
        else:
            dest = self._pick_dest(fp)
            srcs = self._pick_srcs(2, fp=fp, last_dest=last_dest)

        instr = StaticInstr(
            sid=self._alloc_sid(), op=op, dest=dest, srcs=srcs, mem=mem,
        )
        if dest is not None:
            (self._recent_fp if fp else self._recent_int).append(dest)
        return instr, dest

    def _pick_dest(self, fp: bool) -> int:
        rng = self._rng
        if rng.random() < self.profile.hot_dest_bias:
            return rng.choice(self._hot_fp if fp else self._hot_int)
        if fp:
            reg = _FP_GENERAL[self._dest_cursor_fp % len(_FP_GENERAL)]
            self._dest_cursor_fp += 1
        else:
            reg = _INT_GENERAL[self._dest_cursor_int % len(_INT_GENERAL)]
            self._dest_cursor_int += 1
        return reg

    def _pick_srcs(self, count: int, fp: bool,
                   last_dest: Optional[int] = None) -> Tuple[int, ...]:
        rng = self._rng
        recent = self._recent_fp if fp else self._recent_int
        invariant = _FP_INVARIANT if fp else _INT_INVARIANT
        srcs = []
        for _ in range(count):
            if last_dest is not None and rng.random() < self.profile.serial_frac:
                srcs.append(last_dest)
            elif recent and rng.random() < 0.6:
                srcs.append(rng.choice(tuple(recent)))
            else:
                srcs.append(rng.choice(invariant))
        return tuple(srcs)

    def _pick_memref(self) -> MemRef:
        rng = self._rng
        p = self.profile
        u = rng.random()
        if u < p.hot_frac:
            region = _HOT_REGION
        elif u < p.hot_frac + p.warm_frac:
            region = _WARM_REGION
        else:
            region = _COLD_REGION
        return MemRef(
            region=region, stride=p.mem_stride,
            random=rng.random() < p.random_access_frac,
            stream=p.stream_mem,
        )

    # --------------------------------------------------------------- ids

    def _alloc_sid(self) -> int:
        sid = self._next_sid
        self._next_sid += 1
        return sid

    def _alloc_bid(self) -> int:
        bid = self._next_bid
        self._next_bid += 1
        return bid


def generate_program(profile: WorkloadProfile,
                     seed: Optional[int] = None) -> Program:
    """Convenience wrapper: generate a finalized program for a profile."""
    return ProgramGenerator(profile, seed=seed).build()
