"""repro — a reproduction of "Increased Scalability and Power Efficiency
by Using Multiple Speed Pipelines" (Talpes & Marculescu, ISCA 2005).

The package implements the paper's *Flywheel* microarchitecture and its
fully synchronous baseline as cycle-level simulators, together with the
synthetic SPEC-like workload substrate, CACTI-style latency scaling,
Wattch-style power models, and an experiment harness that regenerates
every table and figure of the paper's evaluation.

Quick start::

    from repro import run_baseline, run_flywheel, ClockPlan
    base = run_baseline("gcc")
    fly = run_flywheel("gcc", clock=ClockPlan(fe_speedup=0.5,
                                              be_speedup=0.5))
    print(base.stats.ipc, fly.stats.ec_residency)

Campaigns — batch a sweep across worker processes with persistent,
content-addressed memoization (repeat runs are near-instant)::

    from repro import ClockPlan
    from repro.campaign import ResultStore, Sweep, run_campaign

    sweep = Sweep(benchmarks=("gcc", "gzip"),
                  clocks=(ClockPlan(fe_speedup=0.5, be_speedup=0.5),),
                  seeds=(1, 2, 3))
    jobs = sweep.expand()
    report = run_campaign(jobs, store=ResultStore(), jobs=4)
    print(report.summary())
    fly_gcc = [j for j in jobs
               if j.kind == "flywheel" and j.bench == "gcc"]
    print([report.result_for(j).ipc for j in fly_gcc])

or from the shell: ``python -m repro.campaign run --experiments all
--jobs 4`` (see also ``ls`` / ``export --csv`` / ``clean``).
"""

from repro.campaign import ResultStore, RunSpec, Sweep, run_campaign
from repro.core import (
    BaselineCore,
    ClockPlan,
    CoreConfig,
    FlywheelConfig,
    FlywheelCore,
    PipelinedWakeupCore,
    SimResult,
    SimStats,
    run_baseline,
    run_flywheel,
    run_pipelined_wakeup,
)
from repro.dvfs import GovernorConfig
from repro.errors import (
    CampaignError,
    ConfigError,
    ReproError,
    SimulationError,
    WorkloadError,
)
from repro.power import energy_report
from repro.workloads import (
    PROFILES,
    SPEC_NAMES,
    WorkloadProfile,
    generate_program,
    get_profile,
)

__version__ = "1.0.0"

__all__ = [
    "BaselineCore",
    "FlywheelCore",
    "PipelinedWakeupCore",
    "ClockPlan",
    "CoreConfig",
    "FlywheelConfig",
    "GovernorConfig",
    "SimResult",
    "SimStats",
    "run_baseline",
    "run_flywheel",
    "run_pipelined_wakeup",
    "energy_report",
    "PROFILES",
    "SPEC_NAMES",
    "WorkloadProfile",
    "generate_program",
    "get_profile",
    "ResultStore",
    "RunSpec",
    "Sweep",
    "run_campaign",
    "ReproError",
    "CampaignError",
    "ConfigError",
    "WorkloadError",
    "SimulationError",
    "__version__",
]
