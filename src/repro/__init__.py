"""repro — a reproduction of "Increased Scalability and Power Efficiency
by Using Multiple Speed Pipelines" (Talpes & Marculescu, ISCA 2005).

The package implements the paper's *Flywheel* microarchitecture and its
fully synchronous baseline as cycle-level simulators, together with the
synthetic SPEC-like workload substrate, CACTI-style latency scaling,
Wattch-style power models, and an experiment harness that regenerates
every table and figure of the paper's evaluation.

Quick start — describe machines with :class:`MachineSpec`, execute them
through one :class:`Session`::

    from repro import ClockPlan, MachineSpec, Session

    with Session() as session:
        base = session.run(MachineSpec("baseline", "gcc"))
        fly = session.run(MachineSpec(
            "flywheel", "gcc",
            clock=ClockPlan(fe_speedup=0.5, be_speedup=0.5)))
    print(base.stats.ipc, fly.stats.ec_residency)

Batches — ``Session.map`` dedups a spec list, resolves what it can from
the (optional, persistent) store and fans the rest out over worker
processes; ``Session.stream`` yields structured progress events for
long campaigns::

    session = Session(store="~/.cache/repro-campaign", jobs=4)
    specs = [MachineSpec("flywheel", b,
                         clock=ClockPlan(fe_speedup=0.5, be_speedup=0.5),
                         seed=s)
             for b in ("gcc", "gzip") for s in (1, 2, 3)]
    results = session.map(specs)              # input-order results
    print(session.hits, session.executed)     # warm rerun: all hits

Machine kinds (``"baseline"``, ``"pipelined_wakeup"``, ``"flywheel"``)
resolve through the pluggable registry —
:func:`repro.core.registry.register_kind` adds third-party machines that
then work everywhere a kind name is accepted. The ``run_baseline`` /
``run_flywheel`` / ``run_pipelined_wakeup`` trio remain as deprecated
wrappers over the default session.

From the shell: ``python -m repro.campaign run --experiments all
--jobs 4`` (see also ``ls`` / ``export --csv`` / ``clean`` /
``diff <A> <B>`` for differential analysis between two campaigns or
code versions, and ``python -m repro.perf`` for versioned performance
history with statistical degradation detection).
"""

from repro.campaign import ResultStore, RunSpec, Sweep, run_campaign
from repro.core import (
    BaselineCore,
    ClockPlan,
    CoreConfig,
    FlywheelConfig,
    FlywheelCore,
    PipelinedWakeupCore,
    SimResult,
    SimStats,
    run_baseline,
    run_flywheel,
    run_pipelined_wakeup,
)
from repro.core.registry import (
    get_kind,
    kind_names,
    register_kind,
    unregister_kind,
)
from repro.dvfs import GovernorConfig
from repro.errors import (
    CampaignError,
    ConfigError,
    DeadlockError,
    ReproError,
    SimulationError,
    WorkloadError,
)
from repro.mem import CacheLevelSpec, MemorySpec
from repro.obs import MetricRegistry, TraceRecorder, TraceSpec
from repro.power import energy_report
from repro.session import MachineSpec, Session, SessionEvent, default_session
from repro.workloads import (
    PROFILES,
    SPEC_NAMES,
    WorkloadProfile,
    generate_program,
    get_profile,
)

__version__ = "1.3.0"

__all__ = [
    # The front door.
    "MachineSpec",
    "Session",
    "SessionEvent",
    "default_session",
    # Core-kind registry.
    "register_kind",
    "unregister_kind",
    "get_kind",
    "kind_names",
    # Machines, configs, results.
    "BaselineCore",
    "FlywheelCore",
    "PipelinedWakeupCore",
    "ClockPlan",
    "CoreConfig",
    "FlywheelConfig",
    "GovernorConfig",
    "CacheLevelSpec",
    "MemorySpec",
    "SimResult",
    "SimStats",
    # Observability (repro.obs): flight recorder + metrics.
    "TraceSpec",
    "TraceRecorder",
    "MetricRegistry",
    # Deprecated one-shot wrappers (use Session/MachineSpec).
    "run_baseline",
    "run_flywheel",
    "run_pipelined_wakeup",
    # Power and workloads.
    "energy_report",
    "PROFILES",
    "SPEC_NAMES",
    "WorkloadProfile",
    "generate_program",
    "get_profile",
    # Campaign layer.
    "ResultStore",
    "RunSpec",
    "Sweep",
    "run_campaign",
    # Errors.
    "ReproError",
    "CampaignError",
    "ConfigError",
    "DeadlockError",
    "WorkloadError",
    "SimulationError",
    "__version__",
]
