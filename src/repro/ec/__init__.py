"""Execution Cache (Section 3.3): pre-scheduled instruction storage.

Traces are sequences of *Issue Units* — groups of independent instructions
recorded at issue time — packed into fixed-size data-array blocks chained
across sets (the Pentium-4-like organisation of Fig. 7). A tag array maps
trace start PCs to their first block; a two-block fill buffer streams
blocks to the execution core during replay.
"""

from repro.ec.trace import TraceInstr, IssueUnit, Trace
from repro.ec.cache import ExecutionCache, ECStats
from repro.ec.fill_buffer import FillBuffer
from repro.ec.builder import TraceBuilder

__all__ = [
    "TraceInstr",
    "IssueUnit",
    "Trace",
    "ExecutionCache",
    "ECStats",
    "FillBuffer",
    "TraceBuilder",
]
