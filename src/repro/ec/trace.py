"""Trace data structures stored in the Execution Cache.

A :class:`TraceInstr` records everything needed to replay one instruction
without the front-end: its static identity (for path verification), its
op class, and the (architected register, LID) rename info produced during
trace creation. Dynamic facts — memory addresses, actual branch outcomes —
are *not* stored; the walker supplies fresh ones each replay, exactly as
real operand values differ between runs of the same trace.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.errors import SimulationError
from repro.isa import DynInstr, OpClass


class TraceInstr:
    """One pre-scheduled instruction slot."""

    __slots__ = ("pos", "sid", "op", "dest", "dest_lid", "srcs", "src_lids",
                 "is_branch", "taken", "is_mem")

    def __init__(self, pos: int, dyn: DynInstr):
        self.pos = pos                    # program-order position in trace
        self.sid = dyn.sid
        self.op = dyn.op
        self.dest = dyn.dest
        self.dest_lid = dyn.dest_lid
        self.srcs = dyn.srcs
        self.src_lids = dyn.src_lids
        self.is_branch = dyn.is_branch
        self.taken = dyn.taken            # recorded (build-time) direction
        self.is_mem = dyn.mem_addr is not None


class IssueUnit:
    """Independent instructions recorded as one parallel issue group."""

    __slots__ = ("instrs", "_demands")

    def __init__(self, instrs: Optional[List[TraceInstr]] = None):
        self.instrs: List[TraceInstr] = instrs or []
        self._demands = None

    def __len__(self) -> int:
        return len(self.instrs)

    def __iter__(self):
        return iter(self.instrs)

    @property
    def demands(self) -> tuple:
        """FU demands as ``(kind, cycle, latency, unpipelined)`` tuples.

        The cycle field is 0 — only meaningful for unpipelined ops, whose
        reservation the replay engine re-stamps; cached because a hot
        trace replays the same units thousands of times.
        """
        if self._demands is None:
            from repro.isa.opclasses import (EXEC_LATENCY_TAB, FU_KIND_TAB,
                                             UNPIPELINED_TAB)
            self._demands = tuple(
                (FU_KIND_TAB[ti.op], 0, EXEC_LATENCY_TAB[ti.op],
                 UNPIPELINED_TAB[ti.op]) for ti in self.instrs)
        return self._demands


class Trace:
    """A complete trace: ordered Issue Units plus lookup metadata."""

    __slots__ = ("tid", "start_pc", "units", "length", "slots", "last_use",
                 "valid")

    def __init__(self, tid: int, start_pc: int, units: List[IssueUnit]):
        if not units:
            raise SimulationError("empty trace")
        self.tid = tid
        self.start_pc = start_pc
        self.units = units
        self.length = sum(len(u) for u in units)   # program-order length
        self.slots = self.length                    # DA slots used
        self.last_use = 0
        self.valid = True

    def blocks(self, block_slots: int) -> int:
        """Data-array blocks occupied (units pack densely, Fig. 7b)."""
        return -(-self.slots // block_slots)

    def program_order(self) -> List[TraceInstr]:
        """Instructions sorted back into program order (for replay pairing)."""
        out = [ti for unit in self.units for ti in unit]
        out.sort(key=lambda ti: ti.pos)
        return out
