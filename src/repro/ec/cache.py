"""Execution Cache storage: tag array + data-array block budget.

The tag array (TA) is a set-associative cache indexed by translated start
PC; each hit points at the data-array (DA) set holding the trace's first
block, with subsequent blocks chained set-to-set (Fig. 7a). The simulator
models the TA associativity exactly and the DA as a global block budget
with whole-trace LRU eviction — chained blocks make partial eviction
equivalent to invalidating the trace anyway.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.core.config import FlywheelConfig
from repro.ec.trace import Trace
from repro.errors import SimulationError

#: Tag-array sets (the TA is small and fast; the paper sizes it to cover
#: the DA's trace capacity comfortably).
_TA_SETS = 512


@dataclass
class ECStats:
    lookups: int = 0
    hits: int = 0
    misses: int = 0
    insertions: int = 0
    evictions: int = 0
    oversized: int = 0
    invalidations: int = 0
    da_block_reads: int = 0
    da_block_writes: int = 0

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0


class ExecutionCache:
    """Trace store with TA associativity and a DA block budget."""

    def __init__(self, config: FlywheelConfig):
        self.config = config
        self.total_blocks = config.ec_blocks
        self.block_slots = config.ec_block_slots
        self._ta: List[Dict[int, Trace]] = [dict() for _ in range(_TA_SETS)]
        self._by_pc: Dict[int, Trace] = {}
        self.used_blocks = 0
        self.stats = ECStats()
        self._clock = 0
        self._next_tid = 0

    def alloc_tid(self) -> int:
        tid = self._next_tid
        self._next_tid += 1
        return tid

    def _set_of(self, pc: int) -> Dict[int, Trace]:
        return self._ta[(pc >> 2) % _TA_SETS]

    def lookup(self, pc: int) -> Optional[Trace]:
        """TA search for a trace starting at ``pc``."""
        self._clock += 1
        self.stats.lookups += 1
        trace = self._by_pc.get(pc)
        if trace is None or not trace.valid:
            self.stats.misses += 1
            return None
        trace.last_use = self._clock
        self.stats.hits += 1
        return trace

    def insert(self, trace: Trace) -> bool:
        """Store a sealed trace, evicting as needed.

        Returns False (storing nothing) for a trace larger than the whole
        data array — with a tiny EC, over-long traces are simply not
        cacheable.
        """
        self._clock += 1
        blocks = trace.blocks(self.block_slots)
        if blocks > self.total_blocks:
            self.stats.oversized += 1
            return False
        ta_set = self._set_of(trace.start_pc)
        # Replace any existing trace with the same start PC.
        old = ta_set.pop(trace.start_pc, None)
        if old is not None:
            self._drop(old, count_eviction=False)
        # TA way-conflict eviction.
        while len(ta_set) >= self.config.ec_ways:
            victim_pc = min(ta_set, key=lambda p: ta_set[p].last_use)
            self._evict(ta_set.pop(victim_pc))
        # DA capacity eviction (global LRU over traces).
        while self.used_blocks + blocks > self.total_blocks:
            victim = min(
                (t for t in self._by_pc.values() if t.valid),
                key=lambda t: t.last_use,
                default=None,
            )
            if victim is None:
                raise SimulationError("EC accounting out of sync")
            self._set_of(victim.start_pc).pop(victim.start_pc, None)
            self._evict(victim)
        trace.last_use = self._clock
        ta_set[trace.start_pc] = trace
        self._by_pc[trace.start_pc] = trace
        self.used_blocks += blocks
        self.stats.insertions += 1
        self.stats.da_block_writes += blocks
        return True

    def _evict(self, trace: Trace) -> None:
        self.stats.evictions += 1
        self._drop(trace, count_eviction=False)

    def _drop(self, trace: Trace, count_eviction: bool) -> None:
        if count_eviction:
            self.stats.evictions += 1
        if trace.valid:
            trace.valid = False
            self.used_blocks -= trace.blocks(self.block_slots)
            self._by_pc.pop(trace.start_pc, None)

    def invalidate_all(self) -> None:
        """Flush every trace (register redistribution, Section 3.5)."""
        for ta_set in self._ta:
            ta_set.clear()
        for trace in self._by_pc.values():
            trace.valid = False
        self._by_pc.clear()
        self.used_blocks = 0
        self.stats.invalidations += 1

    @property
    def trace_count(self) -> int:
        return len(self._by_pc)
