"""Trace construction during trace-creation mode.

Each back-end cycle's issued group becomes one Issue Unit; the builder
accumulates units (conceptually through the creation-side fill buffer,
which writes a data-array block whenever eight slots fill up) until the
trace is sealed by a mispredict or a length limit.
"""

from __future__ import annotations

from typing import List, Optional

from repro.ec.trace import IssueUnit, Trace, TraceInstr
from repro.isa import DynInstr


class TraceBuilder:
    """Accumulates issue units for the trace under construction."""

    def __init__(self, block_slots: int, max_units: int):
        self.block_slots = block_slots
        self.max_units = max_units
        self._units: List[IssueUnit] = []
        self._start_pc: Optional[int] = None
        self._next_pos = 0
        self._pending_slots = 0
        self.da_block_writes = 0     # power events: blocks written

    @property
    def active(self) -> bool:
        return self._start_pc is not None

    @property
    def unit_count(self) -> int:
        return len(self._units)

    @property
    def at_capacity(self) -> bool:
        return len(self._units) >= self.max_units

    def begin(self, start_pc: int) -> None:
        self._units = []
        self._start_pc = start_pc
        self._next_pos = 0
        self._pending_slots = 0

    def assign_pos(self, dyn: DynInstr) -> int:
        """Give the next program-order position to a renamed instruction.

        Called at the (program-order) rename stage so positions reflect
        program order even though units are recorded at issue time.
        """
        pos = self._next_pos
        self._next_pos += 1
        return pos

    def record_unit(self, group: List) -> None:
        """Record one cycle's issued group as an Issue Unit.

        ``group`` is a list of (pos, DynInstr) pairs.
        """
        if not group:
            return
        unit = IssueUnit([TraceInstr(pos, dyn) for pos, dyn in group])
        self._units.append(unit)
        self._pending_slots += len(unit)
        while self._pending_slots >= self.block_slots:
            self._pending_slots -= self.block_slots
            self.da_block_writes += 1

    def seal(self, tid: int) -> Optional[Trace]:
        """Finish the trace; returns None if nothing was recorded."""
        if self._start_pc is None or not self._units:
            self._reset()
            return None
        if self._pending_slots:
            self.da_block_writes += 1   # final partial block write
        trace = Trace(tid, self._start_pc, self._units)
        self._reset()
        return trace

    def _reset(self) -> None:
        self._units = []
        self._start_pc = None
        self._next_pos = 0
        self._pending_slots = 0
