"""Replay-side fill buffer (Section 3.3, Fig. 7).

During trace execution one DA block is fetched per access; the circular
fill buffer holds two blocks so the next access can start immediately,
hiding most of the EC's three-cycle latency. The model exposes how many
instruction slots have arrived by a given back-end cycle: the first block
lands ``latency`` cycles after the trace read starts, subsequent blocks
stream one per cycle (multi-banked DA), but never run more than one spare
block ahead of consumption (the two-block buffer bound).

An Issue Unit can leave the buffer only when all its slots have arrived —
very large units spanning a late second block stall, the corner case the
paper notes.
"""

from __future__ import annotations

from repro.errors import SimulationError


class FillBuffer:
    """Streaming window between the DA and the execution core."""

    def __init__(self, block_slots: int, latency: int, depth_blocks: int = 2):
        self.block_slots = block_slots
        self.latency = latency
        self.depth_slots = depth_blocks * block_slots
        self._start_cycle = 0
        self._total_slots = 0
        self._consumed = 0
        self._arrived = 0
        self._active = False
        self.block_reads = 0    # power events

    @property
    def active(self) -> bool:
        return self._active

    def start(self, cycle: int, total_slots: int) -> None:
        """Begin streaming a trace of ``total_slots`` instruction slots."""
        self._start_cycle = cycle
        self._total_slots = total_slots
        self._consumed = 0
        self._arrived = 0
        self._active = True

    def tick(self, cycle: int) -> None:
        """Advance arrivals for this cycle."""
        if not self._active or self._arrived >= self._total_slots:
            return
        elapsed = cycle - self._start_cycle - self.latency
        if elapsed < 0:
            return
        # One block per cycle since the first arrival, bounded by the
        # buffer depth ahead of consumption and by the trace size.
        streamed = (elapsed + 1) * self.block_slots
        bound = min(self._total_slots, self._consumed + self.depth_slots,
                    streamed)
        if bound > self._arrived:
            new_blocks = (-(-bound // self.block_slots)
                          - (-(-self._arrived // self.block_slots)))
            self.block_reads += max(0, new_blocks)
            self._arrived = bound

    def can_consume(self, n_slots: int) -> bool:
        return self._arrived - self._consumed >= n_slots

    def cycle_ready_for(self, n_slots: int):
        """Cycle by which ``n_slots`` past current consumption will have
        arrived, assuming no further consumption — the replay skip-ahead
        bound. None if the request can never be satisfied as-is.
        """
        target = self._consumed + n_slots
        if (not self._active or target > self._total_slots
                or n_slots > self.depth_slots):
            return None
        blocks = -(-target // self.block_slots)
        return self._start_cycle + self.latency + blocks - 1

    def consume(self, n_slots: int) -> None:
        if not self.can_consume(n_slots):
            raise SimulationError("fill buffer underflow")
        self._consumed += n_slots

    def stop(self) -> None:
        self._active = False
