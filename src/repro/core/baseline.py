"""Fully synchronous baseline core: nine-stage, four-way, out-of-order.

Pipeline (Section 3.1): Fetch (two-cycle I-cache) -> Decode -> Rename ->
Dispatch -> Issue (monolithic 128-entry window, single-cycle Wake-Up/
Select) -> Register Read -> Execute -> Write Back -> Retire.

Modelling decisions (documented in DESIGN.md):

* Wrong paths are not executed: a mispredicted (or BTB-missing) branch
  stalls fetch until it resolves, which yields the same timing penalty as
  a squash-based model without tracking wrong-path state.
* Back-to-back scheduling: a producer issued at cycle ``c`` with latency
  ``L`` broadcasts its tag at ``c + L``; dependents can be selected the
  same cycle (the paper's critical Wake-Up/Select loop). Setting
  ``wakeup_extra_delay=1`` pipelines that loop (Fig. 2).
* ``extra_frontend_stages`` lengthens the Fetch/Mispredict loop (Fig. 2).
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Optional, Tuple

from repro.core.config import CoreConfig
from repro.core.stats import SimStats
from repro.errors import SimulationError
from repro.execute.fu import FuPool
from repro.execute.lsq import LoadStoreQueue
from repro.frontend.bpred import BranchPredictor
from repro.isa import DynInstr, OpClass
from repro.isa.opclasses import EXEC_LATENCY
from repro.issue.window import IssueWindow
from repro.mem.hierarchy import MemoryHierarchy
from repro.rename.r10k import R10KRenamer
from repro.rob.reorder_buffer import ReorderBuffer, RobEntry
from repro.workloads.stream import InstructionStream

#: Abort the run if no instruction commits for this many cycles.
_DEADLOCK_WINDOW = 20_000


class BaselineCore:
    """Cycle-level model of the paper's reference superscalar processor."""

    def __init__(self, config: CoreConfig, stream: InstructionStream,
                 mem_scale: float = 1.0,
                 hierarchy: Optional[MemoryHierarchy] = None):
        self.config = config
        self.stream = stream
        self.mem_scale = mem_scale
        self.stats = SimStats()

        self.hierarchy = hierarchy or MemoryHierarchy(config.memory)
        self.bpred = BranchPredictor(config.bpred)
        self.renamer = R10KRenamer(config.phys_regs)
        self.iw = IssueWindow(config.iw_entries, config.issue_width,
                              config.wakeup_extra_delay)
        self.rob = ReorderBuffer(config.rob_entries)
        self.lsq = LoadStoreQueue(config.lsq_entries)
        self.fu = FuPool(config.int_alus, config.int_muldivs,
                         config.mem_ports, config.fp_adders,
                         config.fp_muldivs)

        # Scoreboard: physical-register readiness.
        self._ready = bytearray([1] * config.phys_regs)
        # In-flight ROB entries not yet issued, keyed by sequence number.
        self._rob_lookup: Dict[int, RobEntry] = {}

        # Inter-stage latches: (ready_cycle, dyn) in program order.
        self._fetch_out: Deque[Tuple[int, DynInstr]] = deque()
        self._decode_out: Deque[Tuple[int, DynInstr]] = deque()
        self._rename_out: Deque[Tuple[int, DynInstr]] = deque()

        # Completion event queues keyed by cycle.
        self._wake_events: Dict[int, List[int]] = {}
        self._done_events: Dict[int, List[RobEntry]] = {}

        self.cycle = 0
        self._fetch_blocked = False
        self._mispredict_seq = -1      # seq of the blocking branch
        self._fetch_resume_cycle = 0

    # --------------------------------------------------------------- run

    def run(self, max_instructions: int, warmup: int = 0) -> SimStats:
        """Simulate until ``max_instructions`` commit after warmup.

        ``warmup`` instructions are first streamed through the caches and
        branch predictor functionally (no timing), mirroring the paper's
        fast-forward before detailed simulation.
        """
        if warmup:
            self._functional_warmup(warmup)
        last_commit_cycle = 0
        while self.stats.committed < max_instructions:
            committed_before = self.stats.committed
            self.step()
            if self.stats.committed != committed_before:
                last_commit_cycle = self.cycle
            elif self.cycle - last_commit_cycle > _DEADLOCK_WINDOW:
                raise SimulationError(
                    f"no commit for {_DEADLOCK_WINDOW} cycles at cycle "
                    f"{self.cycle} (committed={self.stats.committed})"
                )
        self._finalize_stats()
        return self.stats

    def _finalize_stats(self) -> None:
        self.stats.be_cycles_create = self.cycle
        self.stats.fe_cycles_active = self.cycle

    def _functional_warmup(self, count: int) -> None:
        """Prime caches and predictor without timing."""
        for _ in range(count):
            dyn = self.stream.next_instr()
            if dyn.seq % 4 == 0:
                self.hierarchy.ifetch(dyn.pc, self.mem_scale)
            if dyn.mem_addr is not None:
                if dyn.op is OpClass.LOAD:
                    self.hierarchy.load(dyn.mem_addr, self.mem_scale)
                else:
                    self.hierarchy.store(dyn.mem_addr, self.mem_scale)
            if dyn.is_branch:
                self.bpred.predict(dyn)

    # -------------------------------------------------------------- cycle

    def step(self) -> None:
        """Advance one clock cycle."""
        c = self.cycle
        self.fu.begin_cycle(c)
        self._do_writeback(c)
        self._do_commit(c)
        self._do_issue(c)
        self._do_dispatch(c)
        self._do_rename(c)
        self._do_decode(c)
        self._do_fetch(c)
        self.cycle = c + 1

    # Writeback: mature tag broadcasts and completions.
    def _do_writeback(self, c: int) -> None:
        wakes = self._wake_events.pop(c, None)
        if wakes:
            for tag in wakes:
                self._ready[tag] = 1
                self.iw.broadcast(tag, c)
            self.stats.count("iw_broadcast", len(wakes))
            self.stats.count("rf_write", len(wakes))
        dones = self._done_events.pop(c, None)
        if dones:
            for entry in dones:
                entry.done = True
                if entry.mispredicted and entry.dyn.seq == self._mispredict_seq:
                    self._mispredict_seq = -1
                    self._fetch_blocked = False
                    self._fetch_resume_cycle = c + 1

    def _do_commit(self, c: int) -> None:
        retired = self.rob.retire_ready(self.config.commit_width)
        for entry in retired:
            dyn = entry.dyn
            if dyn.op is OpClass.STORE and dyn.mem_addr is not None:
                self.hierarchy.store(dyn.mem_addr, self.mem_scale)
                self.stats.count("dcache_access")
            if entry.is_mem:
                self.lsq.release()
            self.renamer.commit(dyn)
            self.stats.committed += 1
        if retired:
            self.stats.count("rob_read", len(retired))

    def _do_issue(self, c: int) -> None:
        # Pipelining the Wake-Up/Select loop without speculative wakeup
        # (Fig. 2) both delays dependents by a cycle (handled in the
        # window) and lets a selection round complete only every other
        # cycle: the previous round's grants are not visible to the
        # arbiter until the loop closes.
        if self.config.wakeup_extra_delay and (c & 1):
            return
        selected = self.iw.select(c, self.fu)
        for dyn in selected:
            self._start_execution(dyn, c)
        if selected:
            self.stats.issued += len(selected)
            self.stats.count("iw_select", len(selected))
            self.stats.count("rf_read", sum(len(d.src_tags) for d in selected))
            self.stats.count("fu_op", len(selected))

    def _start_execution(self, dyn: DynInstr, c: int) -> None:
        """Schedule wake/done events for one issued instruction."""
        lat = EXEC_LATENCY[dyn.op]
        if dyn.op is OpClass.LOAD:
            lat += self.hierarchy.load(dyn.mem_addr, self.mem_scale)
            self.stats.count("dcache_access")
        wake = c + lat
        done = wake + self.config.regread_stages
        if dyn.dest_tag >= 0:
            self._wake_events.setdefault(wake, []).append(dyn.dest_tag)
        entry = self._rob_lookup[dyn.seq]
        self._done_events.setdefault(done, []).append(entry)
        del self._rob_lookup[dyn.seq]

    def _do_dispatch(self, c: int) -> None:
        n = 0
        while self._rename_out and n < self.config.dispatch_width:
            ready_cycle, dyn = self._rename_out[0]
            if ready_cycle > c:
                break
            if self.rob.full or self.iw.free_slots == 0:
                break
            if dyn.mem_addr is not None and self.lsq.full:
                break
            self._rename_out.popleft()
            mispredicted = dyn.seq == self._mispredict_seq
            entry = RobEntry(dyn, mispredicted=mispredicted)
            self.rob.insert(entry)
            self._rob_lookup[dyn.seq] = entry
            if dyn.mem_addr is not None:
                self.lsq.insert()
                self.stats.count("lsq_write")
            self.iw.insert(dyn, self._is_ready, earliest=c + 1)
            self.stats.count("iw_write")
            self.stats.count("rob_write")
            n += 1

    def _is_ready(self, tag: int) -> bool:
        return bool(self._ready[tag])

    def _do_rename(self, c: int) -> None:
        n = 0
        while self._decode_out and n < self.config.rename_width:
            ready_cycle, dyn = self._decode_out[0]
            if ready_cycle > c:
                break
            needs_dest = dyn.dest is not None and dyn.dest != 0
            if not self.renamer.can_rename(needs_dest):
                break
            self._decode_out.popleft()
            self.renamer.rename(dyn)
            if dyn.dest_tag >= 0:
                self._ready[dyn.dest_tag] = 0
            self._rename_out.append((c + 1, dyn))
            self.stats.count("rename_op")
            n += 1

    def _do_decode(self, c: int) -> None:
        n = 0
        while self._fetch_out and n < self.config.decode_width:
            ready_cycle, dyn = self._fetch_out[0]
            if ready_cycle > c:
                break
            self._fetch_out.popleft()
            self._decode_out.append((c + 1, dyn))
            self.stats.count("decode_op")
            n += 1

    def _do_fetch(self, c: int) -> None:
        if self._fetch_blocked or c < self._fetch_resume_cycle:
            return
        # Bounded fetch-side buffering: don't run ahead of the machine.
        if len(self._fetch_out) >= 4 * self.config.fetch_width:
            return
        group_start: Optional[int] = None
        delay = 0
        for _ in range(self.config.fetch_width):
            dyn = self.stream.next_instr()
            if group_start is None:
                group_start = dyn.pc
                delay = (self.hierarchy.ifetch(dyn.pc, self.mem_scale)
                         + self.config.extra_frontend_stages)
                self.stats.count("icache_access")
            self._fetch_out.append((c + delay, dyn))
            self.stats.fetched += 1
            if dyn.is_branch:
                self.stats.branches += 1
                self.stats.count("bpred_lookup")
                correct = self.bpred.predict(dyn)
                if not correct:
                    self.stats.mispredicts += 1
                    self._fetch_blocked = True
                    self._mispredict_seq = dyn.seq
                break  # fetch group ends at a control transfer
