"""Fully synchronous baseline core: nine-stage, four-way, out-of-order.

Pipeline (Section 3.1): Fetch (two-cycle I-cache) -> Decode -> Rename ->
Dispatch -> Issue (monolithic 128-entry window, single-cycle Wake-Up/
Select) -> Register Read -> Execute -> Write Back -> Retire.

The back end — issue bookkeeping, FuPool/LSQ execution, writeback, ROB
retire, deadlock watchdog — is the shared :mod:`repro.core.engine`; this
module keeps only the synchronous machine's policy: single-clock ticking,
R10000 renaming, and fetch that stalls on a mispredict until the branch
resolves.

Modelling decisions (documented in DESIGN.md):

* Wrong paths are not executed: a mispredicted (or BTB-missing) branch
  stalls fetch until it resolves, which yields the same timing penalty as
  a squash-based model without tracking wrong-path state.
* Back-to-back scheduling: a producer issued at cycle ``c`` with latency
  ``L`` broadcasts its tag at ``c + L``; dependents can be selected the
  same cycle (the paper's critical Wake-Up/Select loop). Setting
  ``wakeup_extra_delay=1`` pipelines that loop (Fig. 2).
* ``extra_frontend_stages`` lengthens the Fetch/Mispredict loop (Fig. 2).
"""

from __future__ import annotations

from typing import Optional

from repro.core.config import ClockPlan, CoreConfig
from repro.core.engine import DeadlockWatchdog, ExecBackend, FrontEndFeed
from repro.core.stats import SimStats
from repro.frontend.bpred import BranchPredictor
from repro.isa import DynInstr, OpClass
from repro.issue.window import IssueWindow
from repro.mem.hierarchy import MemoryHierarchy
from repro.obs.metrics import MetricRegistry, register_core_sources
from repro.obs.trace import TraceRecorder
from repro.rename.r10k import R10KRenamer
from repro.rob.reorder_buffer import RobEntry
from repro.workloads.stream import InstructionStream

#: Kind-specific default for ``CoreConfig.deadlock_window == 0``.
_DEADLOCK_WINDOW = 20_000


class BaselineCore:
    """Cycle-level model of the paper's reference superscalar processor."""

    def __init__(self, config: CoreConfig, stream: InstructionStream,
                 mem_scale: float = 1.0,
                 hierarchy: Optional[MemoryHierarchy] = None,
                 clock: Optional[ClockPlan] = None):
        self.config = config
        self.stream = stream
        self.mem_scale = mem_scale
        self.clock = clock
        self.stats = SimStats()
        self._events = self.stats.events

        self.hierarchy = hierarchy or MemoryHierarchy(config.memory,
                                                      spec=config.mem)
        self.bpred = BranchPredictor(config.bpred)
        self.renamer = R10KRenamer(config.phys_regs)
        self.iw = IssueWindow(config.iw_entries, config.issue_width,
                              config.wakeup_extra_delay)
        self.fe = FrontEndFeed(config.fetch_width, config.decode_width,
                               self.stats)
        self.be = ExecBackend(config, self.stats, self.hierarchy,
                              config.phys_regs)
        self.watchdog = DeadlockWatchdog(
            config.deadlock_window or _DEADLOCK_WINDOW)

        # Flight recorder (repro.obs): armed only when the config carries
        # a TraceSpec; otherwise every emission site is a dead branch.
        if config.trace is not None:
            self.trace = TraceRecorder(config.trace)
            self.be.attach_trace(self.trace)
            self.fe.trace = self.trace
            self.hierarchy.trace = self.trace
        else:
            self.trace = None
        self.metrics = MetricRegistry()
        register_core_sources(self.metrics, self)

        # Engine structures, re-exposed under their historical names.
        self.rob = self.be.rob
        self.lsq = self.be.lsq
        self.fu = self.be.fu
        self.be.configure(self.iw, self._on_branch_resolved,
                          self.renamer.commit_entry)

        # Hot-path bindings: per-cycle code reads these instead of
        # chasing attribute chains (the objects never change identity).
        self._fetch_out = self.fe.fetch_out
        self._decode_out = self.fe.decode_out
        self._rename_out = self.fe.rename_out
        self._dispatch_width = config.dispatch_width
        self._rename_width = config.rename_width
        self._fetch_width = config.fetch_width
        self._fetch_cap = self.fe._fetch_cap
        self._extra_fe_stages = config.extra_frontend_stages
        self._wakeup_gate = config.wakeup_extra_delay
        self._next_instr = stream.next_instr
        self._ifetch = self.hierarchy.ifetch
        self._predict = self.bpred.predict

        self.cycle = 0
        self._fetch_blocked = False
        self._mispredict_seq = -1      # seq of the blocking branch
        self._fetch_resume_cycle = 0

        # Adaptive clocking: a governor in the plan attaches a controller
        # that owns the piecewise time sum and retunes mem_scale. Deferred
        # import — repro.dvfs.controller imports this package.
        if clock is not None and clock.governor is not None:
            from repro.dvfs.controller import SyncDvfsController

            self.dvfs = SyncDvfsController(clock.governor, clock.base_mhz,
                                           self)
        else:
            self.dvfs = None

    # --------------------------------------------------------------- run

    def run(self, max_instructions: int, warmup: int = 0) -> SimStats:
        """Simulate until ``max_instructions`` commit after warmup.

        ``warmup`` instructions are first streamed through the caches and
        branch predictor functionally (no timing), mirroring the paper's
        fast-forward before detailed simulation.
        """
        engine = self.config.engine
        if engine == "turbo":
            from repro.core.engine.turbo.sync import run_turbo_sync

            return run_turbo_sync(self, max_instructions, warmup,
                                  prof=getattr(self, "_turbo_prof", None))
        if engine == "vector":
            from repro.core.engine.turbo.vector import run_vector_sync

            return run_vector_sync(self, max_instructions, warmup,
                                   prof=getattr(self, "_turbo_prof", None))
        if warmup:
            self._functional_warmup(warmup)
            if self.dvfs is not None:
                self.dvfs.reset_baseline(self)
        stats = self.stats
        watchdog = self.watchdog
        window = watchdog.window
        last_cycle = 0
        last_count = -1
        iw = self.iw
        rob_q = self.be._rob_q
        dvfs = self.dvfs
        dvfs_next = dvfs.next_check if dvfs is not None else None
        while stats.committed < max_instructions:
            self.step()
            c = self.cycle
            committed = stats.committed
            if committed != last_count:
                last_count = committed
                last_cycle = c
                if committed >= max_instructions:
                    break   # don't skip past the final commit's cycle
            elif c - last_cycle > window:
                watchdog.trip(c, committed,
                              snapshot=self._deadlock_snapshot)
            # Governor interval boundary. A skip-ahead below may jump past
            # the boundary; the hook then fires here on the next simulated
            # cycle with a correspondingly longer interval (DESIGN.md §4).
            if dvfs_next is not None and c >= dvfs_next:
                dvfs_next = dvfs.on_interval(self, c)
            # Skip ahead over provably idle cycles (mispredict stalls,
            # long-latency load shadows with the machine backed up). The
            # two cheap vetoes cover most busy cycles; the full stall
            # analysis runs only behind them.
            if iw._eligible or (rob_q and rob_q[0].done):
                continue
            target = self._idle_until(c)
            if target is not None:
                self.cycle = target
        self._finalize_stats()
        return stats

    def _idle_until(self, c: int):
        """Earliest future cycle anything can happen, or None if the
        machine can act at cycle ``c``.

        Every stage is checked for actionability *now*; a stage blocked
        on a latch timestamp bounds the skip by that timestamp, a stage
        blocked on a structural resource (ROB/IW/LSQ full, empty free
        list) unblocks only through a scheduled wake/done event, which
        bounds the skip through the event queues. Skipped cycles touch
        no state and no counters (the caller has already vetoed issue
        and retire work).
        """
        be = self.be
        bound = None
        # Fetch: able to act unless stalled, delayed, or out of room.
        if not self._fetch_blocked:
            if c >= self._fetch_resume_cycle:
                if len(self._fetch_out) < self._fetch_cap:
                    return None
            else:
                bound = self._fetch_resume_cycle
        fetch_out = self._fetch_out
        if fetch_out:
            rc = fetch_out[0].lat_ready
            if rc <= c:
                return None          # decode moves this cycle
            if bound is None or rc < bound:
                bound = rc
        decode_out = self._decode_out
        if decode_out:
            dyn = decode_out[0]
            rc = dyn.lat_ready
            if rc <= c:
                # Rename acts unless the head needs a tag and none free.
                dest = dyn.dest
                if not (dest is not None and dest != 0
                        and not self.renamer._free):
                    return None
            elif bound is None or rc < bound:
                bound = rc
        rename_out = self._rename_out
        if rename_out:
            dyn = rename_out[0]
            rc = dyn.lat_ready
            if rc <= c:
                iw = self.iw
                if not (len(be._rob_q) >= be.rob.capacity
                        or iw._count >= iw.capacity
                        or (dyn.mem_addr is not None and be.lsq.full)):
                    return None      # dispatch moves this cycle
            elif bound is None or rc < bound:
                bound = rc
        future = self.iw._future
        if future:
            fmin = future[0][0]
            if bound is None or fmin < bound:
                bound = fmin
        ev = be.next_event_cycle()
        if ev is not None and (bound is None or ev < bound):
            bound = ev
        if bound is not None and bound > c:
            return bound
        return None

    def _finalize_stats(self) -> None:
        self.stats.be_cycles_create = self.cycle
        self.stats.fe_cycles_active = self.cycle

    def _deadlock_snapshot(self):
        """Structured machine state for the watchdog's DeadlockError."""
        be = self.be
        head = be.rob.head()
        oldest = None
        if head is not None:
            dyn = head.dyn
            oldest = {"seq": dyn.seq, "pc": dyn.pc, "op": dyn.op.name,
                      "done": head.done, "is_mem": head.is_mem}
        snap = {
            "core": type(self).__name__,
            "cycle": self.cycle,
            "committed": self.stats.committed,
            "rob": {"occupancy": len(be.rob), "capacity": be.rob.capacity},
            "lsq": {"occupancy": len(be.lsq), "capacity": be.lsq.capacity},
            "iw": {"occupancy": len(self.iw), "capacity": self.iw.capacity},
            "fetch_blocked": self._fetch_blocked,
            "next_event_cycle": be.next_event_cycle(),
            "oldest": oldest,
            "mshr": self.hierarchy.stats_dict().get("mshr"),
        }
        if self.trace is not None:
            snap["trace_window"] = [list(ev)
                                    for ev in self.trace.window(256)]
        return snap

    def _functional_warmup(self, count: int) -> None:
        """Prime caches and predictor without timing.

        Goes through the hierarchy's ``warm_*`` entry points: contents
        and counters update exactly as a timed access would, but the
        MSHR timeline is never touched (a warmup burst at cycle 0 must
        not pre-occupy the miss-overlap budget of the timed run).
        """
        next_instr = self._next_instr
        ifetch = self.hierarchy.warm_ifetch
        load = self.hierarchy.warm_load
        store = self.hierarchy.warm_store
        predict = self._predict
        for _ in range(count):
            dyn = next_instr()
            if dyn.seq % 4 == 0:
                ifetch(dyn.pc)
            addr = dyn.mem_addr
            if addr is not None:
                if dyn.op is OpClass.LOAD:
                    load(addr)
                else:
                    store(addr)
            if dyn.branch_kind:
                predict(dyn)

    # -------------------------------------------------------------- cycle

    def step(self) -> None:
        """Advance one clock cycle (the engine tick contract, single
        domain: writeback -> commit -> issue -> dispatch -> rename ->
        decode -> fetch, then the cycle counter advances). Stages with
        provably no work this cycle are skipped up front."""
        c = self.cycle
        self.be.tick(c, self.mem_scale)
        if self.iw._count and not (self._wakeup_gate and (c & 1)):
            self._do_issue(c)
        if self._rename_out:
            self._do_dispatch(c)
        if self._decode_out:
            self._do_rename(c)
        if self._fetch_out:
            self.fe.decode(c)
        if not self._fetch_blocked and c >= self._fetch_resume_cycle:
            self._do_fetch(c)
        self.cycle = c + 1

    # Writeback hook: the blocking branch resolved — restart fetch.
    def _on_branch_resolved(self, entry: RobEntry, c: int) -> None:
        if entry.dyn.seq == self._mispredict_seq:
            self._mispredict_seq = -1
            self._fetch_blocked = False
            self._fetch_resume_cycle = c + 1

    def _do_issue(self, c: int) -> None:
        # The caller applies the Fig. 2 selection gate: pipelining the
        # Wake-Up/Select loop without speculative wakeup both delays
        # dependents by a cycle (handled in the window) and lets a
        # selection round complete only every other cycle — the previous
        # round's grants are not visible to the arbiter until the loop
        # closes.
        be = self.be
        selected = self.iw.select(c, be.fu)
        if not selected:
            tr = self.trace
            if tr is not None:
                # The caller gated on window occupancy: an empty grant
                # means every occupant waits on operands (dep_wait)
                # unless ready entries were passed over for units.
                tr.emit(c, "stall", -1,
                        "fu_busy" if self.iw._eligible else "dep_wait")
            return
        rf_reads = be.schedule_group(selected, c, self.mem_scale)
        n = len(selected)
        self.stats.issued += n
        events = self._events
        events["iw_select"] += n
        events["rf_read"] += rf_reads
        events["fu_op"] += n

    def _do_dispatch(self, c: int) -> None:
        rename_out = self._rename_out
        be = self.be
        iw = self.iw
        rob = be.rob
        lsq = be.lsq
        rob_q = be._rob_q
        rob_cap = rob.capacity
        iw_cap = iw.capacity
        pending = be.pending
        ready = be.ready_getter
        events = self._events
        tr = self.trace
        earliest = c + 1
        n = 0
        while rename_out and n < self._dispatch_width:
            dyn = rename_out[0]
            if dyn.lat_ready > c:
                break
            if len(rob_q) >= rob_cap or iw._count >= iw_cap:
                if tr is not None:
                    tr.emit(c, "stall", dyn.seq,
                            "rob_full" if len(rob_q) >= rob_cap
                            else "iw_full")
                break
            if dyn.mem_addr is not None and lsq.full:
                if tr is not None:
                    tr.emit(c, "stall", dyn.seq, "lsq_full")
                break
            rename_out.popleft()
            entry = RobEntry(dyn,
                             mispredicted=dyn.seq == self._mispredict_seq)
            # Inline ExecBackend.admit (capacity checked above); this is
            # the hottest per-instruction loop in the synchronous cores.
            rob_q.append(entry)
            rob.writes += 1
            pending[dyn.seq] = entry
            if entry.is_mem:
                lsq.insert()
                events["lsq_write"] += 1
            events["rob_write"] += 1
            iw.insert(dyn, ready, earliest)
            events["iw_write"] += 1
            if tr is not None:
                tr.emit(c, "dispatch", dyn.seq)
            n += 1

    def _do_rename(self, c: int) -> None:
        decode_out = self._decode_out
        rename_out = self._rename_out
        renamer = self.renamer
        free_tags = renamer._free
        ready = self.be.ready
        events = self._events
        reg_map = renamer._map
        tr = self.trace
        n = 0
        while decode_out and n < self._rename_width:
            dyn = decode_out[0]
            if dyn.lat_ready > c:
                break
            # Inline R10KRenamer.can_rename + rename: this runs once per
            # instruction and the renamer's map/free-list objects are
            # stable.
            dest = dyn.dest
            if dest is None or dest == 0:
                decode_out.popleft()
                dyn.src_tags = tuple([reg_map[s] for s in dyn.srcs])
                dyn.dest_tag = -1
                dyn.old_dest_tag = -1
            else:
                if not free_tags:
                    break
                decode_out.popleft()
                dyn.src_tags = tuple([reg_map[s] for s in dyn.srcs])
                tag = free_tags.popleft()
                dyn.old_dest_tag = reg_map[dest]
                reg_map[dest] = tag
                dyn.dest_tag = tag
                ready[tag] = 0
            dyn.lat_ready = c + 1
            rename_out.append(dyn)
            events["rename_op"] += 1
            if tr is not None:
                tr.emit(c, "rename", dyn.seq)
            n += 1

    def _do_fetch(self, c: int) -> None:
        # The caller has already checked the stall/resume gates.
        fetch_out = self._fetch_out
        if len(fetch_out) >= self._fetch_cap:
            return
        stats = self.stats
        events = self._events
        next_instr = self._next_instr
        tr = self.trace
        delay = 0
        n = 0
        for _ in range(self._fetch_width):
            dyn = next_instr()
            if not n:
                delay = (self._ifetch(dyn.pc, self.mem_scale, c)
                         + self._extra_fe_stages)
                events["icache_access"] += 1
            dyn.lat_ready = c + delay
            fetch_out.append(dyn)
            if tr is not None:
                tr.emit(c, "fetch", dyn.seq)
            n += 1
            if dyn.branch_kind:
                stats.branches += 1
                events["bpred_lookup"] += 1
                correct = self._predict(dyn)
                if not correct:
                    stats.mispredicts += 1
                    self._fetch_blocked = True
                    self._mispredict_seq = dyn.seq
                break  # fetch group ends at a control transfer
        stats.fetched += n
