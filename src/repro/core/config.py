"""Core configuration (the paper's Table 2, plus clock plans from Table 1).

``CoreConfig`` describes the machine independent of clocks; ``ClockPlan``
binds the front-end / back-end domains to frequencies. The paper sweeps
front-end speedups of 0-100% and a back-end (trace-execution) speedup of
50% over the issue-window-limited baseline clock.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass, field, replace

from typing import Optional

from repro.errors import ConfigError
from repro.frontend.bpred import BPredConfig
from repro.mem.hierarchy import MemoryConfig
from repro.mem.spec import MemorySpec
from repro.obs.spec import TraceSpec


def _canonical(value: object) -> object:
    """Normalize a payload so ``==``-equal values serialize identically.

    JSON renders 64 and 64.0 differently while Python compares them
    equal; folding integral floats to ints keeps the invariant that
    equal configs/specs share a hash, whatever numeric type the caller
    used.
    """
    if isinstance(value, float) and value.is_integer():
        return int(value)
    if isinstance(value, dict):
        return {k: _canonical(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_canonical(v) for v in value]
    return value


def stable_hash(payload: object, length: int = 16) -> str:
    """Deterministic hex digest of a JSON-serializable payload.

    Uses canonical JSON (sorted keys, no whitespace, integral floats
    folded to ints) so the digest is stable across processes and Python
    versions — unlike ``hash()``, which is randomized per interpreter
    run.
    """
    blob = json.dumps(_canonical(payload), sort_keys=True,
                      separators=(",", ":"), default=str)
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:length]


class _CacheKeyMixin:
    """Content-addressed identity for frozen config dataclasses."""

    def cache_key(self) -> str:
        """Stable short hash of every field (nested configs included)."""
        return stable_hash(asdict(self))


@dataclass(frozen=True)
class CoreConfig(_CacheKeyMixin):
    """Microarchitecture parameters (defaults = paper Table 2, baseline)."""

    # Widths
    fetch_width: int = 4
    decode_width: int = 4
    rename_width: int = 4
    dispatch_width: int = 4
    commit_width: int = 4
    issue_width: int = 6

    # Structures
    iw_entries: int = 128
    rob_entries: int = 160
    lsq_entries: int = 64
    phys_regs: int = 192          # baseline register file
    regread_stages: int = 1       # 2 for the Flywheel's 512-entry file

    # Functional units (Table 2)
    int_alus: int = 4
    int_muldivs: int = 2
    mem_ports: int = 2
    fp_adders: int = 2
    fp_muldivs: int = 1

    # Pipeline-variant knobs (Fig. 2 loops study)
    extra_frontend_stages: int = 0   # extra Fetch/Mispredict loop stages
    wakeup_extra_delay: int = 0      # 1 = pipelined Wake-Up/Select (no b2b)

    #: Abort the run if no instruction commits for this many cycles.
    #: 0 selects the kind-specific default (20k for synchronous cores,
    #: 40k for the Flywheel, whose checkpoint/drain sequences legitimately
    #: stall longer).
    deadlock_window: int = 0

    # Substrates
    bpred: BPredConfig = field(default_factory=BPredConfig)
    memory: MemoryConfig = field(default_factory=MemoryConfig)

    #: Composable memory-system spec (:class:`repro.mem.MemorySpec`):
    #: cache-level chain, MSHR budget, prefetcher, write policy. ``None``
    #: derives the legacy-equivalent spec from ``memory`` — the
    #: golden-pinned default. The kind registry's ``normalize_config``
    #: folds an explicit-but-redundant spec back to ``None`` so both
    #: spellings of the default machine hash identically.
    mem: Optional[MemorySpec] = None

    #: Flight-recorder spec (:class:`repro.obs.TraceSpec`): ring-buffer
    #: size, event mask and cycle window. ``None`` (the default) means
    #: no recorder is constructed — the cores carry a single ``None``
    #: attribute and every emission site reduces to one predictable
    #: branch, which is what keeps the golden stats and BENCH_core.json
    #: untouched (DESIGN.md §7).
    trace: Optional[TraceSpec] = None

    #: Execution-engine backend. ``"legacy"`` is the per-object tick
    #: loop every golden number was pinned on; ``"turbo"`` selects the
    #: batched struct-of-arrays engine (``repro.core.engine.turbo``) and
    #: ``"vector"`` the third tier on top of it (precomputed NumPy
    #: column kernels + event-horizon skip-ahead,
    #: ``repro.core.engine.turbo.vector``). Every backend is required
    #: to be bit-identical on every counter — the engine axis picks an
    #: implementation, never a machine (DESIGN.md §8, §11). The key is
    #: elided from spec payloads when default, so all historical content
    #: addresses are unchanged.
    engine: str = "legacy"

    def __post_init__(self) -> None:
        # Rebuild specs handed over as plain payload dicts (store
        # records, RunSpec.from_dict), mirroring ClockPlan.governor.
        if isinstance(self.mem, dict):
            object.__setattr__(self, "mem", MemorySpec.from_dict(self.mem))
        if isinstance(self.trace, dict):
            object.__setattr__(self, "trace",
                               TraceSpec.from_dict(self.trace))
        if self.issue_width < 1 or self.fetch_width < 1:
            raise ConfigError("widths must be >= 1")
        if self.phys_regs < 64 + self.rename_width:
            raise ConfigError("too few physical registers to rename at all")
        if self.iw_entries < self.issue_width:
            raise ConfigError("issue window smaller than issue width")
        if self.deadlock_window < 0:
            raise ConfigError("deadlock_window must be >= 0 (0 = default)")
        if self.engine not in ("legacy", "turbo", "vector"):
            raise ConfigError(
                f"unknown engine {self.engine!r}; expected 'legacy', "
                "'turbo' or 'vector'")
        if self.engine != "legacy":
            # Deferred import: the turbo package guards its NumPy
            # dependency and raises the canonical ConfigError when the
            # extra is not installed. Checking at config construction
            # fails the run at spec time, not mid-campaign.
            from repro.core.engine.turbo import require_numpy

            require_numpy()

    def with_variant(self, **kw) -> "CoreConfig":
        """Return a copy with some fields replaced (pipeline variants)."""
        return replace(self, **kw)


@dataclass(frozen=True)
class FlywheelConfig(_CacheKeyMixin):
    """Flywheel-specific structures on top of a :class:`CoreConfig`.

    Defaults follow Table 2 and Sections 3.3-3.5: a 128K two-way Execution
    Cache with three-cycle access and eight-instruction blocks, a 512-entry
    register file organised as per-architected-register pools, two-cycle
    register file access, SRT fast trace switch, and register
    redistribution checked every 500k cycles at a 100-cycle penalty.
    """

    ec_enabled: bool = True         # False = "Register Allocation" config
    ec_kb: int = 128
    ec_ways: int = 2
    ec_latency: int = 3             # cycles per data-array access
    ec_block_slots: int = 8         # instructions per DA block
    ec_bytes_per_slot: int = 8      # storage per pre-scheduled instruction
    #: Traces are kept "as long as possible" (Section 3.3) so that the
    #: recurring post-mispredict PCs dominate trace starts; a short cap
    #: would slice loops at phase-shifting addresses and thrash the EC.
    max_trace_units: int = 512      # safety bound on trace length
    max_trace_instrs: int = 768     # natural trace-end threshold

    pool_regs: int = 512            # Flywheel register file entries
    default_pool_size: int = 8      # 512 / 64 architected registers
    min_pool_size: int = 2
    max_pool_size: int = 32

    use_srt: bool = True            # speculative remapping table enabled
    #: The paper checks the stall counters every 500k cycles over 100M
    #: simulated instructions. Our runs are ~1000x shorter, so the default
    #: interval is scaled down proportionally to keep the same number of
    #: redistribution opportunities per run; pass 500_000 to model the
    #: paper's literal setting.
    redistribution_interval: int = 10_000    # cycles between counter checks
    redistribution_penalty: int = 100        # cycles per redistribution
    redistribution_enabled: bool = True

    sync_cycles: int = 1            # mixed-clock FIFO latency (consumer cycles)
    tag_window: int = 2             # duplicated tag-match depth (Sec. 3.2)
    #: Section 3.2's cheaper alternative to duplicated tag matching: delay
    #: the wake-up match until broadcasts are seen in the other domain,
    #: losing exactly the back-to-back capability the design preserves.
    delay_network: bool = False

    @property
    def ec_blocks(self) -> int:
        """Total data-array blocks in the Execution Cache."""
        return (self.ec_kb * 1024) // (self.ec_block_slots * self.ec_bytes_per_slot)


@dataclass(frozen=True)
class ClockPlan(_CacheKeyMixin):
    """Frequencies (MHz) for a run, plus an optional adaptive governor.

    ``fe_mhz`` drives fetch/decode/rename/dispatch; ``be_mhz`` drives the
    issue window and execution core in trace-creation mode (and is the
    baseline's single clock); ``be_fast_mhz`` drives the execution core in
    trace-execution mode. The paper's sweep expresses these as percentage
    speedups over the baseline clock.

    ``governor`` attaches a runtime DVFS policy
    (:class:`repro.dvfs.GovernorConfig`) that retunes the back-end clock
    at interval boundaries; ``None`` (the default) attaches no controller
    and is the static machine the paper models. Because the governor
    rides inside the plan, it participates in ``cache_key()`` and flows
    through campaign specs and the result store unchanged.
    """

    base_mhz: float = 950.0          # Table 1, 0.18um issue window
    fe_speedup: float = 0.0          # 0.0 .. 1.0  (0% .. 100%)
    be_speedup: float = 0.0          # trace-execution core speedup (0.5 = 50%)
    governor: "object" = None        # Optional[repro.dvfs.GovernorConfig]

    def __post_init__(self) -> None:
        # Coerce int-valued inputs (e.g. base_mhz=950) so equal plans
        # also serialize identically — cache keys go through JSON, where
        # 950 and 950.0 render differently.
        for name in ("base_mhz", "fe_speedup", "be_speedup"):
            object.__setattr__(self, name, float(getattr(self, name)))
        # Rebuild a governor handed over as a plain payload dict (store
        # records, RunSpec.from_dict). Deferred import: repro.dvfs is a
        # consumer of this module.
        if isinstance(self.governor, dict):
            from repro.dvfs.config import GovernorConfig

            object.__setattr__(self, "governor",
                               GovernorConfig(**self.governor))

    @property
    def fe_mhz(self) -> float:
        return self.base_mhz * (1.0 + self.fe_speedup)

    @property
    def be_mhz(self) -> float:
        return self.base_mhz

    @property
    def be_fast_mhz(self) -> float:
        return self.base_mhz * (1.0 + self.be_speedup)

    def mem_scale(self, domain_mhz: float) -> float:
        """DRAM cycles multiplier: DRAM time is fixed in ns, so a faster
        clock sees proportionally more cycles."""
        return domain_mhz / self.base_mhz
