"""Simulation execution for the registered core kinds.

This module defines :class:`SimResult`, the per-kind runners, and the
built-in registrations in the core-kind registry
(:mod:`repro.core.registry`). The preferred public entry point is
``repro.Session`` with a ``repro.MachineSpec`` — the historical
``run_baseline``/``run_flywheel``/``run_pipelined_wakeup`` trio survive
below as thin deprecated wrappers over the module-level default session.

``SimResult`` is serializable: the live ``core`` object is an in-process
convenience only, and everything downstream consumers need (the power
model's L2 access count and core kind, the clock plan, the full
:class:`SimStats`) round-trips through :meth:`SimResult.to_dict` /
:meth:`SimResult.from_dict`. This is what lets the campaign engine run
simulations in worker processes and memoize them on disk.
"""

from __future__ import annotations

import warnings
from dataclasses import asdict, dataclass, field
from typing import Dict, Optional, Union

from repro.core.baseline import BaselineCore
from repro.core.config import ClockPlan, CoreConfig, FlywheelConfig
from repro.core.pipelined import PipelinedWakeupCore
from repro.core.registry import get_kind, register_kind
from repro.core.stats import SimStats
from repro.mem.spec import MemorySpec
from repro.workloads import (
    InstructionStream,
    Program,
    WorkloadProfile,
    generate_program,
    get_profile,
)

__all__ = [
    "DEFAULT_INSTRUCTIONS",
    "DEFAULT_WARMUP",
    "KIND_BASELINE",
    "KIND_FLYWHEEL",
    "KIND_PIPELINED_WAKEUP",
    "SimResult",
    "default_config",
    "execute_kind",
    "run_baseline",
    "run_flywheel",
    "run_pipelined_wakeup",
]

#: Default instruction budgets; small enough for a pure-Python simulator,
#: large enough for normalized ratios to stabilise on these workloads.
DEFAULT_WARMUP = 60_000
DEFAULT_INSTRUCTIONS = 60_000

#: Kind tags of the built-in machines (also their registry names).
KIND_BASELINE = "baseline"
KIND_FLYWHEEL = "flywheel"
KIND_PIPELINED_WAKEUP = "pipelined_wakeup"


@dataclass
class SimResult:
    """Everything a report or power model needs from one run.

    ``core`` holds the live simulator for in-process inspection and is
    ``None`` on results rebuilt from a worker process or the on-disk
    store; ``kind`` is the machine's registered name in
    :mod:`repro.core.registry` (``"baseline"``, ``"flywheel"``,
    ``"pipelined_wakeup"``, or a plug-in kind), and ``l2_accesses``
    carries the information the power model would otherwise read off
    the core object.
    """

    name: str
    stats: SimStats
    core: object = None   # live core object, or None if detached
    clock: ClockPlan = field(default_factory=ClockPlan)
    kind: str = ""        # registered kind name (see repro.core.registry)
    l2_accesses: int = 0
    #: Serialized flight-recorder ring (``TraceRecorder.serialize()``),
    #: or None when the run was untraced — the common case, and the one
    #: whose ``to_dict`` stays byte-identical to pre-tracing results.
    trace: Optional[Dict[str, object]] = None
    #: Path of the trace artifact a Session wrote for this result (the
    #: Chrome trace-event JSON), if any. In-process convenience like
    #: ``core``; not serialized.
    trace_path: Optional[str] = None

    @property
    def time_ps(self) -> int:
        return self.stats.sim_time_ps

    @property
    def ipc(self) -> float:
        return self.stats.ipc

    # ------------------------------------------------- (de)serialization

    def to_dict(self) -> Dict[str, object]:
        """JSON-safe dict (drops the live ``core`` object)."""
        data = {
            "name": self.name,
            "kind": self.kind,
            "l2_accesses": self.l2_accesses,
            "clock": asdict(self.clock),
            "stats": self.stats.to_dict(),
        }
        if self.trace is not None:
            data["trace"] = self.trace
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "SimResult":
        return cls(
            name=data["name"],
            stats=SimStats.from_dict(data["stats"]),
            core=None,
            clock=ClockPlan(**data["clock"]),
            kind=data.get("kind", ""),
            l2_accesses=int(data.get("l2_accesses", 0)),
            trace=data.get("trace"),
        )


def _resolve_workload(workload: Union[str, WorkloadProfile, Program],
                      seed: Optional[int]) -> Program:
    if isinstance(workload, Program):
        return workload
    if isinstance(workload, str):
        workload = get_profile(workload)
    return generate_program(workload, seed=seed)


# ---------------------------------------------------------------- runners

def _sync_runner(kind: str):
    """Runner factory for the single-clock core kinds."""

    def runner(workload: Union[str, WorkloadProfile, Program],
               config: Optional[CoreConfig] = None,
               fly: Optional[FlywheelConfig] = None,
               clock: Optional[ClockPlan] = None,
               max_instructions: int = DEFAULT_INSTRUCTIONS,
               warmup: int = DEFAULT_WARMUP,
               seed: Optional[int] = None,
               mem_scale: float = 1.0) -> SimResult:
        info = get_kind(kind)
        if fly is not None:
            from repro.errors import ConfigError

            raise ConfigError(f"{kind} does not take a FlywheelConfig")
        config = config or info.default_config()
        clock = clock or ClockPlan()
        program = _resolve_workload(workload, seed)
        stream = InstructionStream(program)
        core = info.core_cls(config, stream, mem_scale=mem_scale,
                             clock=clock)
        stats = core.run(max_instructions, warmup=warmup)
        if core.dvfs is not None:
            # Piecewise sum over the governor's frequency segments; with
            # no retunes this is exactly cycles x base period.
            stats.sim_time_ps = core.dvfs.finalize(stats.total_be_cycles)
        else:
            period_ps = round(1e6 / clock.base_mhz)
            stats.sim_time_ps = stats.total_be_cycles * period_ps
        stats.cache_stats = core.hierarchy.stats_dict()
        stats.metrics = core.metrics.snapshot()
        return SimResult(name=program.name, stats=stats, core=core,
                         clock=clock, kind=info.name,
                         l2_accesses=core.hierarchy.l2.stats.accesses,
                         trace=(core.trace.serialize()
                                if core.trace is not None else None))

    runner.__name__ = f"run_{kind}_kind"
    return runner


def _flywheel_runner(workload: Union[str, WorkloadProfile, Program],
                     config: Optional[CoreConfig] = None,
                     fly: Optional[FlywheelConfig] = None,
                     clock: Optional[ClockPlan] = None,
                     max_instructions: int = DEFAULT_INSTRUCTIONS,
                     warmup: int = DEFAULT_WARMUP,
                     seed: Optional[int] = None,
                     mem_scale: float = 1.0) -> SimResult:
    """Runner for the dual-clock Flywheel machine."""
    info = get_kind(KIND_FLYWHEEL)
    config = config or info.default_config()
    fly = fly or FlywheelConfig()
    clock = clock or ClockPlan()
    program = _resolve_workload(workload, seed)
    stream = InstructionStream(program)
    core = info.core_cls(config, fly, clock, stream, mem_scale=mem_scale)
    stats = core.run(max_instructions, warmup=warmup)
    stats.cache_stats = core.hierarchy.stats_dict()
    stats.metrics = core.metrics.snapshot()
    return SimResult(name=program.name, stats=stats, core=core, clock=clock,
                     kind=info.name,
                     l2_accesses=core.hierarchy.l2.stats.accesses,
                     trace=(core.trace.serialize()
                            if core.trace is not None else None))


def execute_kind(kind: str,
                 workload: Union[str, WorkloadProfile, Program],
                 config: Optional[CoreConfig] = None,
                 fly: Optional[FlywheelConfig] = None,
                 clock: Optional[ClockPlan] = None,
                 max_instructions: int = DEFAULT_INSTRUCTIONS,
                 warmup: int = DEFAULT_WARMUP,
                 seed: Optional[int] = None,
                 mem_scale: float = 1.0) -> SimResult:
    """Execute any registered kind through its runner (uncached)."""
    return get_kind(kind).runner(
        workload, config=config, fly=fly, clock=clock,
        max_instructions=max_instructions, warmup=warmup, seed=seed,
        mem_scale=mem_scale)


def default_config(kind: str) -> CoreConfig:
    """The CoreConfig a kind's runner substitutes for ``config=None``.

    Single source of truth (via the registry) shared by the runners and
    spec normalization, so ``config=None`` and an explicitly passed
    default always describe (and hash as) the same run.
    """
    return get_kind(kind).default_config()


# --------------------------------------------------- built-in registration

def _flywheel_core_cls() -> type:
    from repro.core.flywheel import FlywheelCore  # package-init-order guard

    return FlywheelCore


def _flywheel_default_config() -> CoreConfig:
    return CoreConfig(phys_regs=512, regread_stages=2)


def _pipelined_default_config() -> CoreConfig:
    return CoreConfig(wakeup_extra_delay=1)


def _normalize_memory(config: CoreConfig) -> CoreConfig:
    # An explicit MemorySpec that merely spells out what ``memory``
    # already implies describes the same machine as ``mem=None``; fold
    # it away so both spellings compare, label and content-address
    # identically (the memory-system analogue of the clock-axis
    # normalization in RunSpec).
    if (config.mem is not None
            and config.mem == MemorySpec.from_config(config.memory)):
        return config.with_variant(mem=None)
    return config


def _pipelined_normalize(config: CoreConfig) -> CoreConfig:
    # The core forces the pipelined Wake-Up/Select loop; normalizing here
    # keeps spec payloads/cache keys describing the machine actually
    # simulated.
    if config.wakeup_extra_delay < 1:
        config = config.with_variant(wakeup_extra_delay=1)
    return _normalize_memory(config)


register_kind(KIND_BASELINE, BaselineCore, _sync_runner(KIND_BASELINE),
              normalize_config=_normalize_memory)
register_kind(KIND_PIPELINED_WAKEUP, PipelinedWakeupCore,
              _sync_runner(KIND_PIPELINED_WAKEUP),
              default_config=_pipelined_default_config,
              normalize_config=_pipelined_normalize)
register_kind(KIND_FLYWHEEL, _flywheel_core_cls, _flywheel_runner,
              default_config=_flywheel_default_config, dual_clock=True,
              normalize_config=_normalize_memory)


# ----------------------------------------------------- deprecated wrappers

#: Wrapper names that already warned; each shim warns once per process.
_DEPRECATION_WARNED = set()


def _warn_deprecated(name: str, replacement: str) -> None:
    if name in _DEPRECATION_WARNED:
        return
    _DEPRECATION_WARNED.add(name)
    warnings.warn(
        f"repro.{name}() is deprecated; use {replacement} "
        "(see repro.Session / repro.MachineSpec)",
        DeprecationWarning, stacklevel=3)


def run_baseline(workload: Union[str, WorkloadProfile, Program],
                 config: Optional[CoreConfig] = None,
                 clock: Optional[ClockPlan] = None,
                 max_instructions: int = DEFAULT_INSTRUCTIONS,
                 warmup: int = DEFAULT_WARMUP,
                 seed: Optional[int] = None,
                 mem_scale: float = 1.0) -> SimResult:
    """Run the fully synchronous baseline core on a workload.

    .. deprecated:: 1.1
       Thin wrapper over the default :class:`repro.Session`; prefer
       ``Session().run(MachineSpec(kind="baseline", bench=...))``.

    ``workload`` may be a benchmark name (``"gcc"``), a profile, or a
    pre-built program. The single clock is ``clock.base_mhz``.
    """
    _warn_deprecated("run_baseline", 'Session.run(MachineSpec("baseline", ...))')
    from repro.session import default_session

    return default_session().run_workload(
        KIND_BASELINE, workload, config=config, clock=clock,
        max_instructions=max_instructions, warmup=warmup, seed=seed,
        mem_scale=mem_scale)


def run_pipelined_wakeup(workload: Union[str, WorkloadProfile, Program],
                         config: Optional[CoreConfig] = None,
                         clock: Optional[ClockPlan] = None,
                         max_instructions: int = DEFAULT_INSTRUCTIONS,
                         warmup: int = DEFAULT_WARMUP,
                         seed: Optional[int] = None,
                         mem_scale: float = 1.0) -> SimResult:
    """Run the pipelined Wake-Up/Select variant (paper Fig. 2).

    .. deprecated:: 1.1
       Thin wrapper over the default :class:`repro.Session`; prefer
       ``Session().run(MachineSpec(kind="pipelined_wakeup", bench=...))``.

    Identical to the baseline except the issue window's Wake-Up/Select
    loop is pipelined (``wakeup_extra_delay >= 1``), sacrificing
    back-to-back scheduling of dependent instructions.
    """
    _warn_deprecated("run_pipelined_wakeup",
                     'Session.run(MachineSpec("pipelined_wakeup", ...))')
    from repro.session import default_session

    return default_session().run_workload(
        KIND_PIPELINED_WAKEUP, workload, config=config, clock=clock,
        max_instructions=max_instructions, warmup=warmup, seed=seed,
        mem_scale=mem_scale)


def run_flywheel(workload: Union[str, WorkloadProfile, Program],
                 config: Optional[CoreConfig] = None,
                 fly: Optional[FlywheelConfig] = None,
                 clock: Optional[ClockPlan] = None,
                 max_instructions: int = DEFAULT_INSTRUCTIONS,
                 warmup: int = DEFAULT_WARMUP,
                 seed: Optional[int] = None,
                 mem_scale: float = 1.0) -> SimResult:
    """Run the Flywheel core on a workload under a clock plan.

    .. deprecated:: 1.1
       Thin wrapper over the default :class:`repro.Session`; prefer
       ``Session().run(MachineSpec(kind="flywheel", bench=...))``.

    ``mem_scale`` inflates DRAM latency the same way it does for the
    baseline (on top of the clock-domain scaling the core already
    applies), so memory-sensitivity sweeps cover both cores.
    """
    _warn_deprecated("run_flywheel",
                     'Session.run(MachineSpec("flywheel", ...))')
    from repro.session import default_session

    return default_session().run_workload(
        KIND_FLYWHEEL, workload, config=config, fly=fly, clock=clock,
        max_instructions=max_instructions, warmup=warmup, seed=seed,
        mem_scale=mem_scale)
