"""High-level simulation entry points.

These wrap workload construction, core instantiation and the run loop into
one call, returning a :class:`SimResult` with the stats and the structures
needed by the power model (cache stats, window counters, clock cycles).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union

from repro.core.baseline import BaselineCore
from repro.core.config import ClockPlan, CoreConfig, FlywheelConfig
from repro.core.stats import SimStats
from repro.workloads import (
    InstructionStream,
    Program,
    WorkloadProfile,
    generate_program,
    get_profile,
)

#: Default instruction budgets; small enough for a pure-Python simulator,
#: large enough for normalized ratios to stabilise on these workloads.
DEFAULT_WARMUP = 60_000
DEFAULT_INSTRUCTIONS = 60_000


@dataclass
class SimResult:
    """Everything a report or power model needs from one run."""

    name: str
    stats: SimStats
    core: object          # BaselineCore or FlywheelCore (for structures)
    clock: ClockPlan

    @property
    def time_ps(self) -> int:
        return self.stats.sim_time_ps

    @property
    def ipc(self) -> float:
        return self.stats.ipc


def _resolve_workload(workload: Union[str, WorkloadProfile, Program],
                      seed: Optional[int]) -> Program:
    if isinstance(workload, Program):
        return workload
    if isinstance(workload, str):
        workload = get_profile(workload)
    return generate_program(workload, seed=seed)


def run_baseline(workload: Union[str, WorkloadProfile, Program],
                 config: Optional[CoreConfig] = None,
                 clock: Optional[ClockPlan] = None,
                 max_instructions: int = DEFAULT_INSTRUCTIONS,
                 warmup: int = DEFAULT_WARMUP,
                 seed: Optional[int] = None,
                 mem_scale: float = 1.0) -> SimResult:
    """Run the fully synchronous baseline core on a workload.

    ``workload`` may be a benchmark name (``"gcc"``), a profile, or a
    pre-built program. The single clock is ``clock.base_mhz``.
    """
    config = config or CoreConfig()
    clock = clock or ClockPlan()
    program = _resolve_workload(workload, seed)
    stream = InstructionStream(program)
    core = BaselineCore(config, stream, mem_scale=mem_scale)
    stats = core.run(max_instructions, warmup=warmup)
    period_ps = round(1e6 / clock.base_mhz)
    stats.sim_time_ps = stats.total_be_cycles * period_ps
    return SimResult(name=program.name, stats=stats, core=core, clock=clock)


def run_flywheel(workload: Union[str, WorkloadProfile, Program],
                 config: Optional[CoreConfig] = None,
                 fly: Optional[FlywheelConfig] = None,
                 clock: Optional[ClockPlan] = None,
                 max_instructions: int = DEFAULT_INSTRUCTIONS,
                 warmup: int = DEFAULT_WARMUP,
                 seed: Optional[int] = None) -> SimResult:
    """Run the Flywheel core on a workload under a clock plan."""
    from repro.core.flywheel import FlywheelCore  # cycle-import guard

    config = config or CoreConfig(phys_regs=512, regread_stages=2)
    fly = fly or FlywheelConfig()
    clock = clock or ClockPlan()
    program = _resolve_workload(workload, seed)
    stream = InstructionStream(program)
    core = FlywheelCore(config, fly, clock, stream)
    stats = core.run(max_instructions, warmup=warmup)
    return SimResult(name=program.name, stats=stats, core=core, clock=clock)
