"""High-level simulation entry points.

These wrap workload construction, core instantiation and the run loop into
one call, returning a :class:`SimResult` with the stats and the structures
needed by the power model (cache stats, window counters, clock cycles).

``SimResult`` is serializable: the live ``core`` object is an in-process
convenience only, and everything downstream consumers need (the power
model's L2 access count and core kind, the clock plan, the full
:class:`SimStats`) round-trips through :meth:`SimResult.to_dict` /
:meth:`SimResult.from_dict`. This is what lets the campaign engine run
simulations in worker processes and memoize them on disk.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Dict, Optional, Union

from repro.core.baseline import BaselineCore
from repro.core.config import ClockPlan, CoreConfig, FlywheelConfig
from repro.core.pipelined import PipelinedWakeupCore
from repro.core.stats import SimStats
from repro.workloads import (
    InstructionStream,
    Program,
    WorkloadProfile,
    generate_program,
    get_profile,
)

#: Default instruction budgets; small enough for a pure-Python simulator,
#: large enough for normalized ratios to stabilise on these workloads.
DEFAULT_WARMUP = 60_000
DEFAULT_INSTRUCTIONS = 60_000

#: Kind tags stamped on results (and used by campaign run specs).
KIND_BASELINE = "baseline"
KIND_FLYWHEEL = "flywheel"
KIND_PIPELINED_WAKEUP = "pipelined_wakeup"

#: Synchronous (single-clock) core classes by kind; the Flywheel is the
#: only dual-clock machine and keeps its own runner.
_SYNC_CORES = {
    KIND_BASELINE: BaselineCore,
    KIND_PIPELINED_WAKEUP: PipelinedWakeupCore,
}


@dataclass
class SimResult:
    """Everything a report or power model needs from one run.

    ``core`` holds the live simulator for in-process inspection and is
    ``None`` on results rebuilt from a worker process or the on-disk
    store; ``kind`` and ``l2_accesses`` carry the information the power
    model would otherwise read off the core object.
    """

    name: str
    stats: SimStats
    core: object = None   # BaselineCore / FlywheelCore, or None if detached
    clock: ClockPlan = field(default_factory=ClockPlan)
    kind: str = ""        # KIND_BASELINE or KIND_FLYWHEEL
    l2_accesses: int = 0

    @property
    def time_ps(self) -> int:
        return self.stats.sim_time_ps

    @property
    def ipc(self) -> float:
        return self.stats.ipc

    # ------------------------------------------------- (de)serialization

    def to_dict(self) -> Dict[str, object]:
        """JSON-safe dict (drops the live ``core`` object)."""
        return {
            "name": self.name,
            "kind": self.kind,
            "l2_accesses": self.l2_accesses,
            "clock": asdict(self.clock),
            "stats": self.stats.to_dict(),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "SimResult":
        return cls(
            name=data["name"],
            stats=SimStats.from_dict(data["stats"]),
            core=None,
            clock=ClockPlan(**data["clock"]),
            kind=data.get("kind", ""),
            l2_accesses=int(data.get("l2_accesses", 0)),
        )


def _resolve_workload(workload: Union[str, WorkloadProfile, Program],
                      seed: Optional[int]) -> Program:
    if isinstance(workload, Program):
        return workload
    if isinstance(workload, str):
        workload = get_profile(workload)
    return generate_program(workload, seed=seed)


def _run_sync(kind: str,
              workload: Union[str, WorkloadProfile, Program],
              config: Optional[CoreConfig],
              clock: Optional[ClockPlan],
              max_instructions: int, warmup: int,
              seed: Optional[int], mem_scale: float) -> SimResult:
    """Shared runner for the single-clock core kinds."""
    config = config or default_config(kind)
    clock = clock or ClockPlan()
    program = _resolve_workload(workload, seed)
    stream = InstructionStream(program)
    core = _SYNC_CORES[kind](config, stream, mem_scale=mem_scale,
                             clock=clock)
    stats = core.run(max_instructions, warmup=warmup)
    if core.dvfs is not None:
        # Piecewise sum over the governor's frequency segments; with no
        # retunes this is exactly cycles x base period.
        stats.sim_time_ps = core.dvfs.finalize(stats.total_be_cycles)
    else:
        period_ps = round(1e6 / clock.base_mhz)
        stats.sim_time_ps = stats.total_be_cycles * period_ps
    return SimResult(name=program.name, stats=stats, core=core, clock=clock,
                     kind=kind,
                     l2_accesses=core.hierarchy.l2.stats.accesses)


def run_baseline(workload: Union[str, WorkloadProfile, Program],
                 config: Optional[CoreConfig] = None,
                 clock: Optional[ClockPlan] = None,
                 max_instructions: int = DEFAULT_INSTRUCTIONS,
                 warmup: int = DEFAULT_WARMUP,
                 seed: Optional[int] = None,
                 mem_scale: float = 1.0) -> SimResult:
    """Run the fully synchronous baseline core on a workload.

    ``workload`` may be a benchmark name (``"gcc"``), a profile, or a
    pre-built program. The single clock is ``clock.base_mhz``.
    """
    return _run_sync(KIND_BASELINE, workload, config, clock,
                     max_instructions, warmup, seed, mem_scale)


def run_pipelined_wakeup(workload: Union[str, WorkloadProfile, Program],
                         config: Optional[CoreConfig] = None,
                         clock: Optional[ClockPlan] = None,
                         max_instructions: int = DEFAULT_INSTRUCTIONS,
                         warmup: int = DEFAULT_WARMUP,
                         seed: Optional[int] = None,
                         mem_scale: float = 1.0) -> SimResult:
    """Run the pipelined Wake-Up/Select variant (paper Fig. 2).

    Identical to :func:`run_baseline` except the issue window's
    Wake-Up/Select loop is pipelined (``wakeup_extra_delay >= 1``),
    sacrificing back-to-back scheduling of dependent instructions.
    """
    return _run_sync(KIND_PIPELINED_WAKEUP, workload, config, clock,
                     max_instructions, warmup, seed, mem_scale)


def run_flywheel(workload: Union[str, WorkloadProfile, Program],
                 config: Optional[CoreConfig] = None,
                 fly: Optional[FlywheelConfig] = None,
                 clock: Optional[ClockPlan] = None,
                 max_instructions: int = DEFAULT_INSTRUCTIONS,
                 warmup: int = DEFAULT_WARMUP,
                 seed: Optional[int] = None,
                 mem_scale: float = 1.0) -> SimResult:
    """Run the Flywheel core on a workload under a clock plan.

    ``mem_scale`` inflates DRAM latency the same way it does for
    :func:`run_baseline` (on top of the clock-domain scaling the core
    already applies), so memory-sensitivity sweeps cover both cores.
    """
    from repro.core.flywheel import FlywheelCore  # cycle-import guard

    config = config or default_config(KIND_FLYWHEEL)
    fly = fly or FlywheelConfig()
    clock = clock or ClockPlan()
    program = _resolve_workload(workload, seed)
    stream = InstructionStream(program)
    core = FlywheelCore(config, fly, clock, stream, mem_scale=mem_scale)
    stats = core.run(max_instructions, warmup=warmup)
    return SimResult(name=program.name, stats=stats, core=core, clock=clock,
                     kind=KIND_FLYWHEEL,
                     l2_accesses=core.hierarchy.l2.stats.accesses)


def default_config(kind: str) -> CoreConfig:
    """The CoreConfig the runners substitute for ``config=None``.

    Single source of truth shared by ``run_baseline``/``run_flywheel``
    and campaign-spec normalization, so ``config=None`` and an
    explicitly passed default always describe (and hash as) the same
    run.
    """
    if kind == KIND_FLYWHEEL:
        return CoreConfig(phys_regs=512, regread_stages=2)
    if kind == KIND_PIPELINED_WAKEUP:
        return CoreConfig(wakeup_extra_delay=1)
    return CoreConfig()
