"""The Flywheel core: Dual Clock Issue Window + Execution Cache.

Two operating modes (Section 3):

* **Trace creation** — instructions flow through the front-end (fetch,
  decode, Rename phase 1) in the *front-end clock domain*, cross into the
  back-end domain through the dual-clock dispatch FIFO, pass Register
  Update (phase 2), and are scheduled by the monolithic issue window at
  the slow, issue-window-limited clock. Every cycle's issued group is
  recorded as an Issue Unit of the trace under construction.
* **Trace execution** — on an Execution Cache hit the front-end (including
  the Wake-Up/Select logic) is clock-gated and the back-end, clocked up to
  50% faster, consumes Issue Units straight from the EC through the fill
  buffer, VLIW-style. Register Update replays the recorded (arch, LID)
  mappings; the walker supplies fresh memory addresses and branch
  outcomes, and the first divergence from the recorded path is the
  trace-ending mispredict.

Trace boundaries (a fetch-detected mispredict or the trace-length cap)
drain the machine, seal the trace into the EC, perform the RT checkpoint
(FRT after a mispredict, the one-cycle SRT swap after a natural end) and
either start a replay (EC hit) or restart the front-end (miss).

The common back-end mechanics — scoreboard, wake/done queues, FuPool/LSQ
execution, ROB retire, the deadlock watchdog — live in
:mod:`repro.core.engine`; this module keeps the Flywheel policy: the dual
clock domains (with the :class:`TickScheduler` skipping the gated front
end ahead in bulk), two-phase renaming, and the trace-creation/replay
state machine.

Modelled simplifications, documented in DESIGN.md: wrong paths during
creation are fetch stalls (as in the baseline); in replay, recorded
instructions past the diverging branch issue for timing/power but carry no
architectural state; the front-end drains fully at trace boundaries.
"""

from __future__ import annotations

import enum
from collections import deque
from typing import Deque, Dict, List, Optional, Tuple

from repro.clocks.domain import ClockDomain
from repro.clocks.scheduler import TickScheduler
from repro.clocks.synchronizer import SyncFifo
from repro.core.config import ClockPlan, CoreConfig, FlywheelConfig
from repro.core.engine import DeadlockWatchdog, ExecBackend, FrontEndFeed
from repro.core.stats import SimStats
from repro.ec.builder import TraceBuilder
from repro.ec.cache import ExecutionCache
from repro.ec.fill_buffer import FillBuffer
from repro.ec.trace import Trace, TraceInstr
from repro.errors import SimulationError
from repro.frontend.bpred import BranchPredictor
from repro.isa import DynInstr, OpClass
from repro.isa.opclasses import EXEC_LATENCY_TAB, FU_KIND_TAB, UNPIPELINED_TAB
from repro.issue.dual_clock import DualClockIssueWindow
from repro.mem.hierarchy import MemoryHierarchy
from repro.obs.metrics import MetricRegistry, register_core_sources
from repro.obs.trace import TraceRecorder
from repro.rename.pools import PoolFile
from repro.rename.redistribution import RedistributionController
from repro.rename.two_phase import TwoPhaseRenamer
from repro.rob.reorder_buffer import RobEntry
from repro.workloads.stream import InstructionStream

#: Kind-specific default for ``CoreConfig.deadlock_window == 0``; the
#: Flywheel's checkpoint/drain sequences legitimately stall longer than
#: the synchronous cores.
_DEADLOCK_WINDOW = 40_000


class Mode(enum.Enum):
    CREATE = "create"
    EXECUTE = "execute"


class _Boundary(enum.Enum):
    NONE = 0
    MISPREDICT = 1
    NATURAL = 2


class _Replay:
    """State of one trace replay."""

    __slots__ = ("trace", "records", "paired", "valid_count", "div_pos",
                 "unit_idx", "alloc_ptr", "entries", "branch_resolved",
                 "valid_issued", "next_pc", "decision", "next_trace",
                 "n_units")

    def __init__(self, trace: Trace, records: List[TraceInstr],
                 paired: List[DynInstr], div_pos: int):
        self.trace = trace
        self.records = records
        self.paired = paired                 # program-order dynamic instrs
        self.valid_count = len(paired)
        self.div_pos = div_pos               # -1 = no divergence
        self.n_units = len(trace.units)
        self.unit_idx = 0
        self.alloc_ptr = 0
        self.entries: Dict[int, RobEntry] = {}   # trace pos -> ROB entry
        self.branch_resolved = False
        self.valid_issued = 0
        self.next_pc = (paired[div_pos].next_pc if div_pos >= 0
                        else paired[-1].next_pc)
        self.decision: Optional[str] = None   # abort-path EC decision
        self.next_trace: Optional[Trace] = None

    @property
    def all_units_issued(self) -> bool:
        return self.unit_idx >= len(self.trace.units)

    @property
    def diverged(self) -> bool:
        return self.div_pos >= 0

    @property
    def all_valid_issued(self) -> bool:
        return self.valid_issued >= self.valid_count


class FlywheelCore:
    """Cycle-level model of the proposed microarchitecture."""

    def __init__(self, config: CoreConfig, fly: FlywheelConfig,
                 clock: ClockPlan, stream: InstructionStream,
                 hierarchy: Optional[MemoryHierarchy] = None,
                 mem_scale: float = 1.0):
        self.config = config
        self.fly = fly
        self.clock = clock
        self.stream = stream
        #: Extra DRAM-latency multiplier (memory-sensitivity studies),
        #: applied on top of the per-domain clock scaling below.
        self.mem_scale = mem_scale
        self.stats = SimStats()
        self._events = self.stats.events

        self.hierarchy = hierarchy or MemoryHierarchy(config.memory,
                                                      spec=config.mem)
        self.bpred = BranchPredictor(config.bpred)
        self.pools = PoolFile(fly.pool_regs, fly.default_pool_size,
                              fly.min_pool_size, fly.max_pool_size)
        self.renamer = TwoPhaseRenamer(self.pools)
        self.redist = RedistributionController(
            self.pools, fly.redistribution_interval,
            fly.redistribution_penalty)
        self.iw = DualClockIssueWindow(
            config.iw_entries, config.issue_width,
            config.wakeup_extra_delay, tag_window=fly.tag_window,
            delay_network=fly.delay_network)
        self.be = ExecBackend(config, self.stats, self.hierarchy,
                              fly.pool_regs)
        self.watchdog = DeadlockWatchdog(
            config.deadlock_window or _DEADLOCK_WINDOW)
        # Engine structures, re-exposed under their historical names.
        self.rob = self.be.rob
        self.lsq = self.be.lsq
        self.fu = self.be.fu
        self.be.configure(self.iw, self._on_branch_resolved,
                          self._commit_entry)
        self.ec = ExecutionCache(fly)
        self.builder = TraceBuilder(fly.ec_block_slots, fly.max_trace_units)
        self.fill = FillBuffer(fly.ec_block_slots, fly.ec_latency)

        # Clock domains: FE at its own speed; BE starts at the slow clock.
        self.fe_dom = ClockDomain("fe", clock.fe_mhz)
        self.be_dom = ClockDomain("be", clock.be_mhz)
        self.sched = TickScheduler([self.be_dom, self.fe_dom])

        # DRAM-latency multipliers per back-end mode; ``_be_scale`` tracks
        # the current mode so the hot loops read one attribute instead of
        # recomputing the product every tick.
        self._fe_scale = clock.mem_scale(clock.fe_mhz) * mem_scale
        self._scale_create = clock.mem_scale(clock.be_mhz) * mem_scale
        self._scale_execute = (clock.mem_scale(clock.be_fast_mhz)
                               * mem_scale)
        self._be_scale = self._scale_create

        #: Governor multiplier on the trace-execution fast clock; 1.0
        #: without a governor (``be_fast_mhz * 1.0`` below is exact).
        self._dvfs_scale = 1.0

        # FE-side latches (stamped in FE cycles) and the dual-clock FIFOs.
        self.fe = FrontEndFeed(config.fetch_width, config.decode_width,
                               self.stats)
        self._fetch_out = self.fe.fetch_out
        self._decode_out = self.fe.decode_out
        self._rename_out = self.fe.rename_out
        self._dispatch_fifo: SyncFifo[DynInstr] = SyncFifo("dispatch", 16)
        self._dispatch_q = self._dispatch_fifo._queue
        self._redirect_q = None   # bound below, after the FIFO exists
        #: fetch-restart messages, tagged with the block epoch they belong
        #: to: a redirect issued before a newer fetch stop must not unblock
        self._redirect_fifo: SyncFifo[int] = SyncFifo("redirect")
        self._redirect_q = self._redirect_fifo._queue
        self._block_epoch = 0

        # Oracle plumbing: pushed-back instructions are consumed first.
        self._oracle_buffer: Deque[DynInstr] = deque()

        # Mode / boundary state machine.
        self.mode = Mode.CREATE
        self._fe_gated = False
        self._fetch_blocked = False
        self._fe_new_trace = True       # next fetched instr starts a trace
        self._fe_trace_count = 0        # instrs fetched into current trace
        self._trace_pos_counter = 0     # program-order position at rename
        self._boundary = _Boundary.NONE
        self._boundary_branch_seq = -1
        self._boundary_resolved = False
        self._boundary_next_pc = 0
        self._builder_open = False
        self._cur_tid = -1              # storage id of trace being built
        #: a trace whose instructions have all passed Update but not yet
        #: all issued: (builder, tid, gen, skip_pc) — sealed in background
        #: while the next trace already flows (natural-boundary overlap)
        self._sealing = None
        self._outstanding: Dict[int, int] = {}   # gen -> accepted, unissued
        self._trace_run = 0             # monotonic per-trace-run counter
        #: checkpoint owed before the first Register Update of a given
        #: trace generation: gen -> 'frt' | 'srt'
        self._pending_checkpoint: Dict[int, str] = {}
        self._replay: Optional[_Replay] = None
        self._be_stall_until = 0        # checkpoint / redistribution stalls
        self._pending_redist: Optional[List[int]] = None
        self._applying_redist = False   # draining to install new pools
        self._boundary_decision: Optional[str] = None   # None/'hit'/'miss'
        self._boundary_hit: Optional[Trace] = None
        self._fe_gen = 0                # trace generation at fetch
        self._boundary_gen = 0          # generation the boundary seals
        #: boundary detected while another is still sealing, promoted when
        #: the open one closes: (kind, next_pc, branch_seq, gen)
        self._deferred_boundary: Optional[Tuple[_Boundary, int, int, int]] = None
        self._pre_update: Dict[int, int] = {}   # gen -> not yet past Update

        # Adaptive clocking (repro.dvfs): the controller scales the BE
        # domain through _dvfs_rescale at interval boundaries. Deferred
        # import — repro.dvfs.controller imports this package.
        if clock.governor is not None:
            from repro.dvfs.controller import FlywheelDvfsController

            self.dvfs = FlywheelDvfsController(clock.governor, self)
        else:
            self.dvfs = None

        # Flight recorder (repro.obs): all lifecycle events are stamped
        # on the *back-end* cycle axis — FE events read ``be_dom.cycles``
        # at emission time — so the pipeview timeline is monotone across
        # the two domains. ``fe.trace`` is deliberately left None: decode
        # happens on the FE grid and has no BE-axis cycle to stamp.
        if config.trace is not None:
            self.trace = TraceRecorder(config.trace)
            self.be.attach_trace(self.trace)
            self.hierarchy.trace = self.trace
        else:
            self.trace = None
        self.metrics = MetricRegistry()
        register_core_sources(self.metrics, self)

    # ------------------------------------------------------------------ run

    def run(self, max_instructions: int, warmup: int = 0) -> SimStats:
        """Simulate until ``max_instructions`` commit after warmup."""
        if self.config.engine != "legacy":
            # "turbo" and "vector" share the hybrid replay loop: the
            # flywheel's hot state lives in real DynInstr objects that
            # the created-mode pipelines mutate in place, so the
            # sync-kind column kernels don't apply (DESIGN.md §11).
            from repro.core.engine.turbo.fly import run_turbo_fly

            return run_turbo_fly(self, max_instructions, warmup,
                                 prof=getattr(self, "_turbo_prof", None))
        if warmup:
            self._functional_warmup(warmup)
            if self.dvfs is not None:
                self.dvfs.reset_baseline(self)
        stats = self.stats
        watchdog = self.watchdog
        window = watchdog.window
        last_cycle = 0
        last_count = -1
        sched = self.sched
        be_dom = self.be_dom
        fe_dom = self.fe_dom
        be_tick = self._be_tick
        fe_tick = self._fe_tick
        dvfs = self.dvfs
        now_ps = 0
        # The two-domain scheduler pop is inlined (ties go to the BE
        # domain, which is registered first — same as TickScheduler).
        while stats.committed < max_instructions:
            now_ps = be_dom.next_tick_ps
            if now_ps <= fe_dom.next_tick_ps:
                be_dom.next_tick_ps = now_ps + be_dom.period_ps
                be_dom.cycles += 1
                be_tick(now_ps)
                committed = stats.committed
                if committed != last_count:
                    last_count = committed
                    last_cycle = be_dom.cycles
                    if committed >= max_instructions:
                        break   # don't skip past the final commit's tick
                elif be_dom.cycles - last_cycle > window:
                    watchdog.trip(be_dom.cycles, committed,
                                  self._deadlock_detail,
                                  snapshot=self._deadlock_snapshot)
                # Governor interval boundary (BE cycles). The replay
                # skip-ahead below may bulk-advance past a boundary; the
                # hook then fires on the next popped BE tick with a
                # correspondingly longer interval (DESIGN.md §4).
                if dvfs is not None and be_dom.cycles >= dvfs.next_check:
                    dvfs.on_interval(self, be_dom.cycles, now_ps)
                # Replay-mode skip-ahead: with the FE clock-gated, a BE
                # tick that can only wait for a scheduled wake/done event
                # or a fill-buffer arrival is provably inert. Skipped
                # ticks still count as execute cycles.
                replay = self._replay
                if replay is not None and self._fe_gated:
                    c = be_dom.cycles
                    if c >= self._be_stall_until:
                        target = self._replay_idle_until(replay, c)
                        if target is not None:
                            ticks = target - 1 - c
                            if ticks > 0:
                                be_dom.cycles = c + ticks
                                be_dom.next_tick_ps += (ticks
                                                        * be_dom.period_ps)
                                stats.be_cycles_execute += ticks
            elif self._fe_gated:
                # Clock-gated front end: gating only changes on a BE tick,
                # so every FE tick strictly before the next BE tick is
                # provably idle — let the scheduler skip ahead in bulk.
                now_ps = fe_dom.next_tick_ps
                ticks = sched.drain_until(fe_dom, be_dom.next_tick_ps)
                fe_dom.gated_cycles += ticks
                stats.fe_cycles_gated += ticks
            else:
                now_ps = fe_dom.advance()
                fe_tick(now_ps)
        stats.sim_time_ps = now_ps
        return stats

    def _deadlock_detail(self) -> str:
        return (f" (BE cycles; mode={self.mode}, "
                f"boundary={self._boundary}, rob={len(self.rob)}, "
                f"iw={len(self.iw)}, fifo={len(self._dispatch_fifo)})")

    def _deadlock_snapshot(self):
        """Structured machine state for the watchdog's DeadlockError."""
        be = self.be
        head = be.rob.head()
        oldest = None
        if head is not None:
            dyn = head.dyn
            oldest = {"seq": dyn.seq, "pc": dyn.pc, "op": dyn.op.name,
                      "done": head.done, "is_mem": head.is_mem}
        snap = {
            "core": type(self).__name__,
            "cycle": self.be_dom.cycles,
            "committed": self.stats.committed,
            "mode": str(self.mode),
            "boundary": str(self._boundary),
            "rob": {"occupancy": len(be.rob), "capacity": be.rob.capacity},
            "lsq": {"occupancy": len(be.lsq), "capacity": be.lsq.capacity},
            "iw": {"occupancy": len(self.iw), "capacity": self.iw.capacity},
            "dispatch_fifo": len(self._dispatch_fifo),
            "outstanding": dict(self._outstanding),
            "fe_gated": self._fe_gated,
            "fetch_blocked": self._fetch_blocked,
            "next_event_cycle": be.next_event_cycle(),
            "oldest": oldest,
            "mshr": self.hierarchy.stats_dict().get("mshr"),
        }
        if self.trace is not None:
            snap["trace_window"] = [list(ev)
                                    for ev in self.trace.window(256)]
        return snap

    def _functional_warmup(self, count: int) -> None:
        # warm_* variants: contents and counters only — the MSHR
        # timeline of a non-blocking spec stays untouched (see baseline).
        next_instr = self.stream.next_instr
        ifetch = self.hierarchy.warm_ifetch
        load = self.hierarchy.warm_load
        store = self.hierarchy.warm_store
        predict = self.bpred.predict
        for _ in range(count):
            dyn = next_instr()
            if dyn.seq % 4 == 0:
                ifetch(dyn.pc)
            addr = dyn.mem_addr
            if addr is not None:
                if dyn.op is OpClass.LOAD:
                    load(addr)
                else:
                    store(addr)
            if dyn.branch_kind:
                predict(dyn)

    def _next_oracle(self) -> DynInstr:
        if self._oracle_buffer:
            return self._oracle_buffer.popleft()
        return self.stream.next_instr()

    # ------------------------------------------------------------ FE domain

    def _fe_tick(self, now_ps: int) -> None:
        if self._fe_gated:
            self.fe_dom.gated_cycles += 1
            self.stats.fe_cycles_gated += 1
            return
        self.stats.fe_cycles_active += 1
        fe_c = self.fe_dom.cycles
        if self._redirect_q:
            for epoch in self._redirect_fifo.pop_ready(now_ps):
                if epoch == self._block_epoch:
                    self._fetch_blocked = False
        if self._rename_out:
            self._fe_dispatch(fe_c, now_ps)
        if self._decode_out:
            self._fe_rename(fe_c)
        if self._fetch_out:
            self.fe.decode(fe_c)
        if not (self._fetch_blocked or self._applying_redist):
            self._fe_fetch(fe_c)

    def _fe_dispatch(self, fe_c: int, now_ps: int) -> None:
        rename_out = self._rename_out
        fifo = self._dispatch_fifo
        latency_ps = self.fly.sync_cycles * self.be_dom.period_ps
        events = self._events
        n = 0
        while rename_out and n < self.config.dispatch_width:
            dyn = rename_out[0]
            if dyn.lat_ready > fe_c or fifo.full:
                break
            rename_out.popleft()
            fifo.push(dyn, now_ps, latency_ps)
            events["sync_fifo_push"] += 1
            n += 1

    def _fe_rename(self, fe_c: int) -> None:
        if self._applying_redist:
            return   # hold renaming while pools are being resized
        decode_out = self._decode_out
        rename_out = self._rename_out
        renamer = self.renamer
        events = self._events
        tr = self.trace
        be_c = self.be_dom.cycles
        n = 0
        while decode_out and n < self.config.rename_width:
            dyn = decode_out[0]
            if dyn.lat_ready > fe_c:
                break
            if dyn.trace_start:
                # Phase-1 state restarts with the trace (Section 3.5).
                renamer.reset_lids()
                self._trace_pos_counter = 0
                dyn.trace_start = True
            if not renamer.can_rename_dest(dyn):
                self.stats.rename_pool_stalls += 1
                if tr is not None:
                    tr.emit(be_c, "stall", dyn.seq, "pool_full")
                break
            decode_out.popleft()
            renamer.rename(dyn)
            dyn.trace_pos = self._trace_pos_counter
            self._trace_pos_counter += 1
            dyn.lat_ready = fe_c + 1
            rename_out.append(dyn)
            if tr is not None:
                tr.emit(be_c, "rename", dyn.seq)
            events["rename_op"] += 1
            n += 1

    def _fe_fetch(self, fe_c: int) -> None:
        # The caller has already checked the stall/redistribution gates.
        fe = self.fe
        if not fe.fetch_room:
            return
        fetch_out = self._fetch_out
        stats = self.stats
        events = self._events
        fe_scale = self._fe_scale
        tr = self.trace
        be_c = self.be_dom.cycles
        delay = 0
        for i in range(self.config.fetch_width):
            dyn = self._next_oracle()
            if i == 0:
                delay = (self.hierarchy.ifetch(dyn.pc, fe_scale, fe_c)
                         + self.config.extra_frontend_stages)
                events["icache_access"] += 1
            if self._fe_new_trace:
                dyn.trace_start = True
                self._fe_new_trace = False
                self._fe_trace_count = 0
                self._fe_gen += 1
            dyn.trace_gen = self._fe_gen
            self._pre_update[self._fe_gen] = \
                self._pre_update.get(self._fe_gen, 0) + 1
            dyn.lat_ready = fe_c + delay
            fetch_out.append(dyn)
            if tr is not None:
                tr.emit(be_c, "fetch", dyn.seq)
            stats.fetched += 1
            self._fe_trace_count += 1
            if dyn.is_branch:
                stats.branches += 1
                events["bpred_lookup"] += 1
                if not self.bpred.predict(dyn):
                    stats.mispredicts += 1
                    self._begin_boundary(_Boundary.MISPREDICT, dyn)
                    return
                if self._check_natural_end(dyn):
                    return
                break  # fetch group ends at a control transfer
            if self._check_natural_end(dyn):
                return

    def _check_natural_end(self, dyn: DynInstr) -> bool:
        """End the trace at its length cap — aligned to a stable PC.

        Ending exactly at the cap would start the next trace at an
        arbitrary, phase-shifting mid-loop address that never recurs, so
        every lookup would miss. Instead, once the cap is reached the
        trace is extended to the next taken backward branch (a loop
        back-edge): the successor trace then starts at the loop head, a
        recurring address. A hard cap bounds the extension.
        """
        if not self.fly.ec_enabled:
            return False
        count = self._fe_trace_count
        cap = self.fly.max_trace_instrs
        if count < cap:
            return False
        at_backedge = (dyn.is_branch and dyn.taken
                       and dyn.target_pc <= dyn.pc)
        if at_backedge or count >= 2 * cap:
            self._begin_boundary(_Boundary.NATURAL, dyn)
            return True
        return False

    def _begin_boundary(self, kind: _Boundary, last_dyn: DynInstr) -> None:
        """Stop fetch; the BE seals the trace once it drains.

        If the previous trace's boundary is still sealing, the new one is
        parked and promoted when the old one closes (at most one can be
        pending because fetch stops immediately).
        """
        self._fetch_blocked = True
        self._block_epoch += 1
        self._fe_new_trace = True
        branch_seq = last_dyn.seq if kind is _Boundary.MISPREDICT else -1
        if self._boundary is not _Boundary.NONE:
            self._deferred_boundary = (kind, last_dyn.next_pc, branch_seq,
                                       self._fe_gen)
            return
        self._install_boundary(kind, last_dyn.next_pc, branch_seq,
                               self._fe_gen)

    def _install_boundary(self, kind: _Boundary, next_pc: int,
                          branch_seq: int, gen: int) -> None:
        self._boundary = kind
        self._boundary_gen = gen
        self._boundary_next_pc = next_pc
        self._boundary_branch_seq = branch_seq
        self._boundary_resolved = kind is _Boundary.NATURAL

    # ------------------------------------------------------------ BE domain

    def _set_mode(self, mode: Mode) -> None:
        """Switch operating mode and the mode-derived DRAM scale."""
        self.mode = mode
        self._be_scale = (self._scale_execute if mode is Mode.EXECUTE
                          else self._scale_create)

    def _dvfs_rescale(self, scale: float, now_ps: int) -> None:
        """Apply a governor ladder move to the trace-execution clock.

        The governor re-divides the fast master clock: only the
        trace-execution (EC replay) frequency moves; the trace-creation
        clock stays at the issue-window-limited ``be_mhz``, whose period
        the window's single-cycle Wake-Up/Select loop dictates — there is
        no slack to give back there, and throttling it lengthens every
        serialization (drain, checkpoint, refill) on the critical path.
        The EXECUTE-mode DRAM multiplier is rebuilt (DRAM time is fixed
        in nanoseconds, so a rescaled clock sees proportionally rescaled
        stall cycles); if currently replaying, ``be_dom`` retimes
        immediately via ``ClockDomain.set_frequency``, otherwise the new
        divisor takes effect at the next mode switch.
        """
        self._dvfs_scale = scale
        clock = self.clock
        self._scale_execute = (clock.mem_scale(clock.be_fast_mhz * scale)
                               * self.mem_scale)
        if self.mode is Mode.EXECUTE:
            self._be_scale = self._scale_execute
            self.be_dom.set_frequency(clock.be_fast_mhz * scale, now_ps)

    def _be_tick(self, now_ps: int) -> None:
        c = self.be_dom.cycles
        create = self.mode is Mode.CREATE
        stats = self.stats
        if create:
            stats.be_cycles_create += 1
        else:
            stats.be_cycles_execute += 1
        self.be.tick(c, self._be_scale)
        if c < self._be_stall_until:
            stats.checkpoint_stall_cycles += 1
            return
        if self._applying_redist:
            # Let in-flight work drain (new renames are held in the FE),
            # then install the new pool geometry (Section 3.5).
            if (not len(self.rob) and not any(self.pools.inflight)
                    and self._boundary is _Boundary.NONE
                    and self._deferred_boundary is None):
                self._apply_redistribution(c, now_ps)
                return
        if create:
            self._be_create(c, now_ps)
        else:
            self._be_execute(c, now_ps)

    # Writeback hook: a completed entry flagged mispredicted resolves the
    # boundary branch (CREATE) or the replay's diverging branch (EXECUTE).
    def _on_branch_resolved(self, entry: RobEntry, _c: int) -> None:
        if self.mode is Mode.CREATE:
            if entry.dyn.seq == self._boundary_branch_seq:
                self._boundary_resolved = True
        elif self._replay is not None:
            self._replay.branch_resolved = True

    # Retire hook: two-phase retirement plus EC residency accounting.
    def _commit_entry(self, entry: RobEntry) -> None:
        self.renamer.retire(entry.dyn)
        if entry.from_ec:
            self.stats.instrs_from_ec += 1

    # ----------------------------------------------------- CREATE mode (BE)

    def _be_create(self, c: int, now_ps: int) -> None:
        if self.iw._count:
            self._create_issue(c)
        if self._dispatch_q:
            self._create_accept(c, now_ps)
        if self._boundary is not _Boundary.NONE:
            self._try_finish_boundary(c, now_ps)

    def _create_issue(self, c: int) -> None:
        selected = self.iw.select(c, self.be.fu)
        if not selected:
            tr = self.trace
            if tr is not None:
                tr.emit(c, "stall", -1,
                        "fu_busy" if self.iw._eligible else "dep_wait")
            return
        be = self.be
        rf_reads = be.schedule_group(selected, c, self._be_scale)
        group = []
        sealing_group = []
        sealing_gen = self._sealing[2] if self._sealing else -1
        outstanding = self._outstanding
        for dyn in selected:
            left = outstanding.get(dyn.trace_gen, 1) - 1
            if left:
                outstanding[dyn.trace_gen] = left
            else:
                outstanding.pop(dyn.trace_gen, None)
            if dyn.trace_gen == sealing_gen:
                sealing_group.append((dyn.trace_pos, dyn))
            else:
                group.append((dyn.trace_pos, dyn))
        if sealing_group:
            self._sealing[0].record_unit(sealing_group)
        if self._builder_open and group:
            self.builder.record_unit(group)
        self._finish_sealing()
        n = len(selected)
        self.stats.issued += n
        events = self._events
        events["iw_select"] += n
        events["rf_read"] += rf_reads
        events["fu_op"] += n

    def _create_accept(self, c: int, now_ps: int) -> None:
        """Register Update stage: pull matured dispatches into the window."""
        fifo = self._dispatch_fifo
        be = self.be
        iw = self.iw
        ready = be.ready
        ready_getter = be.ready_getter
        events = self._events
        tr = self.trace
        n = 0
        while n < self.config.dispatch_width:
            dyn = fifo.peek_ready(now_ps)
            if dyn is None:
                break
            if be.rob.full or iw.free_slots == 0:
                if tr is not None:
                    tr.emit(c, "stall", dyn.seq,
                            "rob_full" if be.rob.full else "iw_full")
                break
            if dyn.mem_addr is not None and be.lsq.full:
                if tr is not None:
                    tr.emit(c, "stall", dyn.seq, "lsq_full")
                break
            if dyn.trace_start and not self._begin_trace_at_update(dyn, c):
                self.stats.checkpoint_stall_cycles += 1
                break
            # Inline single-entry pop: the head was just peeked mature.
            self._dispatch_q.popleft()
            fifo.pops += 1
            events["sync_fifo_pop"] += 1
            remaining = self._pre_update.get(dyn.trace_gen, 0) - 1
            if remaining > 0:
                self._pre_update[dyn.trace_gen] = remaining
            else:
                self._pre_update.pop(dyn.trace_gen, None)
            self.renamer.update(dyn, self._trace_run)
            events["update_op"] += 1
            if dyn.dest_tag >= 0:
                ready[dyn.dest_tag] = 0
            mispredicted = dyn.seq == self._boundary_branch_seq
            be.admit(dyn, RobEntry(dyn, mispredicted=mispredicted))
            iw.insert_synced(dyn, ready_getter, earliest=c + 1)
            if tr is not None:
                tr.emit(c, "dispatch", dyn.seq)
            self._outstanding[dyn.trace_gen] = \
                self._outstanding.get(dyn.trace_gen, 0) + 1
            events["iw_write"] += 1
            n += 1

    def _begin_trace_at_update(self, dyn: DynInstr, c: int) -> bool:
        """Handle the first Register Update of a new trace.

        Performs the checkpoint owed to this generation (FRT: stall until
        the previous trace retires; SRT: one-cycle swap) and opens the
        trace builder. Returns False while the Update must still wait.
        """
        if self._builder_open:
            return False    # previous trace is still being recorded
        due = [g for g in self._pending_checkpoint if g <= dyn.trace_gen]
        if due:
            kinds = {self._pending_checkpoint[g] for g in due}
            if "frt" in kinds:
                if len(self.rob):
                    return False
                self.renamer.checkpoint_from_frt()
                self.renamer.sync_srt_to_frt()
                self.stats.count("checkpoint")
                for g in due:
                    del self._pending_checkpoint[g]
            else:
                # All older Updates have passed (the FIFO is in order), so
                # the SRT swap can happen now at a one-cycle penalty.
                self._checkpoint_srt_now(c)
                for g in due:
                    del self._pending_checkpoint[g]
                return False    # consume the swap cycle before accepting
        self._cur_tid = self.ec.alloc_tid()
        self._trace_run += 1
        self.builder.begin(dyn.pc)
        self._builder_open = True
        dyn.trace_start = False    # consume the marker
        return True

    def _finish_sealing(self) -> None:
        """Store the backgrounded trace once its last instruction issues."""
        if self._sealing is None:
            return
        builder, tid, gen, skip_pc = self._sealing
        if self._outstanding.get(gen, 0):
            return
        self._sealing = None
        trace = builder.seal(tid)
        if trace is None:
            return
        self.stats.traces_built += 1
        if self.fly.ec_enabled and trace.start_pc != skip_pc:
            self.ec.insert(trace)
            self.stats.count("ec_block_write",
                             trace.blocks(self.fly.ec_block_slots))

    def _update_drained(self) -> bool:
        """All instructions of the sealing trace have passed Update.

        New-trace instructions may already be queued behind them (they are
        held at the Update stage), so the check counts only the boundary
        generation.
        """
        return self._pre_update.get(self._boundary_gen, 0) == 0

    def _issue_drained(self) -> bool:
        """All sealing-trace instructions issued (trace fully recorded).

        Only old-generation instructions can be in the window: newer ones
        are blocked at Register Update while a boundary is open.
        """
        return self._update_drained() and not len(self.iw)

    def _try_finish_boundary(self, c: int, now_ps: int) -> None:
        """Advance the trace-boundary state machine.

        Once the boundary is *resolved* (the mispredicted branch executed,
        or the length cap hit), the EC is searched immediately. On a miss
        the front-end restarts right away — overlapping its refill with
        the old trace's drain, as the baseline does — while the trace is
        sealed in the background. On a hit the machine drains fully, the
        checkpoint runs, and trace execution begins.
        """
        if not self._boundary_resolved:
            return
        if self._boundary_decision is None:
            self._decide_boundary(now_ps)
        if self._boundary_decision == "miss":
            if not self._update_drained():
                return
            # All sealing-trace instructions have passed Update: hand the
            # open builder to the background sealer so the next trace's
            # Updates (and the front-end refill) overlap the issue drain.
            if self._builder_open and self._sealing is None:
                self._sealing = (self.builder, self._cur_tid,
                                 self._boundary_gen, -1)
                self.builder = TraceBuilder(self.fly.ec_block_slots,
                                            self.fly.max_trace_units)
                self._builder_open = False
            elif self._builder_open:
                return   # a previous seal is still in flight; wait
            self._close_boundary()
            if self._poll_redistribution(c):
                self._applying_redist = True
            return
        # Hit: full drain, checkpoint, then switch to trace execution.
        if not self._issue_drained():
            return
        self._seal_boundary_trace()
        hit = self._boundary_hit
        needs_frt = (self._boundary is _Boundary.MISPREDICT
                     or not self.fly.use_srt)
        if needs_frt and len(self.rob):
            return  # wait for full retirement (FRT checkpoint)
        self._close_boundary()
        if self._poll_redistribution(c):
            self._applying_redist = True
            return
        if hit is None or not hit.valid:
            # The trace was evicted while we drained: rebuild instead.
            self.stats.trace_misses += 1
            if needs_frt:
                self._pending_checkpoint[self._fe_gen + 1] = "frt"
            else:
                self._checkpoint_srt_now(c)
            self._resume_frontend(now_ps)
            return
        if needs_frt:
            self.renamer.checkpoint_from_frt()
            self.renamer.sync_srt_to_frt()
            self.stats.count("checkpoint")
        else:
            self._checkpoint_srt_now(c)
        self._trace_run += 1
        self._enter_execute(hit, c, now_ps)

    def _decide_boundary(self, now_ps: int) -> None:
        """One-time EC lookup at boundary resolution."""
        kind = self._boundary
        needs_frt = kind is _Boundary.MISPREDICT or not self.fly.use_srt
        hit = None
        if self.fly.ec_enabled:
            hit = self.ec.lookup(self._boundary_next_pc)
            self.stats.count("ec_ta_lookup")
        if hit is not None:
            self._boundary_decision = "hit"
            self._boundary_hit = hit
            return
        if self.fly.ec_enabled:
            self.stats.trace_misses += 1
        self._boundary_decision = "miss"
        follower = self._boundary_gen + 1
        self._pending_checkpoint[follower] = "frt" if needs_frt else "srt"
        self._resume_frontend(now_ps)

    def _seal_boundary_trace(self) -> None:
        if not self._builder_open:
            return
        trace = self.builder.seal(self._cur_tid)
        self._builder_open = False
        if trace is None:
            return
        self.stats.traces_built += 1
        if not self.fly.ec_enabled:
            return
        hit = self._boundary_hit
        if hit is not None and hit.start_pc == trace.start_pc:
            # The trace loops back onto its own start and we are about to
            # replay the established trace at that PC: inserting the fresh
            # duplicate would invalidate the very trace being launched.
            return
        self.ec.insert(trace)
        self.stats.count("ec_block_write",
                         trace.blocks(self.fly.ec_block_slots))

    def _close_boundary(self) -> None:
        self._boundary = _Boundary.NONE
        self._boundary_branch_seq = -1
        self._boundary_decision = None
        self._boundary_hit = None
        if self._deferred_boundary is not None:
            self._install_boundary(*self._deferred_boundary)
            self._deferred_boundary = None

    def _checkpoint_srt_now(self, c: int) -> None:
        self.renamer.checkpoint_from_srt()
        self._be_stall_until = max(self._be_stall_until, c + 2)
        self.stats.srt_switches += 1
        self.stats.count("srt_swap")

    def _resume_frontend(self, now_ps: int) -> None:
        latency_ps = self.fly.sync_cycles * self.fe_dom.period_ps
        self._fetch_blocked = True    # until the redirect matures in FE
        self._block_epoch += 1
        self._redirect_fifo.push(self._block_epoch, now_ps, latency_ps)
        self._events["sync_fifo_push"] += 1
        self._fe_gated = False

    def _poll_redistribution(self, c: int) -> bool:
        """Evaluate the stall counters; returns True if an apply is owed.

        The apply sequence only starts at quiescent points — no boundary
        open or parked — because it stops fetch and resets the renaming
        state, which must not interleave with a trace being sealed.
        """
        if not self.fly.redistribution_enabled:
            return False
        if self._pending_redist is None and self.redist.due(c):
            self._pending_redist = self.redist.check(c)
        return (self._pending_redist is not None
                and self._boundary is _Boundary.NONE
                and self._deferred_boundary is None)

    def _apply_redistribution(self, c: int, now_ps: int) -> None:
        """Install the new pool geometry on a fully drained machine."""
        if self._builder_open:
            # The trace under construction mixes pre- and post-reset LID
            # mappings; abandon it (the EC is invalidated anyway).
            self.builder.seal(self._cur_tid)
            self._builder_open = False
        self._sealing = None   # likewise stale
        self.pools.apply_sizes(self._pending_redist)
        self.renamer.reset_after_redistribution()
        self.be.reset_scoreboard()
        self.ec.invalidate_all()
        self._be_stall_until = max(self._be_stall_until,
                                   c + 1 + self.redist.penalty)
        self.stats.redistributions += 1
        self.stats.count("ec_invalidate")
        self._pending_redist = None
        self._applying_redist = False
        self._pending_checkpoint.clear()   # renaming state freshly reset
        # Whatever was planned next (replay or fetch), the EC is now empty:
        # the only way forward is a front-end restart. The applying trigger
        # is quiescence-gated, so no boundary state can be disturbed here.
        self._resume_frontend(now_ps)

    # ---------------------------------------------------- EXECUTE mode (BE)

    def _enter_execute(self, trace: Trace, c: int, now_ps: int) -> None:
        """Switch to trace-execution: gate the FE, speed up the BE."""
        replay = self._pair_trace(trace)
        if replay is None:
            # Stale trace (oracle cannot be at this path): rebuild instead.
            self._resume_frontend(now_ps)
            return
        self.stats.trace_hits += 1
        self._replay = replay
        self._set_mode(Mode.EXECUTE)
        self._fe_gated = True
        self.be_dom.set_frequency(self.clock.be_fast_mhz * self._dvfs_scale,
                                  now_ps)
        self.fill.start(c + 1, trace.slots)
        self.stats.count("mode_switch")

    def _leave_execute(self, c: int, now_ps: int, next_pc: int) -> None:
        """Trace ended: chain to the next trace or restart the front-end."""
        self._replay = None
        self.fill.stop()
        if self._poll_redistribution(c):
            # The EC is about to be invalidated: stop replaying, drain,
            # apply the new geometry, and rebuild traces from scratch.
            # Fetch restarts through the redirect FIFO; the applying flag
            # holds it until the new geometry is installed.
            self._applying_redist = True
            self._set_mode(Mode.CREATE)
            self.be_dom.set_frequency(self.clock.be_mhz, now_ps)
            self.stats.count("mode_switch")
            self._resume_frontend(now_ps)
            return
        hit = self.ec.lookup(next_pc)
        self.stats.count("ec_ta_lookup")
        if hit is not None:
            replay = self._pair_trace(hit)
            if replay is not None:
                self.stats.trace_hits += 1
                self._trace_run += 1
                self._replay = replay
                self.fill.start(c + 1, hit.slots)
                return
        self.stats.trace_misses += 1
        self._set_mode(Mode.CREATE)
        self._fe_gated = False
        self.be_dom.set_frequency(self.clock.be_mhz, now_ps)
        self._resume_frontend(now_ps)
        self.stats.count("mode_switch")

    def _pair_trace(self, trace: Trace) -> Optional[_Replay]:
        """Pair a trace's records with fresh dynamic instances.

        Consumes the oracle up to (and including) the diverging branch;
        wrong-path records consume nothing.
        """
        records = trace.program_order()
        paired: List[DynInstr] = []
        div_pos = -1
        for i, rec in enumerate(records):
            if rec.pos != i:
                raise SimulationError("trace positions are not contiguous")
            dyn = self._next_oracle()
            if dyn.sid != rec.sid:
                # The previous record must have been a control transfer
                # that went elsewhere (e.g. a return to another call site).
                self._oracle_buffer.appendleft(dyn)
                if i == 0:
                    return None
                if not records[i - 1].is_branch:
                    raise SimulationError(
                        "trace path diverged in straight-line code")
                div_pos = i - 1
                self.stats.mispredicts += 1
                break
            dyn.dest_lid = rec.dest_lid
            dyn.src_lids = rec.src_lids
            dyn.trace_pos = rec.pos
            paired.append(dyn)
            if rec.is_branch:
                self.stats.branches += 1
                if dyn.taken != rec.taken:
                    div_pos = i
                    self.stats.mispredicts += 1
                    break
        return _Replay(trace, records, paired, div_pos)

    def _replay_idle_until(self, replay: _Replay, c: int):
        """Earliest future BE cycle the replay can make progress, or None
        if the next tick may act (issue, allocate, retire, count a stall,
        or distinguish an FU-reservation conflict — all vetoes).

        Mirrors the stage gates of :meth:`_be_execute`: allocation blocked
        on ROB/LSQ space unblocks at retirement (a scheduled done event);
        a pool-capacity block is NOT skippable because it increments the
        stall counters every cycle; issue blocked on operand readiness
        unblocks at a wake event; issue blocked on fill-buffer arrivals
        has a computable ready cycle. Skipped cycles touch no state.
        """
        be = self.be
        rob_q = be._rob_q
        if rob_q and rob_q[0].done:
            return None                      # retirement this tick
        fill_bound = None
        ap = replay.alloc_ptr
        if ap < replay.valid_count:
            dyn = replay.paired[ap]
            if len(rob_q) >= be.rob.capacity:
                pass                         # unblocks at retire
            elif dyn.mem_addr is not None and be.lsq.full:
                pass                         # unblocks at retire
            else:
                # Able to allocate — or blocked on pool capacity, which
                # must keep counting rename_pool_stalls every cycle.
                return None
        if replay.unit_idx < replay.n_units and not (
                replay.div_pos >= 0 and replay.branch_resolved
                and replay.valid_issued >= replay.valid_count):
            recs = replay.trace.units[replay.unit_idx].instrs
            if not self.fill.can_consume(len(recs)):
                fill_bound = self.fill.cycle_ready_for(len(recs))
                if fill_bound is None:
                    return None
            else:
                ready = be.ready
                entries = replay.entries
                blocked = False
                for rec in recs:
                    if rec.pos >= replay.valid_count:
                        continue
                    if rec.pos >= ap:
                        blocked = True       # waits on allocation
                        break
                    if rec.op is OpClass.STORE:
                        continue
                    for tag in entries[rec.pos].dyn.src_tags:
                        if tag >= 0 and not ready[tag]:
                            blocked = True   # waits on a wake event
                            break
                    if blocked:
                        break
                if not blocked:
                    # Fully ready: either it issues next tick or an FU
                    # reservation is in the way — don't try to model that.
                    return None
        bound = be.next_event_cycle()
        if fill_bound is not None and (bound is None or fill_bound < bound):
            bound = fill_bound
        if bound is not None and bound > c + 1:
            return bound
        return None

    def _be_execute(self, c: int, now_ps: int) -> None:
        replay = self._replay
        if replay is None:
            raise SimulationError("EXECUTE mode without a replay")
        self.fill.tick(c)
        if replay.alloc_ptr < replay.valid_count:
            self._replay_alloc(replay, c)
        if replay.unit_idx < replay.n_units:
            self._replay_issue(replay, c)
        self._replay_check_end(replay, c, now_ps)

    def _replay_alloc(self, replay: _Replay, c: int) -> None:
        """Program-order Register Update + ROB/LSQ/pool allocation."""
        be = self.be
        events = self._events
        tr = self.trace
        n = 0
        while (replay.alloc_ptr < replay.valid_count
               and n < self.config.issue_width):
            dyn = replay.paired[replay.alloc_ptr]
            if be.rob.full:
                if tr is not None:
                    tr.emit(c, "stall", dyn.seq, "rob_full")
                break
            if dyn.mem_addr is not None and be.lsq.full:
                if tr is not None:
                    tr.emit(c, "stall", dyn.seq, "lsq_full")
                break
            if dyn.dest is not None and dyn.dest != 0 \
                    and not self.pools.can_allocate(dyn.dest):
                self.pools.note_stall(dyn.dest)
                self.stats.rename_pool_stalls += 1
                if tr is not None:
                    tr.emit(c, "stall", dyn.seq, "pool_full")
                break
            self.renamer.update(dyn, self._trace_run)
            events["update_op"] += 1
            if dyn.dest_lid >= 0:
                self.pools.allocate(dyn.dest)
                # NOTE: the ready bit is cleared at *issue* (not here).
                # Units issue in order, so clearing at allocation would let
                # a later writer that reuses the same pool slot mark the
                # slot busy before an older consumer in an earlier unit has
                # issued — a circular wait. Unit members are pairwise
                # independent, so issue-time clearing is race-free.
            mispredicted = replay.alloc_ptr == replay.div_pos
            entry = RobEntry(dyn, mispredicted=mispredicted, from_ec=True,
                             trace_id=replay.trace.tid)
            be.rob.insert(entry)
            replay.entries[dyn.trace_pos] = entry
            if dyn.mem_addr is not None:
                be.lsq.insert()
                events["lsq_write"] += 1
            events["rob_write"] += 1
            if tr is not None:
                tr.emit(c, "dispatch", dyn.seq)
            replay.alloc_ptr += 1
            n += 1

    def _replay_issue(self, replay: _Replay, c: int) -> None:
        """Issue at most one recorded Issue Unit per fast cycle.

        The caller has checked ``unit_idx < n_units``.
        """
        if (replay.div_pos >= 0 and replay.branch_resolved
                and replay.valid_issued >= replay.valid_count):
            return  # redirect has happened; wrong path stops here
        unit = replay.trace.units[replay.unit_idx]
        recs = unit.instrs
        if not self.fill.can_consume(len(recs)):
            return
        be = self.be
        ready = be.ready
        entries = replay.entries
        alloc_ptr = replay.alloc_ptr
        if replay.div_pos < 0:
            valid = recs        # no divergence: every record is valid
        else:
            vc = replay.valid_count
            valid = [rec for rec in recs if rec.pos < vc]
        for rec in valid:
            if rec.pos >= alloc_ptr:
                return  # allocation (program order) hasn't caught up
            if rec.op is OpClass.STORE:
                continue  # store data drains from the store queue at commit
            dyn = entries[rec.pos].dyn
            for tag in dyn.src_tags:
                if tag >= 0 and not ready[tag]:
                    return
        if not be.fu.try_issue_group(unit.demands, c):
            return
        self.fill.consume(len(recs))
        be_scale = self._be_scale
        events = self._events
        wake_events = be.wake_events
        done_events = be.done_events
        regread = self.config.regread_stages
        tr = self.trace
        for rec in valid:
            entry = entries[rec.pos]
            dyn = entry.dyn
            lat = EXEC_LATENCY_TAB[dyn.op]
            if dyn.op is OpClass.LOAD:
                lat += self.hierarchy.load(dyn.mem_addr, be_scale, c)
                events["dcache_access"] += 1
            wake = c + lat
            done = wake + regread
            if tr is not None:
                tr.emit(c, "issue", dyn.seq, lat)
            if dyn.dest_tag >= 0:
                ready[dyn.dest_tag] = 0
                wake_events.setdefault(wake, []).append(dyn.dest_tag)
            done_events.setdefault(done, []).append(entry)
        replay.unit_idx += 1
        replay.valid_issued += len(valid)
        self.stats.issued += len(valid)
        events["fu_op"] += len(recs)
        events["rf_read"] += sum(len(r.srcs) for r in valid)

    def _replay_check_end(self, replay: _Replay, c: int,
                          now_ps: int) -> None:
        if replay.div_pos >= 0:
            self._replay_abort_step(replay, c, now_ps)
            return
        if (replay.unit_idx >= replay.n_units
                and replay.alloc_ptr >= replay.valid_count):
            # Natural end: SRT swap gives a one-cycle switch penalty.
            if self.fly.use_srt:
                self._checkpoint_srt_now(c)
            elif len(self.rob):
                return
            else:
                self.renamer.checkpoint_from_frt()
                self.renamer.sync_srt_to_frt()
                self.stats.count("checkpoint")
            self._leave_execute(c, now_ps, replay.next_pc)

    def _replay_abort_step(self, replay: _Replay, c: int,
                           now_ps: int) -> None:
        """Handle a diverging trace: early EC lookup, overlap FE restart.

        As soon as the diverging branch resolves, the EC is searched for
        the correct-path trace. On a miss the front-end restarts
        immediately (its refill overlaps the replay's drain, mirroring the
        baseline's recovery); on a hit the next replay starts right after
        the FRT checkpoint.
        """
        if not replay.branch_resolved:
            return
        if replay.decision is None:
            replay.next_trace = (self.ec.lookup(replay.next_pc)
                                 if self.fly.ec_enabled else None)
            self.stats.count("ec_ta_lookup")
            if replay.next_trace is None:
                replay.decision = "miss"
                self.stats.trace_misses += 1
                self._pending_checkpoint[self._fe_gen + 1] = "frt"
                self._resume_frontend(now_ps)
            else:
                replay.decision = "hit"
        if not replay.all_valid_issued or len(self.rob):
            return
        # Fully drained and retired.
        self._replay = None
        self.fill.stop()
        if replay.decision == "miss":
            self._to_create_mode(now_ps)
            if self._poll_redistribution(c):
                self._applying_redist = True
            return
        # Hit path: checkpoint through the FRT now that everything retired.
        self.renamer.checkpoint_from_frt()
        self.renamer.sync_srt_to_frt()
        self.stats.count("checkpoint")
        if self._poll_redistribution(c):
            self._applying_redist = True
            self._to_create_mode(now_ps)
            self._resume_frontend(now_ps)
            return
        nxt = replay.next_trace
        if nxt is None or not nxt.valid:
            self.stats.trace_misses += 1
            self._to_create_mode(now_ps)
            self._resume_frontend(now_ps)
            return
        new_replay = self._pair_trace(nxt)
        if new_replay is None:
            self.stats.trace_misses += 1
            self._to_create_mode(now_ps)
            self._resume_frontend(now_ps)
            return
        self.stats.trace_hits += 1
        self._trace_run += 1
        self._replay = new_replay
        self.fill.start(c + 1, nxt.slots)

    def _to_create_mode(self, now_ps: int) -> None:
        """Return to trace-creation mode at the slow back-end clock."""
        self._set_mode(Mode.CREATE)
        self._fe_gated = False
        self.be_dom.set_frequency(self.clock.be_mhz, now_ps)
        self.stats.count("mode_switch")
