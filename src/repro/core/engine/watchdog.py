"""Forward-progress watchdog shared by every core kind.

Each core used to hand-roll its own deadlock check with its own window
constant; the watchdog unifies them behind ``CoreConfig.deadlock_window``
(0 = the kind-specific default the core passes in).
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from repro.errors import DeadlockError, SimulationError


class DeadlockWatchdog:
    """Abort the run when no instruction commits for ``window`` cycles.

    ``poll`` is called once per cycle (or per back-end tick) with the
    current cycle number and committed-instruction count; ``describe``
    supplies the core-specific context appended to the error message and
    ``snapshot`` a structured machine-state dict attached to the raised
    :class:`DeadlockError` (both are callables so the happy path never
    pays for building them).
    """

    __slots__ = ("window", "_last_cycle", "_last_count")

    def __init__(self, window: int):
        if window < 1:
            raise SimulationError(f"deadlock window must be >= 1: {window}")
        self.window = window
        self._last_cycle = 0
        self._last_count = -1

    def poll(self, cycle: int, committed: int,
             describe: Optional[Callable[[], str]] = None,
             snapshot: Optional[Callable[[], Dict[str, object]]] = None,
             ) -> None:
        if committed != self._last_count:
            self._last_count = committed
            self._last_cycle = cycle
        elif cycle - self._last_cycle > self.window:
            self.trip(cycle, committed, describe, snapshot)

    def trip(self, cycle: int, committed: int,
             describe: Optional[Callable[[], str]] = None,
             snapshot: Optional[Callable[[], Dict[str, object]]] = None,
             ) -> None:
        """Raise the deadlock error (run loops inline the cheap check)."""
        detail = describe() if describe is not None else (
            f" at cycle {cycle} (committed={committed})")
        data = snapshot() if snapshot is not None else {}
        data.setdefault("cycle", cycle)
        data.setdefault("committed", committed)
        raise DeadlockError(
            f"no commit for {self.window} cycles{detail}", snapshot=data)
