"""Front-end feed stage: the fetch/decode/rename latch chain.

The feed owns the inter-stage latches every core kind threads instructions
through before they reach the back end, plus the Decode stage itself,
which is identical across kinds. Fetch *policy* (when to stop a fetch
group, trace bookkeeping, oracle pushback) and Rename differ per machine
and live in the cores; they operate on these latches.

Latches hold bare :class:`DynInstr` objects; the maturity timestamp (in
the owning clock domain's cycle numbers) lives on ``dyn.lat_ready``,
owned by whichever latch currently holds the instruction — the feed
itself is clock-agnostic.
"""

from __future__ import annotations

from collections import deque
from typing import Deque

from repro.core.stats import SimStats
from repro.isa import DynInstr

#: Fetch-side buffering in fetch groups: fetch never runs more than this
#: many full groups ahead of decode.
FETCH_BUFFER_GROUPS = 4


class FrontEndFeed:
    """Fetch-out / decode-out / rename-out latches plus the Decode stage."""

    __slots__ = ("decode_width", "_fetch_cap", "fetch_out", "decode_out",
                 "rename_out", "_events", "trace")

    def __init__(self, fetch_width: int, decode_width: int,
                 stats: SimStats):
        self.decode_width = decode_width
        self._fetch_cap = FETCH_BUFFER_GROUPS * fetch_width
        self.fetch_out: Deque[DynInstr] = deque()
        self.decode_out: Deque[DynInstr] = deque()
        self.rename_out: Deque[DynInstr] = deque()
        self._events = stats.events
        #: Flight recorder, or None. Only set by single-clock cores:
        #: decode events are stamped with the cycle passed to
        #: :meth:`decode`, which must be on the back-end cycle axis.
        self.trace = None

    @property
    def fetch_room(self) -> bool:
        """Bounded fetch-side buffering: don't run ahead of the machine."""
        return len(self.fetch_out) < self._fetch_cap

    def decode(self, c: int) -> None:
        """Move up to ``decode_width`` matured instructions to rename."""
        fetch_out = self.fetch_out
        if not fetch_out:
            return
        decode_out = self.decode_out
        tr = self.trace
        n = 0
        while fetch_out and n < self.decode_width:
            dyn = fetch_out[0]
            if dyn.lat_ready > c:
                break
            fetch_out.popleft()
            dyn.lat_ready = c + 1
            decode_out.append(dyn)
            if tr is not None:
                tr.emit(c, "decode", dyn.seq)
            n += 1
        if n:
            self._events["decode_op"] += n
