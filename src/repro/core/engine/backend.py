"""Shared execution back end: dispatch admission, execute/writeback, retire.

One instance holds the structures every core kind shares — issue window,
reorder buffer, load/store queue, functional-unit pools, the physical-
register scoreboard, and the wake/done event queues — plus the per-cycle
mechanics over them. The cores keep only their *policy*: when to issue,
how to rename, what a trace boundary means.

Per-cycle contract (back-end clock): the owning core calls
``tick(c, mem_scale)`` first thing each cycle, which performs

1. FU bookkeeping     — reset issue slots, expire long reservations.
2. Writeback          — mature tag broadcasts (scoreboard + window
   wake-up) and completion events; the configured ``on_resolved(entry,
   c)`` hook fires for completed entries flagged ``mispredicted``.
3. Retire             — in-order commit from the ROB head; the configured
   ``commit_entry(entry)`` hook applies the core's renamer bookkeeping.

and then runs its own issue/dispatch stages, calling ``schedule``/
``admit``. Hooks are installed once via :meth:`configure` — the tick path
is the hottest loop in the repository and carries no per-call policy
arguments.

Event-queue discipline: ``wake_events``/``done_events`` map cycle number
-> list in issue order. The engine only appends and pops whole cycles, so
two cores issuing identical instruction sequences produce bit-identical
stats — the golden-equivalence property the refactor is pinned against.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.core.config import CoreConfig
from repro.core.stats import SimStats
from repro.execute.fu import FuPool
from repro.execute.lsq import LoadStoreQueue
from repro.isa import DynInstr, OpClass
from repro.isa.opclasses import EXEC_LATENCY_TAB
from repro.mem.hierarchy import MemoryHierarchy
from repro.rob.reorder_buffer import ReorderBuffer, RobEntry

#: entry-completion hook: (entry, cycle) -> None
ResolveHook = Callable[[RobEntry, int], None]
#: retirement hook: (entry) -> None
CommitHook = Callable[[RobEntry], None]


class ExecBackend:
    """Execute/writeback/retire engine over FuPool + LSQ + ROB."""

    __slots__ = ("stats", "hierarchy", "fu", "lsq", "rob", "ready",
                 "wake_events", "done_events", "pending", "_events",
                 "_regread_stages", "_rob_q", "_iw",
                 "_commit_width", "_on_resolved", "_commit_entry",
                 "_trace")

    def __init__(self, config: CoreConfig, stats: SimStats,
                 hierarchy: MemoryHierarchy, phys_regs: int):
        self.stats = stats
        self.hierarchy = hierarchy
        self.fu = FuPool(config.int_alus, config.int_muldivs,
                         config.mem_ports, config.fp_adders,
                         config.fp_muldivs)
        self.lsq = LoadStoreQueue(config.lsq_entries)
        self.rob = ReorderBuffer(config.rob_entries)
        #: physical-register readiness scoreboard (1 = ready)
        self.ready = bytearray([1] * phys_regs)
        #: completion queues keyed by cycle: tag broadcasts / done entries
        self.wake_events: Dict[int, List[int]] = {}
        self.done_events: Dict[int, List[RobEntry]] = {}
        #: in-flight entries admitted but not yet issued, keyed by seq
        self.pending: Dict[int, RobEntry] = {}
        self._events = stats.events
        self._regread_stages = config.regread_stages
        self._commit_width = config.commit_width
        # Hot-path bindings (the underlying objects never change identity).
        self._rob_q = self.rob._queue
        self._iw = None
        self._on_resolved: ResolveHook = _no_resolve
        self._commit_entry: CommitHook = _no_commit
        #: Flight recorder, or None (the no-op path: every emission site
        #: below is one ``is not None`` branch on a slot read).
        self._trace = None

    def attach_trace(self, recorder) -> None:
        """Arm the flight recorder (a :class:`repro.obs.TraceRecorder`)."""
        self._trace = recorder

    def configure(self, iw, on_resolved: ResolveHook,
                  commit_entry: CommitHook) -> None:
        """Install the owning core's issue window and policy hooks."""
        self._iw = iw
        self._on_resolved = on_resolved
        self._commit_entry = commit_entry

    # ------------------------------------------------------------- helpers

    @property
    def ready_getter(self) -> Callable[[int], int]:
        """Scoreboard probe for IssueWindow.insert (bound C method)."""
        return self.ready.__getitem__

    def reset_scoreboard(self) -> None:
        """Mark every physical register ready (renaming state reset)."""
        self.ready[:] = b"\x01" * len(self.ready)

    # ------------------------------------------------------------- stages

    def tick(self, c: int, mem_scale: float) -> None:
        """Per-cycle entry: FU bookkeeping, writeback, retire (in order)."""
        # Inline FuPool.begin_cycle — both branches are usually false.
        fu = self.fu
        fu._cycle = c
        if fu._dirty:
            fu._used[:] = fu._zeros
            fu._dirty = False
        if fu._n_reserved:
            remaining = 0
            for res in fu._reserved:
                if res:
                    res[:] = [t for t in res if t > c]
                    remaining += len(res)
            fu._n_reserved = remaining
        wakes = self.wake_events.pop(c, None)
        if wakes is not None:
            ready = self.ready
            for tag in wakes:
                ready[tag] = 1
            self._iw.broadcast_many(wakes, c)
            events = self._events
            events["iw_broadcast"] += len(wakes)
            events["rf_write"] += len(wakes)
        dones = self.done_events.pop(c, None)
        if dones is not None:
            on_resolved = self._on_resolved
            for entry in dones:
                entry.done = True
                if entry.mispredicted:
                    on_resolved(entry, c)
            tr = self._trace
            if tr is not None:
                for entry in dones:
                    tr.emit(c, "complete", entry.dyn.seq)
        rob_q = self._rob_q
        if rob_q and rob_q[0].done:
            self.retire(self._commit_width, mem_scale, self._commit_entry, c)

    def admit(self, dyn: DynInstr, entry: RobEntry) -> None:
        """Insert one dispatched instruction into ROB (+LSQ if memory).

        The caller has already verified capacity (``rob.full``,
        ``lsq.full``, window slots) and inserts into its issue window
        right after — window types differ per core.
        """
        # Inline ReorderBuffer.insert (capacity was checked by the caller;
        # this runs once per dispatched instruction).
        rob = self.rob
        self._rob_q.append(entry)
        rob.writes += 1
        self.pending[dyn.seq] = entry
        events = self._events
        if dyn.mem_addr is not None:
            self.lsq.insert()
            events["lsq_write"] += 1
        events["rob_write"] += 1

    def schedule_group(self, selected, c: int, mem_scale: float) -> int:
        """Start execution of one selected group, in selection order.

        Equivalent to calling :meth:`schedule` per instruction; one call
        per cycle with the loop invariants hoisted. Returns the group's
        register-file read count (the ``rf_read`` power event).
        """
        wake_events = self.wake_events
        done_events = self.done_events
        pending = self.pending
        regread = self._regread_stages
        load = self.hierarchy.load
        events = self._events
        lat_tab = EXEC_LATENCY_TAB
        tr = self._trace
        rf_reads = 0
        for dyn in selected:
            op = dyn.op
            lat = lat_tab[op]
            if op is OpClass.LOAD:
                lat += load(dyn.mem_addr, mem_scale, c)
                events["dcache_access"] += 1
            if tr is not None:
                tr.emit(c, "issue", dyn.seq, lat)
            wake = c + lat
            tag = dyn.dest_tag
            if tag >= 0:
                lst = wake_events.get(wake)
                if lst is None:
                    wake_events[wake] = [tag]
                else:
                    lst.append(tag)
            done = wake + regread
            entry = pending.pop(dyn.seq)
            lst = done_events.get(done)
            if lst is None:
                done_events[done] = [entry]
            else:
                lst.append(entry)
            rf_reads += len(dyn.src_tags)
        return rf_reads

    def retire(self, width: int, mem_scale: float,
               commit_entry: CommitHook, now: int = 0) -> int:
        """In-order commit of up to ``width`` done entries from the head."""
        retired = self.rob.retire_ready(width)
        if not retired:
            return 0
        hierarchy = self.hierarchy
        lsq = self.lsq
        events = self._events
        stats = self.stats
        for entry in retired:
            dyn = entry.dyn
            if dyn.op is OpClass.STORE and dyn.mem_addr is not None:
                hierarchy.store(dyn.mem_addr, mem_scale, now)
                events["dcache_access"] += 1
            if entry.is_mem:
                lsq.release()
            commit_entry(entry)
            stats.committed += 1
        events["rob_read"] += len(retired)
        tr = self._trace
        if tr is not None:
            for entry in retired:
                tr.emit(now, "retire", entry.dyn.seq)
        return len(retired)

    def next_event_cycle(self):
        """Earliest cycle at which a wake or done event is scheduled.

        Used by the idle skip-ahead: only consulted when the owning core
        has proven every other stage quiescent, so the O(pending) scans
        are off the per-cycle path. Returns None with no events pending.
        """
        wake = self.wake_events
        done = self.done_events
        best = min(wake) if wake else None
        if done:
            dmin = min(done)
            if best is None or dmin < best:
                best = dmin
        return best


def _no_resolve(entry: RobEntry, c: int) -> None:   # pragma: no cover
    raise RuntimeError("ExecBackend.configure() was never called")


def _no_commit(entry: RobEntry) -> None:   # pragma: no cover
    raise RuntimeError("ExecBackend.configure() was never called")
