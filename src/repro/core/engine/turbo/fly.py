"""Turbo run loop for the Flywheel core (dual clock + Execution Cache).

Unlike the single-clock turbo loop (:mod:`repro.core.engine.turbo.sync`),
the Flywheel's cost is not concentrated in one stage walk: profiles
spread it across the two-domain scheduler, the creation-side Register
Update, the replay allocator/issuer, and the oracle stream.  A full
struct-of-arrays transliteration of the trace-boundary state machine
(sealing, deferred boundaries, checkpoints, redistribution) would risk
divergence for little gain, so this loop is a *hybrid*:

* the two-domain run loop, ``ExecBackend.tick``/``retire``, and the hot
  stage bodies (``_create_accept``, ``_create_issue``, ``_replay_alloc``,
  ``_replay_issue``, the FE fetch/rename/dispatch stages, two-phase
  ``rename``/``update``/``retire``) are line-for-line transliterations
  with bound locals, operating on the *real* DynInstr/RobEntry objects
  and the real issue window / fill buffer / EC;
* everything rare — boundary resolution, checkpoints, redistribution,
  trace pairing, the replay skip-ahead bound — stays a method call into
  :class:`repro.core.flywheel.FlywheelCore`, sharing one implementation
  with the legacy engine;
* the oracle stream is swapped for a :class:`PooledOracle` over the
  shared :class:`StreamPool` columns: the program walk (block
  bookkeeping, RNG draws, address resolution) runs once per benchmark
  instead of once per run.  Predictor outcomes are deliberately *not*
  pooled here — replayed (EXECUTE-mode) branches never consult the
  predictor, so its state depends on trace-cache behaviour; the live
  ``core.bpred`` is driven exactly as the legacy engine drives it.

Volatile core attributes (mode, scales, the open builder, the renamer's
checkpoint tables) are re-read at stage granularity rather than bound,
because boundary method calls rebind them mid-run.  The golden gate
(tests/test_golden_stats.py) holds this loop to bit-identical SimStats
against the legacy engine.
"""

from __future__ import annotations

from heapq import heappop, heappush
from time import perf_counter

from repro.core.engine.turbo.pool import PooledOracle, get_pool
from repro.errors import SimulationError
from repro.isa import DynInstr
from repro.isa.opclasses import (
    EXEC_LATENCY_TAB,
    FU_KIND_TAB,
    UNPIPELINED_TAB,
    OpClass,
)
from repro.issue.window import IWEntry
from repro.rob.reorder_buffer import RobEntry

_LOAD = OpClass.LOAD
_STORE = OpClass.STORE


def run_turbo_fly(core, max_instructions: int, warmup: int = 0,
                  prof=None):
    """Drop-in replacement for ``FlywheelCore.run`` (turbo backend).

    ``prof``, when given, is duck-typed as a PhaseProfile: wall-clock
    seconds are accumulated into ``prof.seconds["pool"]`` (pool build +
    functional warmup) and ``prof.seconds["loop"]`` (the fused loop),
    and ``prof.ticks`` counts scheduler pops.
    """
    from repro.core.flywheel import Mode, _Boundary

    t0 = perf_counter()
    config = core.config
    fly = core.fly
    stream = core.stream
    pool = get_pool(stream.program, stream.seed, config.bpred)
    s0 = stream._seq
    pool.ensure(s0 + warmup + pool.CHUNK)
    # The pooled oracle replaces the live walker for the whole run —
    # including the warmup and the method-call paths (``_pair_trace``,
    # ``_next_oracle``) that read ``core.stream`` directly.
    core.stream = PooledOracle(pool, s0)

    if warmup:
        core._functional_warmup(warmup)
        if core.dvfs is not None:
            core.dvfs.reset_baseline(core)

    # ---- stable machine bindings (object identities never change) ----
    stats = core.stats
    events = stats.events
    be = core.be
    iw = core.iw
    # Issue-window internals (heaps/waiters mutate in place, even across
    # flush(), so one binding is safe for the whole run).  ``_recent`` /
    # ``caught_by_dup_match`` are deliberately NOT maintained here: they
    # are write-only scratch with raced_tags == 0 on this path and no
    # observer anywhere (metrics read only writes/broadcasts).
    iw_future = iw._future
    iw_eligible = iw._eligible
    iw_waiters = iw._waiters
    iw_width = iw.issue_width
    wk_delay = iw.wakeup_extra_delay
    delay_net = iw.delay_network
    fu = be.fu
    fu_counts = fu._counts
    fu_used = fu._used
    fu_reserved = fu._reserved
    fu_kind_tab = FU_KIND_TAB
    unpip_tab = UNPIPELINED_TAB
    lsq = be.lsq
    rob = be.rob
    rob_q = be._rob_q
    rob_cap = rob.capacity
    iw_cap = iw.capacity
    pending = be.pending
    ready = be.ready
    wake_events = be.wake_events
    done_events = be.done_events
    on_resolved = be._on_resolved
    hierarchy = core.hierarchy
    h_load = hierarchy.load
    h_store = hierarchy.store
    h_ifetch = hierarchy.ifetch
    fill = core.fill
    fe = core.fe
    fe_decode = fe.decode
    fetch_cap = fe._fetch_cap
    fetch_out = core._fetch_out
    decode_out = core._decode_out
    rename_out = core._rename_out
    dispatch_fifo = core._dispatch_fifo
    dispatch_q = core._dispatch_q
    fifo_cap = dispatch_fifo.capacity
    redirect_fifo = core._redirect_fifo
    redirect_q = core._redirect_q
    renamer = core.renamer
    ren_lid = renamer._lid          # mutated in place, never rebound
    frt = renamer._frt              # likewise
    srt_trace = renamer._srt_trace  # likewise
    pools = core.pools
    bases = pools.bases             # recomputed in place
    inflight = pools.inflight
    highwater = pools.highwater
    oracle_buffer = core._oracle_buffer
    # PooledOracle.next_instr inline in the fetch stage: ``oracle._seq``
    # must be read/written through the object because the method-call
    # paths (_pair_trace, _next_oracle) advance the same cursor.
    oracle = core.stream
    pool_ensure = pool.ensure
    po_pc = pool.pc
    po_op = pool.op
    po_dest = pool.dest
    po_srcs = pool.srcs
    po_sid = pool.sid
    po_addr = pool.mem_addr
    po_bk = pool.bk
    po_taken = pool.taken
    po_tpc = pool.target_pc
    po_fpc = pool.fall_pc
    bpred_predict = core.bpred.predict
    outstanding = core._outstanding
    pre_update = core._pre_update
    entries_of = None               # replay.entries, rebound per replay
    tr = core.trace
    tron = tr is not None
    emit = tr.emit if tron else None
    sched = core.sched
    be_dom = core.be_dom
    fe_dom = core.fe_dom
    dvfs = core.dvfs
    watchdog = core.watchdog
    window = watchdog.window
    lat_tab = EXEC_LATENCY_TAB
    MODE_CREATE = Mode.CREATE
    B_NONE = _Boundary.NONE
    B_MISPREDICT = _Boundary.MISPREDICT
    B_NATURAL = _Boundary.NATURAL

    dispatch_width = config.dispatch_width
    rename_width = config.rename_width
    fetch_width = config.fetch_width
    issue_width = config.issue_width
    commit_width = config.commit_width
    regread = config.regread_stages
    extra_fe = config.extra_frontend_stages
    fe_scale = core._fe_scale
    sync_cycles = fly.sync_cycles
    ec_enabled = fly.ec_enabled
    trace_cap = fly.max_trace_instrs

    last_cycle = 0
    last_count = -1
    now_ps = 0
    ticks = 0
    t1 = perf_counter()

    while stats.committed < max_instructions:
        ticks += 1
        now_ps = be_dom.next_tick_ps
        if now_ps <= fe_dom.next_tick_ps:
            be_dom.next_tick_ps = now_ps + be_dom.period_ps
            be_dom.cycles += 1
            # ======================= BE tick =========================
            c = be_dom.cycles
            create = core.mode is MODE_CREATE
            if create:
                stats.be_cycles_create += 1
            else:
                stats.be_cycles_execute += 1
            be_scale = core._be_scale
            # ---- ExecBackend.tick: FU bookkeeping, writeback, retire
            fu._cycle = c
            if fu._dirty:
                fu._used[:] = fu._zeros
                fu._dirty = False
            if fu._n_reserved:
                remaining = 0
                for res in fu._reserved:
                    if res:
                        res[:] = [t for t in res if t > c]
                        remaining += len(res)
                fu._n_reserved = remaining
            wakes = wake_events.pop(c, None)
            if wakes is not None:
                # ---- IssueWindow.broadcast_many inline
                iw.broadcasts += len(wakes)
                ready_at = c + wk_delay
                for tag in wakes:
                    ready[tag] = 1
                    waiters = iw_waiters.pop(tag, None)
                    if not waiters:
                        continue
                    for went in waiters:
                        if went.alive:
                            nr = went.not_ready - 1
                            went.not_ready = nr
                            if ready_at > went.earliest:
                                went.earliest = ready_at
                            if nr == 0:
                                heappush(iw_future, (went.earliest,
                                                     went.order, went))
                            elif nr < 0:
                                raise SimulationError(
                                    "negative wait count in issue window")
                events["iw_broadcast"] += len(wakes)
                events["rf_write"] += len(wakes)
            dones = done_events.pop(c, None)
            if dones is not None:
                for entry in dones:
                    entry.done = True
                    if entry.mispredicted:
                        on_resolved(entry, c)
                if tron:
                    for entry in dones:
                        emit(c, "complete", entry.dyn.seq)
            if rob_q and rob_q[0].done:
                # ---- ExecBackend.retire + TwoPhaseRenamer.retire
                retired = []
                while (rob_q and len(retired) < commit_width
                       and rob_q[0].done):
                    retired.append(rob_q.popleft())
                for entry in retired:
                    dyn = entry.dyn
                    if dyn.op is _STORE and dyn.mem_addr is not None:
                        h_store(dyn.mem_addr, be_scale, c)
                        events["dcache_access"] += 1
                    if entry.is_mem:
                        lsq.release()
                    if dyn.dest_lid >= 0:
                        arch = dyn.dest
                        frt[arch] = dyn.dest_tag - bases[arch]
                        if inflight[arch] <= 0:
                            raise SimulationError(
                                f"pool underflow on architected reg {arch}")
                        inflight[arch] -= 1
                    if entry.from_ec:
                        stats.instrs_from_ec += 1
                    stats.committed += 1
                events["rob_read"] += len(retired)
                if tron:
                    for entry in retired:
                        emit(c, "retire", entry.dyn.seq)
            # ---- policy stages
            if c < core._be_stall_until:
                stats.checkpoint_stall_cycles += 1
            else:
                ran_redist = False
                if core._applying_redist:
                    if (not rob_q and not any(inflight)
                            and core._boundary is B_NONE
                            and core._deferred_boundary is None):
                        core._apply_redistribution(c, now_ps)
                        ran_redist = True
                if ran_redist:
                    pass
                elif create:
                    # =================== CREATE mode ==================
                    if iw._count:
                        # ---- _create_issue (IssueWindow.select inline)
                        while iw_future and iw_future[0][0] <= c:
                            item = heappop(iw_future)
                            heappush(iw_eligible, (item[1], item[2]))
                        selected = []
                        if iw_eligible:
                            blocked = []
                            while iw_eligible:
                                item = iw_eligible[0]
                                went = item[1]
                                if not went.alive:
                                    heappop(iw_eligible)
                                    continue
                                if len(selected) >= iw_width:
                                    break
                                heappop(iw_eligible)
                                op = went.dyn.op
                                kind = fu_kind_tab[op]
                                if (fu_counts[kind] - fu_used[kind]
                                        - len(fu_reserved[kind]) > 0):
                                    fu_used[kind] += 1
                                    fu._dirty = True
                                    if unpip_tab[op]:
                                        fu_reserved[kind].append(
                                            c + lat_tab[op])
                                        fu._n_reserved += 1
                                    fu.ops += 1
                                    went.alive = False
                                    iw._count -= 1
                                    selected.append(went.dyn)
                                else:
                                    blocked.append(item)
                            for item in blocked:
                                heappush(iw_eligible, item)
                        if not selected:
                            if tron:
                                emit(c, "stall", -1,
                                     "fu_busy" if iw_eligible
                                     else "dep_wait")
                        else:
                            # ---- be.schedule_group inline
                            rf_reads = 0
                            for dyn in selected:
                                op = dyn.op
                                lat = lat_tab[op]
                                if op is _LOAD:
                                    lat += h_load(dyn.mem_addr, be_scale, c)
                                    events["dcache_access"] += 1
                                if tron:
                                    emit(c, "issue", dyn.seq, lat)
                                wake = c + lat
                                tag = dyn.dest_tag
                                if tag >= 0:
                                    wake_events.setdefault(
                                        wake, []).append(tag)
                                done_events.setdefault(
                                    wake + regread, []).append(
                                        pending.pop(dyn.seq))
                                rf_reads += len(dyn.src_tags)
                            group = []
                            sealing_group = []
                            sealing = core._sealing
                            sealing_gen = sealing[2] if sealing else -1
                            for dyn in selected:
                                tg = dyn.trace_gen
                                left = outstanding.get(tg, 1) - 1
                                if left:
                                    outstanding[tg] = left
                                else:
                                    outstanding.pop(tg, None)
                                if tg == sealing_gen:
                                    sealing_group.append((dyn.trace_pos,
                                                          dyn))
                                else:
                                    group.append((dyn.trace_pos, dyn))
                            if sealing_group:
                                sealing[0].record_unit(sealing_group)
                            if core._builder_open and group:
                                core.builder.record_unit(group)
                            core._finish_sealing()
                            n_sel = len(selected)
                            stats.issued += n_sel
                            events["iw_select"] += n_sel
                            events["rf_read"] += rf_reads
                            events["fu_op"] += n_sel
                    if dispatch_q:
                        # ---- _create_accept (+ renamer.update inline)
                        n = 0
                        while n < dispatch_width:
                            if not dispatch_q or dispatch_q[0][0] > now_ps:
                                break
                            dyn = dispatch_q[0][1]
                            if len(rob_q) >= rob_cap or iw._count >= iw_cap:
                                if tron:
                                    emit(c, "stall", dyn.seq,
                                         "rob_full"
                                         if len(rob_q) >= rob_cap
                                         else "iw_full")
                                break
                            if (dyn.mem_addr is not None
                                    and lsq._count >= lsq.capacity):
                                if tron:
                                    emit(c, "stall", dyn.seq, "lsq_full")
                                break
                            if (dyn.trace_start
                                    and not core._begin_trace_at_update(
                                        dyn, c)):
                                stats.checkpoint_stall_cycles += 1
                                break
                            dispatch_q.popleft()
                            dispatch_fifo.pops += 1
                            events["sync_fifo_pop"] += 1
                            tg = dyn.trace_gen
                            remaining = pre_update.get(tg, 0) - 1
                            if remaining > 0:
                                pre_update[tg] = remaining
                            else:
                                pre_update.pop(tg, None)
                            # renamer.update(dyn, core._trace_run): the
                            # checkpoint tables rebind at trace starts,
                            # so read them per iteration.
                            renamer.updates += 1
                            rt = renamer._rt
                            p_sizes = pools.sizes
                            tr_run = core._trace_run
                            dyn.src_tags = tuple(
                                [bases[a] + (rt[a] + l) % p_sizes[a]
                                 for a, l in zip(dyn.srcs, dyn.src_lids)])
                            dl = dyn.dest_lid
                            if dl >= 0:
                                arch = dyn.dest
                                slot = (rt[arch] + dl) % p_sizes[arch]
                                dyn.dest_tag = bases[arch] + slot
                                if tr_run >= srt_trace[arch]:
                                    renamer._srt[arch] = slot
                                    srt_trace[arch] = tr_run
                            else:
                                dyn.dest_tag = -1
                            events["update_op"] += 1
                            if dyn.dest_tag >= 0:
                                ready[dyn.dest_tag] = 0
                            entry = RobEntry(
                                dyn,
                                mispredicted=(dyn.seq
                                              == core._boundary_branch_seq))
                            # be.admit inline
                            rob_q.append(entry)
                            rob.writes += 1
                            pending[dyn.seq] = entry
                            if dyn.mem_addr is not None:
                                lsq.insert()
                                events["lsq_write"] += 1
                            events["rob_write"] += 1
                            # ---- iw.insert_synced inline (raced_tags=0;
                            # capacity was checked above)
                            went = IWEntry(dyn, 0,
                                           c + 2 if delay_net else c + 1,
                                           iw._order)
                            iw._order += 1
                            nr = 0
                            if dyn.op is not _STORE:
                                for tag in dyn.src_tags:
                                    if tag >= 0 and not ready[tag]:
                                        nr += 1
                                        iw_waiters.setdefault(
                                            tag, []).append(went)
                            went.not_ready = nr
                            if nr == 0:
                                heappush(iw_future,
                                         (went.earliest, went.order, went))
                            iw._count += 1
                            iw.writes += 1
                            if tron:
                                emit(c, "dispatch", dyn.seq)
                            outstanding[tg] = outstanding.get(tg, 0) + 1
                            events["iw_write"] += 1
                            n += 1
                    if core._boundary is not B_NONE:
                        core._try_finish_boundary(c, now_ps)
                else:
                    # ================== EXECUTE mode ==================
                    replay = core._replay
                    if replay is None:
                        raise SimulationError(
                            "EXECUTE mode without a replay")
                    if fill._active and fill._arrived < fill._total_slots:
                        fill.tick(c)
                    ap = replay.alloc_ptr
                    vc = replay.valid_count
                    if ap < vc:
                        # ---- _replay_alloc (+ renamer.update inline)
                        paired = replay.paired
                        entries_of = replay.entries
                        rt = renamer._rt
                        srt = renamer._srt
                        p_sizes = pools.sizes
                        tr_run = core._trace_run
                        div_pos = replay.div_pos
                        tid = replay.trace.tid
                        n = 0
                        while ap < vc and n < issue_width:
                            dyn = paired[ap]
                            if len(rob_q) >= rob_cap:
                                if tron:
                                    emit(c, "stall", dyn.seq, "rob_full")
                                break
                            if (dyn.mem_addr is not None
                                    and lsq._count >= lsq.capacity):
                                if tron:
                                    emit(c, "stall", dyn.seq, "lsq_full")
                                break
                            dest = dyn.dest
                            if (dest is not None and dest != 0
                                    and inflight[dest]
                                    >= p_sizes[dest] - 1):
                                pools.note_stall(dest)
                                stats.rename_pool_stalls += 1
                                if tron:
                                    emit(c, "stall", dyn.seq, "pool_full")
                                break
                            renamer.updates += 1
                            dyn.src_tags = tuple(
                                [bases[a] + (rt[a] + l) % p_sizes[a]
                                 for a, l in zip(dyn.srcs, dyn.src_lids)])
                            dl = dyn.dest_lid
                            if dl >= 0:
                                arch = dest
                                slot = (rt[arch] + dl) % p_sizes[arch]
                                dyn.dest_tag = bases[arch] + slot
                                if tr_run >= srt_trace[arch]:
                                    srt[arch] = slot
                                    srt_trace[arch] = tr_run
                            else:
                                dyn.dest_tag = -1
                            events["update_op"] += 1
                            if dl >= 0:
                                v = inflight[dest] + 1
                                inflight[dest] = v
                                if v > highwater[dest]:
                                    highwater[dest] = v
                            entry = RobEntry(dyn,
                                             mispredicted=(ap == div_pos),
                                             from_ec=True, trace_id=tid)
                            rob_q.append(entry)
                            rob.writes += 1
                            entries_of[dyn.trace_pos] = entry
                            if dyn.mem_addr is not None:
                                lsq.insert()
                                events["lsq_write"] += 1
                            events["rob_write"] += 1
                            if tron:
                                emit(c, "dispatch", dyn.seq)
                            ap += 1
                            n += 1
                        replay.alloc_ptr = ap
                    if replay.unit_idx < replay.n_units and not (
                            replay.div_pos >= 0 and replay.branch_resolved
                            and replay.valid_issued >= vc):
                        # ---- _replay_issue
                        unit = replay.trace.units[replay.unit_idx]
                        recs = unit.instrs
                        n_recs = len(recs)
                        if fill._arrived - fill._consumed >= n_recs:
                            entries_of = replay.entries
                            if replay.div_pos < 0:
                                valid = recs
                            else:
                                valid = [rec for rec in recs
                                         if rec.pos < vc]
                            ok = True
                            for rec in valid:
                                if rec.pos >= ap:
                                    ok = False
                                    break
                                if rec.op is _STORE:
                                    continue
                                for tag in entries_of[rec.pos].dyn.src_tags:
                                    if tag >= 0 and not ready[tag]:
                                        ok = False
                                        break
                                if not ok:
                                    break
                            if ok and fu.try_issue_group(unit.demands, c):
                                fill._consumed += n_recs
                                for rec in valid:
                                    entry = entries_of[rec.pos]
                                    dyn = entry.dyn
                                    lat = lat_tab[dyn.op]
                                    if dyn.op is _LOAD:
                                        lat += h_load(dyn.mem_addr,
                                                      be_scale, c)
                                        events["dcache_access"] += 1
                                    wake = c + lat
                                    if tron:
                                        emit(c, "issue", dyn.seq, lat)
                                    if dyn.dest_tag >= 0:
                                        ready[dyn.dest_tag] = 0
                                        wake_events.setdefault(
                                            wake, []).append(dyn.dest_tag)
                                    done_events.setdefault(
                                        wake + regread, []).append(entry)
                                replay.unit_idx += 1
                                n_valid = len(valid)
                                replay.valid_issued += n_valid
                                stats.issued += n_valid
                                events["fu_op"] += n_recs
                                events["rf_read"] += sum(
                                    len(r.srcs) for r in valid)
                    core._replay_check_end(replay, c, now_ps)
            # ---- run-loop epilogue: watchdog, governor, skip-ahead
            committed = stats.committed
            if committed != last_count:
                last_count = committed
                last_cycle = be_dom.cycles
                if committed >= max_instructions:
                    break
            elif be_dom.cycles - last_cycle > window:
                watchdog.trip(be_dom.cycles, committed,
                              core._deadlock_detail,
                              snapshot=core._deadlock_snapshot)
            if dvfs is not None and be_dom.cycles >= dvfs.next_check:
                dvfs.on_interval(core, be_dom.cycles, now_ps)
            replay = core._replay
            if replay is not None and core._fe_gated:
                c = be_dom.cycles
                if c >= core._be_stall_until:
                    target = core._replay_idle_until(replay, c)
                    if target is not None:
                        skip = target - 1 - c
                        if skip > 0:
                            be_dom.cycles = c + skip
                            be_dom.next_tick_ps += skip * be_dom.period_ps
                            stats.be_cycles_execute += skip
        elif core._fe_gated:
            now_ps = fe_dom.next_tick_ps
            fe_ticks = sched.drain_until(fe_dom, be_dom.next_tick_ps)
            fe_dom.gated_cycles += fe_ticks
            stats.fe_cycles_gated += fe_ticks
        else:
            # ======================= FE tick =========================
            now_ps = fe_dom.next_tick_ps
            fe_dom.next_tick_ps = now_ps + fe_dom.period_ps
            fe_dom.cycles += 1
            stats.fe_cycles_active += 1
            fe_c = fe_dom.cycles
            if redirect_q:
                for epoch in redirect_fifo.pop_ready(now_ps):
                    if epoch == core._block_epoch:
                        core._fetch_blocked = False
            if rename_out:
                # ---- _fe_dispatch
                latency_ps = sync_cycles * be_dom.period_ps
                n = 0
                while rename_out and n < dispatch_width:
                    dyn = rename_out[0]
                    if (dyn.lat_ready > fe_c
                            or len(dispatch_q) >= fifo_cap):
                        break
                    rename_out.popleft()
                    dispatch_q.append((now_ps + latency_ps, dyn))
                    dispatch_fifo.pushes += 1
                    events["sync_fifo_push"] += 1
                    n += 1
            if decode_out and not core._applying_redist:
                # ---- _fe_rename (+ renamer.rename inline)
                be_c = be_dom.cycles
                p_sizes = pools.sizes
                n = 0
                while decode_out and n < rename_width:
                    dyn = decode_out[0]
                    if dyn.lat_ready > fe_c:
                        break
                    if dyn.trace_start:
                        renamer.reset_lids()
                        core._trace_pos_counter = 0
                    dest = dyn.dest
                    if (dest is not None and dest != 0
                            and inflight[dest] >= p_sizes[dest] - 1):
                        pools.note_stall(dest)
                        stats.rename_pool_stalls += 1
                        if tron:
                            emit(be_c, "stall", dyn.seq, "pool_full")
                        break
                    decode_out.popleft()
                    renamer.renames += 1
                    dyn.src_lids = tuple([ren_lid[s] for s in dyn.srcs])
                    if dest is None or dest == 0:
                        dyn.dest_lid = -1
                    else:
                        lid_v = ren_lid[dest] + 1
                        ren_lid[dest] = lid_v
                        dyn.dest_lid = lid_v
                        v = inflight[dest] + 1
                        inflight[dest] = v
                        if v > highwater[dest]:
                            highwater[dest] = v
                    dyn.trace_pos = core._trace_pos_counter
                    core._trace_pos_counter += 1
                    dyn.lat_ready = fe_c + 1
                    rename_out.append(dyn)
                    if tron:
                        emit(be_c, "rename", dyn.seq)
                    events["rename_op"] += 1
                    n += 1
            if fetch_out:
                fe_decode(fe_c)
            if (not (core._fetch_blocked or core._applying_redist)
                    and len(fetch_out) < fetch_cap):
                # ---- _fe_fetch (+ _check_natural_end inline)
                be_c = be_dom.cycles
                delay = 0
                for i in range(fetch_width):
                    if oracle_buffer:
                        dyn = oracle_buffer.popleft()
                    else:
                        j = oracle._seq
                        if j >= pool.n:
                            pool_ensure(j + 1)
                        oracle._seq = j + 1
                        dyn = DynInstr(j, po_pc[j], po_op[j], po_dest[j],
                                       po_srcs[j], po_sid[j], po_addr[j],
                                       po_bk[j], po_taken[j], po_tpc[j],
                                       po_fpc[j])
                    if i == 0:
                        delay = (h_ifetch(dyn.pc, fe_scale, fe_c)
                                 + extra_fe)
                        events["icache_access"] += 1
                    if core._fe_new_trace:
                        dyn.trace_start = True
                        core._fe_new_trace = False
                        core._fe_trace_count = 0
                        core._fe_gen += 1
                    g = core._fe_gen
                    dyn.trace_gen = g
                    pre_update[g] = pre_update.get(g, 0) + 1
                    dyn.lat_ready = fe_c + delay
                    fetch_out.append(dyn)
                    if tron:
                        emit(be_c, "fetch", dyn.seq)
                    stats.fetched += 1
                    count = core._fe_trace_count + 1
                    core._fe_trace_count = count
                    if dyn.branch_kind:
                        stats.branches += 1
                        events["bpred_lookup"] += 1
                        if not bpred_predict(dyn):
                            stats.mispredicts += 1
                            core._begin_boundary(B_MISPREDICT, dyn)
                            break
                        if ec_enabled and count >= trace_cap and (
                                (dyn.taken and dyn.target_pc <= dyn.pc)
                                or count >= 2 * trace_cap):
                            core._begin_boundary(B_NATURAL, dyn)
                            break
                        break  # fetch group ends at a control transfer
                    if (ec_enabled and count >= trace_cap
                            and count >= 2 * trace_cap):
                        core._begin_boundary(B_NATURAL, dyn)
                        break

    stats.sim_time_ps = now_ps
    if prof is not None:
        t2 = perf_counter()
        prof.seconds["pool"] += t1 - t0
        prof.seconds["loop"] += t2 - t1
        prof.ticks += ticks
    return stats
