"""Struct-of-arrays instruction pools for the turbo engine backend.

The legacy engine pays the stream walk (block/loop bookkeeping, RNG
draws, branch prediction, one ``DynInstr`` allocation) once per dynamic
instruction *inside* the timed loop.  Everything in that walk is
program-order deterministic: the walker never sees timing, the
predictor is consulted exactly once per branch in program order (wrong
paths are modelled as stalls, never fetched; functional warmup is also
program order), and rename tags pop from a FIFO free list whose refill
order is commit order — program order again.

The pool exploits that: it drives a *real* ``InstructionStream`` and a
*real* ``BranchPredictor`` once, ahead of time, and stores the outcome
as parallel columns indexed by ``seq`` — op class, pc, memory address,
branch kind, predicted-correct flag — plus NumPy bulk gathers of the
op-indexed tables (``EXEC_LATENCY_TAB``/``FU_KIND_TAB``/
``UNPIPELINED_TAB``) so per-instruction latency/unit lookups become
plain list reads.  Reusing the real walker/predictor makes the pool
correct by construction; the speedup comes from the fused tick loop in
:mod:`repro.core.engine.turbo.sync` never touching objects at all.

Pools grow in chunks on demand and are cached across runs keyed by
(program identity, stream seed, predictor config): a best-of-N
benchmark repeat or a config sweep over one benchmark re-simulates the
timing, not the program.

:class:`RenamePlan` is the per-run companion: dest/src physical tags
for the timed instruction range.  It is per-run because it depends on
``phys_regs`` and on where the timed region starts (warmup length).
Tag *values* are fully deterministic (k-th free-list pop = k-th element
of the initial list plus commit-order recycles — FIFO order is
interleaving-independent); tag *availability* is timing-dependent and
is tracked at run time with a single free-count integer.
"""

from __future__ import annotations

import numpy as np

from repro.errors import SimulationError
from repro.frontend.bpred import BranchPredictor
from repro.isa import DynInstr
from repro.isa.opclasses import (
    EXEC_LATENCY_TAB,
    FU_KIND_TAB,
    UNPIPELINED_TAB,
    OpClass,
)
from repro.workloads.stream import InstructionStream

#: Op-indexed tables as NumPy arrays for the bulk per-chunk gathers.
_LAT_TAB = np.asarray(EXEC_LATENCY_TAB, dtype=np.int64)
_FU_TAB = np.asarray(FU_KIND_TAB, dtype=np.int64)
_UNPIP_TAB = np.asarray(UNPIPELINED_TAB, dtype=bool)
_LOAD = int(OpClass.LOAD)
_STORE = int(OpClass.STORE)

#: ``next_branch`` placeholder for rows with no branch at-or-after them
#: among the generated rows.  Large enough that ``nb - s >= fetch_width``
#: always holds, i.e. an unknown next branch reads as "no branch within
#: any fetch group that ends inside the generated region".
NB_SENTINEL = 1 << 62


class StreamPool:
    """Seq-indexed SoA columns over one program's dynamic stream.

    Columns only ever ``extend`` (never rebind), so hot loops may bind
    the list objects once and stay valid across :meth:`ensure` growth.
    """

    CHUNK = 8192

    def __init__(self, program, seed: int, bpred_config):
        self._stream = InstructionStream(program, seed)
        self._bpred = BranchPredictor(bpred_config)
        self.n = 0
        # Python-list columns: O(1) unboxed scalar access in the fused
        # loop (NumPy scalar indexing would allocate per read).
        self.op: list = []           # OpClass (enum; kept for .name)
        self.pc: list = []
        self.mem_addr: list = []     # int or None
        self.dest: list = []         # architected dest (int or None)
        self.srcs: list = []         # tuple of architected sources
        self.n_srcs: list = []       # len(srcs): the rf_read count
        self.bkind: list = []        # BranchKind as int (0 = NONE)
        self.correct: list = []      # predictor outcome (True off-branch)
        # Full-identity columns for PooledOracle reconstruction: the
        # Flywheel consults its *live* predictor only for created-mode
        # fetches (replayed branches skip predict), so ``correct`` above
        # is unusable there — but the walk itself is still program-order
        # deterministic and these columns rebuild exact DynInstrs.
        self.sid: list = []
        self.bk: list = []           # BranchKind enum (identity-safe)
        self.taken: list = []
        self.target_pc: list = []
        self.fall_pc: list = []
        self.is_load: list = []
        self.is_store: list = []
        self.lat0: list = []         # EXEC_LATENCY_TAB[op]
        self.fu_kind: list = []      # FU_KIND_TAB[op]
        self.unpip: list = []        # UNPIPELINED_TAB[op]
        # Vector-engine columns (see repro.core.engine.turbo.vector):
        # next-branch index per row plus absolute prefix sums, built with
        # NumPy per chunk so the vector loop consumes whole fetch groups
        # and retire runs as O(1) column reads.
        self.next_branch: list = []  # abs seq of next bkind!=0 row >= i
        self.pre_mem: list = [0]     # prefix count of rows with mem_addr
        self.pre_store: list = [0]   # prefix count of retire-path stores
        self.pre_needs: list = [0]   # prefix count of renamed dests
        self._nb_pend = 0            # first next_branch row still sentinel
        self._plans: dict = {}       # (start, phys_regs) -> RenamePlan

    def plan(self, start: int, phys_regs: int) -> "RenamePlan":
        """The (cached) rename plan for a timed region starting at ``start``."""
        key = (start, phys_regs)
        plan = self._plans.get(key)
        if plan is None:
            if len(self._plans) >= 4:
                self._plans.pop(next(iter(self._plans)))
            plan = self._plans[key] = RenamePlan(self, start, phys_regs)
        return plan

    def ensure(self, n: int) -> None:
        """Grow the pool until it covers at least ``n`` instructions."""
        while self.n < n:
            self._grow()

    def _grow(self) -> None:
        next_instr = self._stream.next_instr
        predict = self._bpred.predict
        ops = self.op
        start = len(ops)
        pc = self.pc
        mem_addr = self.mem_addr
        dest = self.dest
        srcs = self.srcs
        n_srcs = self.n_srcs
        bkind = self.bkind
        correct = self.correct
        sid = self.sid
        bk = self.bk
        taken = self.taken
        target_pc = self.target_pc
        fall_pc = self.fall_pc
        for _ in range(self.CHUNK):
            dyn = next_instr()
            ops.append(dyn.op)
            pc.append(dyn.pc)
            mem_addr.append(dyn.mem_addr)
            dest.append(dyn.dest)
            srcs.append(dyn.srcs)
            n_srcs.append(len(dyn.srcs))
            k = int(dyn.branch_kind)
            bkind.append(k)
            correct.append(predict(dyn) if k else True)
            sid.append(dyn.sid)
            bk.append(dyn.branch_kind)
            taken.append(dyn.taken)
            target_pc.append(dyn.target_pc)
            fall_pc.append(dyn.fall_pc)
        # Bulk table gathers: one vectorized pass per chunk replaces a
        # per-instruction tuple index in the tick loop.
        op_arr = np.asarray(ops[start:], dtype=np.int64)
        self.lat0.extend(_LAT_TAB[op_arr].tolist())
        self.fu_kind.extend(_FU_TAB[op_arr].tolist())
        self.unpip.extend(_UNPIP_TAB[op_arr].tolist())
        self.is_load.extend((op_arr == _LOAD).tolist())
        self.is_store.extend((op_arr == _STORE).tolist())
        self.n = len(ops)
        # ---- vector-engine columns (one NumPy pass per chunk) ----
        stop = self.n
        m_arr = np.fromiter((a is not None for a in mem_addr[start:]),
                            dtype=np.int64, count=stop - start)
        s_arr = ((op_arr == _STORE) & (m_arr != 0)).astype(np.int64)
        nd_arr = np.fromiter(
            (d is not None and d != 0 for d in dest[start:]),
            dtype=np.int64, count=stop - start)
        self.pre_mem.extend((np.cumsum(m_arr) + self.pre_mem[-1]).tolist())
        self.pre_store.extend(
            (np.cumsum(s_arr) + self.pre_store[-1]).tolist())
        self.pre_needs.extend(
            (np.cumsum(nd_arr) + self.pre_needs[-1]).tolist())
        # next_branch: first bkind!=0 row at or after i.  Rows past the
        # chunk's last branch hold NB_SENTINEL until a later chunk's first
        # branch backfills them (the pending region is always the tail).
        b_idx = np.flatnonzero(np.asarray(bkind[start:], dtype=np.int64))
        nb = np.full(stop - start, NB_SENTINEL, dtype=np.int64)
        if b_idx.size:
            pos = np.searchsorted(b_idx, np.arange(stop - start), "left")
            hit = pos < b_idx.size
            nb[hit] = b_idx[np.minimum(pos, b_idx.size - 1)][hit] + start
        nb_col = self.next_branch
        nb_col.extend(nb.tolist())
        if b_idx.size:
            first_b = start + int(b_idx[0])
            pend = self._nb_pend
            if pend < start:
                nb_col[pend:start] = [first_b] * (start - pend)
            self._nb_pend = start + int(b_idx[-1]) + 1


class RenamePlan:
    """Precomputed R10K rename outcome for seqs ``start`` onward.

    Replays the rename map and the FIFO free list in program order,
    appending each instruction's recycled tag immediately: because both
    pops (rename order) and appends (commit order) happen in program
    order, the k-th pop takes the k-th enqueued tag regardless of how
    the real machine interleaves them.  Every renamed destination
    recycles exactly one tag (the previous mapping is never the zero
    tag), so the virtual free list's length is invariant and the plan
    can always extend; *when* a tag is available at run time is the
    fused loop's free-count integer.

    Columns are offset by ``start``: index with ``seq - start``.
    """

    CHUNK = 4096

    def __init__(self, pool: StreamPool, start: int, phys_regs: int):
        self._pool = pool
        self.start = start
        self._map = list(range(64))
        self._free = list(range(64, phys_regs))
        self._free_head = 0          # virtual deque: index of next pop
        self.n = start               # absolute seq covered (exclusive)
        self.dest_tag: list = []
        self.src_tags: list = []     # tuple of physical tags
        self.needs_tag: list = []    # dest renamed (== recycles at commit)

    def ensure(self, n: int) -> None:
        while self.n < n:
            self._grow()

    def _grow(self) -> None:
        stop = self.n + self.CHUNK
        pool = self._pool
        pool.ensure(stop)
        reg_map = self._map
        free = self._free
        head = self._free_head
        p_dest = pool.dest
        p_srcs = pool.srcs
        dest_tag = self.dest_tag
        src_tags = self.src_tags
        needs_tag = self.needs_tag
        for seq in range(self.n, stop):
            src_tags.append(tuple([reg_map[s] for s in p_srcs[seq]]))
            dest = p_dest[seq]
            if dest is None or dest == 0:
                dest_tag.append(-1)
                needs_tag.append(False)
            else:
                if head >= len(free):  # pragma: no cover - see docstring
                    raise SimulationError(
                        "rename plan exhausted the physical register file")
                tag = free[head]
                head += 1
                free.append(reg_map[dest])   # recycle (commit order)
                reg_map[dest] = tag
                dest_tag.append(tag)
                needs_tag.append(True)
        # Compact the consumed prefix so the list stays bounded.
        if head:
            del free[:head]
        self._free_head = 0
        self.n = stop


class PooledOracle:
    """Drop-in ``InstructionStream`` stand-in fed from pool columns.

    The Flywheel turbo loop swaps this in as ``core.stream``: every
    consumer (``_next_oracle``, ``_pair_trace``, functional warmup) then
    receives a freshly built ``DynInstr`` — instances must be fresh
    because the pipelines mutate rename/latch fields in place — without
    paying the live walker's block bookkeeping, RNG draws and address
    resolution per instruction.  Exposes ``program``/``seed``/``_seq``
    so pool lookups keyed off the stream keep working.
    """

    __slots__ = ("program", "seed", "_seq", "_pool", "_pc", "_op",
                 "_dest", "_srcs", "_sid", "_addr", "_bk", "_taken",
                 "_tpc", "_fpc")

    def __init__(self, pool: StreamPool, start: int = 0):
        self._pool = pool
        self.program = pool._stream.program
        self.seed = pool._stream.seed
        self._seq = start
        self._pc = pool.pc
        self._op = pool.op
        self._dest = pool.dest
        self._srcs = pool.srcs
        self._sid = pool.sid
        self._addr = pool.mem_addr
        self._bk = pool.bk
        self._taken = pool.taken
        self._tpc = pool.target_pc
        self._fpc = pool.fall_pc

    def next_instr(self) -> DynInstr:
        i = self._seq
        if i >= self._pool.n:
            self._pool.ensure(i + 1)
        self._seq = i + 1
        return DynInstr(i, self._pc[i], self._op[i], self._dest[i],
                        self._srcs[i], self._sid[i], self._addr[i],
                        self._bk[i], self._taken[i], self._tpc[i],
                        self._fpc[i])


#: Cross-run pool cache: best-of-N repeats and sweeps over one benchmark
#: regenerate equal Program objects, so key on content identity rather
#: than object identity. Tiny FIFO — pools are per-benchmark.
_POOL_CACHE: dict = {}
_POOL_CACHE_MAX = 4


def get_pool(program, seed: int, bpred_config) -> StreamPool:
    """The (cached) stream pool for one program/seed/predictor config."""
    key = (program.name, program.seed, seed, program.entry,
           len(program.blocks), program.num_static_instrs, bpred_config)
    pool = _POOL_CACHE.get(key)
    if pool is None:
        if len(_POOL_CACHE) >= _POOL_CACHE_MAX:
            _POOL_CACHE.pop(next(iter(_POOL_CACHE)))
        pool = _POOL_CACHE[key] = StreamPool(program, seed, bpred_config)
    return pool
