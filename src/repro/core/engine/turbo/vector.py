"""Vector run loop for the single-clock cores (third execution tier).

Same machine, same observables, less Python per cycle.  The turbo loop
(:mod:`repro.core.engine.turbo.sync`) already fused the legacy stage
methods into one function over SoA pools but still spends one bytecode
stream per instruction per stage: deque pops, latch-readiness dict
churn, per-instruction fetch/retire walks, event-dict traffic for every
wake and completion.  This loop restructures the same transliteration
around *vector tick kernels* — work precomputed as NumPy column
operations at pool-build time and consumed as O(1) scalar reads per
cycle — plus an explicit *event-horizon* skip-ahead:

* **fetch groups** are precomputed: ``pool.next_branch`` (a NumPy
  searchsorted pass per chunk) gives every row the seq of the next
  branch at-or-after it, so one fetch is a group-length computation and
  a single segment append instead of a per-instruction loop;
* **latches are segments**: all instructions moved by a stage in one
  cycle share one maturity cycle, so the fetch→decode→rename latches
  hold ``[start, end, ready]`` triples.  Decode and rename advance a
  whole segment (or a prefix of one) per cycle; the per-seq ``lready``
  dict disappears;
* **rename admission** is a prefix-sum lookup: ``pool.pre_needs``
  (NumPy cumsum per chunk) bounds how many of the next k instructions
  need a tag, so the tag-constrained width is a couple of integer
  compares instead of a per-instruction walk;
* **completion is a schedule-time write**: the cycle an instruction
  completes is fully determined at issue (``c + latency + regread``),
  so the done-event dict becomes a per-seq ``done_cyc`` column written
  once at issue and compared at retire — the per-cycle event-dict pop
  and per-instruction append disappear.  A branch resolving only ever
  unblocks fetch, so a mispredict redirect is likewise written at
  issue, straight into the ``fetch_resume`` bound;
* **wakeup broadcast resolves at issue**: a producer's wake cycle is
  known the moment it issues, so its waiters are settled right there —
  each gets its earliest select cycle (``max`` over operand wake
  cycles, plus the wake-gate) and enters the maturity heap directly.
  Consumers dispatched *after* the producer issued read the wake cycle
  off a ``rdy_cyc`` tag column and never attach a waiter at all.  The
  scoreboard flip and the ``iw_broadcast``/``rf_write`` counters are
  settled lazily from a pending-wake heap at observation points
  (flush/trip/finish), which means **a cycle whose only event is a
  wake broadcast no longer needs a tick**: the horizon jumps over it.
  The select heaps themselves are unchanged — program-order priority
  is load-bearing;
* **the ROB is a seq interval** ``[rob_head, rob_tail)`` — dispatch
  appends in program order and retire pops in order, so the legacy
  deque carries no information beyond its endpoints.  The **retire
  scan** compares ``done_cyc`` over at most ``commit_width`` entries
  and settles counters from the ``pre_mem``/``pre_store``/
  ``pre_needs`` prefix columns in O(1); only actual stores walk
  individually (they touch cache state);
* the **event-horizon scheduler** runs whenever no instruction is
  selectable and the ROB head is not retirable: it computes the next
  cycle at which *any* stage could act — the min over latch-segment
  maturity, the fetch-resume bound (mispredict redirect), the
  dispatch- and wake-path maturity heads, and the ROB head's
  completion cycle — and jumps ``c`` straight there.  Safety argument:
  every state change in this machine is caused by a stage acting; a
  stage acts only on a mature latch segment, a selectable window
  entry, a resumable fetch cursor, or a retirable ROB head, and each
  of those becomes possible no earlier than one of the bound sources
  (wake broadcasts and non-head completions enable no stage directly:
  select maturity is carried by the heaps, retirement is in order, and
  the mispredict redirect is the fetch bound).  Between ``c`` and the
  min bound no stage can act, so no counter, cache, trace or DVFS
  observable can move (interval hooks fire on the first simulated
  cycle past the boundary with a correspondingly longer interval, the
  same late-fire contract as the legacy and turbo loops, DESIGN.md
  §4).  Jumped cycles therefore need no per-cycle accounting at all;
  stats that are functions of ``c`` are settled at flush points by
  absolute assignment.

With the flight recorder attached the loop keeps the turbo engine's
event dicts and per-cycle pops instead of the lazy wake settlement:
"stall" and "complete" emissions are pinned to the exact cycles the
legacy engine produces them, so the executed tick set must stay
identical to the turbo loop's, and it does — the event dicts rejoin
the bound computation.

Architectural counters accumulate in locals and are flushed by absolute
assignment at every observation point (DVFS interval hooks, a watchdog
trip, end of run) exactly as in the turbo loop.  Because the loop
carries its state in columns, every observation point *translates*
back to the live-object protocol: ``be._rob_q`` is materialized from
the interval endpoints, ``be.done_events``/``be.wake_events`` are
rebuilt from the completion column and the pending-wake heap (entry
cycles >= the observed cycle — exactly the keys the turbo loop would
still hold), the scoreboard is refreshed from ``rdy_cyc``, and the
fetch-block triple (``_fetch_blocked``, ``_mispredict_seq``,
``_fetch_resume_cycle``) is derived from the resume bound.  The golden
gate (tests/test_golden_stats.py) holds this loop to bit-identical
SimStats, cache stats and metric snapshots against both the legacy and
turbo engines.

The dual-clock flywheel keeps its hot state in real DynInstr objects
(created-mode pipelines mutate them in place), so its vector tier
routes to the turbo hybrid loop — see ``FlywheelCore.run``.
"""

from __future__ import annotations

from collections import defaultdict, deque
from heapq import heappop, heappush
from time import perf_counter

from repro.core.engine.turbo.pool import get_pool
from repro.core.engine.turbo.sync import (
    _DONE_SLACK,
    _flush,
    _flush_mem,
)
from repro.errors import SimulationError
from repro.mem.hierarchy import MemoryHierarchy

#: single-iteration loop driver for the horizon block: ``break`` means
#: "a stage can act this cycle", falling through to ``else`` means the
#: computed bound (if any) is a provably dead range.
_ONE = (0,)

#: sentinel completion/ready cycle: "not scheduled yet".  Large enough
#: that it can never be reached by a real run, small enough to stay a
#: machine int.
_HUGE = 1 << 62


def run_vector_sync(core, max_instructions: int, warmup: int = 0,
                    prof=None):
    """Drop-in replacement for ``BaselineCore.run`` (vector backend).

    ``prof``, when given, is duck-typed as a PhaseProfile: wall-clock
    seconds are accumulated into ``prof.seconds["pool"]`` (pool/plan
    build + warm replay), ``prof.seconds["kernel"]`` (the fused loop
    minus horizon analysis) and ``prof.seconds["horizon"]`` (the
    event-horizon skip-ahead analysis), and ``prof.ticks`` counts
    executed cycles.
    """
    t0 = perf_counter()
    config = core.config
    stream = core.stream
    pool = get_pool(stream.program, stream.seed, config.bpred)
    s0 = stream._seq

    if warmup:
        pool.ensure(s0 + warmup)
        w_ifetch = core.hierarchy.warm_ifetch
        w_load = core.hierarchy.warm_load
        w_store = core.hierarchy.warm_store
        wp_pc = pool.pc
        wp_addr = pool.mem_addr
        wp_isld = pool.is_load
        for s in range(s0, s0 + warmup):
            if not s & 3:              # seq % 4 == 0, as in legacy warmup
                w_ifetch(wp_pc[s])
            addr = wp_addr[s]
            if addr is not None:
                if wp_isld[s]:
                    w_load(addr)
                else:
                    w_store(addr)
        if core.dvfs is not None:
            core.dvfs.reset_baseline(core)

    r0 = s0 + warmup                   # first timed seq
    plan = pool.plan(r0, config.phys_regs)
    plan.ensure(r0 + plan.CHUNK)

    # ---- pool columns (absolute seq index; stable list identities) ----
    p_pc = pool.pc
    p_addr = pool.mem_addr
    p_nsrcs = pool.n_srcs
    p_correct = pool.correct
    p_isld = pool.is_load
    p_isst = pool.is_store
    p_lat = pool.lat0
    p_fu = pool.fu_kind
    p_unp = pool.unpip
    p_nextb = pool.next_branch
    pre_mem = pool.pre_mem
    pre_store = pool.pre_store
    pre_needs = pool.pre_needs
    # ---- plan columns (index with seq - r0) ----
    p_dtag = plan.dest_tag
    p_stags = plan.src_tags
    p_needs = plan.needs_tag
    plan_n = plan.n

    # ---- machine bindings ----
    stats = core.stats
    events = stats.events
    be = core.be
    iw = core.iw
    hierarchy = core.hierarchy
    h_ifetch = hierarchy.ifetch
    h_load = hierarchy.load
    h_store = hierarchy.store
    ready_sb = be.ready                # physical-register scoreboard
    wake_events = be.wake_events
    done_events = be.done_events
    fu = be.fu
    f_counts = fu._counts
    f_used = fu._used
    f_res = fu._reserved
    f_dirty = fu._dirty
    f_nres = fu._n_reserved
    f_zeros = fu._zeros
    tr = core.trace
    tron = tr is not None
    emit = tr.emit if tron else None
    if tron:
        # The recorder pins emissions to exact cycles, so the trace
        # path keeps the turbo-style live event dicts (and their ticks).
        if type(wake_events) is dict:
            be.wake_events = wake_events = defaultdict(list, wake_events)
        if type(done_events) is dict:
            be.done_events = done_events = defaultdict(list, done_events)
    dvfs = core.dvfs
    dvfs_next = dvfs.next_check if dvfs is not None else None
    mem_scale = core.mem_scale
    watchdog = core.watchdog
    window = watchdog.window

    # Simple-spec memory fast path, inlined exactly as in the turbo loop.
    fastmem = h_load.__func__ is MemoryHierarchy._load_fast
    if fastmem:
        l1i_c = hierarchy.l1i
        l1d_c = hierarchy.l1d
        l2_c = hierarchy.l2
        i_sets = l1i_c._sets
        i_lsh = l1i_c._line_shift
        i_sm = l1i_c._set_mask
        i_ts = l1i_c._tag_shift
        i_ways = l1i_c.ways
        d_sets = l1d_c._sets
        d_lsh = l1d_c._line_shift
        d_sm = l1d_c._set_mask
        d_ts = l1d_c._tag_shift
        d_ways = l1d_c.ways
        l2_sets = l2_c._sets
        l2_lsh = l2_c._line_shift
        l2_sm = l2_c._set_mask
        l2_ts = l2_c._tag_shift
        l2_ways = l2_c.ways
        i_clk = l1i_c._clock
        i_acc = l1i_c.stats.accesses
        i_hit = l1i_c.stats.hits
        i_miss = l1i_c.stats.misses
        i_ev = l1i_c.stats.evictions
        d_clk = l1d_c._clock
        d_acc = l1d_c.stats.accesses
        d_hit = l1d_c.stats.hits
        d_miss = l1d_c.stats.misses
        d_ev = l1d_c.stats.evictions
        d_wr = l1d_c.stats.writes
        l2_clk = l2_c._clock
        l2_acc = l2_c.stats.accesses
        l2_hit = l2_c.stats.hits
        l2_miss = l2_c.stats.misses
        l2_ev = l2_c.stats.evictions
        l2_wr = l2_c.stats.writes
        l1_lat = hierarchy._l1_lat
        l12_lat = hierarchy._l12_lat
        l1i_lat = hierarchy._l1i_lat
        l1i2_lat = hierarchy._l1i2_lat
        dram_lat = hierarchy._dram_lat
        dram_cost = max(1, round(dram_lat * mem_scale))

    # ---- config scalars ----
    fetch_width = config.fetch_width
    decode_width = config.decode_width
    rename_width = config.rename_width
    dispatch_width = config.dispatch_width
    issue_width = config.issue_width
    commit_width = config.commit_width
    fetch_cap = core.fe._fetch_cap
    extra_fe = config.extra_frontend_stages
    wk_gate = config.wakeup_extra_delay
    regread = config.regread_stages
    rob_cap = be.rob.capacity
    iw_cap = iw.capacity
    lsq_cap = be.lsq.capacity

    # ---- vector-local machine state ----
    fetch_out = deque()                # [start, end, ready] segments
    decode_out = deque()               # [start, end, ready] segments
    rename_out = deque()               # [start, end, ready] segments
    size = max_instructions + _DONE_SLACK
    nr_arr = [0] * size                # seq - r0 -> unready srcs (-1: gone)
    early_arr = [0] * size             # seq - r0 -> earliest select cycle
    done_cyc = [_HUGE] * size          # seq - r0 -> completion cycle
    waiters_a = [None] * config.phys_regs   # tag -> [seq] wake-up index
    wake_h = []                        # heap of (wake, tag): lazy settle
    done_h = []                        # heap of completion cycles: only
    #                                    consulted when a jump nears an
    #                                    interval/watchdog threshold
    future = []                        # heap of (earliest, seq): wake path
    fdq = deque()                      # FIFO of seq: dispatch path —
    #                                    earliest is always c+1, monotone,
    #                                    so arrival order IS maturity order
    eligible = []                      # heap of seq (selectable now)
    blocked = []                       # per-cycle scratch for select
    free_count = len(core.renamer._free)
    fs = r0                            # fetch cursor (next seq to fetch)
    rob_head = rob_tail = r0           # ROB as a contiguous seq interval
    if be._rob_q:                      # fresh cores start empty; honour a
        rob_head = be._rob_q[0]        # pre-populated deque anyway
        rob_tail = be._rob_q[-1] + 1
    rob_len = rob_tail - rob_head
    fetch_len = 0                      # instructions in fetch_out

    # tag -> cycle its value becomes readable (-1 = ready now, _HUGE =
    # producer not issued yet).  Seeded from the live scoreboard and the
    # pending wake events so a resumed core observes the same timing the
    # turbo loop would.
    rdy_cyc = [-1 if r else _HUGE for r in ready_sb]
    if wake_events:
        for wck, wtags in wake_events.items():
            for t in wtags:
                rdy_cyc[t] = wck
                if not tron:
                    heappush(wake_h, (wck, t))

    # ---- counters (absolute values; flushed by assignment) ----
    committed = stats.committed
    fetched = stats.fetched
    issued = stats.issued
    branches = stats.branches
    mispredicts = stats.mispredicts
    iw_count = iw._count
    lsq_count = be.lsq._count
    e_ic = events["icache_access"]
    e_bp = events["bpred_lookup"]
    e_dec = events["decode_op"]
    e_ren = events["rename_op"]
    e_iww = events["iw_write"]
    e_robw = events["rob_write"]
    e_lsqw = events["lsq_write"]
    e_iws = events["iw_select"]
    e_rfr = events["rf_read"]
    e_fuo = events["fu_op"]
    e_dca = events["dcache_access"]
    e_iwb = events["iw_broadcast"]
    e_rfw = events["rf_write"]
    e_robr = events["rob_read"]
    rf_touched = False
    offs = (iw.writes - e_iww, iw.broadcasts - e_iwb,
            be.rob.writes - e_robw, be.lsq.inserts - e_lsqw,
            fu.ops - e_fuo)

    # ---- fetch-block translation (live triple -> resume bound) ----
    # The loop carries the mispredict redirect as a single bound:
    # ``fetch_resume``.  An unresolved mispredict is ``_HUGE`` (the
    # resolving completion writes the real cycle at issue);
    # ``resume_stale`` preserves the pre-mispredict value so trip/finish
    # can reconstruct the turbo-visible triple exactly.
    mispred_seq = core._mispredict_seq
    fetch_resume = core._fetch_resume_cycle
    resume_stale = fetch_resume
    if done_events:
        # Seed the completion column from events scheduled by a
        # previous run on this core (fresh cores: empty, no cost).
        for dck, dlst in done_events.items():
            for s in dlst:
                j = s - r0
                if 0 <= j < size:
                    done_cyc[j] = dck
            if not tron:
                heappush(done_h, dck)
    if core._fetch_blocked:
        fetch_resume = _HUGE
        for dck, dlst in done_events.items():
            if mispred_seq in dlst:
                fetch_resume = dck + 1
                break
    c = core.cycle
    last_cycle = 0
    last_count = -1
    ticks = 0
    profiling = prof is not None
    pc_now = perf_counter
    t_h = 0.0
    _th = 0.0

    t1 = perf_counter()

    while committed < max_instructions:
        ticks += 1
        # ------------------------------------------------ be.tick: FU reset
        if f_dirty:
            f_used[:] = f_zeros
            f_dirty = False
        if f_nres:
            remaining = 0
            for res in f_res:
                if res:
                    res[:] = [t for t in res if t > c]
                    remaining += len(res)
            f_nres = remaining
        # ---------------------------------------------- be.tick: writeback
        if tron:
            wakes = wake_events.pop(c, None)
            if wakes is not None:
                for tag in wakes:
                    ready_sb[tag] = 1
                n = len(wakes)
                e_iwb += n
                e_rfw += n
            dones = done_events.pop(c, None)
            if dones is not None:
                for s in dones:
                    emit(c, "complete", s)
        # ------------------------------------------------- be.tick: retire
        if rob_tail > rob_head and done_cyc[rob_head - r0] <= c:
            h = rob_head
            lim = h + commit_width
            if lim > rob_tail:
                lim = rob_tail
            end = h + 1
            while end < lim and done_cyc[end - r0] <= c:
                end += 1
            if pre_store[end] - pre_store[h]:
                for s in range(h, end):
                    if p_isst[s]:
                        addr = p_addr[s]
                        e_dca += 1
                        if fastmem:
                            d_clk += 1
                            d_acc += 1
                            d_wr += 1
                            line = addr >> d_lsh
                            cset = d_sets[line & d_sm]
                            ctag = line >> d_ts
                            if ctag in cset:
                                cset[ctag] = d_clk
                                d_hit += 1
                            else:
                                d_miss += 1
                                if len(cset) >= d_ways:
                                    victim = min(cset, key=cset.get)
                                    del cset[victim]
                                    d_ev += 1
                                cset[ctag] = d_clk
                                l2_clk += 1
                                l2_acc += 1
                                l2_wr += 1
                                line = addr >> l2_lsh
                                cset = l2_sets[line & l2_sm]
                                ctag = line >> l2_ts
                                if ctag in cset:
                                    cset[ctag] = l2_clk
                                    l2_hit += 1
                                else:
                                    l2_miss += 1
                                    if len(cset) >= l2_ways:
                                        victim = min(cset, key=cset.get)
                                        del cset[victim]
                                        l2_ev += 1
                                    cset[ctag] = l2_clk
                        else:
                            h_store(addr, mem_scale, c)
            nret = end - h
            lsq_count -= pre_mem[end] - pre_mem[h]
            free_count += pre_needs[end] - pre_needs[h]
            committed += nret
            e_robr += nret
            rob_head = end
            rob_len -= nret
            if tron:
                for s in range(h, end):
                    emit(c, "retire", s)
        # ------------------------------------------------------------ issue
        if iw_count and not (wk_gate and c & 1):
            while fdq and early_arr[fdq[0] - r0] <= c:
                heappush(eligible, fdq.popleft())
            while future and future[0][0] <= c:
                heappush(eligible, heappop(future)[1])
            if eligible:
                nsel = 0
                while eligible:
                    if nsel >= issue_width:
                        break
                    s = heappop(eligible)
                    k = p_fu[s]
                    if f_counts[k] - f_used[k] - len(f_res[k]) > 0:
                        f_used[k] += 1
                        f_dirty = True
                        lat = p_lat[s]
                        if p_unp[s]:
                            f_res[k].append(c + lat)
                            f_nres += 1
                        nr_arr[s - r0] = -1
                        iw_count -= 1
                        # schedule (legacy schedule_group, in order)
                        if p_isld[s]:
                            e_dca += 1
                            if fastmem:
                                addr = p_addr[s]
                                d_clk += 1
                                d_acc += 1
                                line = addr >> d_lsh
                                cset = d_sets[line & d_sm]
                                ctag = line >> d_ts
                                if ctag in cset:
                                    cset[ctag] = d_clk
                                    d_hit += 1
                                    lat += l1_lat
                                else:
                                    d_miss += 1
                                    if len(cset) >= d_ways:
                                        victim = min(cset, key=cset.get)
                                        del cset[victim]
                                        d_ev += 1
                                    cset[ctag] = d_clk
                                    l2_clk += 1
                                    l2_acc += 1
                                    line = addr >> l2_lsh
                                    cset = l2_sets[line & l2_sm]
                                    ctag = line >> l2_ts
                                    if ctag in cset:
                                        cset[ctag] = l2_clk
                                        l2_hit += 1
                                        lat += l12_lat
                                    else:
                                        l2_miss += 1
                                        if len(cset) >= l2_ways:
                                            victim = min(cset, key=cset.get)
                                            del cset[victim]
                                            l2_ev += 1
                                        cset[ctag] = l2_clk
                                        lat += l12_lat + dram_cost
                            else:
                                lat += h_load(p_addr[s], mem_scale, c)
                        if tron:
                            emit(c, "issue", s, lat)
                        wake = c + lat
                        tag = p_dtag[s - r0]
                        if tag >= 0:
                            rdy_cyc[tag] = wake
                            if tron:
                                wake_events[wake].append(tag)
                            else:
                                heappush(wake_h, (wake, tag))
                            # settle waiters now: the broadcast cycle is
                            # decided, so their select maturity is too
                            lst = waiters_a[tag]
                            if lst is not None:
                                waiters_a[tag] = None
                                wgd = wake + wk_gate
                                for s2 in lst:
                                    j2 = s2 - r0
                                    nr2 = nr_arr[j2]
                                    if nr2 < 0:
                                        continue
                                    nr2 -= 1
                                    nr_arr[j2] = nr2
                                    er2 = early_arr[j2]
                                    if wgd > er2:
                                        er2 = early_arr[j2] = wgd
                                    if nr2 == 0:
                                        heappush(future, (er2, s2))
                                    elif nr2 < 0:
                                        raise SimulationError(
                                            "negative wait count in "
                                            "issue window")
                        dc = wake + regread
                        done_cyc[s - r0] = dc
                        if not tron:
                            heappush(done_h, dc)
                        if s == mispred_seq:
                            # resolving completion redirects fetch
                            fetch_resume = dc + 1
                        if tron:
                            done_events[dc].append(s)
                        e_rfr += p_nsrcs[s]
                        nsel += 1
                    else:
                        blocked.append(s)
                for s in blocked:
                    heappush(eligible, s)
                blocked.clear()
                if nsel:
                    issued += nsel
                    e_iws += nsel
                    e_fuo += nsel
                    rf_touched = True
                elif tron:
                    emit(c, "stall", -1, "fu_busy")
            elif tron:
                emit(c, "stall", -1, "dep_wait")
        # --------------------------------------------------------- dispatch
        if rename_out:
            n = 0
            while rename_out and n < dispatch_width:
                seg = rename_out[0]
                if seg[2] > c:
                    break
                s = seg[0]
                if rob_len >= rob_cap or iw_count >= iw_cap:
                    if tron:
                        emit(c, "stall", s,
                             "rob_full" if rob_len >= rob_cap else "iw_full")
                    break
                addr = p_addr[s]
                if addr is not None and lsq_count >= lsq_cap:
                    if tron:
                        emit(c, "stall", s, "lsq_full")
                    break
                seg[0] = s + 1
                if seg[0] == seg[1]:
                    rename_out.popleft()
                rob_tail += 1          # == s + 1: dispatch is program order
                rob_len += 1
                if addr is not None:
                    lsq_count += 1
                    e_lsqw += 1
                e_robw += 1
                # window insert: stores never wait on operands; operands
                # of already-issued producers have a known ready cycle
                # and enter the maturity heap directly
                nr = 0
                er = c + 1
                if not p_isst[s]:
                    for tag in p_stags[s - r0]:
                        rc = rdy_cyc[tag]
                        if rc > c:
                            if rc == _HUGE:
                                wl = waiters_a[tag]
                                if wl is None:
                                    waiters_a[tag] = [s]
                                else:
                                    wl.append(s)
                                nr += 1
                            else:
                                rc += wk_gate
                                if rc > er:
                                    er = rc
                j = s - r0
                nr_arr[j] = nr
                early_arr[j] = er
                if not nr:
                    if er == c + 1:
                        fdq.append(s)
                    else:
                        heappush(future, (er, s))
                iw_count += 1
                e_iww += 1
                if tron:
                    emit(c, "dispatch", s)
                n += 1
        # ----------------------------------------------------------- rename
        if decode_out:
            n = 0
            d0 = -1
            while decode_out and n < rename_width:
                seg = decode_out[0]
                if seg[2] > c:
                    break
                s0 = seg[0]
                t = seg[1] - s0
                room = rename_width - n
                if t > room:
                    t = room
                base = pre_needs[s0]
                need = pre_needs[s0 + t] - base
                stalled = False
                if need > free_count:
                    while t and pre_needs[s0 + t] - base > free_count:
                        t -= 1
                    need = pre_needs[s0 + t] - base
                    stalled = True
                if need:
                    free_count -= need
                    for s in range(s0, s0 + t):
                        i = s - r0
                        if p_needs[i]:
                            tg = p_dtag[i]
                            ready_sb[tg] = 0
                            rdy_cyc[tg] = _HUGE
                if t:
                    if d0 < 0:
                        d0 = s0
                    seg[0] = s0 + t
                    if seg[0] == seg[1]:
                        decode_out.popleft()
                    n += t
                if stalled:
                    break
            if n:
                e_ren += n
                rename_out.append([d0, d0 + n, c + 1])
                if tron:
                    for s in range(d0, d0 + n):
                        emit(c, "rename", s)
        # ----------------------------------------------------------- decode
        if fetch_out:
            n = 0
            d0 = -1
            while fetch_out and n < decode_width:
                seg = fetch_out[0]
                if seg[2] > c:
                    break
                s0 = seg[0]
                t = seg[1] - s0
                room = decode_width - n
                if t > room:
                    t = room
                if d0 < 0:
                    d0 = s0
                seg[0] = s0 + t
                if seg[0] == seg[1]:
                    fetch_out.popleft()
                n += t
            if n:
                e_dec += n
                fetch_len -= n
                decode_out.append([d0, d0 + n, c + 1])
                if tron:
                    for s in range(d0, d0 + n):
                        emit(c, "decode", s)
        # ------------------------------------------------------------ fetch
        if c >= fetch_resume:
            if fetch_len < fetch_cap:
                if fs + fetch_width > plan_n:
                    plan.ensure(fs + plan.CHUNK)
                    plan_n = plan.n
                e_ic += 1
                if fastmem:
                    pc = p_pc[fs]
                    i_clk += 1
                    i_acc += 1
                    line = pc >> i_lsh
                    cset = i_sets[line & i_sm]
                    ctag = line >> i_ts
                    if ctag in cset:
                        cset[ctag] = i_clk
                        i_hit += 1
                        rdy = c + l1i_lat + extra_fe
                    else:
                        i_miss += 1
                        if len(cset) >= i_ways:
                            victim = min(cset, key=cset.get)
                            del cset[victim]
                            i_ev += 1
                        cset[ctag] = i_clk
                        l2_clk += 1
                        l2_acc += 1
                        line = pc >> l2_lsh
                        cset = l2_sets[line & l2_sm]
                        ctag = line >> l2_ts
                        if ctag in cset:
                            cset[ctag] = l2_clk
                            l2_hit += 1
                            rdy = c + l1i2_lat + extra_fe
                        else:
                            l2_miss += 1
                            if len(cset) >= l2_ways:
                                victim = min(cset, key=cset.get)
                                del cset[victim]
                                l2_ev += 1
                            cset[ctag] = l2_clk
                            rdy = c + l1i2_lat + dram_cost + extra_fe
                else:
                    rdy = (c + h_ifetch(p_pc[fs], mem_scale, c)
                           + extra_fe)
                # group-length kernel: the group ends at the first branch
                # or at fetch_width, whichever comes first
                nb = p_nextb[fs]
                d = nb - fs
                if d >= fetch_width:
                    n = fetch_width
                else:
                    n = d + 1
                    branches += 1
                    e_bp += 1
                    if not p_correct[nb]:
                        mispredicts += 1
                        mispred_seq = nb
                        resume_stale = fetch_resume
                        fetch_resume = _HUGE
                fetch_out.append([fs, fs + n, rdy])
                if tron:
                    for s in range(fs, fs + n):
                        emit(c, "fetch", s)
                fs += n
                fetched += n
                fetch_len += n
        # --------------------------------------------- cycle advance + run
        c += 1
        if committed != last_count:
            last_count = committed
            last_cycle = c
            if committed >= max_instructions:
                break
        elif c - last_cycle > window:
            if not tron:
                e_iwb += (nw := _settle_wakes(be, wake_h, rdy_cyc, c))
                e_rfw += nw
                _rebuild_done(be, done_cyc, r0, rob_head, rob_tail, c)
            _flush(core, c, committed, fetched, issued, branches,
                   mispredicts, iw_count, lsq_count, e_ic, e_bp, e_dec,
                   e_ren, e_iww, e_robw, e_lsqw, e_iws, e_rfr, e_fuo,
                   e_dca, e_iwb, e_rfw, e_robr, rf_touched, offs)
            _mat_rob(be, rob_head, rob_tail)
            if fastmem:
                _flush_mem(hierarchy, i_clk, i_acc, i_hit, i_miss, i_ev,
                           d_clk, d_acc, d_hit, d_miss, d_ev, d_wr,
                           l2_clk, l2_acc, l2_hit, l2_miss, l2_ev, l2_wr)
            _vtrip(core, c, committed, pool, r0, done_cyc,
                   mispred_seq != -1 and fetch_resume > c)
        if dvfs_next is not None and c >= dvfs_next:
            if not tron:
                e_iwb += (nw := _settle_wakes(be, wake_h, rdy_cyc, c))
                e_rfw += nw
            _flush(core, c, committed, fetched, issued, branches,
                   mispredicts, iw_count, lsq_count, e_ic, e_bp, e_dec,
                   e_ren, e_iww, e_robw, e_lsqw, e_iws, e_rfr, e_fuo,
                   e_dca, e_iwb, e_rfw, e_robr, rf_touched, offs)
            _mat_rob(be, rob_head, rob_tail)
            if fastmem:
                _flush_mem(hierarchy, i_clk, i_acc, i_hit, i_miss, i_ev,
                           d_clk, d_acc, d_hit, d_miss, d_ev, d_wr,
                           l2_clk, l2_acc, l2_hit, l2_miss, l2_ev, l2_wr)
            dvfs_next = dvfs.on_interval(core, c)
            mem_scale = core.mem_scale     # the governor may retune it
            if fastmem:
                dram_cost = max(1, round(dram_lat * mem_scale))
        # -------------------------------------------------- event horizon
        if eligible or (rob_tail > rob_head
                        and done_cyc[rob_head - r0] <= c):
            continue
        if profiling:
            _th = pc_now()
        jump = -1
        for _ in _ONE:                 # break == "a stage acts this cycle"
            bound = -1
            if c >= fetch_resume:
                if fetch_len < fetch_cap:
                    break              # fetch can act
            elif fetch_resume != _HUGE:
                bound = fetch_resume
            if fetch_out:
                rc = fetch_out[0][2]
                if rc <= c:
                    break              # decode moves this cycle
                if bound < 0 or rc < bound:
                    bound = rc
            if decode_out:
                seg = decode_out[0]
                rc = seg[2]
                if rc <= c:
                    if not (p_needs[seg[0] - r0] and not free_count):
                        break          # rename moves this cycle
                elif bound < 0 or rc < bound:
                    bound = rc
            if rename_out:
                seg = rename_out[0]
                rc = seg[2]
                if rc <= c:
                    if not (rob_len >= rob_cap or iw_count >= iw_cap
                            or (p_addr[seg[0]] is not None
                                and lsq_count >= lsq_cap)):
                        break          # dispatch moves this cycle
                elif bound < 0 or rc < bound:
                    bound = rc
            if fdq:
                fmin = early_arr[fdq[0] - r0]
                if bound < 0 or fmin < bound:
                    bound = fmin
            if future:
                fmin = future[0][0]
                if bound < 0 or fmin < bound:
                    bound = fmin
            if rob_tail > rob_head:
                dcb = done_cyc[rob_head - r0]
                if dcb != _HUGE and (bound < 0 or dcb < bound):
                    bound = dcb
            if tron:
                # the live dicts pin the executed tick set to turbo's,
                # keeping every emission on its legacy cycle
                if wake_events:
                    ev = min(wake_events)
                    if bound < 0 or ev < bound:
                        bound = ev
                if done_events:
                    ev = min(done_events)
                    if bound < 0 or ev < bound:
                        bound = ev
        else:
            if bound > c:
                # Interval hooks and the watchdog fire on the first
                # *executed* cycle past their threshold, and the
                # legacy/turbo tick set executes every wake and
                # completion cycle.  Skipping those ticks is the whole
                # point of this tier — observably free except for the
                # fire cycle itself — so when (and only when) a jump
                # would reach a threshold, rejoin the legacy tick set
                # by folding the pending wake/completion heads into
                # the bound.  Wakes popped as stale here are settled
                # into the broadcast counters, same rule as at flush.
                if not tron:
                    limit = last_cycle + window
                    if dvfs_next is not None and dvfs_next - 1 < limit:
                        limit = dvfs_next - 1
                    if bound >= limit:
                        while wake_h and wake_h[0][0] < c:
                            heappop(wake_h)
                            e_iwb += 1
                            e_rfw += 1
                        if wake_h and wake_h[0][0] < bound:
                            bound = wake_h[0][0]
                        while done_h and done_h[0] < c:
                            heappop(done_h)
                        if done_h and done_h[0] < bound:
                            bound = done_h[0]
                if bound > c:
                    jump = bound
        if profiling:
            t_h += pc_now() - _th
        if jump > 0:
            c = jump

    # -------------------------------------------------------------- finish
    if not tron:
        e_iwb += (nw := _settle_wakes(be, wake_h, rdy_cyc, c))
        e_rfw += nw
        _rebuild_done(be, done_cyc, r0, rob_head, rob_tail, c)
    _flush(core, c, committed, fetched, issued, branches, mispredicts,
           iw_count, lsq_count, e_ic, e_bp, e_dec, e_ren, e_iww, e_robw,
           e_lsqw, e_iws, e_rfr, e_fuo, e_dca, e_iwb, e_rfw, e_robr,
           rf_touched, offs)
    _mat_rob(be, rob_head, rob_tail)
    if fastmem:
        _flush_mem(hierarchy, i_clk, i_acc, i_hit, i_miss, i_ev,
                   d_clk, d_acc, d_hit, d_miss, d_ev, d_wr,
                   l2_clk, l2_acc, l2_hit, l2_miss, l2_ev, l2_wr)
    fu._dirty = f_dirty
    fu._n_reserved = f_nres
    fu._cycle = c - 1 if ticks else fu._cycle
    # translate the resume bound back to the turbo-visible triple
    blocked_now = mispred_seq != -1 and fetch_resume > c
    core._fetch_blocked = blocked_now
    core._mispredict_seq = mispred_seq if blocked_now else -1
    core._fetch_resume_cycle = (resume_stale if blocked_now
                                else fetch_resume)
    stats.be_cycles_create = c
    stats.fe_cycles_active = c

    if prof is not None:
        t2 = perf_counter()
        prof.seconds["pool"] += t1 - t0
        prof.seconds["kernel"] += (t2 - t1) - t_h
        prof.seconds["horizon"] += t_h
        prof.ticks += ticks
    return stats


def _mat_rob(be, rob_head: int, rob_tail: int) -> None:
    """Materialize the interval ROB into the live deque at flush points.

    The vector loop carries the ROB as two ints; DVFS telemetry, metric
    snapshots and deadlock snapshots read ``len(be.rob)`` and the head
    seq off ``be._rob_q``, so every observation point rebuilds it.
    """
    rq = be._rob_q
    rq.clear()
    rq.extend(range(rob_head, rob_tail))


def _settle_wakes(be, wake_h, rdy_cyc, c: int) -> int:
    """Account the wake broadcasts the horizon jumped over.

    Pops every pending wake strictly before the observed cycle (the
    turbo loop flips/counts a wake during the tick *at* its cycle, so
    at observation ``c`` only cycles ``< c`` have been processed),
    returns how many — the caller adds that to ``iw_broadcast`` and
    ``rf_write`` — then refreshes the scoreboard from ``rdy_cyc`` and
    rebuilds ``be.wake_events`` from the still-pending entries.
    """
    n = 0
    while wake_h and wake_h[0][0] < c:
        heappop(wake_h)
        n += 1
    ready_sb = be.ready
    for t, rc in enumerate(rdy_cyc):
        ready_sb[t] = 1 if rc < c else 0
    d = defaultdict(list)
    for w, t in wake_h:
        d[w].append(t)
    be.wake_events = d
    return n


def _rebuild_done(be, done_cyc, r0: int, rob_head: int, rob_tail: int,
                  c: int) -> None:
    """Rebuild ``be.done_events`` from the completion column.

    At any observation cycle ``c`` the turbo loop's dict holds exactly
    the completions of in-flight (issued, unretired) instructions whose
    cycle has not passed — keys ``>= c``, since the loop pops each key
    when it simulates that cycle and the horizon never jumps over one.
    Both facts are recoverable from the column: the seqs are in
    ``[rob_head, rob_tail)`` and the pending ones satisfy
    ``c <= done_cyc < _HUGE``.
    """
    d = defaultdict(list)
    for s in range(rob_head, rob_tail):
        dc = done_cyc[s - r0]
        if c <= dc < _HUGE:
            d[dc].append(s)
    be.done_events = d


def _vtrip(core, c, committed, pool, r0, done_cyc, fetch_blocked):
    """Raise the deadlock error with the legacy snapshot shape.

    The caller has already flushed (counters, ROB deque, event queues),
    so occupancies and the event queues can be read off the live
    objects; the oldest-entry done flag comes from the completion
    column (set for cycles strictly before the observed one, matching
    the turbo loop's pop-then-observe order).
    """
    be = core.be
    oldest = None
    if be._rob_q:
        s = be._rob_q[0]
        oldest = {"seq": s, "pc": pool.pc[s], "op": pool.op[s].name,
                  "done": done_cyc[s - r0] < c,
                  "is_mem": pool.mem_addr[s] is not None}
    snap = {
        "core": type(core).__name__,
        "cycle": c,
        "committed": committed,
        "rob": {"occupancy": len(be.rob), "capacity": be.rob.capacity},
        "lsq": {"occupancy": len(be.lsq), "capacity": be.lsq.capacity},
        "iw": {"occupancy": len(core.iw), "capacity": core.iw.capacity},
        "fetch_blocked": fetch_blocked,
        "next_event_cycle": be.next_event_cycle(),
        "oldest": oldest,
        "mshr": core.hierarchy.stats_dict().get("mshr"),
    }
    if core.trace is not None:
        snap["trace_window"] = [list(ev) for ev in core.trace.window(256)]
    core.watchdog.trip(c, committed, snapshot=lambda: snap)
