"""Turbo engine backend: batched struct-of-arrays execution.

The legacy engine walks one Python object per instruction per stage per
cycle; at ~100k simulated cycles/sec the interpreter overhead — not any
single hot function — is the bottleneck (BENCH_core.json, DESIGN.md §8).
The turbo backend is a second *implementation* of the same machines: it
precomputes everything that is program-order deterministic (the stream
walk, rename tags, branch-predictor outcomes, fetch-group boundaries,
op-indexed latency/FU tables) into parallel NumPy-backed pools, then
runs a fused tick loop over plain arrays with batched counter flushes
and event-compiled skip-ahead.

Selection rides ``CoreConfig.engine`` ("legacy" | "turbo"); the golden
rule for any engine backend is bit-identity: every counter, event,
freq-trace point, cache stat and metric snapshot must match the legacy
engine exactly, or the backend is wrong — there is no "close enough"
for an implementation axis (tests/test_golden_stats.py enforces this
for both backends).

This package guards the NumPy dependency: ``repro`` itself stays
dependency-free, and the turbo extra is declared as ``repro[turbo]``.
Everything heavier lives in submodules imported on demand.
"""

from __future__ import annotations

from repro.errors import ConfigError

try:
    import numpy  # noqa: F401
    HAVE_NUMPY = True
except ImportError:  # pragma: no cover - exercised via sys.modules stub
    HAVE_NUMPY = False


def require_numpy() -> None:
    """Raise the canonical error when the turbo extra is missing.

    Called from ``CoreConfig.__post_init__`` so an ``engine="turbo"``
    or ``engine="vector"`` spec fails at construction time with an
    actionable message instead of an ImportError from deep inside a
    campaign worker.
    """
    if not HAVE_NUMPY:
        raise ConfigError(
            "engine='turbo'/'vector' requires NumPy, which is not "
            "installed; install the turbo extra (pip install "
            "'repro[turbo]') or use engine='legacy'")


__all__ = ["HAVE_NUMPY", "require_numpy"]
