"""Turbo run loop for the single-clock cores (baseline / pipelined_wakeup).

One function replaces the legacy ``step()`` -> per-stage-method -> per-
object walk with a single fused loop over the struct-of-arrays pool from
:mod:`repro.core.engine.turbo.pool`.  Nothing about the *machine* changes:
every stage body below is a line-for-line transliteration of the legacy
stage it replaces (``BaselineCore.step``/``_do_*``, ``ExecBackend.tick``/
``schedule_group``/``retire``, ``IssueWindow``, ``FrontEndFeed.decode``),
operating on primitive ints and dicts instead of DynInstr/RobEntry/IWEntry
objects:

* latches are deques of ``seq`` ints + a ``lat_ready`` dict;
* the issue window is ``not_ready``/``earliest`` dicts, a ``waiters``
  tag index, and two heaps keyed ``(earliest, seq)`` / ``seq`` — the
  legacy age stamp ranks identically to ``seq`` because entries are
  allocated in program order;
* the ROB is the legacy deque (``be._rob_q``) holding seq ints, so
  ``len(core.be.rob)`` stays live for DVFS telemetry and metrics, plus a
  ``done`` bytearray indexed ``seq - r0``;
* rename is the precomputed plan plus one ``free_count`` integer (a
  renamed destination always recycles exactly one tag at commit);
* a mispredicted branch is resolved by checking ``seq == mispred_seq``
  at completion — equivalent to the legacy dispatch-time flag because
  the blocking seq can only change via that branch's own resolution.

Architectural counters accumulate in locals and are flushed by absolute
assignment at every observation point: each DVFS interval hook (governors
read stats, occupancies and the power-event counter), a watchdog trip,
and end of run.  The flush preserves the legacy event-key *set* exactly —
a counter key exists iff the legacy engine would have created it — so
``dict(stats.events)`` and the metrics snapshot stay byte-identical.

The memory hierarchy, trace recorder, DVFS controller and watchdog are
the real objects, driven with the same arguments in the same order as the
legacy engine, so cache contents, MSHR timelines, freq traces and trace
events are exact.  The golden gate (tests/test_golden_stats.py) holds
this loop to bit-identical SimStats against the legacy engine.

Deliberate non-goals: ``core.stream``, ``core.bpred`` and
``core.renamer`` are *not* advanced (the pool owns equivalent replicas);
nothing observable reads them after a run.
"""

from __future__ import annotations

from collections import defaultdict, deque
from heapq import heappop, heappush
from time import perf_counter

from repro.core.engine.turbo.pool import get_pool
from repro.errors import SimulationError
from repro.mem.hierarchy import MemoryHierarchy

#: extra ``done`` slots past ``max_instructions``: in-flight dispatches are
#: bounded by the ROB, which no config exceeds by this margin.
_DONE_SLACK = 4096


def run_turbo_sync(core, max_instructions: int, warmup: int = 0,
                   prof=None):
    """Drop-in replacement for ``BaselineCore.run`` (turbo backend).

    ``prof``, when given, is duck-typed as a PhaseProfile: wall-clock
    seconds are accumulated into ``prof.seconds["pool"]`` (pool/plan
    build + warm replay) and ``prof.seconds["loop"]`` (the fused loop),
    and ``prof.ticks`` counts executed cycles.
    """
    t0 = perf_counter()
    config = core.config
    stream = core.stream
    pool = get_pool(stream.program, stream.seed, config.bpred)
    s0 = stream._seq

    # Functional warmup: replay the pool rows through the hierarchy's
    # warm entry points — identical accesses to the legacy warmup (which
    # drives the live stream), without touching the MSHR timeline. The
    # predictor training happens inside the pool's own replica as it
    # extends across these rows.
    if warmup:
        pool.ensure(s0 + warmup)
        w_ifetch = core.hierarchy.warm_ifetch
        w_load = core.hierarchy.warm_load
        w_store = core.hierarchy.warm_store
        wp_pc = pool.pc
        wp_addr = pool.mem_addr
        wp_isld = pool.is_load
        for s in range(s0, s0 + warmup):
            if not s & 3:              # seq % 4 == 0, as in legacy warmup
                w_ifetch(wp_pc[s])
            addr = wp_addr[s]
            if addr is not None:
                if wp_isld[s]:
                    w_load(addr)
                else:
                    w_store(addr)
        if core.dvfs is not None:
            core.dvfs.reset_baseline(core)

    r0 = s0 + warmup                   # first timed seq
    plan = pool.plan(r0, config.phys_regs)
    plan.ensure(r0 + plan.CHUNK)

    # ---- pool columns (absolute seq index; stable list identities) ----
    p_pc = pool.pc
    p_addr = pool.mem_addr
    p_nsrcs = pool.n_srcs
    p_bkind = pool.bkind
    p_correct = pool.correct
    p_isld = pool.is_load
    p_isst = pool.is_store
    p_lat = pool.lat0
    p_fu = pool.fu_kind
    p_unp = pool.unpip
    # ---- plan columns (index with seq - r0) ----
    p_dtag = plan.dest_tag
    p_stags = plan.src_tags
    p_needs = plan.needs_tag
    plan_n = plan.n

    # ---- machine bindings ----
    stats = core.stats
    events = stats.events
    be = core.be
    iw = core.iw
    hierarchy = core.hierarchy
    h_ifetch = hierarchy.ifetch
    h_load = hierarchy.load
    h_store = hierarchy.store
    rob_q = be._rob_q                  # live deque; holds seq ints here
    ready_sb = be.ready                # physical-register scoreboard
    # cycle -> [tag] / cycle -> [seq] (RobEntry in legacy).  Promoted to
    # defaultdicts so the hot scheduling path is one indexed append; a
    # key still exists iff something was scheduled at that cycle.
    if type(be.wake_events) is dict:
        be.wake_events = defaultdict(list, be.wake_events)
    if type(be.done_events) is dict:
        be.done_events = defaultdict(list, be.done_events)
    wake_events = be.wake_events
    done_events = be.done_events
    fu = be.fu
    f_counts = fu._counts
    f_used = fu._used
    f_res = fu._reserved
    f_dirty = fu._dirty
    f_nres = fu._n_reserved
    f_zeros = fu._zeros
    tr = core.trace
    tron = tr is not None
    emit = tr.emit if tron else None
    dvfs = core.dvfs
    dvfs_next = dvfs.next_check if dvfs is not None else None
    mem_scale = core.mem_scale
    watchdog = core.watchdog
    window = watchdog.window

    # Simple-spec memory fast path: replicate the three-probe chains of
    # ``MemoryHierarchy._ifetch_fast``/``_load_fast``/``_store_fast``
    # (and ``Cache.access``) inline, with per-cache clocks and counters
    # held in locals and flushed at every observation point.  General
    # specs (MSHRs, prefetch, deep chains, write-back) keep the bound
    # method calls — their miss handling is stateful beyond a probe.
    fastmem = h_load.__func__ is MemoryHierarchy._load_fast
    if fastmem:
        l1i_c = hierarchy.l1i
        l1d_c = hierarchy.l1d
        l2_c = hierarchy.l2
        i_sets = l1i_c._sets
        i_lsh = l1i_c._line_shift
        i_sm = l1i_c._set_mask
        i_ts = l1i_c._tag_shift
        i_ways = l1i_c.ways
        d_sets = l1d_c._sets
        d_lsh = l1d_c._line_shift
        d_sm = l1d_c._set_mask
        d_ts = l1d_c._tag_shift
        d_ways = l1d_c.ways
        l2_sets = l2_c._sets
        l2_lsh = l2_c._line_shift
        l2_sm = l2_c._set_mask
        l2_ts = l2_c._tag_shift
        l2_ways = l2_c.ways
        i_clk = l1i_c._clock
        i_acc = l1i_c.stats.accesses
        i_hit = l1i_c.stats.hits
        i_miss = l1i_c.stats.misses
        i_ev = l1i_c.stats.evictions
        d_clk = l1d_c._clock
        d_acc = l1d_c.stats.accesses
        d_hit = l1d_c.stats.hits
        d_miss = l1d_c.stats.misses
        d_ev = l1d_c.stats.evictions
        d_wr = l1d_c.stats.writes
        l2_clk = l2_c._clock
        l2_acc = l2_c.stats.accesses
        l2_hit = l2_c.stats.hits
        l2_miss = l2_c.stats.misses
        l2_ev = l2_c.stats.evictions
        l2_wr = l2_c.stats.writes
        l1_lat = hierarchy._l1_lat
        l12_lat = hierarchy._l12_lat
        l1i_lat = hierarchy._l1i_lat
        l1i2_lat = hierarchy._l1i2_lat
        dram_lat = hierarchy._dram_lat
        dram_cost = max(1, round(dram_lat * mem_scale))

    # ---- config scalars ----
    fetch_width = config.fetch_width
    decode_width = config.decode_width
    rename_width = config.rename_width
    dispatch_width = config.dispatch_width
    issue_width = config.issue_width
    commit_width = config.commit_width
    fetch_cap = core.fe._fetch_cap
    extra_fe = config.extra_frontend_stages
    wk_gate = config.wakeup_extra_delay
    regread = config.regread_stages
    rob_cap = be.rob.capacity
    iw_cap = iw.capacity
    lsq_cap = be.lsq.capacity

    # ---- turbo-local machine state ----
    fetch_out = deque()                # seqs, fetch -> decode latch
    decode_out = deque()               # seqs, decode -> rename latch
    rename_out = deque()               # seqs, rename -> dispatch latch
    lready = {}                        # seq -> latch maturity cycle
    waiters = {}                       # tag -> [seq] (window wake-up index)
    not_ready = {}                     # seq -> unready source count (alive)
    earliest = {}                      # seq -> earliest selection cycle
    future = []                        # heap of (earliest, seq): wake path
    fdq = deque()                      # FIFO of (earliest, seq): dispatch
    #                                    path — (c+1, seq) is monotone, so
    #                                    arrival order IS maturity order
    eligible = []                      # heap of seq (selectable now)
    blocked = []                       # per-cycle scratch for select
    done = bytearray(max_instructions + _DONE_SLACK)   # index seq - r0
    free_count = len(core.renamer._free)
    fs = r0                            # fetch cursor (next seq to fetch)
    rob_len = len(rob_q)
    fetch_len = 0                      # len(fetch_out), tracked as an int

    # ---- counters (absolute values; flushed by assignment) ----
    committed = stats.committed
    fetched = stats.fetched
    issued = stats.issued
    branches = stats.branches
    mispredicts = stats.mispredicts
    iw_count = iw._count
    lsq_count = be.lsq._count
    e_ic = events["icache_access"]
    e_bp = events["bpred_lookup"]
    e_dec = events["decode_op"]
    e_ren = events["rename_op"]
    e_iww = events["iw_write"]
    e_robw = events["rob_write"]
    e_lsqw = events["lsq_write"]
    e_iws = events["iw_select"]
    e_rfr = events["rf_read"]
    e_fuo = events["fu_op"]
    e_dca = events["dcache_access"]
    e_iwb = events["iw_broadcast"]
    e_rfw = events["rf_write"]
    e_robr = events["rob_read"]
    rf_touched = False                 # legacy creates rf_read even at +0
    # Structure counters that shadow an event 1:1 are reconstructed at
    # flush time from the event local plus a constant offset.
    offs = (iw.writes - e_iww, iw.broadcasts - e_iwb,
            be.rob.writes - e_robw, be.lsq.inserts - e_lsqw,
            fu.ops - e_fuo)

    fetch_blocked = core._fetch_blocked
    mispred_seq = core._mispredict_seq
    fetch_resume = core._fetch_resume_cycle
    c = core.cycle
    last_cycle = 0
    last_count = -1
    ticks = 0

    t1 = perf_counter()

    while committed < max_instructions:
        ticks += 1
        # ------------------------------------------------ be.tick: FU reset
        if f_dirty:
            f_used[:] = f_zeros
            f_dirty = False
        if f_nres:
            remaining = 0
            for res in f_res:
                if res:
                    res[:] = [t for t in res if t > c]
                    remaining += len(res)
            f_nres = remaining
        # ---------------------------------------------- be.tick: writeback
        wakes = wake_events.pop(c, None)
        if wakes is not None:
            for tag in wakes:
                ready_sb[tag] = 1
            n = len(wakes)
            e_iwb += n
            e_rfw += n
            if wk_gate:
                ready_at = c + wk_gate
                for tag in wakes:
                    lst = waiters.pop(tag, None)
                    if not lst:
                        continue
                    for s in lst:
                        nr = not_ready.get(s)
                        if nr is None:
                            continue   # selected already (flush-only path)
                        nr -= 1
                        not_ready[s] = nr
                        er = earliest[s]
                        if ready_at > er:
                            er = earliest[s] = ready_at
                        if nr == 0:
                            heappush(future, (er, s))
                        elif nr < 0:
                            raise SimulationError(
                                "negative wait count in issue window")
            else:
                # Zero wake delay: a waiter was dispatched on an earlier
                # cycle, so its earliest-selection bound is <= c and the
                # select drain would move it to ``eligible`` this very
                # cycle — push it there directly and skip the heap.
                for tag in wakes:
                    lst = waiters.pop(tag, None)
                    if not lst:
                        continue
                    for s in lst:
                        nr = not_ready.get(s)
                        if nr is None:
                            continue   # selected already (flush-only path)
                        nr -= 1
                        not_ready[s] = nr
                        if nr == 0:
                            heappush(eligible, s)
                        elif nr < 0:
                            raise SimulationError(
                                "negative wait count in issue window")
        dones = done_events.pop(c, None)
        if dones is not None:
            for s in dones:
                done[s - r0] = 1
                if s == mispred_seq:   # the blocking branch resolved
                    mispred_seq = -1
                    fetch_blocked = False
                    fetch_resume = c + 1
            if tron:
                for s in dones:
                    emit(c, "complete", s)
        # ------------------------------------------------- be.tick: retire
        if rob_q and done[rob_q[0] - r0]:
            nret = 0
            while rob_q and nret < commit_width and done[rob_q[0] - r0]:
                s = rob_q.popleft()
                rob_len -= 1
                addr = p_addr[s]
                if addr is not None:
                    if p_isst[s]:
                        e_dca += 1
                        if fastmem:
                            d_clk += 1
                            d_acc += 1
                            d_wr += 1
                            line = addr >> d_lsh
                            cset = d_sets[line & d_sm]
                            ctag = line >> d_ts
                            if ctag in cset:
                                cset[ctag] = d_clk
                                d_hit += 1
                            else:
                                d_miss += 1
                                if len(cset) >= d_ways:
                                    victim = min(cset, key=cset.get)
                                    del cset[victim]
                                    d_ev += 1
                                cset[ctag] = d_clk
                                l2_clk += 1
                                l2_acc += 1
                                l2_wr += 1
                                line = addr >> l2_lsh
                                cset = l2_sets[line & l2_sm]
                                ctag = line >> l2_ts
                                if ctag in cset:
                                    cset[ctag] = l2_clk
                                    l2_hit += 1
                                else:
                                    l2_miss += 1
                                    if len(cset) >= l2_ways:
                                        victim = min(cset, key=cset.get)
                                        del cset[victim]
                                        l2_ev += 1
                                    cset[ctag] = l2_clk
                        else:
                            h_store(addr, mem_scale, c)
                    lsq_count -= 1
                if p_needs[s - r0]:
                    free_count += 1
                committed += 1
                nret += 1
                if tron:
                    blocked.append(s)  # scratch doubles as retire list
            e_robr += nret
            if tron:
                for s in blocked:
                    emit(c, "retire", s)
                blocked.clear()
        # ------------------------------------------------------------ issue
        if iw_count and not (wk_gate and c & 1):
            while fdq and fdq[0][0] <= c:
                heappush(eligible, fdq.popleft()[1])
            while future and future[0][0] <= c:
                heappush(eligible, heappop(future)[1])
            if eligible:
                nsel = 0
                while eligible:
                    s = eligible[0]
                    if nsel >= issue_width:
                        break
                    heappop(eligible)
                    k = p_fu[s]
                    if f_counts[k] - f_used[k] - len(f_res[k]) > 0:
                        f_used[k] += 1
                        f_dirty = True
                        if p_unp[s]:
                            f_res[k].append(c + p_lat[s])
                            f_nres += 1
                        del not_ready[s]
                        del earliest[s]
                        iw_count -= 1
                        # schedule (legacy schedule_group, in order)
                        lat = p_lat[s]
                        if p_isld[s]:
                            e_dca += 1
                            if fastmem:
                                addr = p_addr[s]
                                d_clk += 1
                                d_acc += 1
                                line = addr >> d_lsh
                                cset = d_sets[line & d_sm]
                                ctag = line >> d_ts
                                if ctag in cset:
                                    cset[ctag] = d_clk
                                    d_hit += 1
                                    lat += l1_lat
                                else:
                                    d_miss += 1
                                    if len(cset) >= d_ways:
                                        victim = min(cset, key=cset.get)
                                        del cset[victim]
                                        d_ev += 1
                                    cset[ctag] = d_clk
                                    l2_clk += 1
                                    l2_acc += 1
                                    line = addr >> l2_lsh
                                    cset = l2_sets[line & l2_sm]
                                    ctag = line >> l2_ts
                                    if ctag in cset:
                                        cset[ctag] = l2_clk
                                        l2_hit += 1
                                        lat += l12_lat
                                    else:
                                        l2_miss += 1
                                        if len(cset) >= l2_ways:
                                            victim = min(cset, key=cset.get)
                                            del cset[victim]
                                            l2_ev += 1
                                        cset[ctag] = l2_clk
                                        lat += l12_lat + dram_cost
                            else:
                                lat += h_load(p_addr[s], mem_scale, c)
                        if tron:
                            emit(c, "issue", s, lat)
                        wake = c + lat
                        tag = p_dtag[s - r0]
                        if tag >= 0:
                            wake_events[wake].append(tag)
                        done_events[wake + regread].append(s)
                        e_rfr += p_nsrcs[s]
                        nsel += 1
                    else:
                        blocked.append(s)
                for s in blocked:
                    heappush(eligible, s)
                blocked.clear()
                if nsel:
                    issued += nsel
                    e_iws += nsel
                    e_fuo += nsel
                    rf_touched = True
                elif tron:
                    emit(c, "stall", -1, "fu_busy")
            elif tron:
                emit(c, "stall", -1, "dep_wait")
        # --------------------------------------------------------- dispatch
        if rename_out:
            n = 0
            while rename_out and n < dispatch_width:
                s = rename_out[0]
                if lready[s] > c:
                    break
                if rob_len >= rob_cap or iw_count >= iw_cap:
                    if tron:
                        emit(c, "stall", s,
                             "rob_full" if rob_len >= rob_cap else "iw_full")
                    break
                addr = p_addr[s]
                if addr is not None and lsq_count >= lsq_cap:
                    if tron:
                        emit(c, "stall", s, "lsq_full")
                    break
                rename_out.popleft()
                del lready[s]
                rob_q.append(s)
                rob_len += 1
                if addr is not None:
                    lsq_count += 1
                    e_lsqw += 1
                e_robw += 1
                # window insert: stores never wait on operands
                nr = 0
                if not p_isst[s]:
                    for tag in p_stags[s - r0]:
                        if not ready_sb[tag]:
                            wl = waiters.get(tag)
                            if wl is None:
                                waiters[tag] = [s]
                            else:
                                wl.append(s)
                            nr += 1
                not_ready[s] = nr
                earliest[s] = c + 1
                if not nr:
                    fdq.append((c + 1, s))
                iw_count += 1
                e_iww += 1
                if tron:
                    emit(c, "dispatch", s)
                n += 1
        # ----------------------------------------------------------- rename
        if decode_out:
            n = 0
            while decode_out and n < rename_width:
                s = decode_out[0]
                if lready[s] > c:
                    break
                i = s - r0
                if p_needs[i]:
                    if not free_count:
                        break
                    free_count -= 1
                    ready_sb[p_dtag[i]] = 0
                decode_out.popleft()
                lready[s] = c + 1
                rename_out.append(s)
                e_ren += 1
                if tron:
                    emit(c, "rename", s)
                n += 1
        # ----------------------------------------------------------- decode
        if fetch_out:
            n = 0
            while fetch_out and n < decode_width:
                s = fetch_out[0]
                if lready[s] > c:
                    break
                fetch_out.popleft()
                lready[s] = c + 1
                decode_out.append(s)
                if tron:
                    emit(c, "decode", s)
                n += 1
            if n:
                e_dec += n
                fetch_len -= n
        # ------------------------------------------------------------ fetch
        if not fetch_blocked and c >= fetch_resume:
            if fetch_len < fetch_cap:
                if fs + fetch_width > plan_n:
                    plan.ensure(fs + plan.CHUNK)
                    plan_n = plan.n
                rdy = 0
                n = 0
                while n < fetch_width:
                    s = fs + n
                    if not n:
                        e_ic += 1
                        if fastmem:
                            pc = p_pc[s]
                            i_clk += 1
                            i_acc += 1
                            line = pc >> i_lsh
                            cset = i_sets[line & i_sm]
                            ctag = line >> i_ts
                            if ctag in cset:
                                cset[ctag] = i_clk
                                i_hit += 1
                                rdy = c + l1i_lat + extra_fe
                            else:
                                i_miss += 1
                                if len(cset) >= i_ways:
                                    victim = min(cset, key=cset.get)
                                    del cset[victim]
                                    i_ev += 1
                                cset[ctag] = i_clk
                                l2_clk += 1
                                l2_acc += 1
                                line = pc >> l2_lsh
                                cset = l2_sets[line & l2_sm]
                                ctag = line >> l2_ts
                                if ctag in cset:
                                    cset[ctag] = l2_clk
                                    l2_hit += 1
                                    rdy = c + l1i2_lat + extra_fe
                                else:
                                    l2_miss += 1
                                    if len(cset) >= l2_ways:
                                        victim = min(cset, key=cset.get)
                                        del cset[victim]
                                        l2_ev += 1
                                    cset[ctag] = l2_clk
                                    rdy = c + l1i2_lat + dram_cost + extra_fe
                        else:
                            rdy = (c + h_ifetch(p_pc[s], mem_scale, c)
                                   + extra_fe)
                    lready[s] = rdy
                    fetch_out.append(s)
                    if tron:
                        emit(c, "fetch", s)
                    n += 1
                    if p_bkind[s]:
                        branches += 1
                        e_bp += 1
                        if not p_correct[s]:
                            mispredicts += 1
                            fetch_blocked = True
                            mispred_seq = s
                        break          # fetch group ends at a branch
                fs += n
                fetched += n
                fetch_len += n
        # --------------------------------------------- cycle advance + run
        c += 1
        if committed != last_count:
            last_count = committed
            last_cycle = c
            if committed >= max_instructions:
                break
        elif c - last_cycle > window:
            _flush(core, c, committed, fetched, issued, branches,
                   mispredicts, iw_count, lsq_count, e_ic, e_bp, e_dec,
                   e_ren, e_iww, e_robw, e_lsqw, e_iws, e_rfr, e_fuo,
                   e_dca, e_iwb, e_rfw, e_robr, rf_touched, offs)
            if fastmem:
                _flush_mem(hierarchy, i_clk, i_acc, i_hit, i_miss, i_ev,
                           d_clk, d_acc, d_hit, d_miss, d_ev, d_wr,
                           l2_clk, l2_acc, l2_hit, l2_miss, l2_ev, l2_wr)
            _trip(core, c, committed, pool, r0, done, fetch_blocked)
        if dvfs_next is not None and c >= dvfs_next:
            _flush(core, c, committed, fetched, issued, branches,
                   mispredicts, iw_count, lsq_count, e_ic, e_bp, e_dec,
                   e_ren, e_iww, e_robw, e_lsqw, e_iws, e_rfr, e_fuo,
                   e_dca, e_iwb, e_rfw, e_robr, rf_touched, offs)
            if fastmem:
                _flush_mem(hierarchy, i_clk, i_acc, i_hit, i_miss, i_ev,
                           d_clk, d_acc, d_hit, d_miss, d_ev, d_wr,
                           l2_clk, l2_acc, l2_hit, l2_miss, l2_ev, l2_wr)
            dvfs_next = dvfs.on_interval(core, c)
            mem_scale = core.mem_scale     # the governor may retune it
            if fastmem:
                dram_cost = max(1, round(dram_lat * mem_scale))
        # ------------------------------------------------- idle skip-ahead
        if eligible or (rob_q and done[rob_q[0] - r0]):
            continue
        bound = None
        if not fetch_blocked:
            if c >= fetch_resume:
                if fetch_len < fetch_cap:
                    continue           # fetch can act
            else:
                bound = fetch_resume
        if fetch_out:
            rc = lready[fetch_out[0]]
            if rc <= c:
                continue               # decode moves this cycle
            if bound is None or rc < bound:
                bound = rc
        if decode_out:
            s = decode_out[0]
            rc = lready[s]
            if rc <= c:
                if not (p_needs[s - r0] and not free_count):
                    continue           # rename moves this cycle
            elif bound is None or rc < bound:
                bound = rc
        if rename_out:
            s = rename_out[0]
            rc = lready[s]
            if rc <= c:
                if not (rob_len >= rob_cap or iw_count >= iw_cap
                        or (p_addr[s] is not None
                            and lsq_count >= lsq_cap)):
                    continue           # dispatch moves this cycle
            elif bound is None or rc < bound:
                bound = rc
        if fdq:
            fmin = fdq[0][0]
            if bound is None or fmin < bound:
                bound = fmin
        if future:
            fmin = future[0][0]
            if bound is None or fmin < bound:
                bound = fmin
        if wake_events:
            ev = min(wake_events)
            if bound is None or ev < bound:
                bound = ev
        if done_events:
            ev = min(done_events)
            if bound is None or ev < bound:
                bound = ev
        if bound is not None and bound > c:
            c = bound

    # -------------------------------------------------------------- finish
    _flush(core, c, committed, fetched, issued, branches, mispredicts,
           iw_count, lsq_count, e_ic, e_bp, e_dec, e_ren, e_iww, e_robw,
           e_lsqw, e_iws, e_rfr, e_fuo, e_dca, e_iwb, e_rfw, e_robr,
           rf_touched, offs)
    if fastmem:
        _flush_mem(hierarchy, i_clk, i_acc, i_hit, i_miss, i_ev,
                   d_clk, d_acc, d_hit, d_miss, d_ev, d_wr,
                   l2_clk, l2_acc, l2_hit, l2_miss, l2_ev, l2_wr)
    fu._dirty = f_dirty
    fu._n_reserved = f_nres
    fu._cycle = c - 1 if ticks else fu._cycle
    core._fetch_blocked = fetch_blocked
    core._mispredict_seq = mispred_seq
    core._fetch_resume_cycle = fetch_resume
    stats.be_cycles_create = c
    stats.fe_cycles_active = c

    if prof is not None:
        t2 = perf_counter()
        prof.seconds["pool"] += t1 - t0
        prof.seconds["loop"] += t2 - t1
        prof.ticks += ticks
    return stats


def _flush(core, c, committed, fetched, issued, branches, mispredicts,
           iw_count, lsq_count, e_ic, e_bp, e_dec, e_ren, e_iww, e_robw,
           e_lsqw, e_iws, e_rfr, e_fuo, e_dca, e_iwb, e_rfw, e_robr,
           rf_touched, offs):
    """Publish the loop's local counters to the live machine objects.

    A module-level function (not a closure) so the run loop's hot locals
    never become cell variables.  Events are assigned only when they
    changed — so a key exists afterwards iff the legacy engine would
    have created it — except ``rf_read``, which legacy creates on the
    first issued group even when the group reads zero registers.
    """
    stats = core.stats
    stats.committed = committed
    stats.fetched = fetched
    stats.issued = issued
    stats.branches = branches
    stats.mispredicts = mispredicts
    core.cycle = c
    ev = stats.events
    for key, val in (("icache_access", e_ic), ("bpred_lookup", e_bp),
                     ("decode_op", e_dec), ("rename_op", e_ren),
                     ("iw_write", e_iww), ("rob_write", e_robw),
                     ("lsq_write", e_lsqw), ("iw_select", e_iws),
                     ("fu_op", e_fuo), ("dcache_access", e_dca),
                     ("iw_broadcast", e_iwb), ("rf_write", e_rfw),
                     ("rob_read", e_robr)):
        if val != ev[key]:
            ev[key] = val
    if rf_touched:
        ev["rf_read"] = e_rfr
    iw = core.iw
    iw._count = iw_count
    iw.writes = e_iww + offs[0]
    iw.broadcasts = e_iwb + offs[1]
    be = core.be
    be.rob.writes = e_robw + offs[2]
    be.lsq._count = lsq_count
    be.lsq.inserts = e_lsqw + offs[3]
    be.fu.ops = e_fuo + offs[4]


def _flush_mem(hierarchy, i_clk, i_acc, i_hit, i_miss, i_ev,
               d_clk, d_acc, d_hit, d_miss, d_ev, d_wr,
               l2_clk, l2_acc, l2_hit, l2_miss, l2_ev, l2_wr):
    """Publish the inlined fast-path cache counters to the live caches.

    Only called when the run loop took the inline memory path; absolute
    assignment, so repeated flushes are idempotent.  ``prefetches`` and
    ``writebacks`` never move on the fast path.
    """
    cache = hierarchy.l1i
    cache._clock = i_clk
    st = cache.stats
    st.accesses = i_acc
    st.hits = i_hit
    st.misses = i_miss
    st.evictions = i_ev
    cache = hierarchy.l1d
    cache._clock = d_clk
    st = cache.stats
    st.accesses = d_acc
    st.hits = d_hit
    st.misses = d_miss
    st.evictions = d_ev
    st.writes = d_wr
    cache = hierarchy.l2
    cache._clock = l2_clk
    st = cache.stats
    st.accesses = l2_acc
    st.hits = l2_hit
    st.misses = l2_miss
    st.evictions = l2_ev
    st.writes = l2_wr


def _trip(core, c, committed, pool, r0, done, fetch_blocked):
    """Raise the deadlock error with the legacy snapshot shape.

    The caller has already flushed, so occupancies and the event queues
    can be read off the live objects; only the ROB head needs the pool
    (the turbo ROB deque holds seq ints, not RobEntry objects).
    """
    be = core.be
    oldest = None
    if be._rob_q:
        s = be._rob_q[0]
        oldest = {"seq": s, "pc": pool.pc[s], "op": pool.op[s].name,
                  "done": bool(done[s - r0]),
                  "is_mem": pool.mem_addr[s] is not None}
    snap = {
        "core": type(core).__name__,
        "cycle": c,
        "committed": committed,
        "rob": {"occupancy": len(be.rob), "capacity": be.rob.capacity},
        "lsq": {"occupancy": len(be.lsq), "capacity": be.lsq.capacity},
        "iw": {"occupancy": len(core.iw), "capacity": core.iw.capacity},
        "fetch_blocked": fetch_blocked,
        "next_event_cycle": be.next_event_cycle(),
        "oldest": oldest,
        "mshr": core.hierarchy.stats_dict().get("mshr"),
    }
    if core.trace is not None:
        snap["trace_window"] = [list(ev) for ev in core.trace.window(256)]
    core.watchdog.trip(c, committed, snapshot=lambda: snap)
