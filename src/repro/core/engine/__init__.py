"""Shared cycle-level pipeline engine.

Every simulated machine in this repository is a composition of the same
back-end mechanics — an issue window feeding FuPool + LSQ execution, wake
/done event queues, an in-order ROB retire — behind a per-cycle ``tick``
contract (see :mod:`repro.core.engine.backend` for the stage order). The
engine package factors those mechanics out of the cores:

* :class:`FrontEndFeed` — fetch/decode/rename latches + the Decode stage.
* :class:`ExecBackend`  — scoreboard, ROB/LSQ/FU structures, writeback,
  execution scheduling and retire, with policy hooks.
* :class:`DeadlockWatchdog` — the forward-progress abort, configured via
  ``CoreConfig.deadlock_window``.

Cores (``BaselineCore``, ``FlywheelCore``, ``PipelinedWakeupCore``) keep
only their policy: fetch/trace boundaries, renaming scheme, issue timing,
clocking. The engine is timing-transparent — composing a core from it
must not change a single stat (pinned by tests/test_golden_stats.py).

Hot-loop discipline: stage code uses the op-indexed tables from
:mod:`repro.isa.opclasses` (no per-cycle dict lookups on enum keys),
touches ``SimStats.events`` directly, and keeps per-instruction objects
slotted. See DESIGN.md for the full contract.
"""

from repro.core.engine.backend import ExecBackend
from repro.core.engine.frontend import FrontEndFeed
from repro.core.engine.watchdog import DeadlockWatchdog

__all__ = ["ExecBackend", "FrontEndFeed", "DeadlockWatchdog"]
