"""Pipelined Wake-Up/Select machine (the paper's Fig. 2 variant).

The paper motivates the Flywheel by showing that the obvious way to reach
a faster clock — pipelining the issue window's Wake-Up/Select loop — costs
far more IPC than pipelining the front-end, because it destroys
back-to-back scheduling of dependent instructions.

Structurally this machine *is* the synchronous baseline with
``wakeup_extra_delay >= 1``: a producer's tag broadcast reaches dependents
one cycle late, and a selection round completes only every other cycle.
The engine refactor makes it a first-class core kind (one class, no
duplicated back-end) so campaigns and experiments can sweep it like any
other machine instead of threading config overrides through every layer.
"""

from __future__ import annotations

from typing import Optional

from repro.core.baseline import BaselineCore
from repro.core.config import ClockPlan, CoreConfig
from repro.mem.hierarchy import MemoryHierarchy
from repro.workloads.stream import InstructionStream


class PipelinedWakeupCore(BaselineCore):
    """Baseline composition with the Wake-Up/Select loop pipelined."""

    def __init__(self, config: CoreConfig, stream: InstructionStream,
                 mem_scale: float = 1.0,
                 hierarchy: Optional[MemoryHierarchy] = None,
                 clock: Optional[ClockPlan] = None):
        if config.wakeup_extra_delay < 1:
            config = config.with_variant(wakeup_extra_delay=1)
        super().__init__(config, stream, mem_scale=mem_scale,
                         hierarchy=hierarchy, clock=clock)
