"""Simulated cores: the synchronous machines and the Flywheel.

All cores are thin compositions over the shared pipeline engine
(:mod:`repro.core.engine`). The baseline is the paper's reference design:
a nine-stage, four-way superscalar out-of-order pipeline with a monolithic
128-entry issue window (R10000-style renaming). ``PipelinedWakeupCore`` is
its Fig. 2 variant with the Wake-Up/Select loop pipelined. The Flywheel
core adds the Dual Clock Issue Window and the Execution Cache with
two-phase register renaming.
"""

from repro.core.config import CoreConfig, FlywheelConfig, ClockPlan
from repro.core.stats import SimStats
from repro.core.baseline import BaselineCore
from repro.core.pipelined import PipelinedWakeupCore
from repro.core.flywheel import FlywheelCore
from repro.core.registry import get_kind, kind_names, register_kind
from repro.core.sim import (
    execute_kind,
    run_baseline,
    run_flywheel,
    run_pipelined_wakeup,
    SimResult,
)

__all__ = [
    "CoreConfig",
    "FlywheelConfig",
    "ClockPlan",
    "SimStats",
    "BaselineCore",
    "PipelinedWakeupCore",
    "FlywheelCore",
    "execute_kind",
    "get_kind",
    "kind_names",
    "register_kind",
    "run_baseline",
    "run_flywheel",
    "run_pipelined_wakeup",
    "SimResult",
]
