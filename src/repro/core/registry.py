"""Pluggable core-kind registry.

One table describes every machine the library can simulate: its kind
tag, core class, runner, default :class:`~repro.core.config.CoreConfig`
and the normalization hooks the campaign layer needs. The three built-in
kinds (``baseline``, ``pipelined_wakeup``, ``flywheel``) self-register
when :mod:`repro.core.sim` is imported; third-party machines plug in
with :func:`register_kind` and immediately work everywhere a kind name
is accepted — ``MachineSpec``/``RunSpec``, :class:`repro.Session`,
sweeps, the campaign store and the CLIs — without touching ``sim.py``
or ``campaign/spec.py``.

A registered runner must have the uniform signature::

    runner(workload, config=None, fly=None, clock=None,
           max_instructions=..., warmup=..., seed=None,
           mem_scale=1.0) -> SimResult

and stamp ``SimResult.kind`` with the registered name. Multiprocess
campaigns execute specs in worker processes, so a third-party kind must
be registered at import time of a module the spec's consumers import
(exactly like the built-ins, which register on ``repro.core.sim``
import).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple, Union

from repro.core.config import CoreConfig
from repro.errors import ConfigError

__all__ = [
    "KindInfo",
    "get_kind",
    "is_registered",
    "kind_names",
    "register_kind",
    "unregister_kind",
]


@dataclass(frozen=True)
class KindInfo:
    """Everything the library knows about one machine kind.

    ``core`` may be the core class itself or a zero-argument callable
    resolving to it (lets a kind defer a heavy import to first use);
    read it through :attr:`core_cls`. ``dual_clock`` kinds keep the
    full :class:`ClockPlan` (front-end/back-end speedups) and accept a
    ``FlywheelConfig``; synchronous kinds are normalized down to
    ``base_mhz`` + governor and must not carry one.
    ``normalize_config`` (optional) maps a user config onto the config
    the core will actually simulate, so spec payloads/cache keys always
    describe the simulated machine.
    """

    name: str
    runner: Callable
    core: Union[type, Callable[[], type]]
    default_config: Callable[[], CoreConfig] = CoreConfig
    dual_clock: bool = False
    normalize_config: Optional[Callable[[CoreConfig], CoreConfig]] = None

    @property
    def core_cls(self) -> type:
        return self.core if isinstance(self.core, type) else self.core()


#: Registration-ordered kind table. The built-ins land here on
#: ``repro.core.sim`` import, before any spec can be validated.
_KINDS: Dict[str, KindInfo] = {}


def register_kind(name: str,
                  core_cls: Union[type, Callable[[], type]],
                  runner: Callable,
                  *,
                  default_config: Callable[[], CoreConfig] = CoreConfig,
                  dual_clock: bool = False,
                  normalize_config: Optional[
                      Callable[[CoreConfig], CoreConfig]] = None,
                  replace: bool = False) -> KindInfo:
    """Register a machine kind; returns its :class:`KindInfo`.

    ``name`` becomes a valid ``kind`` everywhere (specs, sessions,
    sweeps, store records). Duplicate names are rejected with
    :class:`~repro.errors.ConfigError` unless ``replace=True``.
    """
    if not name or not isinstance(name, str):
        raise ConfigError(f"core kind name must be a non-empty string, "
                          f"got {name!r}")
    if name in _KINDS and not replace:
        raise ConfigError(
            f"core kind {name!r} is already registered; pass replace=True "
            "to override it")
    info = KindInfo(name=name, runner=runner, core=core_cls,
                    default_config=default_config, dual_clock=dual_clock,
                    normalize_config=normalize_config)
    _KINDS[name] = info
    return info


def unregister_kind(name: str) -> None:
    """Remove a kind (primarily for tests tearing down plug-ins)."""
    if name not in _KINDS:
        raise ConfigError(f"core kind {name!r} is not registered")
    del _KINDS[name]


def get_kind(name: str) -> KindInfo:
    """Look a kind up, raising :class:`ConfigError` for unknown names."""
    try:
        return _KINDS[name]
    except KeyError:
        raise ConfigError(
            f"unknown core kind {name!r}; registered kinds: "
            f"{', '.join(_KINDS) or '(none)'}") from None


def is_registered(name: str) -> bool:
    return name in _KINDS


def kind_names() -> Tuple[str, ...]:
    """All registered kind names, in registration order."""
    return tuple(_KINDS)
