"""Simulation statistics and power-event counting.

``SimStats`` gathers architectural counters (cycles, commits, mispredicts)
and a free-form event counter dictionary that the power model converts to
energy. Keeping events as plain string-keyed counts decouples the cores
from the power model: a core can be extended with new activity without
touching the accounting code.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field, fields
from typing import Dict, List


@dataclass
class SimStats:
    """Counters for one simulation run."""

    # Architectural progress
    committed: int = 0
    fetched: int = 0
    issued: int = 0

    # Back-end cycles split by operating mode (Flywheel)
    be_cycles_create: int = 0       # trace-creation (slow clock)
    be_cycles_execute: int = 0      # trace-execution (fast clock)
    fe_cycles_active: int = 0
    fe_cycles_gated: int = 0

    # Control flow
    branches: int = 0
    mispredicts: int = 0

    # Flywheel trace machinery
    traces_built: int = 0
    trace_hits: int = 0
    trace_misses: int = 0
    instrs_from_ec: int = 0
    checkpoint_stall_cycles: int = 0
    srt_switches: int = 0
    redistributions: int = 0
    rename_pool_stalls: int = 0

    # Adaptive clocking (repro.dvfs)
    dvfs_retunes: int = 0
    #: Frequency transitions as ``[be_cycle, mhz]`` pairs. Empty without a
    #: governor; with one, the first entry is the cycle-0 starting point.
    freq_trace: List[List[float]] = field(default_factory=list)

    # Wall-clock of the simulated run
    sim_time_ps: int = 0

    #: Per-level memory-system counters (``"l1i"``/``"l1d"``/``"l2"``/...
    #: -> :meth:`repro.mem.CacheStats.to_dict` dicts, plus an ``"mshr"``
    #: aggregate when miss handling is modelled). Populated by the
    #: runners from ``MemoryHierarchy.stats_dict()`` at the end of a run.
    cache_stats: Dict[str, Dict[str, object]] = field(default_factory=dict)

    #: Flat MetricRegistry snapshot (``"engine.rob.occupancy"`` -> value)
    #: taken by the runners at the end of a run. Deterministic for a
    #: deterministic simulation, so it rides through the golden-stats
    #: gate and the content-addressed store like any other counter.
    metrics: Dict[str, object] = field(default_factory=dict)

    #: Power events: structure-access counts consumed by repro.power.
    events: Counter = field(default_factory=Counter)

    def count(self, event: str, n: int = 1) -> None:
        self.events[event] += n

    # ------------------------------------------------- (de)serialization

    def to_dict(self) -> Dict[str, object]:
        """Plain JSON-safe dict; exact inverse of :meth:`from_dict`."""
        out: Dict[str, object] = {
            f.name: getattr(self, f.name) for f in fields(self)
            if f.name != "events"
        }
        out["events"] = dict(self.events)
        return out

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "SimStats":
        """Rebuild stats from :meth:`to_dict` output (unknown keys ignored,
        so records survive the addition of new counters)."""
        known = {f.name for f in fields(cls)}
        kwargs = {k: v for k, v in data.items()
                  if k in known and k != "events"}
        kwargs["events"] = Counter(data.get("events", {}))
        return cls(**kwargs)

    # ------------------------------------------------------------ metrics

    @property
    def total_be_cycles(self) -> int:
        return self.be_cycles_create + self.be_cycles_execute

    @property
    def ipc(self) -> float:
        """Committed instructions per back-end cycle (mode-weighted)."""
        cycles = self.total_be_cycles
        return self.committed / cycles if cycles else 0.0

    @property
    def time_seconds(self) -> float:
        return self.sim_time_ps / 1e12

    @property
    def instr_per_second(self) -> float:
        """Architectural throughput — the paper's performance measure
        (total execution time for a fixed instruction budget)."""
        return self.committed / self.time_seconds if self.sim_time_ps else 0.0

    @property
    def mispredict_rate(self) -> float:
        return self.mispredicts / self.branches if self.branches else 0.0

    def cache_hit_rate(self, level: str) -> float:
        """Demand hit rate of one memory level (0.0 when unrecorded)."""
        counters = self.cache_stats.get(level)
        if not counters:
            return 0.0
        accesses = counters.get("accesses", 0)
        return counters.get("hits", 0) / accesses if accesses else 0.0

    @property
    def mshr_occupancy_avg(self) -> float:
        """Average MSHR occupancy at allocation (0.0 when unmodelled)."""
        mshr = self.cache_stats.get("mshr")
        return float(mshr.get("occupancy_avg", 0.0)) if mshr else 0.0

    @property
    def ec_residency(self) -> float:
        """Fraction of back-end time spent on the alternative (EC) path."""
        cycles = self.total_be_cycles
        return self.be_cycles_execute / cycles if cycles else 0.0

    def snapshot(self) -> Dict[str, float]:
        """Flat dict of headline numbers (for reports and tests)."""
        return {
            "committed": self.committed,
            "cycles": self.total_be_cycles,
            "ipc": self.ipc,
            "time_ps": self.sim_time_ps,
            "mispredict_rate": self.mispredict_rate,
            "ec_residency": self.ec_residency,
            "traces_built": self.traces_built,
        }
