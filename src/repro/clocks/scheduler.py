"""Deterministic interleaving of clock-domain ticks.

With only a handful of domains a linear scan beats a heap; ties are broken
by registration order so simulations are exactly reproducible regardless of
frequency ratios.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.clocks.domain import ClockDomain
from repro.errors import ConfigError


class TickScheduler:
    """Yields (time_ps, domain) events in non-decreasing time order."""

    def __init__(self, domains: List[ClockDomain]):
        if not domains:
            raise ConfigError("scheduler needs at least one domain")
        self.domains = list(domains)

    def next_event(self) -> Tuple[int, ClockDomain]:
        """Pop the earliest pending tick and advance that domain."""
        best = self.domains[0]
        for dom in self.domains[1:]:
            if dom.next_tick_ps < best.next_tick_ps:
                best = dom
        return best.advance(), best

    @property
    def now_ps(self) -> int:
        """Timestamp of the earliest pending tick (current sim time)."""
        return min(d.next_tick_ps for d in self.domains)
