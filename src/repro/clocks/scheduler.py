"""Deterministic interleaving of clock-domain ticks.

With only a handful of domains a linear scan beats a heap; ties are broken
by registration order so simulations are exactly reproducible regardless of
frequency ratios.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.clocks.domain import ClockDomain
from repro.errors import ConfigError


class TickScheduler:
    """Yields (time_ps, domain) events in non-decreasing time order."""

    def __init__(self, domains: List[ClockDomain]):
        if not domains:
            raise ConfigError("scheduler needs at least one domain")
        self.domains = list(domains)

    def next_event(self) -> Tuple[int, ClockDomain]:
        """Pop the earliest pending tick and advance that domain."""
        best = self.domains[0]
        for dom in self.domains[1:]:
            if dom.next_tick_ps < best.next_tick_ps:
                best = dom
        return best.advance(), best

    def drain_until(self, dom: ClockDomain, horizon_ps: int) -> int:
        """Skip ``dom`` ahead over its pending ticks before ``horizon_ps``.

        Bulk-consumes every tick of ``dom`` with a timestamp *strictly*
        before ``horizon_ps`` (ties are excluded: at equal timestamps the
        scheduler hands the tick to the earlier-registered domain first,
        whose handler may change the skipped domain's state). The caller
        must have proven those ticks idle — e.g. a clock-gated front end
        whose gating can only change on another domain's tick. Returns the
        number of ticks skipped; ``dom.cycles`` advances by the same
        amount, exactly as if :meth:`next_event` had popped each one.
        """
        start = dom.next_tick_ps
        if start >= horizon_ps:
            return 0
        period = dom.period_ps
        ticks = (horizon_ps - start + period - 1) // period
        dom.next_tick_ps = start + ticks * period
        dom.cycles += ticks
        return ticks

    @property
    def now_ps(self) -> int:
        """Timestamp of the earliest pending tick (current sim time)."""
        return min(d.next_tick_ps for d in self.domains)
