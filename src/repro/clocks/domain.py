"""Clock domains with runtime-switchable frequency.

Time is kept in integer picoseconds so that interleaving two domains is
exact and deterministic (no float drift across hundreds of thousands of
cycles).
"""

from __future__ import annotations

from repro.errors import ConfigError

PS_PER_SECOND = 1_000_000_000_000


def mhz_to_period_ps(freq_mhz: float) -> int:
    """Clock period in integer picoseconds for a frequency in MHz."""
    if freq_mhz <= 0:
        raise ConfigError(f"frequency must be positive, got {freq_mhz}")
    return max(1, round(1e6 / freq_mhz))


class ClockDomain:
    """One synchronous island: a name, a period, and a tick counter.

    ``cycles`` counts ticks taken; ``busy_cycles`` and ``gated_cycles``
    are maintained by the core for power accounting (a gated cycle burns
    leakage but no clock-grid dynamic power).
    """

    def __init__(self, name: str, freq_mhz: float):
        self.name = name
        self.period_ps = mhz_to_period_ps(freq_mhz)
        self.freq_mhz = freq_mhz
        self.cycles = 0
        self.gated_cycles = 0
        self.next_tick_ps = 0

    def set_frequency(self, freq_mhz: float, now_ps: int) -> None:
        """Switch frequency; the next tick is aligned to the new period.

        Used at trace-mode transitions. The paper derives both back-end
        clocks from one fast master clock by integer division, which makes
        the switch overhead negligible; we model it as instantaneous.
        """
        self.freq_mhz = freq_mhz
        self.period_ps = mhz_to_period_ps(freq_mhz)
        if self.next_tick_ps < now_ps:
            self.next_tick_ps = now_ps

    def advance(self) -> int:
        """Consume the pending tick; returns the tick's timestamp."""
        now = self.next_tick_ps
        self.next_tick_ps = now + self.period_ps
        self.cycles += 1
        return now

    def __repr__(self) -> str:  # pragma: no cover
        return f"ClockDomain({self.name}, {self.freq_mhz} MHz, cycles={self.cycles})"
