"""Mixed-clock FIFO synchronizers.

Messages written in the producer domain become visible to the consumer
domain only after a synchronization latency, expressed in consumer cycles
(the paper assumes FIFO-based communication with the latency of [9][10] for
all cross-domain paths: dispatch, fetch redirects, predictor updates and
register release).
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Generic, List, Optional, Tuple, TypeVar

from repro.errors import ConfigError

T = TypeVar("T")


class SyncFifo(Generic[T]):
    """A bounded FIFO whose entries mature after a time delay.

    ``push`` stamps the entry with ``now + latency_ps``; ``pop_ready``
    returns (in order) the entries whose stamp has passed. Capacity models
    the physical FIFO depth — a full FIFO back-pressures the producer.
    """

    def __init__(self, name: str, capacity: int = 0):
        if capacity < 0:
            raise ConfigError(f"{name}: capacity must be >= 0 (0 = unbounded)")
        self.name = name
        self.capacity = capacity
        self._queue: Deque[Tuple[int, T]] = deque()
        self.pushes = 0
        self.pops = 0

    def __len__(self) -> int:
        return len(self._queue)

    @property
    def full(self) -> bool:
        return self.capacity > 0 and len(self._queue) >= self.capacity

    def push(self, item: T, now_ps: int, latency_ps: int) -> bool:
        """Enqueue; returns False (and drops nothing) when full."""
        if self.full:
            return False
        self._queue.append((now_ps + latency_ps, item))
        self.pushes += 1
        return True

    def peek_ready(self, now_ps: int) -> Optional[T]:
        """The oldest mature entry, without removing it."""
        if self._queue and self._queue[0][0] <= now_ps:
            return self._queue[0][1]
        return None

    def pop_ready(self, now_ps: int, limit: int = 0) -> List[T]:
        """Dequeue all (or up to ``limit``) mature entries, in FIFO order."""
        out: List[T] = []
        while self._queue and self._queue[0][0] <= now_ps:
            if limit and len(out) >= limit:
                break
            out.append(self._queue.popleft()[1])
            self.pops += 1
        return out

    def clear(self) -> None:
        """Drop everything (pipeline flush)."""
        self._queue.clear()
