"""Multi-clock-domain simulation kernel.

The Flywheel design runs the pipeline front-end and back-end in separate
clock domains whose frequencies change with the operating mode. This
package provides picosecond-resolution domains, an interleaving tick
scheduler, and the mixed-clock FIFO synchronizers that carry messages
between domains at the cost of a synchronization latency (as in the
Dual Clock Issue Window of the paper and its reference [11]).
"""

from repro.clocks.domain import ClockDomain, mhz_to_period_ps
from repro.clocks.scheduler import TickScheduler
from repro.clocks.synchronizer import SyncFifo

__all__ = ["ClockDomain", "mhz_to_period_ps", "TickScheduler", "SyncFifo"]
