"""Markdown rendering of experiment rows (used to build EXPERIMENTS.md),
per-interval frequency-trace rendering for governed (DVFS) runs, and
memory-system (per-level cache / MSHR) summaries."""

from __future__ import annotations

from typing import List, Mapping, Sequence


def markdown_table(rows: Sequence[Mapping], columns: List[str]) -> str:
    """Render experiment rows as a GitHub-flavoured markdown table."""
    out = ["| " + " | ".join(columns) + " |",
           "|" + "|".join("---" for _ in columns) + "|"]
    for row in rows:
        cells = []
        for col in columns:
            v = row.get(col, "")
            cells.append(f"{v:.3f}" if isinstance(v, float) else str(v))
        out.append("| " + " | ".join(cells) + " |")
    return "\n".join(out)


def freq_trace_rows(stats, limit: int = 0) -> List[dict]:
    """``SimStats.freq_trace`` as table rows (cycle, MHz, dwell cycles).

    ``dwell`` is the number of back-end cycles spent at each frequency
    (the last segment's dwell extends to the end of the run and is
    reported as the remaining cycles). ``limit`` truncates to the first N
    transitions (0 = all) — traces grow with one entry per retune, not
    per interval, but a long adaptive run can still have hundreds.
    """
    trace = stats.freq_trace
    rows: List[dict] = []
    total = stats.total_be_cycles
    for i, (cycle, mhz) in enumerate(trace):
        nxt = trace[i + 1][0] if i + 1 < len(trace) else total
        rows.append({"cycle": int(cycle), "mhz": float(mhz),
                     "dwell": int(max(0, nxt - cycle))})
        if limit and len(rows) >= limit:
            break
    return rows


def cache_stats_rows(stats) -> List[dict]:
    """``SimStats.cache_stats`` as table rows (one per memory level).

    Rows carry the raw counters plus the derived ``hit_rate``; the
    ``mshr`` aggregate (when miss handling is modelled) is rendered as
    its own pseudo-level with occupancy/stall columns instead.
    """
    rows: List[dict] = []
    for name, counters in stats.cache_stats.items():
        if name == "mshr":
            rows.append({"level": "mshr",
                         "accesses": counters.get("allocs", 0),
                         "hit_rate": 0.0,
                         "occupancy_avg": counters.get("occupancy_avg", 0.0),
                         "stall_cycles": counters.get("stall_cycles", 0),
                         "peak": counters.get("peak", 0)})
            continue
        accesses = counters.get("accesses", 0)
        rows.append({"level": name, "accesses": accesses,
                     "hit_rate": (counters.get("hits", 0) / accesses
                                  if accesses else 0.0),
                     "prefetches": counters.get("prefetches", 0),
                     "writebacks": counters.get("writebacks", 0)})
    return rows


def format_cache_stats(stats) -> str:
    """One-line memory-system summary for experiment footers.

    Example: ``l1i 99.8% l1d 74.9% l2 12.3% | mshr avg 7.2 peak 8
    (336907 stall cyc)``. Empty string when no cache stats were
    recorded (pre-spec store records).
    """
    cache = stats.cache_stats
    if not cache:
        return ""
    bits = []
    for name, counters in cache.items():
        if name == "mshr":
            continue
        accesses = counters.get("accesses", 0)
        rate = counters.get("hits", 0) / accesses if accesses else 0.0
        bits.append(f"{name} {rate:.1%}")
    mshr = cache.get("mshr")
    if mshr:
        bits.append(f"| mshr avg {mshr.get('occupancy_avg', 0.0):.1f} "
                    f"peak {mshr.get('peak', 0)} "
                    f"({mshr.get('stall_cycles', 0)} stall cyc)")
    return " ".join(bits)


#: Eight-level bar glyphs for the sparkline rendering.
_SPARK = "▁▂▃▄▅▆▇█"


def sparkline(values: Sequence[float], max_points: int = 60) -> str:
    """Unicode sparkline of a numeric sequence (empty for no values).

    Values are normalized to the sequence's own min/max span (a flat
    sequence renders as all-low bars); at most ``max_points`` leading
    points are drawn so long trajectories stay one terminal line.
    """
    values = list(values)[:max_points]
    if not values:
        return ""
    lo, hi = min(values), max(values)
    span = (hi - lo) or 1.0
    return "".join(
        _SPARK[min(len(_SPARK) - 1, int((v - lo) / span * (len(_SPARK) - 1)))]
        for v in values)


def format_freq_trace(stats, max_entries: int = 8) -> str:
    """One-line summary of a governed run's frequency trajectory.

    Shows up to ``max_entries`` ``cycle:MHz`` transition points, a
    sparkline of the dwell-time-ordered frequency levels, and the retune
    count — compact enough for experiment footers and CLI output.
    """
    trace = stats.freq_trace
    if not trace:
        return "no governor (fixed clock)"
    shown = trace[:max_entries]
    bits = [f"{int(c)}:{mhz:.0f}" for c, mhz in shown]
    if len(trace) > len(shown):
        bits.append(f"... +{len(trace) - len(shown)} more")
    spark = sparkline([m for _c, m in trace])
    return (f"{' '.join(bits)}  [{spark}]  "
            f"({stats.dvfs_retunes} retunes)")
