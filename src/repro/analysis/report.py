"""Markdown rendering of experiment rows (used to build EXPERIMENTS.md),
plus per-interval frequency-trace rendering for governed (DVFS) runs."""

from __future__ import annotations

from typing import List, Mapping, Sequence


def markdown_table(rows: Sequence[Mapping], columns: List[str]) -> str:
    """Render experiment rows as a GitHub-flavoured markdown table."""
    out = ["| " + " | ".join(columns) + " |",
           "|" + "|".join("---" for _ in columns) + "|"]
    for row in rows:
        cells = []
        for col in columns:
            v = row.get(col, "")
            cells.append(f"{v:.3f}" if isinstance(v, float) else str(v))
        out.append("| " + " | ".join(cells) + " |")
    return "\n".join(out)


def freq_trace_rows(stats, limit: int = 0) -> List[dict]:
    """``SimStats.freq_trace`` as table rows (cycle, MHz, dwell cycles).

    ``dwell`` is the number of back-end cycles spent at each frequency
    (the last segment's dwell extends to the end of the run and is
    reported as the remaining cycles). ``limit`` truncates to the first N
    transitions (0 = all) — traces grow with one entry per retune, not
    per interval, but a long adaptive run can still have hundreds.
    """
    trace = stats.freq_trace
    rows: List[dict] = []
    total = stats.total_be_cycles
    for i, (cycle, mhz) in enumerate(trace):
        nxt = trace[i + 1][0] if i + 1 < len(trace) else total
        rows.append({"cycle": int(cycle), "mhz": float(mhz),
                     "dwell": int(max(0, nxt - cycle))})
        if limit and len(rows) >= limit:
            break
    return rows


#: Eight-level bar glyphs for the sparkline rendering.
_SPARK = "▁▂▃▄▅▆▇█"


def format_freq_trace(stats, max_entries: int = 8) -> str:
    """One-line summary of a governed run's frequency trajectory.

    Shows up to ``max_entries`` ``cycle:MHz`` transition points, a
    sparkline of the dwell-time-ordered frequency levels, and the retune
    count — compact enough for experiment footers and CLI output.
    """
    trace = stats.freq_trace
    if not trace:
        return "no governor (fixed clock)"
    shown = trace[:max_entries]
    bits = [f"{int(c)}:{mhz:.0f}" for c, mhz in shown]
    if len(trace) > len(shown):
        bits.append(f"... +{len(trace) - len(shown)} more")
    lo = min(m for _c, m in trace)
    hi = max(m for _c, m in trace)
    span = (hi - lo) or 1.0
    spark = "".join(
        _SPARK[min(len(_SPARK) - 1,
                   int((m - lo) / span * (len(_SPARK) - 1)))]
        for _c, m in trace[:60])
    return (f"{' '.join(bits)}  [{spark}]  "
            f"({stats.dvfs_retunes} retunes)")
