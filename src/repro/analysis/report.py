"""Markdown rendering of experiment rows (used to build EXPERIMENTS.md)."""

from __future__ import annotations

from typing import List, Mapping, Sequence


def markdown_table(rows: Sequence[Mapping], columns: List[str]) -> str:
    """Render experiment rows as a GitHub-flavoured markdown table."""
    out = ["| " + " | ".join(columns) + " |",
           "|" + "|".join("---" for _ in columns) + "|"]
    for row in rows:
        cells = []
        for col in columns:
            v = row.get(col, "")
            cells.append(f"{v:.3f}" if isinstance(v, float) else str(v))
        out.append("| " + " | ".join(cells) + " |")
    return "\n".join(out)
