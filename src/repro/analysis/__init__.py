"""Result presentation helpers: ASCII charts and markdown tables."""

from repro.analysis.charts import bar_chart, series_table
from repro.analysis.report import (
    cache_stats_rows,
    format_cache_stats,
    markdown_table,
)

__all__ = ["bar_chart", "series_table", "markdown_table",
           "cache_stats_rows", "format_cache_stats"]
