"""Result presentation helpers: ASCII charts and markdown tables."""

from repro.analysis.charts import bar_chart, series_table
from repro.analysis.report import markdown_table

__all__ = ["bar_chart", "series_table", "markdown_table"]
