"""Result presentation helpers: ASCII charts, markdown tables, and the
self-contained HTML diff report."""

from repro.analysis.charts import bar_chart, series_table
from repro.analysis.htmlreport import group_delta_rows, render_diff_html
from repro.analysis.report import (
    cache_stats_rows,
    format_cache_stats,
    format_freq_trace,
    freq_trace_rows,
    markdown_table,
    sparkline,
)

__all__ = ["bar_chart", "series_table", "markdown_table",
           "cache_stats_rows", "format_cache_stats", "format_freq_trace",
           "freq_trace_rows", "group_delta_rows", "render_diff_html",
           "sparkline"]
