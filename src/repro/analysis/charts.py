"""Terminal-friendly charts for experiment outputs.

The paper's figures are bar charts over the ten benchmarks; these helpers
render the same data as ASCII so the CLI can show shapes without any
plotting dependency.
"""

from __future__ import annotations

from typing import Iterable, List, Mapping, Sequence

from repro.errors import ConfigError

_BAR = "#"


def bar_chart(values: Mapping[str, float], width: int = 50,
              baseline: float = None, title: str = "") -> str:
    """Render a labelled horizontal bar chart.

    ``baseline`` draws a reference mark (e.g. 1.0 for normalized results)
    as a ``|`` on each row.
    """
    if not values:
        raise ConfigError("bar_chart needs at least one value")
    if width < 10:
        raise ConfigError("chart width must be >= 10 columns")
    vmax = max(max(values.values()), baseline or 0.0)
    if vmax <= 0:
        vmax = 1.0
    label_w = max(len(k) for k in values)
    lines = [title] if title else []
    for key, value in values.items():
        bar_len = max(0, round(value / vmax * width))
        row = list(_BAR * bar_len + " " * (width - bar_len))
        if baseline is not None:
            mark = min(width - 1, round(baseline / vmax * width))
            row[mark] = "|"
        lines.append(f"{key:>{label_w}} {''.join(row)} {value:.3f}")
    return "\n".join(lines)


def series_table(rows: Sequence[Mapping], x_key: str,
                 series: Iterable[str], width: int = 8) -> str:
    """Fixed-width multi-series table (one line per x value)."""
    series = list(series)
    header = f"{x_key:>{16}}" + "".join(f"{s[:width]:>{width + 2}}"
                                        for s in series)
    lines: List[str] = [header]
    for row in rows:
        line = f"{str(row.get(x_key, '')):>{16}}"
        for s in series:
            v = row.get(s, "")
            line += (f"{v:>{width + 2}.3f}" if isinstance(v, float)
                     else f"{str(v):>{width + 2}}")
        lines.append(line)
    return "\n".join(lines)
