"""Self-contained HTML rendering of campaign diff reports.

One output file, no external assets: inline CSS, unicode sparklines and
plain tables, so the report can be attached to a PR, dropped on a file
share, or served with ``campaign diff --serve`` without a toolchain on
the other end.  The module also owns the axis-grouping helper the diff
engine uses for its terminal tables — grouping and rendering share the
notion of what a "group row" is.

The input is the JSON-safe report dict built by
:func:`repro.campaign.diff.diff_records`.
"""

from __future__ import annotations

from html import escape
from typing import Dict, List, Optional, Sequence

from repro.analysis.report import cache_stats_rows, sparkline
from repro.core.stats import SimStats

#: Verdict -> CSS class (colors defined in _CSS).
_VERDICT_CLASS = {"improved": "imp", "stable": "sta",
                  "degraded": "deg", "noise": "noi"}

_CSS = """
body { font: 14px/1.5 -apple-system, "Segoe UI", Roboto, sans-serif;
       margin: 2rem auto; max-width: 72rem; padding: 0 1rem;
       color: #1a1a1a; }
h1 { font-size: 1.4rem; } h2 { font-size: 1.1rem; margin-top: 2rem; }
table { border-collapse: collapse; margin: .5rem 0; width: 100%; }
th, td { border: 1px solid #ddd; padding: .25rem .5rem;
         text-align: left; font-variant-numeric: tabular-nums; }
th { background: #f5f5f5; }
.meta { color: #555; }
.chip { display: inline-block; border-radius: .75rem; padding: 0 .6rem;
        margin-right: .4rem; font-size: .85em; }
.imp { background: #e2f4e5; color: #135e1f; }
.deg { background: #fbe2e2; color: #8c1515; }
.sta { background: #eee; color: #444; }
.noi { background: #fdf3d7; color: #7a5c0d; }
.outlier { outline: 2px solid #b44; }
.spark { font-family: monospace; letter-spacing: -1px; color: #356; }
details { margin: .25rem 0 .75rem; }
summary { cursor: pointer; }
.small { font-size: .85em; color: #555; }
"""


def group_delta_rows(pairs: Sequence[Dict[str, object]],
                     axis: str) -> List[Dict[str, object]]:
    """Summarize diff pairs grouped by one axis value.

    Each row carries the axis ``value``, the pair count, the median
    relative IPC delta across the group's pairs (``None`` when no pair
    recorded IPC), and per-verdict counts over *all* metric cells in
    the group — the shape both the terminal tables and the HTML
    renderer consume.
    """
    from repro.perf.detect import median

    by_value: Dict[str, List[Dict[str, object]]] = {}
    for pair in pairs:
        by_value.setdefault(str(pair["axes"].get(axis) or ""),
                            []).append(pair)
    rows = []
    for value in sorted(by_value):
        members = by_value[value]
        ipc_rels = [p["metrics"]["ipc"]["rel"] for p in members
                    if "ipc" in p["metrics"]]
        counts = {"improved": 0, "stable": 0, "degraded": 0, "noise": 0}
        for pair in members:
            for cell in pair["metrics"].values():
                counts[cell["verdict"]] += 1
        rows.append({
            "value": value,
            "pairs": len(members),
            "ipc_rel_median": median(ipc_rels) if ipc_rels else None,
            **counts,
        })
    return rows


# ------------------------------------------------------------- rendering

def _fmt(value: Optional[float], spec: str = "{:.4g}") -> str:
    if value is None:
        return "-"
    return spec.format(value)


def _verdict_chip(verdict: str, rel: Optional[float] = None,
                  outlier: bool = False) -> str:
    cls = _VERDICT_CLASS.get(verdict, "sta")
    if outlier:
        cls += " outlier"
    body = verdict if rel is None else f"{verdict} {rel:+.1%}"
    return f'<span class="chip {cls}">{escape(body)}</span>'


def _freq_spark(stats: SimStats) -> str:
    trace = stats.freq_trace
    if not trace:
        return '<span class="small">fixed clock</span>'
    mhz = [m for _c, m in trace]
    return (f'<span class="spark">{escape(sparkline(mhz))}</span> '
            f'<span class="small">{min(mhz):.0f}-{max(mhz):.0f} MHz, '
            f'{stats.dvfs_retunes} retunes</span>')


def _cache_table(stats: SimStats) -> str:
    rows = cache_stats_rows(stats)
    if not rows:
        return '<span class="small">no cache stats recorded</span>'
    out = ["<table><tr><th>level</th><th>accesses</th><th>hit rate</th>"
           "<th>prefetches</th><th>writebacks</th>"
           "<th>occ avg</th><th>stall cyc</th></tr>"]
    for row in rows:
        out.append(
            "<tr><td>{}</td><td>{}</td><td>{}</td><td>{}</td>"
            "<td>{}</td><td>{}</td><td>{}</td></tr>".format(
                escape(str(row.get("level"))),
                row.get("accesses", ""),
                _fmt(row.get("hit_rate"), "{:.2%}"),
                row.get("prefetches", ""),
                row.get("writebacks", ""),
                _fmt(row.get("occupancy_avg"), "{:.2f}")
                if "occupancy_avg" in row else "",
                row.get("stall_cycles", "")))
    out.append("</table>")
    return "".join(out)


def _metric_delta_table(a_stats: SimStats, b_stats: SimStats,
                        limit: int = 12) -> str:
    from repro.obs.metrics import metrics_delta

    rows = metrics_delta(a_stats.metrics, b_stats.metrics, limit=limit)
    if not rows:
        return '<span class="small">no metric snapshot deltas</span>'
    out = ["<table><tr><th>metric</th><th>A</th><th>B</th>"
           "<th>&Delta;</th><th>&Delta;%</th></tr>"]
    for row in rows:
        out.append(
            "<tr><td>{}</td><td>{}</td><td>{}</td><td>{}</td>"
            "<td>{}</td></tr>".format(
                escape(str(row["metric"])), _fmt(row["a"]), _fmt(row["b"]),
                _fmt(row["delta"]), _fmt(row["rel"], "{:+.1%}")))
    out.append("</table>")
    return "".join(out)


def render_diff_html(report: Dict[str, object],
                     title: str = "Campaign diff") -> str:
    """The whole diff report as one self-contained HTML document."""
    a, b = report["a"], report["b"]
    metrics = report["metrics"]
    pairs = report["pairs"]
    out = [
        "<!DOCTYPE html>",
        '<html lang="en"><head><meta charset="utf-8">',
        f"<title>{escape(title)}</title>",
        f"<style>{_CSS}</style></head><body>",
        f"<h1>{escape(title)}</h1>",
        '<p class="meta">'
        f"A: <b>{escape(a['selector'])}</b> &mdash; {a['count']} record(s), "
        f"codes {escape(', '.join(a['codes']) or '-')}<br>"
        f"B: <b>{escape(b['selector'])}</b> &mdash; {b['count']} record(s), "
        f"codes {escape(', '.join(b['codes']) or '-')}<br>"
        f"{len(pairs)} pair(s), {report['flagged']} flagged delta(s), "
        f"significance floor &plusmn;{report['min_rel']:.1%}</p>",
    ]

    for axis, rows in report["groups"].items():
        out.append(f"<h2>By {escape(axis)}</h2><table>"
                   "<tr><th>value</th><th>pairs</th>"
                   "<th>median &Delta;IPC</th><th>improved</th>"
                   "<th>degraded</th><th>noise</th><th>stable</th></tr>")
        for row in rows:
            out.append(
                "<tr><td>{}</td><td>{}</td><td>{}</td><td>{}</td>"
                "<td>{}</td><td>{}</td><td>{}</td></tr>".format(
                    escape(str(row["value"]) or "-"), row["pairs"],
                    _fmt(row["ipc_rel_median"], "{:+.1%}"),
                    row["improved"], row["degraded"], row["noise"],
                    row["stable"]))
        out.append("</table>")

    out.append("<h2>Pairs</h2><table><tr><th>pair</th>"
               + "".join(f"<th>{escape(m)}</th>" for m in metrics)
               + "</tr>")
    for pair in pairs:
        cells = []
        for name in metrics:
            cell = pair["metrics"].get(name)
            if cell is None:
                cells.append("<td>-</td>")
                continue
            cells.append(
                "<td>{} &rarr; {} {}</td>".format(
                    _fmt(cell["a"]), _fmt(cell["b"]),
                    _verdict_chip(cell["verdict"], cell["rel"],
                                  cell.get("outlier", False))))
        out.append(f"<tr><td>{escape(pair['label'])}</td>"
                   + "".join(cells) + "</tr>")
    out.append("</table>")

    out.append("<h2>Details</h2>")
    for pair in pairs:
        a_stats = SimStats.from_dict(pair.get("a_stats") or {})
        b_stats = SimStats.from_dict(pair.get("b_stats") or {})
        out.append(
            f"<details><summary>{escape(pair['label'])} "
            f'<span class="small">A={escape(pair["a_key"][:12])} '
            f'B={escape(pair["b_key"][:12])}</span></summary>'
            f"<p>freq trace A: {_freq_spark(a_stats)}<br>"
            f"freq trace B: {_freq_spark(b_stats)}</p>"
            f"<h3 class='small'>cache stats A</h3>{_cache_table(a_stats)}"
            f"<h3 class='small'>cache stats B</h3>{_cache_table(b_stats)}"
            f"<h3 class='small'>metric snapshot deltas</h3>"
            f"{_metric_delta_table(a_stats, b_stats)}"
            "</details>")

    for side, labels in (("A", report["unpaired_a"]),
                         ("B", report["unpaired_b"])):
        if labels:
            out.append(f'<p class="small">only in {side}: '
                       + escape("; ".join(labels)) + "</p>")
    out.append("</body></html>")
    return "\n".join(out)
