"""Statistical degradation detectors over performance trajectories.

Two detectors replace the single ``--fail-on-regression PCT`` threshold:

* **Rolling median + MAD** — the latest measurement is compared against
  the median of a trailing window; the median absolute deviation (MAD)
  of that window estimates the series' own noise, so a 10% swing on a
  jittery series classifies as ``noise`` while a 6% drop on a
  historically flat series classifies as ``degraded``.
* **Best-vs-latest drift** — a slow decline tracks *with* the rolling
  median (each step is individually unremarkable), so a second detector
  compares the latest value against the best the series ever achieved
  and escalates ``stable``/``noise`` verdicts to ``degraded`` once the
  cumulative drift exceeds a tolerance.

Every series always gets exactly one of four verdicts — ``improved``,
``stable``, ``degraded``, ``noise`` — and the same vocabulary (via
:func:`classify_delta`) is used by ``campaign diff`` to separate
statistically meaningful A/B deltas from noise.  The module is pure
arithmetic: no wall clock, no filesystem, no randomness.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

#: The four-way verdict vocabulary shared by every detector.
VERDICTS = ("improved", "stable", "degraded", "noise")

#: Consistency constant: MAD of a normal distribution times 1.4826
#: estimates its standard deviation.
_MAD_SIGMA = 1.4826


def median(values: Sequence[float]) -> float:
    """Median of a non-empty sequence (mean of the middle pair)."""
    ordered = sorted(values)
    n = len(ordered)
    if not n:
        raise ValueError("median of empty sequence")
    mid = n // 2
    if n % 2:
        return float(ordered[mid])
    return (ordered[mid - 1] + ordered[mid]) / 2.0


def mad(values: Sequence[float], center: Optional[float] = None) -> float:
    """Median absolute deviation around ``center`` (default: the median)."""
    if center is None:
        center = median(values)
    return median([abs(v - center) for v in values])


def robust_z(value: float, population: Sequence[float]) -> Optional[float]:
    """MAD-based z-score of ``value`` within ``population``.

    ``None`` when the population is too small (< 3) or has zero spread —
    an undefined score, distinct from a zero score.
    """
    if len(population) < 3:
        return None
    center = median(population)
    spread = _MAD_SIGMA * mad(population, center)
    if spread <= 0.0:
        return None
    return (value - center) / spread


@dataclass(frozen=True)
class SeriesVerdict:
    """Classification of one series' latest measurement vs its history."""

    series: str
    verdict: str                    # one of VERDICTS
    latest: float
    n: int                          # total measurements (history + latest)
    median: Optional[float] = None  # rolling-window median of the history
    mad: float = 0.0
    rel_delta: Optional[float] = None   # (latest - median) / median
    z: Optional[float] = None           # MAD-based z of the latest value
    best: Optional[float] = None        # best historical value
    vs_best: Optional[float] = None     # latest / best - 1 (sign-adjusted)
    reason: str = ""


def classify_series(values: Sequence[float], *, name: str = "",
                    higher_is_better: bool = True, window: int = 10,
                    min_points: int = 3, min_rel: float = 0.05,
                    z_thresh: float = 3.5,
                    drift_tol: float = 0.15) -> SeriesVerdict:
    """Classify the last element of ``values`` against the rest.

    ``values`` is chronological; the final element is the measurement
    under test, everything before it the history.  Fewer than
    ``min_points`` total measurements yield ``noise`` (no baseline to
    judge against — the honest verdict, not a silent pass).
    """
    if not values:
        raise ValueError("classify_series needs at least one value")
    latest = float(values[-1])
    history = [float(v) for v in values[:-1]]
    n = len(values)
    if n < min_points:
        return SeriesVerdict(series=name, verdict="noise", latest=latest,
                             n=n, reason=f"insufficient history "
                                         f"(n={n} < {min_points})")

    tail = history[-window:]
    center = median(tail)
    spread = mad(tail, center)
    rel = (latest - center) / center if center else 0.0
    signed_rel = rel if higher_is_better else -rel
    sigma = _MAD_SIGMA * spread
    z = (latest - center) / sigma if sigma > 0.0 else None

    best = max(history) if higher_is_better else min(history)
    vs_best = ((latest / best - 1.0) if best else 0.0)
    if not higher_is_better:
        vs_best = -vs_best

    if abs(rel) < min_rel:
        verdict, reason = "stable", (f"within ±{min_rel:.0%} of the "
                                     f"rolling median")
    elif z is not None and abs(z) < z_thresh:
        verdict, reason = "noise", (f"|z|={abs(z):.1f} < {z_thresh:g}: "
                                    "within historical variability")
    elif signed_rel > 0:
        verdict, reason = "improved", f"{rel:+.1%} vs rolling median"
    else:
        verdict, reason = "degraded", f"{rel:+.1%} vs rolling median"

    # Slow-drift escalation: individually-unremarkable steps that add up.
    if verdict in ("stable", "noise") and vs_best < -drift_tol:
        verdict = "degraded"
        reason = (f"drift: {vs_best:+.1%} vs best "
                  f"({best:g}) exceeds {drift_tol:.0%} tolerance")

    return SeriesVerdict(series=name, verdict=verdict, latest=latest, n=n,
                         median=center, mad=spread, rel_delta=rel, z=z,
                         best=best, vs_best=vs_best, reason=reason)


def classify_history(history: Sequence[Dict[str, object]],
                     field: str = "cycles_per_sec",
                     **kwargs) -> List[SeriesVerdict]:
    """One :class:`SeriesVerdict` per series in a loaded profile history.

    Covers every real series (on ``field``, default cycles/sec — higher
    is better) plus the synthetic ``turbo_speedup:*`` and
    ``vector_speedup:*`` ratio series, so a quietly shrinking engine
    speedup is caught even while both raw series stay within their own
    noise.  Keyword arguments pass through
    to :func:`classify_series`.
    """
    from repro.perf.history import series_names, series_values

    verdicts = []
    for name in series_names(history):
        points = series_values(history, name, field=field)
        values = [v for _ts, v in points]
        if not values:
            continue
        verdicts.append(classify_series(values, name=name, **kwargs))
    return verdicts


@dataclass(frozen=True)
class DeltaVerdict:
    """Classification of a single A→B delta on one metric."""

    metric: str
    a: float
    b: float
    rel_delta: float                # (b - a) / a, raw sign
    verdict: str                    # one of VERDICTS
    z: Optional[float] = None       # outlier score vs sibling deltas


def classify_delta(a: float, b: float, *, metric: str = "",
                   higher_is_better: bool = True, min_rel: float = 0.02,
                   noise_floor: float = 0.001) -> DeltaVerdict:
    """Classify one paired A/B measurement.

    ``stable`` means bit-identical (or below ``noise_floor``, which
    absorbs float formatting); ``noise`` a real but sub-``min_rel``
    change; otherwise ``improved``/``degraded`` by the sign adjusted
    for the metric's direction.  A zero A side with a non-zero B side
    is an appearance — classified by direction with an infinite-ish
    relative delta capped for display.
    """
    if a == 0.0 and b == 0.0:
        return DeltaVerdict(metric=metric, a=a, b=b, rel_delta=0.0,
                            verdict="stable")
    rel = (b - a) / a if a else (1.0 if b > 0 else -1.0)
    signed = rel if higher_is_better else -rel
    if abs(rel) <= noise_floor:
        verdict = "stable"
    elif abs(rel) < min_rel:
        verdict = "noise"
    else:
        verdict = "improved" if signed > 0 else "degraded"
    return DeltaVerdict(metric=metric, a=a, b=b, rel_delta=rel,
                        verdict=verdict)
