"""Versioned profile history over ``bench_sim_speed`` reports.

``BENCH_core.json`` is a point-in-time measurement; the history file
(``BENCH_history.jsonl`` by convention) is its trajectory: one JSON line
per measurement, carrying the per-series throughput numbers, the turbo
speedup table, the code fingerprint of the sources measured, and a
timestamp *injected by the caller*.  Nothing in this module reads the
wall clock or the filesystem implicitly — snapshots are plain dicts,
appends are explicit — so the whole layer works from sandboxed callers
(CI scripts, workflow engines) that supply their own notion of "now".

Damaged or foreign lines are skipped on load, the same stance the
campaign store takes toward unreadable records: a history survives a
truncated append or a hand-edited line without poisoning the detectors.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

#: Bumped when the snapshot layout changes incompatibly.  Loaders skip
#: lines from other schema versions rather than mis-reading them.
HISTORY_SCHEMA = 1

#: Conventional history path, next to BENCH_core.json at the repo root.
DEFAULT_HISTORY = "BENCH_history.jsonl"

#: Series whose trajectory the detectors track, in snapshot order.
_SERIES_FIELDS = ("cycles_per_sec", "instrs_per_sec", "seconds", "cycles")


def make_snapshot(report: Dict[str, object], *, timestamp: float,
                  code: Optional[str] = None) -> Dict[str, object]:
    """One history snapshot from a ``bench_sim_speed`` report dict.

    ``timestamp`` is required and caller-supplied (seconds since the
    epoch by convention, but the detectors only use it for ordering and
    display).  ``code`` defaults to the current code fingerprint of the
    installed sources; pass it explicitly when snapshotting a report
    produced by a different tree.
    """
    if code is None:
        from repro.campaign.spec import code_fingerprint

        code = code_fingerprint()
    series: Dict[str, Dict[str, object]] = {}
    for name, row in (report.get("series") or {}).items():
        series[name] = {k: row[k] for k in _SERIES_FIELDS if k in row}
    snap = {
        "schema": HISTORY_SCHEMA,
        "timestamp": float(timestamp),
        "code": str(code),
        "python": report.get("python", ""),
        "series": series,
        "turbo_speedup": dict(report.get("turbo_speedup") or {}),
    }
    # The vector table is written only when present, so snapshots from
    # legacy+turbo-only runs stay byte-compatible with older readers.
    vector = dict(report.get("vector_speedup") or {})
    if vector:
        snap["vector_speedup"] = vector
    return snap


def append_snapshot(path: Union[str, Path],
                    snapshot: Dict[str, object]) -> None:
    """Append one snapshot as a JSON line (creates the file if needed)."""
    if snapshot.get("schema") != HISTORY_SCHEMA:
        raise ValueError(
            f"refusing to append snapshot with schema "
            f"{snapshot.get('schema')!r} (expected {HISTORY_SCHEMA})")
    line = json.dumps(snapshot, sort_keys=True)
    with open(path, "a", encoding="utf-8") as fh:
        fh.write(line + "\n")


def load_history(path: Union[str, Path]) -> List[Dict[str, object]]:
    """Snapshots from a history file, oldest first.

    Lines that are not valid JSON objects of the current schema are
    skipped (torn appends, foreign schema versions).  Snapshots are
    returned in timestamp order regardless of file order, so histories
    merged from several runners still read chronologically.
    """
    snapshots: List[Dict[str, object]] = []
    try:
        text = Path(path).read_text(encoding="utf-8")
    except OSError:
        return snapshots
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            snap = json.loads(line)
        except ValueError:
            continue
        if (not isinstance(snap, dict)
                or snap.get("schema") != HISTORY_SCHEMA
                or not isinstance(snap.get("series"), dict)):
            continue
        snapshots.append(snap)
    snapshots.sort(key=lambda s: s.get("timestamp", 0.0))
    return snapshots


#: Prefix naming the synthetic series that tracks a turbo-speedup ratio
#: (``turbo_speedup:baseline/gcc``) alongside the real throughput series.
SPEEDUP_PREFIX = "turbo_speedup:"

#: Every per-engine speedup table a snapshot may carry; each one gets a
#: matching family of synthetic ``<table>:<base>`` series.
SPEEDUP_TABLES = ("turbo_speedup", "vector_speedup")


def series_names(history: Sequence[Dict[str, object]],
                 speedups: bool = True) -> List[str]:
    """Every series name appearing anywhere in the history, sorted.

    With ``speedups`` (the default) the engine-speedup ratios appear as
    synthetic ``turbo_speedup:<base>`` / ``vector_speedup:<base>``
    series, so the detectors cover the engine/legacy ratio trajectories
    the same way they cover raw throughput.
    """
    names = set()
    for snap in history:
        names.update(snap.get("series", {}))
        if speedups:
            for table in SPEEDUP_TABLES:
                names.update(f"{table}:{base}"
                             for base in snap.get(table, {}))
    return sorted(names)


def series_values(history: Sequence[Dict[str, object]], name: str,
                  field: str = "cycles_per_sec") -> List[Tuple[float, float]]:
    """``(timestamp, value)`` trajectory of one series, oldest first.

    Snapshots that do not carry the series (older code, NumPy-less
    runner skipping the engine series) are simply absent from the
    trajectory rather than contributing gaps.
    """
    points: List[Tuple[float, float]] = []
    table = None
    for t in SPEEDUP_TABLES:
        if name.startswith(t + ":"):
            table = t
            break
    for snap in history:
        if table is not None:
            value = snap.get(table, {}).get(name[len(table) + 1:])
        else:
            value = snap.get("series", {}).get(name, {}).get(field)
        if isinstance(value, (int, float)) and not isinstance(value, bool):
            points.append((float(snap.get("timestamp", 0.0)), float(value)))
    return points
