"""CLI over the performance-versioning layer.

Usage::

    python -m repro.perf append --report BENCH_core.json \\
        [--history BENCH_history.jsonl] [--timestamp T] [--code HEX]
    python -m repro.perf check [--history BENCH_history.jsonl] \\
        [--window N] [--min-rel PCT] [--z-thresh Z] [--drift PCT] \\
        [--fail-on-degraded]
    python -m repro.perf show [--history BENCH_history.jsonl] \\
        [--series NAME]

``append`` snapshots an existing ``bench_sim_speed`` report into the
history (``bench_sim_speed`` itself appends automatically after each
measurement); ``check`` runs the statistical degradation detectors over
every series and is report-only unless ``--fail-on-degraded`` is given;
``show`` prints per-series trajectories with sparklines.

The timestamp is injected here, at the CLI boundary — the library layer
never reads the wall clock, so detector runs are reproducible and the
whole module stays usable from environments without wall-clock APIs.
"""

from __future__ import annotations

import argparse
import json
import sys
import time

from repro.perf.detect import classify_history
from repro.perf.history import (
    DEFAULT_HISTORY,
    append_snapshot,
    load_history,
    make_snapshot,
    series_names,
    series_values,
)

#: Verdict -> marker glyph for the check table.
_MARK = {"improved": "+", "stable": "=", "degraded": "!", "noise": "~"}


def _add_history_flag(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--history", default=DEFAULT_HISTORY, metavar="PATH",
                        help=f"history file (default: {DEFAULT_HISTORY})")


def _cmd_append(args) -> int:
    try:
        with open(args.report, encoding="utf-8") as fh:
            report = json.load(fh)
    except (OSError, ValueError) as exc:
        print(f"cannot read {args.report}: {exc}", file=sys.stderr)
        return 1
    timestamp = args.timestamp if args.timestamp is not None else time.time()
    snapshot = make_snapshot(report, timestamp=timestamp, code=args.code)
    append_snapshot(args.history, snapshot)
    print(f"appended snapshot of {args.report} "
          f"({len(snapshot['series'])} series, code={snapshot['code']}) "
          f"to {args.history}")
    return 0


def _cmd_check(args) -> int:
    history = load_history(args.history)
    if not history:
        print(f"no readable snapshots in {args.history}", file=sys.stderr)
        return 0 if not args.fail_on_degraded else 1
    verdicts = classify_history(
        history, window=args.window, min_rel=args.min_rel / 100.0,
        z_thresh=args.z_thresh, drift_tol=args.drift / 100.0)
    print(f"{len(history)} snapshot(s), {len(verdicts)} series "
          f"(latest code={history[-1].get('code', '?')})")
    print(f"  {'':1s} {'series':34s} {'verdict':9s} {'latest':>12s} "
          f"{'median':>12s} {'Δ':>8s} {'z':>6s} {'vs best':>8s}")
    for v in verdicts:
        rel = f"{v.rel_delta:+.1%}" if v.rel_delta is not None else "-"
        z = f"{v.z:+.1f}" if v.z is not None else "-"
        best = f"{v.vs_best:+.1%}" if v.vs_best is not None else "-"
        med = f"{v.median:,.2f}" if v.median is not None else "-"
        print(f"  {_MARK.get(v.verdict, '?')} {v.series:34s} "
              f"{v.verdict:9s} {v.latest:>12,.2f} {med:>12s} {rel:>8s} "
              f"{z:>6s} {best:>8s}  {v.reason}")
    degraded = [v for v in verdicts if v.verdict == "degraded"]
    if degraded:
        print(f"{len(degraded)} degraded series: "
              + ", ".join(v.series for v in degraded), file=sys.stderr)
        if args.fail_on_degraded:
            return 1
    else:
        print("no degraded series")
    return 0


def _cmd_show(args) -> int:
    from repro.analysis.report import sparkline

    history = load_history(args.history)
    if not history:
        print(f"no readable snapshots in {args.history}", file=sys.stderr)
        return 0
    names = ([args.series] if args.series
             else series_names(history))
    for name in names:
        points = series_values(history, name)
        if not points:
            print(f"{name}: no measurements", file=sys.stderr)
            continue
        values = [v for _ts, v in points]
        print(f"{name:34s} n={len(values):<3d} "
              f"[{sparkline(values)}]  "
              f"first={values[0]:,.2f} last={values[-1]:,.2f}")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.perf",
        description="Versioned performance history and degradation "
                    "detection over bench_sim_speed reports.")
    sub = parser.add_subparsers(dest="command", required=True)

    p_append = sub.add_parser(
        "append", help="snapshot a BENCH_core.json report into the history")
    p_append.add_argument("--report", default="BENCH_core.json",
                          metavar="PATH")
    _add_history_flag(p_append)
    p_append.add_argument("--timestamp", type=float, default=None,
                          help="snapshot timestamp (default: now; pass "
                               "explicitly for reproducible histories)")
    p_append.add_argument("--code", default=None, metavar="HEX",
                          help="code fingerprint to record (default: "
                               "fingerprint of the installed sources)")

    p_check = sub.add_parser(
        "check", help="classify every series (report-only by default)")
    _add_history_flag(p_check)
    p_check.add_argument("--window", type=int, default=10,
                         help="rolling-median window (default: 10)")
    p_check.add_argument("--min-rel", type=float, default=5.0, metavar="PCT",
                         help="stability band around the rolling median "
                              "in percent (default: 5)")
    p_check.add_argument("--z-thresh", type=float, default=3.5,
                         help="MAD z-score beyond which a change is "
                              "significant (default: 3.5)")
    p_check.add_argument("--drift", type=float, default=15.0, metavar="PCT",
                         help="best-vs-latest drift tolerance in percent "
                              "(default: 15)")
    p_check.add_argument("--fail-on-degraded", action="store_true",
                         help="exit non-zero when any series classifies "
                              "as degraded")

    p_show = sub.add_parser("show", help="print per-series trajectories")
    _add_history_flag(p_show)
    p_show.add_argument("--series", default=None, metavar="NAME")

    args = parser.parse_args(argv)
    handler = {"append": _cmd_append, "check": _cmd_check,
               "show": _cmd_show}[args.command]
    return handler(args)


if __name__ == "__main__":
    sys.exit(main())
