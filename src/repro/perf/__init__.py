"""Performance versioning: profile history, degradation detection, diffs.

Perun-style longitudinal observability for the simulator itself and for
stored campaigns.  :mod:`repro.perf.history` grows ``BENCH_core.json``
into an append-only, schema-versioned profile history
(``BENCH_history.jsonl``: one snapshot per ``bench_sim_speed`` run, with
the code fingerprint and a caller-injected timestamp);
:mod:`repro.perf.detect` classifies every series of that history as
``improved`` / ``stable`` / ``degraded`` / ``noise`` with statistical
detectors (rolling median + MAD, best-vs-latest drift) instead of a
single percentage threshold, and supplies the same delta-classification
vocabulary to the ``campaign diff`` engine.  ``python -m repro.perf`` is
the CLI (``append`` / ``check`` / ``show``).

The library layer is deliberately pure: nothing here reads the wall
clock — timestamps are injected by callers (the bench CLI, the perf
CLI, CI) so snapshots stay reproducible and the detectors usable from
environments without wall-clock APIs.  DESIGN.md §9 documents the
schema and the detector semantics.
"""

from repro.perf.detect import (
    DeltaVerdict,
    SeriesVerdict,
    classify_delta,
    classify_history,
    classify_series,
    mad,
    median,
    robust_z,
)
from repro.perf.history import (
    HISTORY_SCHEMA,
    append_snapshot,
    load_history,
    make_snapshot,
    series_names,
    series_values,
)

__all__ = [
    "DeltaVerdict",
    "HISTORY_SCHEMA",
    "SeriesVerdict",
    "append_snapshot",
    "classify_delta",
    "classify_history",
    "classify_series",
    "load_history",
    "mad",
    "make_snapshot",
    "median",
    "robust_z",
    "series_names",
    "series_values",
]
