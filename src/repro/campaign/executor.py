"""Multiprocess campaign executor.

``run_campaign`` takes a job list of :class:`RunSpec`s, resolves as many
as possible from the :class:`ResultStore`, and fans the remaining misses
out over ``jobs`` worker processes. Results come back as serialized
dicts (never live core objects), so the parent can both persist them and
hand them to experiments — the exact same bytes a cache hit would yield,
which is what makes parallel and serial campaigns bit-identical.

``timeout_s`` is a bounded-wait safety valve: the parent collects
results in submission order and never waits more than ``timeout_s`` on
any single pending job; a violation terminates the pool and raises
:class:`~repro.errors.CampaignError` naming the offending spec. (A job
running concurrently behind others can therefore exceed the bound by up
to its queue position's accumulated wait — this catches hangs, not
precise per-job budgets.)
"""

from __future__ import annotations

import multiprocessing
import sys
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Tuple

from repro.campaign.spec import RunSpec, dedup
from repro.campaign.store import ResultStore
from repro.core.sim import SimResult
from repro.errors import CampaignError

#: progress callback: (done, total, spec, source) with source "hit"/"run".
ProgressFn = Callable[[int, int, RunSpec, str], None]

#: result callback: (spec, result, source) fired as each job resolves —
#: the hook ``Session.stream`` uses to yield results incrementally.
ResultFn = Callable[[RunSpec, SimResult, str], None]


@dataclass
class CampaignReport:
    """Outcome of one campaign: results keyed by cache key, plus counters."""

    results: Dict[str, SimResult] = field(default_factory=dict)
    hits: int = 0          # jobs satisfied by the store
    executed: int = 0      # jobs actually simulated
    elapsed_s: float = 0.0
    jobs: int = 1

    @property
    def total(self) -> int:
        return self.hits + self.executed

    def result_for(self, spec: RunSpec) -> SimResult:
        return self.results[spec.cache_key()]

    def summary(self) -> str:
        return (f"{self.total} jobs: {self.hits} from cache, "
                f"{self.executed} simulated on {self.jobs} worker(s) "
                f"in {self.elapsed_s:.1f}s")


def _execute_detached(
        spec: RunSpec) -> Tuple[str, Dict[str, object], float]:
    """Worker entry point: run one spec, return (key, result, wall time)."""
    t0 = time.perf_counter()
    result = spec.execute()
    elapsed_s = time.perf_counter() - t0
    return spec.cache_key(), result.to_dict(), elapsed_s


def print_progress(done: int, total: int, spec: RunSpec, source: str) -> None:
    """Default progress reporter (one line per finished job, stderr)."""
    mark = "cached" if source == "hit" else "ran"
    width = len(str(total))
    print(f"  [{done:{width}d}/{total}] {mark:>6} {spec.label}",
          file=sys.stderr, flush=True)


def run_campaign(specs: Iterable[RunSpec],
                 store: Optional[ResultStore] = None,
                 jobs: int = 1,
                 timeout_s: Optional[float] = None,
                 progress: Optional[ProgressFn] = None,
                 on_result: Optional[ResultFn] = None) -> CampaignReport:
    """Execute a deduplicated job list, memoizing through ``store``.

    With ``jobs > 1`` the misses run under a ``multiprocessing`` pool;
    the parent process performs all store writes, so workers never race
    on the cache directory. Identical seeds give identical stats dicts
    regardless of ``jobs`` (simulations are deterministic and share no
    state across runs).

    ``on_result`` (if given) is called with ``(spec, result, source)``
    as each job resolves, after the result is in the report (and, for
    executed jobs, persisted); it is how ``Session.stream`` surfaces
    results incrementally.
    """
    t0 = time.monotonic()
    specs = dedup(specs)
    report = CampaignReport(jobs=max(1, jobs))
    total = len(specs)
    done = 0

    def note(spec: RunSpec, source: str) -> None:
        nonlocal done
        done += 1
        if on_result is not None:
            on_result(spec, report.results[spec.cache_key()], source)
        if progress is not None:
            progress(done, total, spec, source)

    misses: List[RunSpec] = []
    for spec in specs:
        key = spec.cache_key()
        cached = store.get(key) if store is not None else None
        if cached is not None:
            report.results[key] = cached
            report.hits += 1
            note(spec, "hit")
        else:
            misses.append(spec)

    if misses:
        # A timeout can only be enforced from outside the job, so any
        # timeout_s forces the pool path even for a single serial miss.
        if (jobs > 1 and len(misses) > 1) or timeout_s is not None:
            _run_parallel(misses, report, jobs, timeout_s, store, note)
        else:
            _run_serial(misses, report, store, note)

    report.elapsed_s = time.monotonic() - t0
    return report


def _finish(spec: RunSpec, key: str, result: SimResult,
            report: CampaignReport, store: Optional[ResultStore],
            note: Callable[[RunSpec, str], None],
            elapsed_s: Optional[float] = None) -> None:
    if store is not None:
        store.put(key, spec, result, elapsed_s=elapsed_s)
    report.results[key] = result
    report.executed += 1
    note(spec, "run")


def _run_serial(misses: List[RunSpec], report: CampaignReport,
                store: Optional[ResultStore],
                note: Callable[[RunSpec, str], None]) -> None:
    for spec in misses:
        key, payload, elapsed_s = _execute_detached(spec)
        _finish(spec, key, SimResult.from_dict(payload), report, store, note,
                elapsed_s=elapsed_s)


def _run_parallel(misses: List[RunSpec], report: CampaignReport, jobs: int,
                  timeout_s: Optional[float], store: Optional[ResultStore],
                  note: Callable[[RunSpec, str], None]) -> None:
    workers = max(1, min(jobs, len(misses)))
    ctx = multiprocessing.get_context()
    with ctx.Pool(processes=workers) as pool:
        pending = [(spec, pool.apply_async(_execute_detached, (spec,)))
                   for spec in misses]
        for idx, (spec, handle) in enumerate(pending):
            try:
                key, payload, elapsed_s = handle.get(timeout_s)
            except multiprocessing.TimeoutError:
                _salvage(pending[idx + 1:], report, store, note)
                pool.terminate()
                raise CampaignError(
                    f"campaign job exceeded {timeout_s:g}s timeout: "
                    f"{spec.label}") from None
            except Exception as exc:
                _salvage(pending[idx + 1:], report, store, note)
                pool.terminate()
                raise CampaignError(
                    f"campaign job failed: {spec.label}: {exc}") from exc
            _finish(spec, key, SimResult.from_dict(payload), report, store,
                    note, elapsed_s=elapsed_s)


def _salvage(remaining, report: CampaignReport, store: Optional[ResultStore],
             note: Callable[[RunSpec, str], None]) -> None:
    """Persist already-finished worker results before a pool teardown, so
    one hung job doesn't throw away the rest of the campaign's work."""
    for spec, handle in remaining:
        if not handle.ready():
            continue
        try:
            key, payload, elapsed_s = handle.get(0)
        except Exception:
            continue
        _finish(spec, key, SimResult.from_dict(payload), report, store, note,
                elapsed_s=elapsed_s)
