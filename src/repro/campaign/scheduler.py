"""Resumable asynchronous campaign scheduler.

Where :func:`repro.campaign.executor.run_campaign` is a synchronous
batch primitive (and raises on the first worker failure), the
:class:`CampaignScheduler` is the serving-stack executor: it streams a
:class:`~repro.campaign.journal.CampaignRun`'s jobs to a pool of worker
*processes* (one process per job, at most ``jobs`` in flight) and
survives everything short of the host catching fire:

* **per-job timeout** — a wedged simulation is terminated and counted
  as a failed attempt, never stalling the rest of the campaign;
* **bounded retry with backoff** — a failed attempt re-queues with
  exponential backoff until ``retries`` is exhausted;
* **quarantine** — a spec that keeps failing is recorded in the journal
  with its final traceback and the campaign *continues*; the report
  lists the quarantined jobs instead of raising mid-flight;
* **crash resume** — every transition is journaled before/after the
  fact, so ``campaign resume <id>`` (→ :func:`resume_campaign`) rebuilds
  the remaining work from the journal + store alone after a SIGKILL.

Progress surfaces as :class:`~repro.session.SessionEvent` s — the same
``plan``/``result``/``summary`` schema ``Session.stream`` yields, plus
``quarantine`` — which is what the serve daemon bridges onto SSE.

Hooks (both optional, test/fault-injection seams):

* ``dispatch_hook(spec, index, attempt)`` runs in the *scheduler*
  process right before a job is dispatched; raising here aborts the
  scheduler mid-campaign exactly like a crash (the journal keeps the
  done/pending split).
* ``worker_hook(spec)`` runs in the *worker* process right before the
  simulation; raising makes that attempt fail (retry → quarantine
  path). It must be picklable on spawn-based platforms; under the
  default fork start method any callable works.
"""

from __future__ import annotations

import json
import multiprocessing
import queue as queue_mod
import time
import traceback
from dataclasses import dataclass, field
from typing import (
    TYPE_CHECKING,
    Callable,
    Dict,
    List,
    Optional,
    Tuple,
    Union,
)

from repro.campaign.journal import CampaignRun, JobEntry, list_campaigns
from repro.campaign.spec import RunSpec
from repro.campaign.store import ResultStore
from repro.core.sim import SimResult
from repro.errors import CampaignError

if TYPE_CHECKING:                 # runtime import is lazy: repro.session
    from repro.session import SessionEvent  # imports repro.campaign back


def _event(**kwargs) -> "SessionEvent":
    """Build a SessionEvent without a module-level cyclic import."""
    from repro.session import SessionEvent

    return SessionEvent(**kwargs)

__all__ = [
    "CampaignScheduler",
    "ScheduleReport",
    "list_campaigns",
    "resume_campaign",
    "submit_campaign",
]

#: Event callback: receives each SessionEvent as the campaign advances.
EventFn = Callable[["SessionEvent"], None]


@dataclass
class ScheduleReport:
    """Outcome of one scheduler pass over a campaign."""

    campaign_id: str = ""
    results: Dict[str, SimResult] = field(default_factory=dict)
    hits: int = 0                 # jobs satisfied by the store
    executed: int = 0             # jobs simulated (this pass)
    retried: int = 0              # failed attempts that were re-queued
    quarantined: List[Dict[str, str]] = field(default_factory=list)
    elapsed_s: float = 0.0
    jobs: int = 1

    @property
    def total(self) -> int:
        return self.hits + self.executed + len(self.quarantined)

    def result_for(self, spec: RunSpec) -> SimResult:
        return self.results[spec.cache_key()]

    def summary(self) -> str:
        bits = [f"{self.total} jobs: {self.hits} from cache, "
                f"{self.executed} simulated on {self.jobs} worker(s) "
                f"in {self.elapsed_s:.1f}s"]
        if self.retried:
            bits.append(f"{self.retried} retried")
        if self.quarantined:
            bits.append(f"{len(self.quarantined)} quarantined")
        return ", ".join(bits)

    def stats_payload(self) -> bytes:
        """Canonical bytes of every result's stats, keyed by cache key.

        Deliberately excludes wall-clock metadata (elapsed, created), so
        an interrupted-then-resumed campaign and an uninterrupted one
        produce **byte-identical** payloads — the crash-resume
        acceptance check compares exactly this.
        """
        stats = {key: result.stats.to_dict()
                 for key, result in sorted(self.results.items())}
        return json.dumps(stats, sort_keys=True).encode("utf-8")


def _worker(payload: Dict[str, object], index: int,
            out: "multiprocessing.Queue",
            worker_hook: Optional[Callable[[RunSpec], None]]) -> None:
    """Worker-process entry: run one spec, ship a dict (never objects)."""
    try:
        spec = RunSpec.from_dict(payload)
        if worker_hook is not None:
            worker_hook(spec)
        t0 = time.perf_counter()
        result = spec.execute()
        elapsed_s = time.perf_counter() - t0
        out.put(("ok", index, result.to_dict(), elapsed_s))
    except BaseException:
        out.put(("err", index, traceback.format_exc(), 0.0))


@dataclass
class _Flight:
    """One in-flight worker process."""

    job: JobEntry
    spec: RunSpec
    attempt: int
    process: "multiprocessing.process.BaseProcess"
    deadline: Optional[float]


class CampaignScheduler:
    """Stream a journaled campaign's jobs through worker processes."""

    def __init__(self,
                 run: CampaignRun,
                 store: ResultStore,
                 jobs: int = 1,
                 timeout_s: Optional[float] = None,
                 retries: int = 2,
                 backoff_s: float = 0.25,
                 on_event: Optional[EventFn] = None,
                 dispatch_hook: Optional[Callable] = None,
                 worker_hook: Optional[Callable] = None):
        self.run = run
        self.store = store
        self.jobs = max(1, jobs)
        self.timeout_s = timeout_s
        self.retries = max(0, retries)
        self.backoff_s = backoff_s
        self.on_event = on_event
        self.dispatch_hook = dispatch_hook
        self.worker_hook = worker_hook

    # ---------------------------------------------------------- internals

    def _emit(self, event: SessionEvent) -> None:
        if self.on_event is not None:
            self.on_event(event)

    def _spec_of(self, job: JobEntry) -> RunSpec:
        try:
            return job.spec()
        except Exception as exc:
            raise CampaignError(
                f"campaign {self.run.campaign_id}: job {job.index} payload "
                f"does not reconstruct ({exc}); was the journal written by "
                "an incompatible code version?") from exc

    # --------------------------------------------------------------- run

    def execute(self) -> ScheduleReport:
        """Drive the campaign to completion (or total quarantine).

        Store hits resolve first (including jobs a previous, crashed
        pass already simulated — that is what makes resume cheap), then
        the misses stream through the worker pool. Raises only for
        *scheduler* faults (e.g. a ``dispatch_hook`` crash-injection);
        job failures end in quarantine, not an exception.
        """
        t0 = time.monotonic()
        report = ScheduleReport(campaign_id=self.run.campaign_id,
                                jobs=self.jobs)
        total = len(self.run.jobs)
        done = 0
        self._emit(_event(event="plan", total=total))

        # Phase 1: resolve everything the store already has. On resume
        # this covers both previously-done jobs and records some other
        # campaign happened to produce — the store is the truth.
        misses: List[JobEntry] = []
        for job in self.run.jobs:
            if job.state == "quarantined":
                done += 1
                report.quarantined.append(
                    {"key": job.key, "error": job.error,
                     "label": _label(job)})
                continue
            cached = self.store.get(job.key)
            if cached is not None:
                if job.state != "done":
                    self.run.record(job.index, "done", source="store")
                report.results[job.key] = cached
                report.hits += 1
                done += 1
                self._emit(_event(
                    event="result", spec=self._spec_of(job), result=cached,
                    source="store", done=done, total=total))
            else:
                if job.state == "done":
                    # Journal says done but the record vanished (store
                    # cleaned between passes): owe the work again.
                    job.state = "pending"
                misses.append(job)

        if misses:
            done = self._drain(misses, report, done, total)

        report.elapsed_s = time.monotonic() - t0
        self.run.record_complete(hits=report.hits, executed=report.executed,
                                 quarantined=len(report.quarantined),
                                 retried=report.retried)
        self._emit(_event(
            event="summary", done=done, total=total, hits=report.hits,
            executed=report.executed, quarantined=len(report.quarantined),
            elapsed_s=report.elapsed_s))
        return report

    def _drain(self, misses: List[JobEntry], report: ScheduleReport,
               done: int, total: int) -> int:
        """The pool loop: keep ≤ ``jobs`` processes in flight, collect
        completions as they land, retry/quarantine failures."""
        ctx = multiprocessing.get_context()
        out: "multiprocessing.Queue" = ctx.Queue()
        #: (not_before, job, spec, attempt) — jobs waiting for a slot.
        waiting: List[Tuple[float, JobEntry, RunSpec, int]] = [
            (0.0, job, self._spec_of(job), job.attempts + 1)
            for job in misses]
        flights: Dict[int, _Flight] = {}
        try:
            while waiting or flights:
                now = time.monotonic()
                # Fill free slots with jobs whose backoff has elapsed.
                ready = [w for w in waiting if w[0] <= now]
                while ready and len(flights) < self.jobs:
                    entry = ready.pop(0)
                    waiting.remove(entry)
                    _nb, job, spec, attempt = entry
                    if self.dispatch_hook is not None:
                        self.dispatch_hook(spec, job.index, attempt)
                    process = ctx.Process(
                        target=_worker,
                        args=(job.payload, job.index, out,
                              self.worker_hook),
                        daemon=True)
                    process.start()
                    self.run.record(job.index, "running", attempt=attempt)
                    deadline = (now + self.timeout_s
                                if self.timeout_s else None)
                    flights[job.index] = _Flight(job, spec, attempt,
                                                 process, deadline)
                done = self._collect(out, flights, waiting, report,
                                     done, total)
        except BaseException:
            # Scheduler fault (crash injection, ^C): reap the flights —
            # their journal entries stay "running" and fold back to
            # pending on the next load; finished-but-uncollected work
            # is already in the store, so resume still counts it.
            for flight in flights.values():
                flight.process.terminate()
            raise
        return done

    def _collect(self, out, flights: Dict[int, _Flight],
                 waiting, report: ScheduleReport,
                 done: int, total: int) -> int:
        """Collect queued completions; sweep timeouts and deaths.

        All queued messages are drained before the death sweep so a
        finished worker whose message sits behind another completion is
        never misdeclared dead. (If the one message-in-transit window
        is still hit, the attempt is retried — the store put is
        idempotent, so a spurious retry only costs wall time.)
        """
        block = True
        while True:
            try:
                tag, index, payload, elapsed_s = (
                    out.get(timeout=0.05) if block else out.get_nowait())
            except queue_mod.Empty:
                break
            block = False
            if index not in flights:
                continue          # late duplicate after a spurious retry
            flight = flights.pop(index)
            flight.process.join()
            if tag == "ok":
                result = SimResult.from_dict(payload)
                self.store.put(flight.job.key, flight.spec, result,
                               elapsed_s=elapsed_s)
                self.run.record(index, "done", source="run",
                                elapsed_s=round(elapsed_s, 6))
                report.results[flight.job.key] = result
                report.executed += 1
                done += 1
                self._emit(_event(
                    event="result", spec=flight.spec, result=result,
                    source="run", done=done, total=total))
            else:
                done = self._failed(flight, payload, waiting, report,
                                    done, total)
        now = time.monotonic()
        for index, flight in list(flights.items()):
            if flight.deadline is not None and now > flight.deadline:
                flight.process.terminate()
                flight.process.join()
                flights.pop(index)
                done = self._failed(
                    flight, f"job exceeded {self.timeout_s:g}s timeout",
                    waiting, report, done, total)
            elif not flight.process.is_alive():
                # Died without reporting (OOM-kill, segfault): drain any
                # late message, else treat as a failed attempt.
                flights.pop(index)
                done = self._failed(
                    flight, "worker process died without a result "
                    f"(exitcode {flight.process.exitcode})",
                    waiting, report, done, total)
        return done

    def _failed(self, flight: _Flight, error: str, waiting,
                report: ScheduleReport, done: int, total: int) -> int:
        if flight.attempt <= self.retries:
            self.run.record(flight.job.index, "failed",
                            attempt=flight.attempt, error=error)
            report.retried += 1
            not_before = (time.monotonic()
                          + self.backoff_s * (2 ** (flight.attempt - 1)))
            waiting.append((not_before, flight.job, flight.spec,
                            flight.attempt + 1))
            return done
        self.run.record(flight.job.index, "quarantined",
                        attempt=flight.attempt, error=error)
        report.quarantined.append({"key": flight.job.key, "error": error,
                                   "label": flight.spec.label})
        done += 1
        self._emit(_event(
            event="quarantine", spec=flight.spec, done=done, total=total,
            error=error))
        return done


def _label(job: JobEntry) -> str:
    try:
        return job.spec().label
    except Exception:
        return job.key[:12]


def submit_campaign(specs,
                    store: Union[ResultStore, str, None],
                    jobs: int = 1,
                    timeout_s: Optional[float] = None,
                    retries: int = 2,
                    backoff_s: float = 0.25,
                    campaign_id: Optional[str] = None,
                    on_event: Optional[EventFn] = None,
                    dispatch_hook: Optional[Callable] = None,
                    worker_hook: Optional[Callable] = None
                    ) -> CampaignScheduler:
    """Journal a new campaign and return its (not yet run) scheduler.

    The scheduler options are persisted in the journal header so
    ``resume`` re-runs with the submitter's settings by default.
    """
    if not isinstance(store, ResultStore):
        store = ResultStore(store)
    run = CampaignRun.create(
        store.root, specs, campaign_id=campaign_id,
        options={"jobs": jobs, "timeout_s": timeout_s,
                 "retries": retries, "backoff_s": backoff_s})
    return CampaignScheduler(run, store, jobs=jobs, timeout_s=timeout_s,
                             retries=retries, backoff_s=backoff_s,
                             on_event=on_event, dispatch_hook=dispatch_hook,
                             worker_hook=worker_hook)


def resume_campaign(campaign_id: str,
                    store: Union[ResultStore, str, None],
                    jobs: Optional[int] = None,
                    timeout_s: Optional[float] = None,
                    retries: Optional[int] = None,
                    on_event: Optional[EventFn] = None,
                    dispatch_hook: Optional[Callable] = None,
                    worker_hook: Optional[Callable] = None
                    ) -> CampaignScheduler:
    """Rebuild a campaign's scheduler from its journal + the store.

    Explicit arguments override the journaled submit-time options
    (``None`` keeps them). Works on complete campaigns too — every job
    then resolves as a store hit, which doubles as verification.
    """
    if not isinstance(store, ResultStore):
        store = ResultStore(store)
    run = CampaignRun.load(store.root, campaign_id)
    opts = run.options or {}
    return CampaignScheduler(
        run, store,
        jobs=jobs if jobs is not None else int(opts.get("jobs") or 1),
        timeout_s=(timeout_s if timeout_s is not None
                   else opts.get("timeout_s")),
        retries=(retries if retries is not None
                 else int(opts.get("retries", 2))),
        backoff_s=float(opts.get("backoff_s", 0.25)),
        on_event=on_event, dispatch_hook=dispatch_hook,
        worker_hook=worker_hook)
