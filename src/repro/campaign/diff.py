"""Differential campaign analysis over the result store.

``python -m repro.campaign diff <A> <B>`` compares two slices of the
store — two code fingerprints of the same sweep, or two campaigns that
differ along a config axis — pairs their records by the spec identity
*minus the axes the selectors vary*, classifies every per-pair metric
delta (IPC, EDP, cache stats, simulated time) as improved / stable /
degraded / noise with the :mod:`repro.perf.detect` vocabulary, groups
the deltas by axis (kind / bench / clock / gov / mem / engine), and
renders a terminal table plus an optional self-contained HTML report
(:mod:`repro.analysis.htmlreport`).

Selectors
---------
A selector is either a special token or a comma-separated conjunction
of ``key=value`` filters::

    latest              newest code fingerprint in the store
    prev                second-newest code fingerprint
    code=ab12cd         code-fingerprint prefix
    base_mhz=400        clock filter (also: kind=, bench=, engine=,
                        gov=, mem=, seed=, instructions=, warmup=)
    kind=baseline,gov=occupancy      conjunction

Records from the A and B selections pair when their spec payloads agree
on everything *except* the filtered axes (and the code fingerprint,
which never blocks pairing).  Each selection keeps only its newest
record per pair identity, so re-measured specs compare newest-vs-newest.
"""

from __future__ import annotations

import copy
import json
import sys
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.config import stable_hash
from repro.core.sim import SimResult
from repro.core.stats import SimStats
from repro.errors import CampaignError
from repro.perf.detect import classify_delta, robust_z

#: Selector / grouping keys understood by :func:`parse_selector`.
SELECTOR_KEYS = ("code", "kind", "bench", "engine", "gov", "mem",
                 "base_mhz", "seed", "instructions", "warmup")

#: Axes the report groups deltas by (display order).
GROUP_AXES = ("kind", "bench", "clock", "gov", "mem", "engine")


# ----------------------------------------------------------------- metrics

@dataclass(frozen=True)
class Metric:
    """One comparable per-run quantity."""

    name: str
    higher_is_better: bool
    fn: Callable[[dict, SimStats], Optional[float]]
    fmt: str = "{:.4g}"


def _edp(record: dict, stats: SimStats) -> Optional[float]:
    """Energy-delay product (J*s) at the paper's 130nm power node."""
    from repro.power.accounting import energy_report
    from repro.power.technology import TECH_130

    try:
        result = SimResult.from_dict(record["result"])
        rep = energy_report(result, TECH_130)
    except Exception:
        return None
    return rep.total_j * rep.time_s


def _hit_rate(level: str):
    def fn(record: dict, stats: SimStats) -> Optional[float]:
        if level not in stats.cache_stats:
            return None
        return stats.cache_hit_rate(level)
    return fn


def _mshr_stalls(record: dict, stats: SimStats) -> Optional[float]:
    mshr = stats.cache_stats.get("mshr")
    if not mshr:
        return None
    return float(mshr.get("stall_cycles", 0))


METRICS: Dict[str, Metric] = {
    "ipc": Metric("ipc", True, lambda r, s: s.ipc, "{:.4f}"),
    "time_ms": Metric("time_ms", False,
                      lambda r, s: s.sim_time_ps / 1e9, "{:.3f}"),
    "edp": Metric("edp", False, _edp, "{:.3e}"),
    "l1d_hit": Metric("l1d_hit", True, _hit_rate("l1d"), "{:.4f}"),
    "l2_hit": Metric("l2_hit", True, _hit_rate("l2"), "{:.4f}"),
    "mshr_stalls": Metric("mshr_stalls", False, _mshr_stalls, "{:.0f}"),
}

DEFAULT_METRICS = ("ipc", "time_ms", "edp", "l1d_hit", "l2_hit",
                   "mshr_stalls")


# ------------------------------------------------------------ record axes

def record_axes(record: dict) -> Dict[str, object]:
    """Flat axis values of one store record (for filtering/grouping)."""
    spec = record.get("spec") or {}
    clock = spec.get("clock") or {}
    config = spec.get("config") or {}
    gov = (clock.get("governor") or {}).get("name") or ""
    base = clock.get("base_mhz")
    label = f"{base:g}MHz" if isinstance(base, (int, float)) else ""
    for part, tag in ((clock.get("fe_speedup"), "fe"),
                      (clock.get("be_speedup"), "be")):
        if part:
            label += f"+{tag}{part:.0%}"
    mem = ""
    if config.get("mem"):
        try:
            from repro.mem.spec import MemorySpec

            mem = MemorySpec.from_dict(config["mem"]).label
        except Exception:
            mem = "?"
    return {
        "code": record.get("code", ""),
        "kind": spec.get("kind", ""),
        "bench": spec.get("bench", ""),
        "engine": record.get("engine") or config.get("engine", "legacy"),
        "gov": gov,
        "mem": mem,
        "clock": label,
        "base_mhz": base,
        "seed": spec.get("seed"),
        "instructions": spec.get("instructions"),
        "warmup": spec.get("warmup"),
    }


# -------------------------------------------------------------- selectors

@dataclass(frozen=True)
class Selection:
    """One side of a diff: the selector text, its filters, its records."""

    text: str
    filters: Dict[str, str]
    records: Tuple[dict, ...]

    @property
    def codes(self) -> List[str]:
        return sorted({r.get("code", "") for r in self.records})


def _codes_newest_first(records: Sequence[dict]) -> List[str]:
    """Distinct code fingerprints ordered by their newest record."""
    newest: Dict[str, float] = {}
    for record in records:
        code = record.get("code", "")
        created = record.get("created", 0) or 0
        if code and created >= newest.get(code, -1):
            newest[code] = created
    return [c for c, _t in sorted(newest.items(), key=lambda kv: -kv[1])]


def parse_selector(text: str,
                   records: Sequence[dict]) -> Tuple[Dict[str, str], str]:
    """``(filters, label)`` for one selector string.

    ``latest`` / ``prev`` resolve against the store's code-fingerprint
    timeline; everything else is a comma-separated ``key=value``
    conjunction over :data:`SELECTOR_KEYS`.
    """
    text = text.strip()
    if text in ("latest", "prev"):
        codes = _codes_newest_first(records)
        index = 0 if text == "latest" else 1
        if len(codes) <= index:
            raise CampaignError(
                f"selector {text!r} needs {index + 1} distinct code "
                f"fingerprint(s) in the store; found {len(codes)}")
        return {"code": codes[index]}, f"{text} (code={codes[index]})"
    filters: Dict[str, str] = {}
    for clause in text.split(","):
        clause = clause.strip()
        if not clause:
            continue
        if "=" not in clause:
            raise CampaignError(
                f"bad selector clause {clause!r}: expected key=value, "
                f"'latest' or 'prev' (keys: {', '.join(SELECTOR_KEYS)})")
        key, _, value = clause.partition("=")
        key = key.strip()
        if key not in SELECTOR_KEYS:
            raise CampaignError(
                f"unknown selector key {key!r}; expected one of "
                f"{', '.join(SELECTOR_KEYS)}")
        filters[key] = value.strip()
    if not filters:
        raise CampaignError(f"empty selector {text!r}")
    return filters, text


def _matches(filters: Dict[str, str], axes: Dict[str, object]) -> bool:
    for key, want in filters.items():
        have = axes.get(key)
        if key == "code":
            if not str(have).startswith(want):
                return False
        elif key in ("base_mhz",):
            try:
                if have is None or float(have) != float(want):
                    return False
            except ValueError:
                return False
        elif key in ("seed", "instructions", "warmup"):
            if str(have) != want and not (
                    have is None and want.lower() in ("none", "")):
                return False
        elif str(have) != want:
            return False
    return True


def select(records: Sequence[dict], text: str) -> Selection:
    """Resolve one selector against a record list (newest first)."""
    filters, label = parse_selector(text, records)
    matched = tuple(r for r in records
                    if _matches(filters, record_axes(r)))
    return Selection(text=label, filters=filters, records=matched)


# ---------------------------------------------------------------- pairing

def _pair_identity(record: dict, stripped: Sequence[str]) -> str:
    """Hash of the spec payload minus the selector-varied axes."""
    payload = copy.deepcopy(record.get("spec") or {})
    clock = payload.get("clock") or {}
    config = payload.get("config") or {}
    for axis in stripped:
        if axis == "code":
            continue                      # never part of the spec payload
        elif axis == "base_mhz":
            clock.pop("base_mhz", None)
        elif axis == "gov":
            clock.pop("governor", None)
        elif axis in ("engine", "mem"):
            config.pop(axis, None)
        else:
            payload.pop(axis, None)
    return stable_hash(payload)


def _newest_per_identity(selection: Selection,
                         stripped: Sequence[str]) -> Dict[str, dict]:
    out: Dict[str, dict] = {}
    for record in selection.records:
        identity = _pair_identity(record, stripped)
        cur = out.get(identity)
        if cur is None or (record.get("created", 0) or 0) > (
                cur.get("created", 0) or 0):
            out[identity] = record
    return out


def _pair_label(axes: Dict[str, object]) -> str:
    bits = [f"{axes['kind']}/{axes['bench']}"]
    if axes.get("clock"):
        bits.append(str(axes["clock"]))
    if axes.get("gov"):
        bits.append(f"gov={axes['gov']}")
    if axes.get("mem"):
        bits.append(f"mem={axes['mem']}")
    if axes.get("engine") and axes["engine"] != "legacy":
        bits.append(f"engine={axes['engine']}")
    if axes.get("seed") is not None:
        bits.append(f"seed={axes['seed']}")
    return " ".join(bits)


# ------------------------------------------------------------ diff report

def diff_records(a: Selection, b: Selection,
                 metrics: Sequence[str] = DEFAULT_METRICS,
                 min_rel: float = 0.02) -> Dict[str, object]:
    """Pair two selections and classify every per-pair metric delta.

    Returns a JSON-safe report dict: selection summaries, per-pair
    metric verdicts (with MAD-based outlier z-scores vs the sibling
    deltas of the same metric), unpaired leftovers, and per-axis group
    summaries.  ``min_rel`` is the relative-change significance floor
    handed to :func:`repro.perf.detect.classify_delta`.
    """
    unknown = [m for m in metrics if m not in METRICS]
    if unknown:
        raise CampaignError(
            f"unknown metric(s) {', '.join(unknown)}; expected a subset "
            f"of {', '.join(METRICS)}")
    stripped = sorted(set(a.filters) | set(b.filters) | {"code"})
    a_by_id = _newest_per_identity(a, stripped)
    b_by_id = _newest_per_identity(b, stripped)

    pairs: List[Dict[str, object]] = []
    for identity in a_by_id:
        if identity not in b_by_id:
            continue
        rec_a, rec_b = a_by_id[identity], b_by_id[identity]
        stats_a = SimStats.from_dict(
            (rec_a.get("result") or {}).get("stats", {}))
        stats_b = SimStats.from_dict(
            (rec_b.get("result") or {}).get("stats", {}))
        axes = record_axes(rec_a)
        row_metrics: Dict[str, Dict[str, object]] = {}
        for name in metrics:
            metric = METRICS[name]
            va = metric.fn(rec_a, stats_a)
            vb = metric.fn(rec_b, stats_b)
            if va is None or vb is None:
                continue              # unrecorded on one side: no verdict
            verdict = classify_delta(
                va, vb, metric=name,
                higher_is_better=metric.higher_is_better, min_rel=min_rel)
            row_metrics[name] = {"a": va, "b": vb,
                                 "rel": verdict.rel_delta,
                                 "verdict": verdict.verdict}
        pairs.append({
            "label": _pair_label(axes),
            "axes": axes,
            "a_key": rec_a.get("key", ""),
            "b_key": rec_b.get("key", ""),
            "metrics": row_metrics,
            "a_stats": (rec_a.get("result") or {}).get("stats", {}),
            "b_stats": (rec_b.get("result") or {}).get("stats", {}),
        })

    # Outlier scoring: a pair whose delta deviates from the fleet-wide
    # shift of the same metric is flagged even when the shift itself is
    # uniform (e.g. every run slower at a lower clock).
    for name in metrics:
        rels = [p["metrics"][name]["rel"] for p in pairs
                if name in p["metrics"]]
        for pair in pairs:
            cell = pair["metrics"].get(name)
            if cell is not None:
                z = robust_z(cell["rel"], rels)
                cell["z"] = z
                cell["outlier"] = bool(z is not None and abs(z) > 3.5)

    pairs.sort(key=lambda p: p["label"])
    unpaired_a = sorted(_pair_label(record_axes(a_by_id[i]))
                        for i in set(a_by_id) - set(b_by_id))
    unpaired_b = sorted(_pair_label(record_axes(b_by_id[i]))
                        for i in set(b_by_id) - set(a_by_id))

    from repro.analysis.htmlreport import group_delta_rows

    groups = {axis: group_delta_rows(pairs, axis)
              for axis in GROUP_AXES
              if len({str(p["axes"].get(axis)) for p in pairs}) > 1}
    flagged = sum(
        1 for p in pairs for cell in p["metrics"].values()
        if cell["verdict"] in ("improved", "degraded"))
    return {
        "a": {"selector": a.text, "count": len(a.records),
              "codes": a.codes},
        "b": {"selector": b.text, "count": len(b.records),
              "codes": b.codes},
        "metrics": list(metrics),
        "min_rel": min_rel,
        "pairs": pairs,
        "unpaired_a": unpaired_a,
        "unpaired_b": unpaired_b,
        "groups": groups,
        "flagged": flagged,
    }


# ------------------------------------------------------- terminal render

_GLYPH = {"improved": "+", "stable": "=", "degraded": "!", "noise": "~"}


def print_report(report: Dict[str, object], limit: int = 0,
                 out=None) -> None:
    """Render the diff report as fixed-width terminal tables."""
    out = out or sys.stdout
    a, b = report["a"], report["b"]
    print(f"A: {a['selector']}  ({a['count']} record(s), "
          f"codes: {', '.join(a['codes']) or '-'})", file=out)
    print(f"B: {b['selector']}  ({b['count']} record(s), "
          f"codes: {', '.join(b['codes']) or '-'})", file=out)
    pairs = report["pairs"]
    print(f"{len(pairs)} pair(s), {report['flagged']} flagged delta(s); "
          f"{len(report['unpaired_a'])} only in A, "
          f"{len(report['unpaired_b'])} only in B", file=out)

    for axis, rows in report["groups"].items():
        print(f"\nby {axis}:", file=out)
        print(f"  {'value':24s} {'pairs':>5s} {'ipc Δmed':>9s} "
              f"{'improved':>8s} {'degraded':>8s} {'noise':>6s}", file=out)
        for row in rows:
            med = (f"{row['ipc_rel_median']:+.1%}"
                   if row.get("ipc_rel_median") is not None else "-")
            print(f"  {str(row['value']) or '-':24s} {row['pairs']:>5d} "
                  f"{med:>9s} {row['improved']:>8d} {row['degraded']:>8d} "
                  f"{row['noise']:>6d}", file=out)

    shown = pairs[:limit] if limit else pairs
    print("", file=out)
    for pair in shown:
        cells = []
        for name in report["metrics"]:
            cell = pair["metrics"].get(name)
            if cell is None:
                continue
            glyph = _GLYPH[cell["verdict"]]
            mark = "*" if cell.get("outlier") else ""
            cells.append(f"{name} {cell['rel']:+.1%}{glyph}{mark}")
        print(f"  {pair['label']:44s} " + "  ".join(cells), file=out)
    if len(pairs) > len(shown):
        print(f"  ... {len(pairs) - len(shown)} more pair(s)", file=out)
    for label in report["unpaired_a"]:
        print(f"  only in A: {label}", file=out)
    for label in report["unpaired_b"]:
        print(f"  only in B: {label}", file=out)


# -------------------------------------------------------------------- CLI

def cmd_diff(args) -> int:
    """``python -m repro.campaign diff`` entry point."""
    from repro.campaign.store import ResultStore

    store = ResultStore(args.store) if args.store else ResultStore()
    records = list(store.records())
    if not records:
        raise CampaignError(f"no readable records in {store.root}")
    sel_a = select(records, args.a)
    sel_b = select(records, args.b)
    if not sel_a.records:
        raise CampaignError(f"selector {args.a!r} matched no records")
    if not sel_b.records:
        raise CampaignError(f"selector {args.b!r} matched no records")
    metrics = tuple(m.strip() for m in args.metrics.split(",") if m.strip())
    report = diff_records(sel_a, sel_b, metrics=metrics,
                          min_rel=args.min_rel / 100.0)
    if args.json:
        json.dump({k: v for k, v in report.items()}, sys.stdout,
                  indent=2, sort_keys=True, default=str)
        print()
    else:
        print_report(report, limit=args.limit)
    if args.html:
        from repro.analysis.htmlreport import render_diff_html

        html = render_diff_html(report)
        with open(args.html, "w", encoding="utf-8") as fh:
            fh.write(html)
        print(f"wrote {args.html}", file=sys.stderr)
        if args.serve is not None:
            _serve(args.html, args.serve)
    elif args.serve is not None:
        raise CampaignError("--serve requires --html PATH")
    return 0


def _serve(path: str, port: int) -> None:     # pragma: no cover - blocking
    """Serve one HTML report file on localhost until interrupted."""
    import http.server

    blob = open(path, "rb").read()

    class Handler(http.server.BaseHTTPRequestHandler):
        def do_GET(self):
            self.send_response(200)
            self.send_header("Content-Type", "text/html; charset=utf-8")
            self.send_header("Content-Length", str(len(blob)))
            self.end_headers()
            self.wfile.write(blob)

        def log_message(self, *a):
            pass

    server = http.server.ThreadingHTTPServer(("127.0.0.1", port), Handler)
    print(f"serving {path} at http://127.0.0.1:{server.server_address[1]}/ "
          "(Ctrl-C to stop)", file=sys.stderr)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.server_close()
