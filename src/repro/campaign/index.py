"""Advisory SQLite index over the sharded result store.

The :class:`~repro.campaign.store.ResultStore` is a directory of JSON
shards; listing or filtering it used to mean reading every record file.
:class:`StoreIndex` keeps a small SQLite table of the *selector* columns
(key, kind, bench, code, engine, gov, mem, elapsed_s, created, mtime)
next to the shards, so ``ls``/``export``/``diff``/``GET /results``
resolve their filters by query and only open the record files they
actually return.

The index is a **cache, never a source of truth**:

* ``put()`` upserts the new record's row best-effort; a locked or
  damaged index never fails a write.
* :meth:`refresh` makes the index catch up with foreign writers
  (other processes, older code versions) *incrementally*: it stats the
  shard directories, re-scans only directories whose mtime changed
  since they were last indexed, and within those reads only files whose
  mtime differs from the indexed row. A clean index refreshes with
  directory stats alone — zero record reads.
* Any ``sqlite3`` error degrades the store to its full-scan fallback
  for the rest of the process; the next healthy open rebuilds lazily.
* A row whose record file has vanished is dropped at read time (the
  store tolerates deletions between listing and read).

Schema changes bump :data:`INDEX_SCHEMA`; a foreign-schema index file is
dropped and rebuilt rather than interpreted.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Tuple

try:
    import sqlite3
except ImportError:          # pragma: no cover - stdlib, but gate anyway
    sqlite3 = None  # type: ignore[assignment]

#: Bumped when the index schema changes incompatibly.
INDEX_SCHEMA = 2

#: Filterable columns exposed to queries (all TEXT unless noted).
QUERY_COLUMNS = ("key", "kind", "bench", "code", "engine", "gov", "mem",
                 "elapsed_s", "created", "mtime")

_CREATE = (
    "CREATE TABLE IF NOT EXISTS meta (k TEXT PRIMARY KEY, v TEXT)",
    "CREATE TABLE IF NOT EXISTS recs ("
    " key TEXT PRIMARY KEY, dir TEXT NOT NULL, kind TEXT, bench TEXT,"
    " code TEXT, engine TEXT, gov TEXT, mem TEXT,"
    " elapsed_s REAL, created REAL, mtime INTEGER)",
    "CREATE INDEX IF NOT EXISTS recs_kind ON recs (kind)",
    "CREATE INDEX IF NOT EXISTS recs_bench ON recs (bench)",
    "CREATE INDEX IF NOT EXISTS recs_dir ON recs (dir)",
    "CREATE TABLE IF NOT EXISTS dirs (dir TEXT PRIMARY KEY, mtime INTEGER)",
)


def _mem_label(spec: Dict[str, object]) -> str:
    """Compact MemorySpec tag of a stored spec payload ('' = default)."""
    mem = (spec.get("config") or {}).get("mem")
    if not mem:
        return ""
    try:
        from repro.mem.spec import MemorySpec

        return MemorySpec.from_dict(mem).label
    except Exception:
        return "?"


def record_row(record: Dict[str, object]) -> Dict[str, object]:
    """The indexable selector columns of one record (damage-tolerant)."""
    spec = record.get("spec") or {}
    if not isinstance(spec, dict):
        spec = {}
    clock = spec.get("clock") or {}
    governor = (clock.get("governor") or {}) if isinstance(clock, dict) \
        else {}
    return {
        "key": record.get("key", ""),
        "kind": spec.get("kind", ""),
        "bench": spec.get("bench", ""),
        "code": record.get("code", ""),
        "engine": record.get("engine")
                  or (spec.get("config") or {}).get("engine", "legacy"),
        "gov": governor.get("name") or "",
        "mem": _mem_label(spec),
        "elapsed_s": record.get("elapsed_s"),
        "created": record.get("created", 0.0),
    }


class StoreIndex:
    """SQLite selector index for one store root (connection per call).

    Connections are opened and closed inside each public method so the
    same :class:`StoreIndex` can be shared across threads (the serve
    daemon's scheduler and request handlers both touch it) and so a
    crash never leaves a handle pinning the WAL.
    """

    def __init__(self, root: Path):
        self.root = Path(root)
        self.path = self.root / "index.sqlite"
        #: Set on the first sqlite3 failure; every entry point then
        #: reports the index unusable and the store falls back to scans.
        self.disabled = sqlite3 is None

    # ------------------------------------------------------- connection

    def _connect(self) -> "sqlite3.Connection":
        con = sqlite3.connect(self.path, timeout=10.0)
        con.execute("PRAGMA busy_timeout=10000")
        try:
            con.execute("PRAGMA journal_mode=WAL")
        except sqlite3.Error:
            pass          # network fs without WAL: rollback journal is fine
        self._ensure_schema(con)
        return con

    def _ensure_schema(self, con: "sqlite3.Connection") -> None:
        row = None
        try:
            row = con.execute(
                "SELECT v FROM meta WHERE k='schema'").fetchone()
        except sqlite3.Error:
            pass
        if row is not None and row[0] == str(INDEX_SCHEMA):
            return
        if row is not None:
            # Foreign schema: drop and rebuild rather than interpret.
            con.executescript(
                "DROP TABLE IF EXISTS meta; DROP TABLE IF EXISTS recs;"
                "DROP TABLE IF EXISTS dirs;")
        for stmt in _CREATE:
            con.execute(stmt)
        con.execute("INSERT OR REPLACE INTO meta VALUES ('schema', ?)",
                    (str(INDEX_SCHEMA),))
        con.commit()

    # ------------------------------------------------------------ write

    def note_put(self, key: str, path: Path,
                 record: Dict[str, object]) -> None:
        """Upsert one just-written record (best-effort, never raises)."""
        if self.disabled:
            return
        try:
            mtime = path.stat().st_mtime_ns
            rel_dir = str(path.parent.relative_to(self.root / "objects"))
            con = self._connect()
            try:
                self._upsert(con, key, rel_dir, mtime, record)
                # Stamp the shard dir so refresh() does not re-scan it
                # just because of our own write. A concurrent foreign
                # writer racing into the same directory in the same
                # mtime tick is the one (harmless, self-healing) gap:
                # rebuild()/the next dir change catches it.
                self._stamp_dir(con, rel_dir, path.parent)
                con.commit()
            finally:
                con.close()
        except (sqlite3.Error, OSError, ValueError):
            self.disabled = True

    def note_removed(self, keys: List[str]) -> None:
        """Drop rows for deleted records (best-effort)."""
        if self.disabled or not keys:
            return
        try:
            con = self._connect()
            try:
                con.executemany("DELETE FROM recs WHERE key=?",
                                [(k,) for k in keys])
                con.commit()
            finally:
                con.close()
        except sqlite3.Error:
            self.disabled = True

    def drop(self) -> None:
        """Delete the index files entirely (store.clean does this)."""
        for suffix in ("", "-wal", "-shm"):
            try:
                os.unlink(f"{self.path}{suffix}")
            except OSError:
                pass

    def _upsert(self, con, key: str, rel_dir: str, mtime: int,
                record: Dict[str, object]) -> None:
        row = record_row(record)
        con.execute(
            "INSERT OR REPLACE INTO recs (key, dir, kind, bench, code,"
            " engine, gov, mem, elapsed_s, created, mtime)"
            " VALUES (?,?,?,?,?,?,?,?,?,?,?)",
            (key, rel_dir, row["kind"], row["bench"], row["code"],
             row["engine"], row["gov"], row["mem"], row["elapsed_s"],
             row["created"], mtime))

    def _stamp_dir(self, con, rel_dir: str, dir_path: Path) -> None:
        try:
            mtime = dir_path.stat().st_mtime_ns
        except OSError:
            return
        con.execute("INSERT OR REPLACE INTO dirs VALUES (?, ?)",
                    (rel_dir, mtime))

    # ---------------------------------------------------------- refresh

    def refresh(self, read_record, force: bool = False) -> bool:
        """Catch the index up with the shards; True if usable after.

        ``read_record`` is the store's record reader (``path -> dict or
        None``); only files in changed directories with changed mtimes
        are passed to it. ``force`` re-reads everything (rebuild).
        """
        if self.disabled:
            return False
        try:
            con = self._connect()
            try:
                if force:
                    con.execute("DELETE FROM recs")
                    con.execute("DELETE FROM dirs")
                self._refresh(con, read_record)
                con.commit()
            finally:
                con.close()
            return True
        except (sqlite3.Error, OSError):
            self.disabled = True
            return False

    def _shard_dirs(self) -> Iterator[Tuple[str, Path, int]]:
        """Every directory that directly holds record files.

        Yields ``(relative dir, path, mtime_ns)`` for each first-level
        shard dir (legacy ``ab/`` layout files live there) and each
        second-level ``ab/cd/`` dir.
        """
        objects = self.root / "objects"
        if not objects.is_dir():
            return
        with os.scandir(objects) as level1:
            entries1 = [e for e in level1 if e.is_dir()]
        for e1 in entries1:
            yield e1.name, Path(e1.path), e1.stat().st_mtime_ns
            with os.scandir(e1.path) as level2:
                for e2 in level2:
                    if e2.is_dir():
                        yield (f"{e1.name}/{e2.name}", Path(e2.path),
                               e2.stat().st_mtime_ns)

    def _refresh(self, con, read_record) -> None:
        stored = dict(con.execute("SELECT dir, mtime FROM dirs"))
        seen = {}
        for rel_dir, dir_path, mtime in self._shard_dirs():
            seen[rel_dir] = mtime
            if stored.get(rel_dir) == mtime:
                continue
            self._rescan_dir(con, rel_dir, dir_path, read_record)
            # Re-stat *after* the scan: a writer landing mid-scan moves
            # the dir mtime past what we record, forcing a re-scan next
            # refresh instead of hiding the new record.
            try:
                seen[rel_dir] = dir_path.stat().st_mtime_ns
            except OSError:
                seen.pop(rel_dir, None)
                continue
            con.execute("INSERT OR REPLACE INTO dirs VALUES (?, ?)",
                        (rel_dir, seen[rel_dir]))
        for rel_dir in set(stored) - set(seen):
            con.execute("DELETE FROM recs WHERE dir=?", (rel_dir,))
            con.execute("DELETE FROM dirs WHERE dir=?", (rel_dir,))

    def _rescan_dir(self, con, rel_dir: str, dir_path: Path,
                    read_record) -> None:
        files: Dict[str, int] = {}
        with os.scandir(dir_path) as entries:
            for entry in entries:
                if entry.name.endswith(".json") and entry.is_file():
                    files[entry.name[:-5]] = entry.stat().st_mtime_ns
        indexed = dict(con.execute(
            "SELECT key, mtime FROM recs WHERE dir=?", (rel_dir,)))
        for key in set(indexed) - set(files):
            con.execute("DELETE FROM recs WHERE key=? AND dir=?",
                        (key, rel_dir))
        for key, mtime in files.items():
            if indexed.get(key) == mtime:
                continue
            record = read_record(dir_path / f"{key}.json")
            if record is None:
                continue          # unreadable/torn: stays a store miss
            self._upsert(con, key, rel_dir, mtime, record)

    # ------------------------------------------------------------ query

    def query(self,
              filters: Optional[Dict[str, object]] = None,
              limit: int = 0,
              offset: int = 0) -> List[Dict[str, object]]:
        """Selector rows (newest first) matching equality ``filters``.

        Raises ``sqlite3.Error`` family wrapped as RuntimeError if the
        index is unusable; callers check :meth:`usable` first (the
        store does) or catch and fall back.
        """
        clauses, params = [], []
        for name, value in (filters or {}).items():
            if name not in QUERY_COLUMNS:
                raise ValueError(f"unknown index column {name!r}; "
                                 f"expected one of {QUERY_COLUMNS}")
            if value is None:
                continue
            clauses.append(f"{name}=?")
            params.append(value)
        sql = ("SELECT key, kind, bench, code, engine, gov, mem,"
               " elapsed_s, created, mtime, dir FROM recs")
        if clauses:
            sql += " WHERE " + " AND ".join(clauses)
        sql += " ORDER BY mtime DESC, key"
        if limit:
            sql += f" LIMIT {int(limit)} OFFSET {int(offset)}"
        con = self._connect()
        try:
            cols = ("key", "kind", "bench", "code", "engine", "gov",
                    "mem", "elapsed_s", "created", "mtime", "dir")
            return [dict(zip(cols, row))
                    for row in con.execute(sql, params)]
        finally:
            con.close()

    def count(self) -> int:
        con = self._connect()
        try:
            return con.execute("SELECT COUNT(*) FROM recs").fetchone()[0]
        finally:
            con.close()
