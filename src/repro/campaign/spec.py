"""Declarative run specifications and sweeps.

A :class:`RunSpec` names one simulation completely: core kind, benchmark,
clock plan, config overrides, seed, instruction budgets and memory scale.
Specs are frozen, hashable and normalized (``None`` configs are resolved
to the defaults the runners would substitute), so two ways of writing the
same run produce the same spec — and the same :meth:`RunSpec.cache_key`.
It is the campaign projection of the public
:class:`~repro.session.MachineSpec` (which delegates its validation,
normalization and content addressing here), and kinds resolve through
the pluggable registry in :mod:`repro.core.registry`.

The cache key is a content hash over the full spec payload *plus a code
fingerprint* of the installed ``repro`` sources, so results memoized by
the :class:`~repro.campaign.store.ResultStore` are invalidated whenever
the simulator itself changes.

A :class:`Sweep` expands cross-products of the axes into a deduplicated
job list (e.g. the baseline leg of a flywheel-config sweep collapses to a
single job).
"""

from __future__ import annotations

import hashlib
import itertools
from dataclasses import asdict, dataclass
from functools import lru_cache
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Tuple

from repro.core.config import ClockPlan, CoreConfig, FlywheelConfig, stable_hash
from repro.core.registry import KindInfo, get_kind, kind_names
from repro.core.sim import (
    DEFAULT_INSTRUCTIONS,
    DEFAULT_WARMUP,
    KIND_BASELINE,
    KIND_FLYWHEEL,
    SimResult,
    default_config,
)
from repro.errors import CampaignError, ConfigError
from repro.frontend.bpred import BPredConfig
from repro.mem.hierarchy import MemoryConfig
from repro.mem.spec import MemorySpec
from repro.workloads.profiles import get_profile

#: Default sweep axis: the paper's headline comparison pair. The
#: pipelined-wakeup machine is opt-in (it only appears in the Fig. 2
#: loop study), so default sweeps don't silently grow a third leg.
DEFAULT_SWEEP_KINDS = (KIND_BASELINE, KIND_FLYWHEEL)


def _kind_info(kind: str) -> KindInfo:
    """Registry lookup re-raised as the campaign layer's error type."""
    try:
        return get_kind(kind)
    except ConfigError:
        raise CampaignError(
            f"unknown run kind {kind!r}; expected one of "
            f"{kind_names()}") from None


#: Subpackages whose code determines simulation output (and therefore
#: stored results). Presentation layers — analysis, experiments tables,
#: power reports, the campaign machinery itself — are derived from the
#: stored stats at read time, so editing them must NOT invalidate the
#: store.
SIM_PACKAGES = ("core", "clocks", "dvfs", "ec", "execute", "frontend",
                "isa", "issue", "mem", "obs", "rename", "rob", "workloads")


@lru_cache(maxsize=1)
def code_fingerprint() -> str:
    """Hash of the simulation-determining ``repro`` sources.

    Folded into every cache key so stale on-disk results cannot survive
    a change to the simulator (the ISSUE's "code version" axis), while
    CLI/docs/report-layer edits leave the store valid.
    """
    import repro

    root = Path(repro.__file__).parent
    digest = hashlib.sha256()
    for package in SIM_PACKAGES:
        if not (root / package).is_dir():
            # A silently skipped package would quietly drop out of the
            # store-invalidation contract after a rename.
            raise CampaignError(
                f"code_fingerprint: simulation package {package!r} not "
                f"found under {root}; update SIM_PACKAGES")
        for path in sorted((root / package).rglob("*.py")):
            digest.update(str(path.relative_to(root)).encode("utf-8"))
            digest.update(path.read_bytes())
    return digest.hexdigest()[:12]


@dataclass(frozen=True)
class RunSpec:
    """One fully specified simulation job."""

    kind: str
    bench: str
    clock: Optional[ClockPlan] = None
    config: Optional[CoreConfig] = None
    fly: Optional[FlywheelConfig] = None
    seed: Optional[int] = None
    instructions: int = DEFAULT_INSTRUCTIONS
    warmup: int = DEFAULT_WARMUP
    mem_scale: float = 1.0

    def __post_init__(self) -> None:
        info = _kind_info(self.kind)
        get_profile(self.bench)  # raises WorkloadError for unknown names
        if not info.dual_clock and self.fly is not None:
            raise CampaignError(
                f"{self.kind} spec for {self.bench!r} cannot carry a "
                "FlywheelConfig")
        if self.instructions < 1 or self.warmup < 0:
            raise CampaignError("instruction budgets must be positive")
        # Equal specs must serialize identically: JSON renders 2 and 2.0
        # differently, so an int-valued mem_scale would split cache keys.
        object.__setattr__(self, "mem_scale", float(self.mem_scale))
        # Normalize: a spec written with None axes is the *same run* as one
        # written with the defaults spelled out, so resolve them here and
        # let equality / hashing / dedup see through the difference.
        clock = self.clock or ClockPlan()
        if not info.dual_clock:
            # The synchronous kinds only see base_mhz (and the governor);
            # dropping the speedup axes collapses their legs of clock
            # sweeps.
            clock = ClockPlan(base_mhz=clock.base_mhz,
                              governor=clock.governor)
        object.__setattr__(self, "clock", clock)
        config = self.config or info.default_config()
        if info.normalize_config is not None:
            # e.g. pipelined_wakeup forces wakeup_extra_delay >= 1; the
            # spec's payload/cache key/variant() must describe the
            # machine actually simulated.
            config = info.normalize_config(config)
        object.__setattr__(self, "config", config)
        if info.dual_clock:
            object.__setattr__(self, "fly", self.fly or FlywheelConfig())

    # ----------------------------------------------------------- identity

    def payload(self) -> Dict[str, object]:
        """JSON-safe dict of everything that defines this run."""
        config = asdict(self.config)
        if config.get("mem") is None:
            # The default (derive-from-``memory``) spec serializes the
            # way pre-MemorySpec payloads did, keeping every historical
            # content address — and the PR 4 pinned hashes — intact.
            del config["mem"]
        if config.get("trace") is None:
            # Same contract for the flight recorder: an untraced run's
            # payload is byte-identical to pre-TraceSpec payloads.
            del config["trace"]
        if config.get("engine", "legacy") == "legacy":
            # And for the engine backend: a legacy-engine run's payload
            # is byte-identical to pre-turbo payloads, so every pinned
            # content address — and every warm store — survives the
            # engine axis. (Turbo runs hash distinctly on purpose: the
            # backend is supposed to be bit-identical, but a store
            # entry must record which engine actually produced it.)
            config.pop("engine", None)
        return {
            "kind": self.kind,
            "bench": self.bench,
            "clock": asdict(self.clock),
            "config": config,
            "fly": asdict(self.fly) if self.fly is not None else None,
            "seed": self.seed,
            "instructions": self.instructions,
            "warmup": self.warmup,
            "mem_scale": self.mem_scale,
        }

    def cache_key(self) -> str:
        """Content address: spec payload + simulator code fingerprint."""
        payload = self.payload()
        payload["code"] = code_fingerprint()
        return stable_hash(payload, length=40)

    def variant(self) -> Dict[str, object]:
        """Non-default config/fly fields — the axes a sweep varied.

        Keys are field names (``fly.``-prefixed for FlywheelConfig),
        values the overridden settings; empty for an all-defaults run.
        Used to make config-sweep jobs distinguishable in labels,
        ``ls`` and CSV exports, where the clock/seed axes alone are
        identical across e.g. the sensitivity or ablation sweeps.
        """
        out: Dict[str, object] = {}
        base = asdict(default_config(self.kind))
        for name, value in asdict(self.config).items():
            if name in ("mem", "trace", "engine"):
                continue  # rendered compactly by ``label`` (mem=/trace=/engine=)
            if value != base[name]:
                out[name] = value
        if self.fly is not None:
            fly_base = asdict(FlywheelConfig())
            for name, value in asdict(self.fly).items():
                if value != fly_base[name]:
                    out[f"fly.{name}"] = value
        return out

    @property
    def label(self) -> str:
        """Short human-readable job name for progress lines and ``ls``."""
        bits = [f"{self.kind}/{self.bench}"]
        if self.clock.fe_speedup or self.clock.be_speedup:
            bits.append(f"fe+{self.clock.fe_speedup:.0%}"
                        f",be+{self.clock.be_speedup:.0%}")
        if self.clock.base_mhz != ClockPlan().base_mhz:
            bits.append(f"{self.clock.base_mhz:.0f}MHz")
        if self.clock.governor is not None:
            gov = self.clock.governor
            bits.append(f"gov={gov.name}@{gov.interval}")
        if self.config.mem is not None:
            bits.append(f"mem={self.config.mem.label}")
        if self.config.trace is not None:
            bits.append(self.config.trace.label)
        if self.config.engine != "legacy":
            bits.append(f"engine={self.config.engine}")
        if self.seed is not None:
            bits.append(f"seed={self.seed}")
        if self.mem_scale != 1.0:
            bits.append(f"mem×{self.mem_scale:g}")
        variant = ",".join(f"{k}={v}" for k, v in self.variant().items())
        if variant:
            bits.append(variant if len(variant) <= 48
                        else variant[:45] + "...")
        return " ".join(bits)

    # ---------------------------------------------------------- execution

    def execute(self) -> SimResult:
        """Run the simulation this spec describes (in this process)."""
        return _kind_info(self.kind).runner(
            self.bench, config=self.config, fly=self.fly,
            clock=self.clock, max_instructions=self.instructions,
            warmup=self.warmup, seed=self.seed, mem_scale=self.mem_scale)

    # ----------------------------------------------- (de)serialization

    def to_dict(self) -> Dict[str, object]:
        return self.payload()

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "RunSpec":
        config = data.get("config")
        if config is not None:
            config = dict(config)
            config["bpred"] = BPredConfig(**config["bpred"])
            config["memory"] = MemoryConfig(**config["memory"])
            config = CoreConfig(**config)
        fly = data.get("fly")
        if fly is not None:
            fly = FlywheelConfig(**fly)
        return cls(
            kind=data["kind"],
            bench=data["bench"],
            clock=ClockPlan(**data["clock"]) if data.get("clock") else None,
            config=config,
            fly=fly,
            seed=data.get("seed"),
            instructions=data.get("instructions", DEFAULT_INSTRUCTIONS),
            warmup=data.get("warmup", DEFAULT_WARMUP),
            mem_scale=data.get("mem_scale", 1.0),
        )


def dedup(specs: Iterable[RunSpec]) -> List[RunSpec]:
    """Drop duplicate specs, keeping first-seen order.

    Specs are normalized, so duplicates are exact dataclass equals; no
    hashing of payloads is needed here.
    """
    seen = set()
    out: List[RunSpec] = []
    for spec in specs:
        if spec not in seen:
            seen.add(spec)
            out.append(spec)
    return out


@dataclass(frozen=True)
class Sweep:
    """Cross-product of run axes, expanded into a deduplicated job list.

    Every axis is a sequence; ``expand()`` yields the full product of
    kinds × benchmarks × clocks × configs × flys × seeds × mem_scales.
    Axes that do not apply to a kind are normalized away (a baseline job
    ignores the ``flys`` axis), which is where the dedup earns its keep.

    Budgets default to the library's ``run_*`` defaults (60k measured
    instructions); the experiments CLI and presets measure 30k. Budgets
    are part of the cache key, so pass ``instructions=``/``warmup=``
    explicitly when a sweep should share store entries with a
    ``python -m repro.campaign run``-warmed cache.
    """

    kinds: Tuple[str, ...] = DEFAULT_SWEEP_KINDS
    benchmarks: Tuple[str, ...] = ()
    clocks: Tuple[Optional[ClockPlan], ...] = (None,)
    configs: Tuple[Optional[CoreConfig], ...] = (None,)
    flys: Tuple[Optional[FlywheelConfig], ...] = (None,)
    seeds: Tuple[Optional[int], ...] = (None,)
    mem_scales: Tuple[float, ...] = (1.0,)
    #: Memory-system axis: each entry overrides ``config.mem`` on top of
    #: whatever the ``configs`` axis supplies (``None`` = leave as-is),
    #: so memory specs sweep first-class without hand-building configs.
    mems: Tuple[Optional[MemorySpec], ...] = (None,)
    instructions: int = DEFAULT_INSTRUCTIONS
    warmup: int = DEFAULT_WARMUP

    def expand(self) -> List[RunSpec]:
        specs = []
        for kind, bench, clock, config, fly, seed, mem_scale, mem in (
                itertools.product(self.kinds, self.benchmarks, self.clocks,
                                  self.configs, self.flys, self.seeds,
                                  self.mem_scales, self.mems)):
            if mem is not None:
                base = config or _kind_info(kind).default_config()
                config = base.with_variant(mem=mem)
            specs.append(RunSpec(
                kind=kind, bench=bench, clock=clock, config=config,
                fly=fly if _kind_info(kind).dual_clock else None,
                seed=seed, instructions=self.instructions,
                warmup=self.warmup, mem_scale=mem_scale))
        return dedup(specs)
