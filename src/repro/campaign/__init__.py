"""Parallel campaign engine: declarative sweeps, multiprocess fan-out and
a persistent, content-addressed result store.

Pieces:

* :class:`RunSpec` / :class:`Sweep` (``spec.py``) — declare simulations;
  a sweep expands benchmarks × clock plans × config overrides × seeds
  into a deduplicated job list, each job content-addressed by
  :meth:`RunSpec.cache_key` (config + workload + budgets + code version).
* :func:`run_campaign` (``executor.py``) — execute a job list with
  ``jobs`` worker processes, per-job timeout and progress reporting.
* :class:`ResultStore` (``store.py``) — sharded on-disk JSON memo table
  keyed by cache key with an advisory SQLite selector index
  (``index.py``), so repeated and overlapping campaigns are
  near-instant and filtered listings never scan every shard.
* :class:`CampaignRun` (``journal.py``) + :class:`CampaignScheduler`
  (``scheduler.py``) — the resumable serving-stack executor: an
  append-only per-campaign journal, per-job timeout, bounded retry with
  backoff, quarantine for poisoned specs, and ``resume`` after a crash
  from the journal + store alone.
* ``python -m repro.campaign`` (``__main__.py``) — ``run`` / ``ls`` /
  ``resume`` / ``migrate`` / ``clean`` / ``export --csv`` over the
  store; ``python -m repro.serve`` puts the same machinery behind
  HTTP/SSE.

Example::

    from repro.campaign import ResultStore, Sweep, run_campaign
    from repro import ClockPlan

    sweep = Sweep(benchmarks=("gcc", "gzip"),
                  clocks=(ClockPlan(fe_speedup=0.5, be_speedup=0.5),),
                  seeds=(1, 2, 3))
    report = run_campaign(sweep.expand(), store=ResultStore(), jobs=4)
    print(report.summary())

``presets.py`` (imported lazily to avoid a cycle with the experiment
modules) enumerates the job lists behind the paper's figures.
"""

from repro.campaign.executor import (
    CampaignReport,
    print_progress,
    run_campaign,
)
from repro.campaign.journal import CampaignRun, list_campaigns
from repro.campaign.scheduler import (
    CampaignScheduler,
    ScheduleReport,
    resume_campaign,
    submit_campaign,
)
from repro.campaign.spec import RunSpec, Sweep, code_fingerprint, dedup
from repro.campaign.store import ResultStore, default_store_root

__all__ = [
    "CampaignReport",
    "CampaignRun",
    "CampaignScheduler",
    "ResultStore",
    "RunSpec",
    "ScheduleReport",
    "Sweep",
    "code_fingerprint",
    "dedup",
    "default_store_root",
    "list_campaigns",
    "print_progress",
    "resume_campaign",
    "run_campaign",
    "submit_campaign",
]
