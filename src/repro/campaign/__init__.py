"""Parallel campaign engine: declarative sweeps, multiprocess fan-out and
a persistent, content-addressed result store.

Pieces:

* :class:`RunSpec` / :class:`Sweep` (``spec.py``) — declare simulations;
  a sweep expands benchmarks × clock plans × config overrides × seeds
  into a deduplicated job list, each job content-addressed by
  :meth:`RunSpec.cache_key` (config + workload + budgets + code version).
* :func:`run_campaign` (``executor.py``) — execute a job list with
  ``jobs`` worker processes, per-job timeout and progress reporting.
* :class:`ResultStore` (``store.py``) — on-disk JSON memo table keyed by
  cache key, so repeated and overlapping campaigns are near-instant.
* ``python -m repro.campaign`` (``__main__.py``) — ``run`` / ``ls`` /
  ``clean`` / ``export --csv`` over the store.

Example::

    from repro.campaign import ResultStore, Sweep, run_campaign
    from repro import ClockPlan

    sweep = Sweep(benchmarks=("gcc", "gzip"),
                  clocks=(ClockPlan(fe_speedup=0.5, be_speedup=0.5),),
                  seeds=(1, 2, 3))
    report = run_campaign(sweep.expand(), store=ResultStore(), jobs=4)
    print(report.summary())

``presets.py`` (imported lazily to avoid a cycle with the experiment
modules) enumerates the job lists behind the paper's figures.
"""

from repro.campaign.executor import (
    CampaignReport,
    print_progress,
    run_campaign,
)
from repro.campaign.spec import RunSpec, Sweep, code_fingerprint, dedup
from repro.campaign.store import ResultStore, default_store_root

__all__ = [
    "CampaignReport",
    "ResultStore",
    "RunSpec",
    "Sweep",
    "code_fingerprint",
    "dedup",
    "default_store_root",
    "print_progress",
    "run_campaign",
]
