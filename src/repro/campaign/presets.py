"""Campaign presets: the job lists behind the paper's experiments.

Each enumerator mirrors the runs an experiment module's ``run()`` makes
through :class:`ExperimentContext`, built from the *same* sweep constants
the experiment itself uses (``fig12_performance.SWEEP``,
``ablations.ABLATIONS``, ...), so the two cannot drift silently: a spec
missed here is still simulated on demand by the context (correct, just
serial), and the campaign tests assert the warmed context executes zero
extra runs.

This module imports the experiment modules, which import
``repro.campaign.spec`` — keep it out of ``repro.campaign.__init__`` to
avoid a partially-initialized package cycle.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence

from repro.campaign.spec import RunSpec, dedup
from repro.core.config import ClockPlan, CoreConfig
from repro.core.sim import (
    KIND_BASELINE,
    KIND_FLYWHEEL,
    KIND_PIPELINED_WAKEUP,
)
from repro.errors import CampaignError
from repro.experiments.common import DEFAULT_INSTRUCTIONS, DEFAULT_WARMUP
from repro.experiments.__main__ import EXPERIMENTS
from repro.workloads.profiles import SPEC_NAMES

#: Derived from the experiments CLI's registry — the single source of
#: truth — so a newly registered experiment is automatically accepted
#: here. One without an ``_ENUMERATORS`` entry (below) simply has no
#: presets: it still runs, simulating on demand through the context.
ALL_EXPERIMENTS = tuple(EXPERIMENTS)


def experiment_specs(names: Iterable[str],
                     benchmarks: Sequence[str] = SPEC_NAMES,
                     instructions: int = DEFAULT_INSTRUCTIONS,
                     warmup: int = DEFAULT_WARMUP,
                     seed: Optional[int] = None) -> List[RunSpec]:
    """Deduplicated union of the specs the named experiments will run."""
    specs: List[RunSpec] = []
    for name in names:
        if name not in ALL_EXPERIMENTS:
            raise CampaignError(
                f"unknown experiment {name!r}; known: "
                f"{', '.join(ALL_EXPERIMENTS)}")
        enumerator = _ENUMERATORS.get(name)
        if enumerator is None:
            continue  # analytical experiment, no simulations
        for bench in benchmarks:
            specs.extend(enumerator(bench, instructions, warmup, seed))
    return dedup(specs)


def _base(bench, instructions, warmup, seed, clock=None, config=None,
          **kw) -> RunSpec:
    return RunSpec(kind=KIND_BASELINE, bench=bench, clock=clock,
                   config=config, seed=seed, instructions=instructions,
                   warmup=warmup, **kw)


def _fly(bench, instructions, warmup, seed, clock=None, fly=None,
         **kw) -> RunSpec:
    return RunSpec(kind=KIND_FLYWHEEL, bench=bench, clock=clock, fly=fly,
                   seed=seed, instructions=instructions, warmup=warmup, **kw)


def _fig2(bench, n, w, seed):
    return [
        _base(bench, n, w, seed),
        _base(bench, n, w, seed, config=CoreConfig(extra_frontend_stages=1)),
        RunSpec(kind=KIND_PIPELINED_WAKEUP, bench=bench, seed=seed,
                instructions=n, warmup=w),
    ]


def _fig11(bench, n, w, seed):
    from repro.experiments.fig11_same_clock import _EQUAL
    from repro.core.config import FlywheelConfig

    return [
        _base(bench, n, w, seed),
        _fly(bench, n, w, seed, clock=_EQUAL,
             fly=FlywheelConfig(ec_enabled=False)),
        _fly(bench, n, w, seed, clock=_EQUAL),
    ]


def _fig12(bench, n, w, seed):
    from repro.experiments.fig12_performance import SWEEP

    specs = [_base(bench, n, w, seed)]
    for _label, clock in SWEEP:
        specs.append(_fly(bench, n, w, seed, clock=clock))
    return specs


def _fig15(bench, n, w, seed):
    from repro.experiments.fig15_technology import NODES
    from repro.timing.frequency import module_frequencies_mhz

    specs = []
    for _tech, node in NODES:
        base_mhz = module_frequencies_mhz(node)["iw_single_cycle"]
        specs.append(_base(bench, n, w, seed,
                           clock=ClockPlan(base_mhz=base_mhz)))
        specs.append(_fly(bench, n, w, seed,
                          clock=ClockPlan(base_mhz=base_mhz,
                                          fe_speedup=1.0, be_speedup=0.5)))
    return specs


def _residency(bench, n, w, seed):
    from repro.experiments.residency import _EQUAL

    return [_fly(bench, n, w, seed, clock=_EQUAL)]


def _ablations(bench, n, w, seed):
    from repro.experiments.ablations import ABLATIONS, _CLOCK

    specs = [_base(bench, n, w, seed)]
    for _label, fly in ABLATIONS:
        specs.append(_fly(bench, n, w, seed, clock=_CLOCK, fly=fly))
    return specs


def _sensitivity(bench, n, w, seed):
    from repro.experiments.sensitivity import IW_POINTS

    return [_base(bench, n, w, seed,
                  config=CoreConfig(iw_entries=entries, issue_width=width))
            for entries, width in IW_POINTS]


def _dvfs(bench, n, w, seed):
    from repro.experiments.dvfs_sweep import sweep_points

    return [_fly(bench, n, w, seed, clock=clock)
            for _label, clock in sweep_points()]


def _mem(bench, n, w, seed):
    # The memory sweep measures its own memory-bound workloads, not the
    # CLI's benchmark subset; enumerate the full fixed grid (dedup
    # collapses the per-bench repeats).
    from repro.experiments.mem_sweep import sweep_specs

    return [spec.run_spec() for spec in sweep_specs(n, w, seed)]


_ENUMERATORS = {
    "fig2": _fig2,
    "fig11": _fig11,
    "fig12": _fig12,
    "fig13": _fig12,       # figs 13/14 evaluate power over fig 12's runs
    "fig14": _fig12,
    "fig15": _fig15,
    "residency": _residency,
    "ablations": _ablations,
    "sensitivity": _sensitivity,
    "dvfs": _dvfs,
    "mem": _mem,
}

#: Experiments that run simulations (the rest are analytical).
SIM_EXPERIMENTS = tuple(n for n in ALL_EXPERIMENTS if n in _ENUMERATORS)
