"""CLI for the campaign engine: run, inspect and manage the result store.

Usage::

    python -m repro.campaign run --experiments all --jobs 4
    python -m repro.campaign run --experiments fig12,fig13 --seed 7
    python -m repro.campaign ls [--limit 20] [--kind K] [--bench B] [--json]
    python -m repro.campaign resume [<campaign-id>]
    python -m repro.campaign migrate
    python -m repro.campaign diff latest prev [--html report.html]
    python -m repro.campaign diff base_mhz=400 base_mhz=600 --serve 8000
    python -m repro.campaign export --csv results.csv
    python -m repro.campaign export --json results.json
    python -m repro.campaign clean [--stale]

``run`` expands the named experiments into a deduplicated job list,
executes the misses in parallel, memoizes everything in the store, and
then prints the experiments' tables from the warmed cache. A repeated
``run`` resolves entirely from the store (the summary line reports the
hit/miss counters). The store lives at ``~/.cache/repro-campaign`` by
default (``REPRO_CAMPAIGN_DIR`` or ``--store`` override it).
"""

from __future__ import annotations

import argparse
import csv
import sys
import time

from repro.campaign.diff import DEFAULT_METRICS as DEFAULT_DIFF_METRICS
from repro.campaign.diff import cmd_diff
from repro.campaign.executor import print_progress
from repro.campaign.spec import RunSpec
from repro.campaign.store import ResultStore, default_store_root
from repro.core.stats import SimStats
from repro.errors import ReproError


def _spec_variant(spec_payload) -> str:
    """`k=v` summary of a stored spec's non-default config axes, or ''.

    Best-effort: records from other code versions may not reconstruct.
    """
    try:
        variant = RunSpec.from_dict(spec_payload).variant()
    except Exception:
        return ""
    return ";".join(f"{k}={v}" for k, v in variant.items())


def _spec_mem_label(spec_payload) -> str:
    """Compact MemorySpec tag of a stored spec, or '' (default memory)."""
    from repro.mem.spec import MemorySpec

    mem = (spec_payload.get("config") or {}).get("mem")
    if not mem:
        return ""
    try:
        return MemorySpec.from_dict(mem).label
    except Exception:
        return "?"


def _cache_rate(stats_payload, level: str):
    """Demand hit rate of one level from a serialized stats dict, or ''."""
    counters = (stats_payload.get("cache_stats") or {}).get(level)
    if not counters:
        return ""
    accesses = counters.get("accesses", 0)
    return round(counters.get("hits", 0) / accesses, 6) if accesses else ""


def _add_store_flag(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--store", default=None, metavar="DIR",
                        help=f"store directory (default: "
                             f"{default_store_root()})")


def _store(args) -> ResultStore:
    return ResultStore(args.store) if args.store else ResultStore()


def _cmd_run(args) -> int:
    from repro.campaign.presets import experiment_specs
    from repro.experiments.__main__ import (
        ALL_ORDER,
        build_context,
        print_experiments,
        warm_experiments,
    )

    # Unknown names raise CampaignError from experiment_specs (inside
    # warm_experiments too) and are reported by main()'s handler.
    names = (list(ALL_ORDER) if args.experiments == "all"
             else [n.strip() for n in args.experiments.split(",") if n.strip()])
    args.store = args.store or str(default_store_root())
    ctx = build_context(args)
    if args.dry_run:
        specs = experiment_specs(names, benchmarks=ctx.benchmarks,
                                 instructions=ctx.instructions,
                                 warmup=ctx.warmup, seed=ctx.seed)
        hits = 0
        for spec in specs:
            key = spec.cache_key()
            hit = key in ctx.store
            hits += hit
            print(f"{key[:12]}  {'hit ' if hit else 'miss'}  {spec.label}")
        print(f"{len(specs)} jobs: {hits} cached, {len(specs) - hits} to "
              f"simulate (store: {ctx.store.root})", file=sys.stderr)
        return 0

    report = warm_experiments(ctx, names, jobs=args.jobs,
                              timeout=args.timeout,
                              progress=None if args.quiet else print_progress)
    print(f"campaign: {report.summary()} "
          f"(store: {ctx.store.hits} hits / {ctx.store.misses} misses)",
          file=sys.stderr)

    if not args.no_tables:
        print_experiments(ctx, names)
        if ctx.executed:
            print(f"note: experiments ran {ctx.executed} simulation(s) the "
                  "campaign presets missed", file=sys.stderr)
    return 0


def _ls_summary(record) -> dict:
    """Flat, JSON-safe summary of one store record (for ``ls --json``)."""
    spec = record.get("spec", {})
    stats = SimStats.from_dict(record["result"].get("stats", {}))
    clock = spec.get("clock") or {}
    governor = clock.get("governor") or {}
    return {
        "key": record.get("key", ""),
        "created": record.get("created", 0),
        "code": record.get("code", ""),
        # Top-level store metadata since the perf-history PR; derived
        # from the spec payload for records written before it.
        "engine": record.get("engine")
                  or (spec.get("config") or {}).get("engine", "legacy"),
        "kind": spec.get("kind", ""),
        "bench": spec.get("bench", ""),
        "seed": spec.get("seed"),
        "instructions": spec.get("instructions"),
        "warmup": spec.get("warmup"),
        "mem_scale": spec.get("mem_scale"),
        "base_mhz": clock.get("base_mhz"),
        "fe_speedup": clock.get("fe_speedup"),
        "be_speedup": clock.get("be_speedup"),
        "governor": governor.get("name"),
        "mem": _spec_mem_label(spec),
        "variant": _spec_variant(spec),
        "committed": stats.committed,
        "cycles": stats.total_be_cycles,
        "ipc": stats.ipc,
        "sim_time_ps": stats.sim_time_ps,
        "dvfs_retunes": stats.dvfs_retunes,
        "elapsed_s": record.get("elapsed_s"),
    }


def _ls_line(summary: dict) -> str:
    """Human-readable listing line, rendered from an ``_ls_summary``."""
    if summary.get("damaged"):
        return f"{summary['key'][:12]}  <damaged record>"
    created = time.strftime("%Y-%m-%d %H:%M",
                            time.localtime(summary["created"]))
    gov = summary["governor"]
    mem = summary.get("mem")
    variant = summary["variant"]
    elapsed = summary.get("elapsed_s")
    # One format path for both cases: render value+unit first, then pad
    # to a fixed column — the old per-branch f-strings drifted apart
    # (None vs >=1000s rows padded to different widths).
    elapsed_txt = f"{elapsed:.2f}s" if elapsed is not None else "-"
    return (f"{summary['key'][:12]}  {created}  "
            f"code={summary['code']}  n={summary['instructions']}  "
            f"ipc={summary['ipc']:5.2f}  "
            f"elapsed={elapsed_txt:>8}  "
            + f"{summary['kind']}/{summary['bench']}"
            + (f"  gov={gov}" if gov else "")
            + (f"  mem={mem}" if mem else "")
            + (f"  [{variant}]" if variant else ""))


def _cmd_ls(args) -> int:
    import json

    store = _store(args)
    shown = 0
    summaries = []
    # One parse path for both output modes: damaged records stay visible
    # (and the counts honest) in JSON too. With --kind/--bench the
    # selector index picks the matching shards: only those records are
    # read, however large the store is.
    for record in store.records(kind=args.kind, bench=args.bench,
                                limit=args.limit):
        try:
            summary = _ls_summary(record)
        except (KeyError, TypeError, ValueError, AttributeError):
            summary = {"key": record.get("key", ""), "damaged": True}
        if args.json:
            summaries.append(summary)
        else:
            print(_ls_line(summary))
        shown += 1
    if args.json:
        json.dump(summaries, sys.stdout, indent=2, sort_keys=True)
        print()
    filters = "".join(f" {ax}={val}" for ax, val in
                      (("kind", args.kind), ("bench", args.bench)) if val)
    print(f"{shown} of {len(store)} record(s){filters} in {store.root}",
          file=sys.stderr)
    return 0


def _print_campaign_event(event) -> None:
    """Progress line for one scheduler :class:`SessionEvent`."""
    prefix = f"[{event.done}/{event.total}]"
    if event.event == "plan":
        print(f"{prefix} campaign planned: {event.total} job(s)",
              file=sys.stderr, flush=True)
    elif event.event == "result":
        label = event.spec.label if event.spec is not None else "?"
        print(f"{prefix} {label}  ({event.source})",
              file=sys.stderr, flush=True)
    elif event.event == "quarantine":
        label = event.spec.label if event.spec is not None else "?"
        tail = event.error.strip().splitlines()
        print(f"{prefix} QUARANTINED {label}: "
              f"{tail[-1] if tail else 'unknown error'}",
              file=sys.stderr, flush=True)


def _cmd_resume(args) -> int:
    from repro.campaign.journal import list_campaigns
    from repro.campaign.scheduler import resume_campaign

    store = _store(args)
    if not args.campaign:
        campaigns = list_campaigns(store.root)
        if not campaigns:
            print(f"no campaigns journaled under {store.root}")
            return 0
        for status in campaigns:
            states = status["states"]
            open_jobs = states["pending"] + states["running"] \
                + states["failed"]
            print(f"{status['campaign']}  total={status['total']} "
                  f"done={states['done']} open={open_jobs} "
                  f"quarantined={states['quarantined']}  "
                  f"{'complete' if status['complete'] else 'resumable'}")
        return 0
    scheduler = resume_campaign(
        args.campaign, store, jobs=args.jobs, timeout_s=args.timeout,
        on_event=None if args.quiet else _print_campaign_event)
    report = scheduler.execute()
    print(f"campaign {args.campaign}: {report.summary()}")
    return 1 if report.quarantined else 0


def _cmd_migrate(args) -> int:
    store = _store(args)
    moved = store.migrate()
    print(f"migrated {moved} record(s) to the sharded layout; "
          f"index rebuilt ({len(store)} record(s) in {store.root})")
    return 0


def _cmd_clean(args) -> int:
    store = _store(args)
    removed = store.clean(stale_only=args.stale)
    what = "stale record(s)" if args.stale else "record(s)"
    print(f"removed {removed} {what} from {store.root}")
    return 0


#: Flat columns exported per record: spec axes then headline stats.
_EXPORT_SPEC = ("kind", "bench", "seed", "instructions", "warmup",
                "mem_scale")
_EXPORT_CLOCK = ("base_mhz", "fe_speedup", "be_speedup")
_EXPORT_STATS = ("committed", "fetched", "issued", "be_cycles_create",
                 "be_cycles_execute", "branches", "mispredicts",
                 "traces_built", "trace_hits", "trace_misses",
                 "instrs_from_ec", "sim_time_ps")
#: Memory-system columns: per-level demand hit rates plus the MSHR
#: aggregates (blank on records from pre-MemorySpec code versions).
_EXPORT_CACHE_LEVELS = ("l1i", "l1d", "l2")


def _cmd_export(args) -> int:
    store = _store(args)
    if args.json is not None:
        return _export_json(store, args.json)
    # "code" (the fingerprint) and "engine" make exported rows joinable
    # with the perf history (BENCH_history.jsonl snapshots carry the
    # same fingerprint, and series split on the engine axis).
    header = (["key", "created", "code", "engine"] + list(_EXPORT_SPEC)
              + ["variant", "mem"] + list(_EXPORT_CLOCK)
              + list(_EXPORT_STATS) + ["ipc", "l2_accesses"]
              + [f"{lvl}_hit_rate" for lvl in _EXPORT_CACHE_LEVELS]
              + ["mshr_occ_avg", "mshr_stall_cycles", "elapsed_s"])
    out = (open(args.csv, "w", newline="", encoding="utf-8")
           if args.csv != "-" else sys.stdout)
    try:
        writer = csv.writer(out)
        writer.writerow(header)
        rows = 0
        for record in store.records():
            try:
                spec, result = record.get("spec", {}), record["result"]
                stats = result.get("stats", {})
                # .get with blank cells: records written by other code
                # versions may lack columns added since (or vice versa).
                row = [record.get("key", ""), record.get("created", ""),
                       record.get("code", ""),
                       record.get("engine")
                       or (spec.get("config") or {}).get("engine",
                                                         "legacy")]
                row += [spec.get(c, "") for c in _EXPORT_SPEC]
                row += [_spec_variant(spec), _spec_mem_label(spec)]
                row += [spec.get("clock", {}).get(c, "")
                        for c in _EXPORT_CLOCK]
                row += [stats.get(c, "") for c in _EXPORT_STATS]
                row += [SimStats.from_dict(stats).ipc,
                        result.get("l2_accesses", "")]
                row += [_cache_rate(stats, lvl)
                        for lvl in _EXPORT_CACHE_LEVELS]
                mshr = (stats.get("cache_stats") or {}).get("mshr") or {}
                row += [mshr.get("occupancy_avg", ""),
                        mshr.get("stall_cycles", ""),
                        record.get("elapsed_s", "")]
            except (KeyError, TypeError, ValueError, AttributeError):
                continue        # damaged record: skip, don't abort the CSV
            writer.writerow(row)
            rows += 1
    finally:
        if out is not sys.stdout:
            out.close()
    print(f"exported {rows} record(s)"
          + ("" if args.csv == "-" else f" to {args.csv}"), file=sys.stderr)
    return 0


def _export_json(store, path: str) -> int:
    """Dump full store records (spec + result) as one JSON array.

    Unlike the flattened CSV, this is lossless: each element is the
    record as stored (key, code fingerprint, timestamps, complete spec
    payload and serialized result including event counters and the DVFS
    frequency trace), ready for pandas/jq pipelines. Records from
    before the store recorded ``engine`` metadata gain the key at
    export time (derived from the spec payload), so every exported row
    is joinable with the perf history on (code, engine).
    """
    import json

    out = (open(path, "w", encoding="utf-8") if path != "-"
           else sys.stdout)
    rows = 0
    try:
        out.write("[")
        for record in store.records():
            out.write(",\n" if rows else "\n")
            if "engine" not in record:
                record = dict(record)
                record["engine"] = ((record.get("spec") or {})
                                    .get("config") or {}).get("engine",
                                                              "legacy")
            json.dump(record, out, sort_keys=True)
            rows += 1
        out.write("\n]\n" if rows else "]\n")
    finally:
        if out is not sys.stdout:
            out.close()
    print(f"exported {rows} record(s)"
          + ("" if path == "-" else f" to {path}"), file=sys.stderr)
    return 0


def main(argv=None) -> int:
    from repro.experiments.__main__ import add_run_flags

    parser = argparse.ArgumentParser(
        prog="repro.campaign",
        description="Batch simulation campaigns with a persistent, "
                    "content-addressed result cache.")
    sub = parser.add_subparsers(dest="command", required=True)

    p_run = sub.add_parser("run", help="execute an experiment campaign")
    p_run.add_argument("--experiments", default="all", metavar="A,B,...",
                       help="experiments to cover (default: all)")
    add_run_flags(p_run)  # --instructions/--warmup/--benchmarks/--seed/
    #                       --jobs/--store/--timeout
    p_run.add_argument("--dry-run", action="store_true",
                       help="list the expanded job specs and exit")
    p_run.add_argument("--no-tables", action="store_true",
                       help="only warm the store; skip printing the tables")
    p_run.add_argument("--quiet", action="store_true",
                       help="suppress per-job progress lines")

    p_ls = sub.add_parser("ls", help="list stored results")
    _add_store_flag(p_ls)
    p_ls.add_argument("--limit", type=int, default=40,
                      help="max records to print (0 = all)")
    p_ls.add_argument("--kind", default=None,
                      help="only records of this simulator kind "
                           "(answered from the selector index)")
    p_ls.add_argument("--bench", default=None,
                      help="only records of this benchmark "
                           "(answered from the selector index)")
    p_ls.add_argument("--json", action="store_true",
                      help="emit a JSON array of record summaries "
                           "instead of the human-readable listing")

    p_diff = sub.add_parser(
        "diff", help="differential analysis of two store slices")
    p_diff.add_argument("a", metavar="A",
                        help="selector: 'latest', 'prev', or key=value "
                             "filters (e.g. code=ab12, base_mhz=400, "
                             "kind=baseline,gov=occupancy)")
    p_diff.add_argument("b", metavar="B", help="selector for the B side")
    _add_store_flag(p_diff)
    p_diff.add_argument("--metrics", default=",".join(DEFAULT_DIFF_METRICS),
                        metavar="M,N,...",
                        help="metrics to compare (default: "
                             f"{','.join(DEFAULT_DIFF_METRICS)})")
    p_diff.add_argument("--min-rel", type=float, default=2.0, metavar="PCT",
                        help="relative-change significance floor in "
                             "percent (default: 2)")
    p_diff.add_argument("--limit", type=int, default=0,
                        help="max pair rows to print (0 = all)")
    p_diff.add_argument("--json", action="store_true",
                        help="emit the full report as JSON instead of "
                             "the terminal tables")
    p_diff.add_argument("--html", default=None, metavar="PATH",
                        help="additionally write a self-contained HTML "
                             "report")
    p_diff.add_argument("--serve", type=int, nargs="?", const=8000,
                        default=None, metavar="PORT",
                        help="serve the HTML report on localhost:PORT "
                             "(default 8000; requires --html)")

    p_resume = sub.add_parser(
        "resume", help="resume an interrupted campaign from its journal "
                       "(no id: list journaled campaigns)")
    p_resume.add_argument("campaign", nargs="?",
                          help="campaign id (see `resume` with no args)")
    _add_store_flag(p_resume)
    p_resume.add_argument("--jobs", type=int, default=None,
                          help="worker processes (default: journaled value)")
    p_resume.add_argument("--timeout", type=float, default=None,
                          help="per-job timeout in seconds "
                               "(default: journaled value)")
    p_resume.add_argument("--quiet", action="store_true",
                          help="suppress per-job progress lines")

    p_migrate = sub.add_parser(
        "migrate", help="relocate flat-layout records into the sharded "
                        "layout and rebuild the index")
    _add_store_flag(p_migrate)

    p_clean = sub.add_parser("clean", help="delete stored results")
    _add_store_flag(p_clean)
    p_clean.add_argument("--stale", action="store_true",
                         help="only delete records from older code versions")

    p_export = sub.add_parser("export", help="dump the store as CSV/JSON")
    _add_store_flag(p_export)
    p_export.add_argument("--csv", default="-", metavar="PATH",
                          help="CSV output file (default: stdout)")
    p_export.add_argument("--json", nargs="?", const="-", default=None,
                          metavar="PATH",
                          help="dump full records as a JSON array to PATH "
                               "(or stdout) instead of flattened CSV")

    args = parser.parse_args(argv)
    handler = {"run": _cmd_run, "ls": _cmd_ls, "diff": cmd_diff,
               "resume": _cmd_resume, "migrate": _cmd_migrate,
               "clean": _cmd_clean, "export": _cmd_export}[args.command]
    try:
        return handler(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except BrokenPipeError:
        # Downstream pager/head closed the pipe; not an error.
        import os
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0


if __name__ == "__main__":
    sys.exit(main())
