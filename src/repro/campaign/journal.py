"""Crash-safe campaign journals (:class:`CampaignRun`).

A campaign submitted to the resumable scheduler persists everything
needed to finish it — the campaign id, every spec payload, and a
per-job state machine — as an **append-only JSONL file** next to the
store::

    <store root>/campaigns/<id>.jsonl

Line 1 is the header (schema, id, created, options, the full spec
payloads and their cache keys); every later line is one state
transition::

    {"job": 3, "state": "running", "attempt": 1, "ts": ...}
    {"job": 3, "state": "done", "source": "run", "elapsed_s": 0.41}
    {"job": 5, "state": "failed", "attempt": 1, "error": "..."}
    {"job": 5, "state": "quarantined", "error": "Traceback ..."}
    {"campaign": "...", "state": "complete", "hits": 2, "executed": 4}

Because the file is append-only and each line is written with a single
``write`` + flush, a SIGKILL can at worst tear the final line; replay
ignores any undecodable line, so :meth:`CampaignRun.load` after a crash
reconstructs the exact pre-crash state: ``done`` jobs stay done,
``running`` jobs (the ones the dead scheduler had in flight) fold back
to ``pending``, ``quarantined`` jobs stay quarantined. Combined with
the content-addressed store this is everything ``campaign resume <id>``
needs — no scheduler state survives in memory, by design.

Job states: ``pending`` → ``running`` → ``done`` | ``failed`` (will be
retried) | ``quarantined`` (retry budget exhausted; traceback kept).
"""

from __future__ import annotations

import json
import os
import time
import uuid
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Union

from repro.campaign.spec import RunSpec
from repro.errors import CampaignError

#: Bumped when the journal layout changes incompatibly.
JOURNAL_SCHEMA = 1

#: Job states a journal line may record.
JOB_STATES = ("pending", "running", "done", "failed", "quarantined")


def campaigns_dir(store_root: Union[str, Path]) -> Path:
    return Path(store_root).expanduser() / "campaigns"


@dataclass
class JobEntry:
    """Replayed state of one job in a campaign."""

    index: int
    payload: Dict[str, object]
    key: str
    state: str = "pending"
    attempts: int = 0
    source: str = ""              # "store" | "run" once done
    error: str = ""               # last traceback for failed/quarantined

    @property
    def open(self) -> bool:
        """True while the scheduler still owes this job work."""
        return self.state not in ("done", "quarantined")

    def spec(self) -> RunSpec:
        return RunSpec.from_dict(self.payload)


class CampaignRun:
    """One campaign's persisted journal: header + replayed job states."""

    def __init__(self, path: Path, campaign_id: str,
                 jobs: List[JobEntry], created: float,
                 options: Optional[Dict[str, object]] = None,
                 complete: bool = False):
        self.path = path
        self.campaign_id = campaign_id
        self.jobs = jobs
        self.created = created
        self.options = options or {}
        self.complete = complete

    # ------------------------------------------------------ construction

    @classmethod
    def create(cls, store_root: Union[str, Path],
               specs: Iterable[RunSpec],
               options: Optional[Dict[str, object]] = None,
               campaign_id: Optional[str] = None) -> "CampaignRun":
        """Start a new journal (header written and flushed before return).

        ``specs`` are deduplicated in first-seen order — a campaign's
        job list is a set, exactly like the executor's.
        """
        from repro.campaign.spec import dedup

        specs = dedup(specs)
        if not specs:
            raise CampaignError("campaign has no jobs")
        campaign_id = campaign_id or uuid.uuid4().hex[:12]
        directory = campaigns_dir(store_root)
        directory.mkdir(parents=True, exist_ok=True)
        path = directory / f"{campaign_id}.jsonl"
        if path.exists():
            raise CampaignError(
                f"campaign {campaign_id!r} already exists at {path}")
        created = time.time()
        jobs = [JobEntry(index=i, payload=s.to_dict(), key=s.cache_key())
                for i, s in enumerate(specs)]
        header = {
            "journal": JOURNAL_SCHEMA,
            "campaign": campaign_id,
            "created": created,
            "options": options or {},
            "specs": [j.payload for j in jobs],
            "keys": [j.key for j in jobs],
        }
        run = cls(path, campaign_id, jobs, created, options)
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(json.dumps(header, sort_keys=True) + "\n")
            fh.flush()
            os.fsync(fh.fileno())
        return run

    @classmethod
    def load(cls, store_root: Union[str, Path],
             campaign_id: str) -> "CampaignRun":
        """Replay a journal into its current state (crash-tolerant)."""
        path = campaigns_dir(store_root) / f"{campaign_id}.jsonl"
        try:
            lines = path.read_text(encoding="utf-8").splitlines()
        except OSError:
            raise CampaignError(
                f"no campaign {campaign_id!r} under "
                f"{campaigns_dir(store_root)}") from None
        header = None
        if lines:
            try:
                header = json.loads(lines[0])
            except ValueError:
                header = None
        if (not isinstance(header, dict)
                or header.get("journal") != JOURNAL_SCHEMA
                or not isinstance(header.get("specs"), list)):
            raise CampaignError(
                f"campaign journal {path} is unreadable or from a "
                "different schema")
        keys = header.get("keys") or []
        jobs = [JobEntry(index=i, payload=payload,
                         key=(keys[i] if i < len(keys) else
                              RunSpec.from_dict(payload).cache_key()))
                for i, payload in enumerate(header["specs"])]
        run = cls(path, header.get("campaign", campaign_id), jobs,
                  header.get("created", 0.0), header.get("options"))
        for line in lines[1:]:
            try:
                entry = json.loads(line)
            except ValueError:
                continue          # torn tail from a crash mid-append
            run._apply(entry)
        # In-flight jobs died with the scheduler: they owe work again.
        for job in run.jobs:
            if job.state in ("running", "failed"):
                job.state = "pending"
        return run

    def _apply(self, entry: Dict[str, object]) -> None:
        if entry.get("state") == "complete":
            self.complete = True
            return
        index = entry.get("job")
        state = entry.get("state")
        if (not isinstance(index, int) or not (0 <= index < len(self.jobs))
                or state not in JOB_STATES):
            return                # foreign/damaged line: ignore
        job = self.jobs[index]
        job.state = state
        job.attempts = int(entry.get("attempt", job.attempts) or 0)
        if "source" in entry:
            job.source = entry["source"]
        if "error" in entry:
            job.error = entry["error"]

    # ------------------------------------------------------- transitions

    def record(self, index: int, state: str, **extra) -> None:
        """Append one job transition (applied in memory too) and flush.

        A flush is enough to survive ``kill -9`` (the data is in the
        kernel); only power loss could lose a tail line, and replay
        tolerates that.
        """
        if state not in JOB_STATES:
            raise CampaignError(f"unknown job state {state!r}")
        entry = {"job": index, "state": state, "ts": round(time.time(), 3)}
        entry.update(extra)
        self._append(entry)
        self._apply(entry)

    def record_complete(self, **counters) -> None:
        entry = {"campaign": self.campaign_id, "state": "complete",
                 "ts": round(time.time(), 3)}
        entry.update(counters)
        self._append(entry)
        self.complete = True

    def _append(self, entry: Dict[str, object]) -> None:
        with open(self.path, "a", encoding="utf-8") as fh:
            fh.write(json.dumps(entry, sort_keys=True) + "\n")
            fh.flush()

    # ------------------------------------------------------------ status

    def state_counts(self) -> Dict[str, int]:
        counts = {state: 0 for state in JOB_STATES}
        for job in self.jobs:
            counts[job.state] += 1
        return counts

    def pending(self) -> List[JobEntry]:
        return [job for job in self.jobs if job.open]

    def status(self) -> Dict[str, object]:
        """JSON-safe summary (the serve daemon's /campaigns payload)."""
        counts = self.state_counts()
        return {
            "campaign": self.campaign_id,
            "created": self.created,
            "total": len(self.jobs),
            "complete": self.complete,
            "states": counts,
            "quarantined": [
                {"label": _safe_label(job.payload), "key": job.key,
                 "error": job.error}
                for job in self.jobs if job.state == "quarantined"],
        }


def _safe_label(payload: Dict[str, object]) -> str:
    """Best-effort job label (payloads from other code versions may not
    reconstruct into a RunSpec)."""
    try:
        return RunSpec.from_dict(payload).label
    except Exception:
        return f"{payload.get('kind', '?')}/{payload.get('bench', '?')}"


def list_campaigns(store_root: Union[str, Path]) -> List[Dict[str, object]]:
    """Status summaries for every readable journal, newest first."""
    directory = campaigns_dir(store_root)
    if not directory.is_dir():
        return []
    out = []
    for path in directory.glob("*.jsonl"):
        try:
            run = CampaignRun.load(store_root, path.stem)
        except CampaignError:
            continue
        out.append(run.status())
    out.sort(key=lambda status: status["created"], reverse=True)
    return out
