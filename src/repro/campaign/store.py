"""Persistent, content-addressed result store.

Finished :class:`~repro.core.sim.SimResult`s are written as JSON records
keyed by :meth:`RunSpec.cache_key` — a hash of the full run configuration
plus a fingerprint of the simulator sources. Repeated or overlapping
campaigns therefore re-simulate nothing: a record either exists for the
exact (config, workload, budgets, code) tuple or it does not.

Layout under the store root::

    <root>/objects/<key[:2]>/<key>.json

Each record carries the spec payload (for ``ls``/``export``), the
serialized result, the code fingerprint and a creation timestamp. Writes
are atomic (temp file + ``os.replace``) so concurrent campaigns sharing a
store never observe torn records; corrupt or unreadable records are
treated as misses and re-simulated.

The default root is ``~/.cache/repro-campaign``, overridable with the
``REPRO_CAMPAIGN_DIR`` environment variable or the CLI ``--store`` flag.
"""

from __future__ import annotations

import json
import os
import tempfile
import time
from pathlib import Path
from typing import Dict, Iterator, Optional, Union

from repro.campaign.spec import RunSpec, code_fingerprint
from repro.core.sim import SimResult

#: Bumped when the record layout changes incompatibly.
SCHEMA_VERSION = 1

_ENV_VAR = "REPRO_CAMPAIGN_DIR"
_DEFAULT_ROOT = "~/.cache/repro-campaign"


def default_store_root() -> Path:
    return Path(os.environ.get(_ENV_VAR, _DEFAULT_ROOT)).expanduser()


class ResultStore:
    """On-disk memo table for simulation results.

    ``hits`` / ``misses`` count lookups since construction; ``puts``
    counts records written. The campaign executor reports these so a
    warm rerun can be *verified* to have simulated nothing.
    """

    def __init__(self, root: Union[str, Path, None] = None):
        self.root = Path(root).expanduser() if root else default_store_root()
        self.hits = 0
        self.misses = 0
        self.puts = 0

    # ------------------------------------------------------------ lookup

    def _path(self, key: str) -> Path:
        return self.root / "objects" / key[:2] / f"{key}.json"

    def __contains__(self, key: str) -> bool:
        return self._path(key).exists()

    def get(self, key: str) -> Optional[SimResult]:
        """Return the stored result for ``key``, or None (counted)."""
        record = self._read(key)
        if record is not None:
            try:
                result = SimResult.from_dict(record["result"])
            except (KeyError, TypeError, ValueError, AttributeError):
                record = None     # schema-valid JSON, damaged payload
        if record is None:
            self.misses += 1
            return None
        self.hits += 1
        return result

    def _read(self, key: str) -> Optional[Dict[str, object]]:
        path = self._path(key)
        try:
            record = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return None
        if (not isinstance(record, dict)
                or record.get("schema") != SCHEMA_VERSION
                or not isinstance(record.get("result"), dict)):
            return None
        return record

    # ------------------------------------------------------------- write

    def put(self, key: str, spec: RunSpec, result: SimResult,
            elapsed_s: Optional[float] = None) -> None:
        """Persist one finished run atomically.

        ``elapsed_s`` is the executor's wall time for the simulation
        (None for records written by paths that did not time the run);
        ``ls``/``export`` surface it for spotting slow configurations.

        The engine backend is recorded as top-level metadata (the spec
        payload elides ``engine`` for legacy runs to keep historical
        content addresses stable), so ``ls``/``export``/``diff`` can
        read it without reconstructing the spec.
        """
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        record = {
            "schema": SCHEMA_VERSION,
            "key": key,
            "code": code_fingerprint(),
            "created": time.time(),
            "engine": getattr(spec.config, "engine", "legacy"),
            "spec": spec.to_dict(),
            "result": result.to_dict(),
        }
        if elapsed_s is not None:
            record["elapsed_s"] = round(elapsed_s, 6)
        blob = json.dumps(record, sort_keys=True)
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                handle.write(blob)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        self.puts += 1

    # -------------------------------------------------------- management

    def records(self) -> Iterator[Dict[str, object]]:
        """Yield every readable record (newest first)."""
        objects = self.root / "objects"
        if not objects.is_dir():
            return
        def mtime(path: Path) -> float:
            try:
                return path.stat().st_mtime
            except OSError:       # concurrently clean()ed — sort it last,
                return 0.0        # _read() then skips the vanished record
        paths = sorted(objects.glob("*/*.json"), key=mtime, reverse=True)
        for path in paths:
            record = self._read(path.stem)
            if record is not None:
                yield record

    def __len__(self) -> int:
        objects = self.root / "objects"
        if not objects.is_dir():
            return 0
        return sum(1 for _ in objects.glob("*/*.json"))

    def clean(self, stale_only: bool = False) -> int:
        """Delete records; with ``stale_only`` keep current-code ones.

        Returns the number of records removed.
        """
        removed = 0
        objects = self.root / "objects"
        if not objects.is_dir():
            return 0
        # Orphaned temp files from interrupted put()s are always junk.
        for path in objects.glob("*/*.tmp"):
            try:
                path.unlink()
            except OSError:
                pass
        current = code_fingerprint()
        for path in objects.glob("*/*.json"):
            if stale_only:
                record = self._read(path.stem)
                if record is not None and record.get("code") == current:
                    continue
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        return removed
