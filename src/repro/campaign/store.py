"""Persistent, content-addressed, sharded result store.

Finished :class:`~repro.core.sim.SimResult`s are written as JSON records
keyed by :meth:`RunSpec.cache_key` — a hash of the full run configuration
plus a fingerprint of the simulator sources. Repeated or overlapping
campaigns therefore re-simulate nothing: a record either exists for the
exact (config, workload, budgets, code) tuple or it does not.

Layout under the store root::

    <root>/objects/<key[:2]>/<key[2:4]>/<key>.json    # sharded records
    <root>/index.sqlite                               # advisory index
    <root>/campaigns/<id>.jsonl                       # CampaignRun journals

The two-level fan-out keeps directories small as the store grows into
the millions of records; stores written before the fan-out (one level,
``objects/ab/<key>.json``) keep working — reads fall back to the legacy
path and :meth:`ResultStore.migrate` relocates them in one shot.

Each record carries the spec payload (for ``ls``/``export``), the
serialized result, the code fingerprint and a creation timestamp. Writes
are atomic (temp file + ``os.replace``) so concurrent campaigns sharing a
store never observe torn records; corrupt or unreadable records are
treated as misses and re-simulated. An optional SQLite index
(:mod:`repro.campaign.index`) caches the selector columns so filtered
listings do not read every shard; it is advisory — rebuilt lazily and
incrementally, and any failure degrades to the full-scan path.

The default root is ``~/.cache/repro-campaign``, overridable with the
``REPRO_CAMPAIGN_DIR`` environment variable or the CLI ``--store`` flag.
"""

from __future__ import annotations

import json
import os
import tempfile
import time
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Union

from repro.campaign.index import StoreIndex
from repro.campaign.spec import RunSpec, code_fingerprint
from repro.core.sim import SimResult

#: Bumped when the record layout changes incompatibly.
SCHEMA_VERSION = 1

_ENV_VAR = "REPRO_CAMPAIGN_DIR"
_DEFAULT_ROOT = "~/.cache/repro-campaign"


def default_store_root() -> Path:
    return Path(os.environ.get(_ENV_VAR, _DEFAULT_ROOT)).expanduser()


class ResultStore:
    """On-disk memo table for simulation results.

    ``hits`` / ``misses`` count lookups since construction; ``puts``
    counts records written. The campaign executor reports these so a
    warm rerun can be *verified* to have simulated nothing.
    """

    def __init__(self, root: Union[str, Path, None] = None):
        self.root = Path(root).expanduser() if root else default_store_root()
        self.hits = 0
        self.misses = 0
        self.puts = 0
        self.index = StoreIndex(self.root)

    # ------------------------------------------------------------ lookup

    def _path(self, key: str) -> Path:
        return self.root / "objects" / key[:2] / key[2:4] / f"{key}.json"

    def _legacy_path(self, key: str) -> Path:
        """Pre-sharding location (one-level fan-out); read fallback."""
        return self.root / "objects" / key[:2] / f"{key}.json"

    def __contains__(self, key: str) -> bool:
        return self._path(key).exists() or self._legacy_path(key).exists()

    def get(self, key: str) -> Optional[SimResult]:
        """Return the stored result for ``key``, or None (counted)."""
        record = self._read(key)
        if record is not None:
            try:
                result = SimResult.from_dict(record["result"])
            except (KeyError, TypeError, ValueError, AttributeError):
                record = None     # schema-valid JSON, damaged payload
        if record is None:
            self.misses += 1
            return None
        self.hits += 1
        return result

    def _read(self, key: str) -> Optional[Dict[str, object]]:
        record = self._read_path(self._path(key))
        if record is None:
            record = self._read_path(self._legacy_path(key))
        return record

    def _read_path(self, path: Path) -> Optional[Dict[str, object]]:
        """Parse one record file; None for missing/torn/foreign-schema.

        The single chokepoint for record reads: a file deleted between
        listing and read (``clean`` in another process) is simply a
        miss here, never an exception, and tests count calls to this
        method to prove indexed queries do not scan the whole store.
        """
        try:
            record = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return None
        if (not isinstance(record, dict)
                or record.get("schema") != SCHEMA_VERSION
                or not isinstance(record.get("result"), dict)):
            return None
        return record

    # ------------------------------------------------------------- write

    def put(self, key: str, spec: RunSpec, result: SimResult,
            elapsed_s: Optional[float] = None) -> None:
        """Persist one finished run atomically.

        ``elapsed_s`` is the executor's wall time for the simulation
        (None for records written by paths that did not time the run);
        ``ls``/``export`` surface it for spotting slow configurations.

        The engine backend is recorded as top-level metadata (the spec
        payload elides ``engine`` for legacy runs to keep historical
        content addresses stable), so ``ls``/``export``/``diff`` can
        read it without reconstructing the spec.

        Concurrent writers are safe: the temp file + ``os.replace``
        makes the record visible atomically (last writer wins for the
        same key), and the index upsert is a row-level last-writer-wins
        too.
        """
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        record = {
            "schema": SCHEMA_VERSION,
            "key": key,
            "code": code_fingerprint(),
            "created": time.time(),
            "engine": getattr(spec.config, "engine", "legacy"),
            "spec": spec.to_dict(),
            "result": result.to_dict(),
        }
        if elapsed_s is not None:
            record["elapsed_s"] = round(elapsed_s, 6)
        blob = json.dumps(record, sort_keys=True)
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                handle.write(blob)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        self.puts += 1
        self.index.note_put(key, path, record)

    # -------------------------------------------------------- management

    def refresh_index(self, force: bool = False) -> bool:
        """Bring the SQLite index up to date; True if it is usable."""
        return self.index.refresh(self._read_path, force=force)

    def query(self, limit: int = 0,
              **filters) -> List[Dict[str, object]]:
        """Selector rows (key/kind/bench/code/engine/gov/mem/elapsed_s/
        created) newest-first from the index — **no record reads**.

        Falls back to a full scan when the index is unusable, so the
        answer is always correct, just not always cheap.
        """
        if self.refresh_index():
            try:
                return self.index.query(filters, limit=limit)
            except Exception:
                self.index.disabled = True
        from repro.campaign.index import record_row

        rows = []
        for record in self._scan_records(filters):
            rows.append(record_row(record))
            if limit and len(rows) >= limit:
                break
        return rows

    def records(self,
                kind: Optional[str] = None,
                bench: Optional[str] = None,
                limit: int = 0) -> Iterator[Dict[str, object]]:
        """Lazily yield readable records (newest first), optionally
        filtered by spec ``kind``/``bench``.

        With a usable index only matching records are opened; records
        deleted between the index lookup and the read are skipped (and
        dropped from the index). Without the index this degrades to the
        full shard scan with in-Python filtering.
        """
        filters = {"kind": kind, "bench": bench}
        if self.refresh_index():
            try:
                rows = self.index.query(filters)
            except Exception:
                self.index.disabled = True
            else:
                yielded = 0
                vanished: List[str] = []
                for row in rows:
                    record = self._read(row["key"])
                    if record is None:        # deleted/torn since indexed
                        vanished.append(row["key"])
                        continue
                    yield record
                    yielded += 1
                    if limit and yielded >= limit:
                        break
                self.index.note_removed(vanished)
                return
        yielded = 0
        for record in self._scan_records(filters):
            yield record
            yielded += 1
            if limit and yielded >= limit:
                break

    def _record_paths(self) -> List[Path]:
        """Every record path, both layouts, newest first (stat only)."""
        objects = self.root / "objects"
        if not objects.is_dir():
            return []
        def mtime(path: Path) -> float:
            try:
                return path.stat().st_mtime
            except OSError:       # concurrently clean()ed — sort it last,
                return 0.0        # _read_path then skips the vanished file
        paths = list(objects.glob("*/*.json"))
        paths += objects.glob("*/*/*.json")
        paths.sort(key=mtime, reverse=True)
        return paths

    def _scan_records(self, filters: Dict[str, object]) \
            -> Iterator[Dict[str, object]]:
        """Index-free fallback: read every shard, filter in Python."""
        from repro.campaign.index import record_row

        wanted = {k: v for k, v in (filters or {}).items()
                  if v is not None}
        for path in self._record_paths():
            record = self._read_path(path)
            if record is None:
                continue
            if wanted:
                row = record_row(record)
                if any(row.get(k) != v for k, v in wanted.items()):
                    continue
            yield record

    def __len__(self) -> int:
        objects = self.root / "objects"
        if not objects.is_dir():
            return 0
        return (sum(1 for _ in objects.glob("*/*.json"))
                + sum(1 for _ in objects.glob("*/*/*.json")))

    def migrate(self) -> int:
        """One-shot relocation of legacy one-level records into the
        two-level fan-out; returns the number of records moved.

        Safe to re-run (no-op on an already-migrated store) and safe
        under concurrent readers: every move is an ``os.replace`` into
        the path ``get()`` checks first, and readers fall back to the
        legacy path until the moment it disappears. Finishes by
        force-refreshing the index so the moved rows point at the new
        shard directories.
        """
        objects = self.root / "objects"
        moved = 0
        if objects.is_dir():
            for path in list(objects.glob("*/*.json")):
                key = path.stem
                dest = self._path(key)
                if len(key) < 4 or dest == path:
                    continue
                dest.parent.mkdir(parents=True, exist_ok=True)
                try:
                    os.replace(path, dest)
                    moved += 1
                except OSError:
                    continue      # racing migrator/cleaner took it first
        self.refresh_index(force=True)
        return moved

    def clean(self, stale_only: bool = False) -> int:
        """Delete records; with ``stale_only`` keep current-code ones.

        Returns the number of records removed. The index is dropped
        wholesale (a full clean) or force-refreshed (stale clean) —
        never left pointing at deleted shards.
        """
        removed = 0
        objects = self.root / "objects"
        if not objects.is_dir():
            return 0
        # Orphaned temp files from interrupted put()s are always junk.
        for pattern in ("*/*.tmp", "*/*/*.tmp"):
            for path in objects.glob(pattern):
                try:
                    path.unlink()
                except OSError:
                    pass
        current = code_fingerprint()
        for pattern in ("*/*.json", "*/*/*.json"):
            for path in objects.glob(pattern):
                if stale_only:
                    record = self._read_path(path)
                    if record is not None and record.get("code") == current:
                        continue
                try:
                    path.unlink()
                    removed += 1
                except OSError:
                    pass
        if stale_only:
            self.refresh_index(force=True)
        else:
            self.index.drop()
        return removed
