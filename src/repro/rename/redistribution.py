"""Dynamic register redistribution (Section 3.5, reference [12]).

At fixed intervals the per-register stall counters and in-flight
high-water marks are examined. If renaming stalled during the interval, a
new pool geometry is computed by *demand sizing*: each architected
register asks for its observed peak in-flight count plus headroom, clamped
to [min, max], and the fixed register-file budget is balanced by trimming
the registers that stalled least. Applying a redistribution invalidates
the Execution Cache (all recorded LID mappings become stale) and costs a
fixed penalty; demand sizing converges in one or two rounds, matching the
paper's observation that steady state is reached rapidly.
"""

from __future__ import annotations

from typing import List, Optional

from repro.isa.registers import NUM_ARCH_REGS
from repro.rename.pools import PoolFile

#: Minimum stalls in an interval before any redistribution is attempted.
_MIN_STALLS = 32
#: Headroom added on top of the observed peak demand.
_HEADROOM = 1
#: Hysteresis: total pool-size movement below this is not worth the EC
#: invalidation that applying a redistribution costs.
_MIN_MOVEMENT = 8


class RedistributionController:
    """Decides new pool geometries from observed rename pressure."""

    def __init__(self, pools: PoolFile, interval: int, penalty: int):
        self.pools = pools
        self.interval = interval
        self.penalty = penalty
        self.next_check = interval
        self.redistributions = 0

    def due(self, cycle: int) -> bool:
        return cycle >= self.next_check

    def check(self, cycle: int) -> Optional[List[int]]:
        """Evaluate counters; return a new size vector or None.

        The caller applies the sizes once the pipeline is drained, charges
        ``penalty`` cycles, and invalidates the EC. Counters reset either
        way.
        """
        self.next_check = cycle + self.interval
        pools = self.pools
        total_stalls = sum(pools.stall_counts)
        if total_stalls < _MIN_STALLS:
            self._reset_counters()
            return None
        sizes = self._demand_sizes()
        self._reset_counters()
        movement = sum(abs(new - old)
                       for new, old in zip(sizes, pools.sizes))
        if movement < _MIN_MOVEMENT:
            # Converged (steady state): small oscillations are not worth
            # invalidating the Execution Cache over.
            return None
        self.redistributions += 1
        # Back off after each applied redistribution: steady state should
        # be reached in a couple of rounds, and each round flushes the EC.
        self.interval *= 2
        return sizes

    def _demand_sizes(self) -> List[int]:
        pools = self.pools
        lo, hi, budget = pools.min_pool_size, pools.max_pool_size, pools.total_regs

        desired = [
            min(hi, max(lo, pools.highwater[a] + _HEADROOM))
            for a in range(NUM_ARCH_REGS)
        ]
        surplus = budget - sum(desired)

        if surplus > 0:
            # Spread spare entries over the registers that stalled, most
            # pressured first, then anywhere there is room.
            order = sorted(range(NUM_ARCH_REGS),
                           key=lambda a: pools.stall_counts[a], reverse=True)
            while surplus > 0:
                granted = False
                for a in order:
                    if surplus == 0:
                        break
                    if desired[a] < hi:
                        desired[a] += 1
                        surplus -= 1
                        granted = True
                if not granted:
                    raise AssertionError(
                        "register file larger than max pool sizes allow")
        elif surplus < 0:
            # Trim from the least-stalled registers first, never below min.
            order = sorted(range(NUM_ARCH_REGS),
                           key=lambda a: pools.stall_counts[a])
            while surplus < 0:
                trimmed = False
                for a in order:
                    if surplus == 0:
                        break
                    if desired[a] > lo:
                        desired[a] -= 1
                        surplus += 1
                        trimmed = True
                if not trimmed:
                    raise AssertionError(
                        "register-file budget below the minimum pool sizes")
        return desired

    def _reset_counters(self) -> None:
        pools = self.pools
        for arch in range(NUM_ARCH_REGS):
            pools.stall_counts[arch] = 0
            pools.highwater[arch] = pools.inflight[arch]
