"""MIPS R10000-style register renaming (baseline core).

A map table translates each architected register to a physical register;
destinations allocate a fresh physical register from a free list; the
previous mapping is freed when the instruction commits. Register 0 is the
hard-wired zero: never renamed, always ready (tag 0 is reserved for it).
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List

from repro.errors import ConfigError, SimulationError
from repro.isa import DynInstr
from repro.isa.registers import NUM_ARCH_REGS, ZERO_REG

#: Physical tag reserved for the architected zero register.
ZERO_TAG = 0


class R10KRenamer:
    """Map table + free list renamer over a unified physical file."""

    def __init__(self, phys_regs: int):
        if phys_regs < NUM_ARCH_REGS + 1:
            raise ConfigError(
                f"need at least {NUM_ARCH_REGS + 1} physical registers, "
                f"got {phys_regs}"
            )
        self.phys_regs = phys_regs
        # Identity-map the architected state at reset; tag 0 = zero reg.
        self._map: List[int] = list(range(NUM_ARCH_REGS))
        self._free: Deque[int] = deque(range(NUM_ARCH_REGS, phys_regs))

    @property
    def free_count(self) -> int:
        return len(self._free)

    def can_rename(self, needs_dest: bool) -> bool:
        return not needs_dest or bool(self._free)

    def rename(self, dyn: DynInstr) -> None:
        """Assign source tags and allocate a destination tag in place."""
        m = self._map
        dyn.src_tags = tuple([m[s] for s in dyn.srcs])
        if dyn.dest is None or dyn.dest == ZERO_REG:
            dyn.dest_tag = -1
            dyn.old_dest_tag = -1
            return
        if not self._free:
            raise SimulationError("rename called with empty free list")
        tag = self._free.popleft()
        dyn.old_dest_tag = self._map[dyn.dest]
        self._map[dyn.dest] = tag
        dyn.dest_tag = tag

    def commit(self, dyn: DynInstr) -> None:
        """Free the previous mapping of the committed destination."""
        if dyn.dest_tag >= 0 and dyn.old_dest_tag >= 0:
            # The zero register's identity tag is never recycled.
            if dyn.old_dest_tag != ZERO_TAG:
                self._free.append(dyn.old_dest_tag)

    def commit_entry(self, entry) -> None:
        """Retire hook for the engine (`entry` is a RobEntry): same as
        :meth:`commit`, called directly to keep the per-instruction
        retire path one call deep."""
        dyn = entry.dyn
        if dyn.dest_tag >= 0 and dyn.old_dest_tag > 0:
            self._free.append(dyn.old_dest_tag)
