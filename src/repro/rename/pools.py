"""Per-architected-register physical pools (Sections 3.4-3.5).

The Flywheel register file dedicates a circular pool of physical entries to
every architected register. A write always allocates the next entry of its
own pool, which removes false dependencies without a global free list and —
crucially — makes the mapping reproducible when traces replay from the
Execution Cache.

Capacity rule: a pool of size ``S`` can hold the last committed value plus
at most ``S - 1`` in-flight (not yet retired) writes; allocating beyond
that stalls Rename (trace creation) or the EC dispatch (trace execution).
These stalls are the "limited rename capacity" cost the paper measures in
Fig. 11, and what redistribution (Section 3.5, [12]) relieves.
"""

from __future__ import annotations

from typing import List

from repro.errors import ConfigError, SimulationError
from repro.isa.registers import NUM_ARCH_REGS


class PoolFile:
    """Pool geometry + in-flight accounting for the Flywheel register file."""

    def __init__(self, total_regs: int, default_pool_size: int,
                 min_pool_size: int = 2, max_pool_size: int = 32):
        if default_pool_size * NUM_ARCH_REGS != total_regs:
            raise ConfigError(
                f"{total_regs} physical registers do not divide evenly into "
                f"{NUM_ARCH_REGS} pools of {default_pool_size}"
            )
        if not 1 <= min_pool_size <= default_pool_size <= max_pool_size:
            raise ConfigError("pool size bounds are inconsistent")
        self.total_regs = total_regs
        self.min_pool_size = min_pool_size
        self.max_pool_size = max_pool_size
        self.sizes: List[int] = [default_pool_size] * NUM_ARCH_REGS
        self.bases: List[int] = [0] * NUM_ARCH_REGS
        self._recompute_bases()
        self.inflight: List[int] = [0] * NUM_ARCH_REGS
        #: rename stalls attributed to each architected register, consumed
        #: by the redistribution controller and reset at each check.
        self.stall_counts: List[int] = [0] * NUM_ARCH_REGS
        #: per-interval high-water mark of in-flight writes (the "history
        #: of the renaming constraints" of [12]); a stall means demand
        #: exceeded the pool, so the mark is pushed past the current size.
        self.highwater: List[int] = [0] * NUM_ARCH_REGS

    def _recompute_bases(self) -> None:
        base = 0
        for arch in range(NUM_ARCH_REGS):
            self.bases[arch] = base
            base += self.sizes[arch]
        if base != self.total_regs:
            raise SimulationError("pool sizes no longer sum to the file size")

    # ----------------------------------------------------------- mapping

    def phys(self, arch: int, slot: int) -> int:
        """Physical register index for a pool slot of ``arch``."""
        return self.bases[arch] + slot % self.sizes[arch]

    # ------------------------------------------------------ in-flight use

    def can_allocate(self, arch: int) -> bool:
        """True if another in-flight write to ``arch`` fits in its pool."""
        return self.inflight[arch] < self.sizes[arch] - 1

    def allocate(self, arch: int) -> None:
        if not self.can_allocate(arch):
            raise SimulationError(f"pool overflow on architected reg {arch}")
        self.inflight[arch] += 1
        if self.inflight[arch] > self.highwater[arch]:
            self.highwater[arch] = self.inflight[arch]

    def retire(self, arch: int) -> None:
        if self.inflight[arch] <= 0:
            raise SimulationError(f"pool underflow on architected reg {arch}")
        self.inflight[arch] -= 1

    def note_stall(self, arch: int) -> None:
        self.stall_counts[arch] += 1
        # Demand provably exceeds the pool; push the mark past it so the
        # redistribution sizes from actual need, not the current ceiling.
        want = self.sizes[arch] + 4
        if self.highwater[arch] < want:
            self.highwater[arch] = want

    def drain(self) -> None:
        """Clear all in-flight counts (full pipeline flush)."""
        for arch in range(NUM_ARCH_REGS):
            self.inflight[arch] = 0

    # --------------------------------------------------- redistribution

    def apply_sizes(self, new_sizes: List[int]) -> None:
        """Install a new pool geometry (only valid with no in-flight work)."""
        if any(self.inflight):
            raise SimulationError("cannot resize pools with in-flight writes")
        if len(new_sizes) != NUM_ARCH_REGS:
            raise ConfigError("need one pool size per architected register")
        if sum(new_sizes) != self.total_regs:
            raise ConfigError("new pool sizes must sum to the file size")
        for size in new_sizes:
            if not self.min_pool_size <= size <= self.max_pool_size:
                raise ConfigError(f"pool size {size} out of bounds")
        self.sizes = list(new_sizes)
        self._recompute_bases()
