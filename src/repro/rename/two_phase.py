"""Two-phase register renaming (Section 3.5, "direct access register file").

Phase 1 — **Register Rename** (front-end): every architected register has a
running Logical ID (LID). A source reads the current LID of its register; a
destination increments it. LIDs restart from zero at every trace start, so
the (arch, LID) pairs recorded in the Execution Cache are position-
independent and can be replayed.

Phase 2 — **Register Update** (back-end, one pipeline stage): (arch, LID)
is remapped to a physical register through the Remapping Table (RT), which
records, per architected register, the pool slot that holds the last value
committed before the current trace (the slot LID 0 refers to). The physical
slot is ``(RT[arch] + LID) mod pool_size`` — the additive equivalent of the
paper's XOR recomputation trick.

Checkpoints: the Future Remapping Table (FRT) follows retirement; copying
FRT into RT at a trace change re-bases LID 0 onto the newest committed
value. The Speculative Remapping Table (SRT) follows the Update stage
instead and can be swapped in one cycle when the trace ends without a
mispredict (end-of-trace seen before Register Update).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.isa import DynInstr
from repro.isa.registers import NUM_ARCH_REGS, ZERO_REG
from repro.rename.pools import PoolFile


class TwoPhaseRenamer:
    """Rename (LID) + Register Update (RT/FRT/SRT) bookkeeping."""

    def __init__(self, pools: PoolFile):
        self.pools = pools
        # Phase 1 state: current LID per architected register.
        self._lid: List[int] = [0] * NUM_ARCH_REGS
        # Phase 2 state: slot of the last committed value at trace start.
        self._rt: List[int] = [0] * NUM_ARCH_REGS
        self._frt: List[int] = [0] * NUM_ARCH_REGS
        self._srt: List[int] = [0] * NUM_ARCH_REGS
        self._srt_trace: List[int] = [-1] * NUM_ARCH_REGS
        self.renames = 0
        self.updates = 0

    # ------------------------------------------------------ phase 1: LIDs

    def can_rename_dest(self, dyn: DynInstr) -> bool:
        """Check pool capacity for the destination (stall otherwise)."""
        if dyn.dest is None or dyn.dest == ZERO_REG:
            return True
        ok = self.pools.can_allocate(dyn.dest)
        if not ok:
            self.pools.note_stall(dyn.dest)
        return ok

    def rename(self, dyn: DynInstr) -> None:
        """Assign LIDs in place (trace-creation front-end path)."""
        self.renames += 1
        lid = self._lid
        dyn.src_lids = tuple([lid[s] for s in dyn.srcs])
        if dyn.dest is None or dyn.dest == ZERO_REG:
            dyn.dest_lid = -1
            return
        self._lid[dyn.dest] += 1
        dyn.dest_lid = self._lid[dyn.dest]
        self.pools.allocate(dyn.dest)

    def reset_lids(self) -> None:
        """Trace start: LIDs restart at zero (Section 3.5)."""
        for arch in range(NUM_ARCH_REGS):
            self._lid[arch] = 0

    # ------------------------------------------------- phase 2: remapping

    def update(self, dyn: DynInstr, trace_id: int) -> None:
        """Register Update stage: compute physical tags from (arch, LID).

        Also maintains the SRT with the newest mapping per destination,
        guarded by ``trace_id`` so an older in-flight instruction cannot
        clobber a newer one's record.
        """
        self.updates += 1
        pools = self.pools
        bases = pools.bases
        sizes = pools.sizes
        rt = self._rt
        # Inlined pools.phys(): this runs per source per instruction.
        dyn.src_tags = tuple(
            [bases[arch] + (rt[arch] + lid) % sizes[arch]
             for arch, lid in zip(dyn.srcs, dyn.src_lids)])
        if dyn.dest_lid >= 0:
            arch = dyn.dest
            slot = (rt[arch] + dyn.dest_lid) % sizes[arch]
            dyn.dest_tag = bases[arch] + slot
            if trace_id >= self._srt_trace[arch]:
                self._srt[arch] = slot
                self._srt_trace[arch] = trace_id
        else:
            dyn.dest_tag = -1

    def retire(self, dyn: DynInstr) -> None:
        """Retirement: advance the FRT and release the pool slot."""
        if dyn.dest_lid >= 0:
            arch = dyn.dest
            self._frt[arch] = dyn.dest_tag - self.pools.bases[arch]
            self.pools.retire(arch)

    # --------------------------------------------------------- checkpoints

    def checkpoint_from_frt(self) -> None:
        """Trace change after full retirement: RT <- FRT (slow path)."""
        self._rt = list(self._frt)
        self.reset_lids()

    def checkpoint_from_srt(self) -> None:
        """Fast trace switch: RT <- SRT (end-of-trace seen pre-Update)."""
        self._rt = list(self._srt)
        self.reset_lids()

    def reset_after_redistribution(self) -> None:
        """Pool geometry changed: all renaming state restarts at slot 0.

        Architected values are conceptually migrated to slot 0 of each new
        pool; the Execution Cache must be invalidated by the caller since
        every recorded LID mapping is now stale (Section 3.5).
        """
        for arch in range(NUM_ARCH_REGS):
            self._lid[arch] = 0
            self._rt[arch] = 0
            self._frt[arch] = 0
            self._srt[arch] = 0
            self._srt_trace[arch] = -1

    def sync_srt_to_frt(self) -> None:
        """Re-arm the SRT after a squash (its contents may be stale)."""
        self._srt = list(self._frt)
        for arch in range(NUM_ARCH_REGS):
            self._srt_trace[arch] = -1

    # ------------------------------------------------------------- helpers

    def committed_phys(self, arch: int) -> int:
        """Physical register currently holding ``arch``'s committed value."""
        return self.pools.bases[arch] + self._frt[arch]
