"""Register renaming substrates.

* :mod:`repro.rename.r10k` — the baseline's MIPS R10000-style renamer
  (map table + free list over a unified physical register file).
* :mod:`repro.rename.pools` — per-architected-register pools used by the
  Flywheel's two-phase scheme.
* :mod:`repro.rename.two_phase` — Rename (LID allocation) + Register
  Update (RT/FRT/SRT remapping) with XOR checkpoints.
* :mod:`repro.rename.redistribution` — periodic pool-size adaptation.
"""

from repro.rename.r10k import R10KRenamer
from repro.rename.pools import PoolFile
from repro.rename.two_phase import TwoPhaseRenamer
from repro.rename.redistribution import RedistributionController

__all__ = ["R10KRenamer", "PoolFile", "TwoPhaseRenamer", "RedistributionController"]
