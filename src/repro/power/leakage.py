"""Static (leakage) power model, after Butts & Sohi.

Each structure leaks ``devices x I_leak(node) x Vdd``; we carry relative
device-count weights per structure (millions of devices) rather than exact
transistor counts — the paper's Fig. 15 depends only on how the *static
fraction* of total energy grows as nodes shrink, which these weights and
Table 2's currents capture. Clock gating does not stop leakage (the paper
uses clock gating, not power gating, and notes its results are therefore
conservative).
"""

from __future__ import annotations

from typing import Dict, Mapping

from repro.power.technology import TechNode

#: Relative device counts (millions) per leaking structure block.
LEAKAGE_WEIGHTS: Dict[str, float] = {
    "frontend": 4.0,      # fetch, decode, rename, bpred
    "issue_window": 3.0,
    "regfile": 1.5,
    "exec_units": 4.0,
    "rob_lsq": 2.0,
    "l1_caches": 8.0,
    "l2_cache": 24.0,
    "ec": 6.0,            # execution cache (Flywheel only)
    "tables": 0.8,        # RT/FRT/SRT/RAT
}

#: Watts per (million devices x nA of normalized per-device leakage x V).
#: Calibrated so leakage is ~12% of the baseline's total power at 130nm,
#: rising to ~40% at 60nm — the Butts-Sohi-era projections the paper uses.
_W_PER_MDEV_NA_V = 1.0e-4


def leakage_power_w(tech: TechNode, structures: Mapping[str, float]) -> float:
    """Total static power (W) for the given structure weights."""
    mdev = sum(structures.values())
    return mdev * tech.leak_na_per_device * tech.vdd * _W_PER_MDEV_NA_V


def baseline_structures() -> Dict[str, float]:
    """Leaking blocks present in the baseline core."""
    return {k: v for k, v in LEAKAGE_WEIGHTS.items() if k not in ("ec", "tables")}


def flywheel_structures() -> Dict[str, float]:
    """Leaking blocks present in the Flywheel core (larger RF, EC, tables)."""
    out = dict(LEAKAGE_WEIGHTS)
    out["regfile"] = LEAKAGE_WEIGHTS["regfile"] * (512.0 / 192.0)
    return out
