"""Wattch-style power/energy modelling (Figs. 13-15).

Dynamic energy is counted per structure access (switched capacitance x
Vdd^2), static energy from per-device leakage currents (Butts-Sohi style,
Table 2's technology parameters), and clock-distribution energy from an
Alpha-21264-like global grid plus per-domain local grids that stop burning
dynamic power when their domain is clock-gated — the Flywheel's front-end
grid during trace execution.
"""

from repro.power.technology import TechNode, TECH_BY_NAME, TECH_130, TECH_90, TECH_60, TECH_180
from repro.power.energy import ACCESS_ENERGY_PJ, dynamic_energy_pj
from repro.power.leakage import LEAKAGE_WEIGHTS, leakage_power_w
from repro.power.clocktree import clock_energy_pj
from repro.power.accounting import EnergyReport, energy_report

__all__ = [
    "TechNode",
    "TECH_BY_NAME",
    "TECH_180",
    "TECH_130",
    "TECH_90",
    "TECH_60",
    "ACCESS_ENERGY_PJ",
    "dynamic_energy_pj",
    "LEAKAGE_WEIGHTS",
    "leakage_power_w",
    "clock_energy_pj",
    "EnergyReport",
    "energy_report",
]
