"""Energy accounting: turn one simulation's counters into joules/watts.

``energy_report`` is core-agnostic: it reads the event counters, the clock
domains' cycle counts, and the L2 access counts from a finished
:class:`~repro.core.sim.SimResult`, and evaluates the dynamic, static and
clock models at a technology node. All figure-13/14/15 results are ratios
of these reports between the Flywheel and the baseline at the same node.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.core.sim import KIND_FLYWHEEL, SimResult
from repro.power.clocktree import clock_energy_pj
from repro.power.energy import dynamic_energy_pj
from repro.power.leakage import (
    baseline_structures,
    flywheel_structures,
    leakage_power_w,
)
from repro.power.technology import TechNode


@dataclass
class EnergyReport:
    """Energy breakdown for one run."""

    name: str
    tech: TechNode
    dynamic_pj: float = 0.0
    clock_pj: float = 0.0
    static_pj: float = 0.0
    time_s: float = 0.0
    by_event: Dict[str, float] = field(default_factory=dict)

    @property
    def total_pj(self) -> float:
        return self.dynamic_pj + self.clock_pj + self.static_pj

    @property
    def total_j(self) -> float:
        return self.total_pj * 1e-12

    @property
    def power_w(self) -> float:
        return self.total_j / self.time_s if self.time_s else 0.0

    @property
    def static_fraction(self) -> float:
        return self.static_pj / self.total_pj if self.total_pj else 0.0


def energy_report(result: SimResult, tech: TechNode) -> EnergyReport:
    """Evaluate the power models over one finished simulation.

    Works on both live results (``result.core`` set) and detached ones
    rebuilt from the campaign store, which carry the core kind and L2
    access count as plain fields instead.
    """
    from repro.core.flywheel import FlywheelCore  # avoid import cycle

    core = result.core
    stats = result.stats
    if core is not None:
        is_flywheel = isinstance(core, FlywheelCore)
        l2_accesses = core.hierarchy.l2.stats.accesses
    else:
        is_flywheel = result.kind == KIND_FLYWHEEL
        l2_accesses = result.l2_accesses

    events = dict(stats.events)
    events["l2_access"] = l2_accesses

    by_event = dynamic_energy_pj(events, tech, flywheel_rf=is_flywheel)
    dynamic = sum(by_event.values())

    fe_active = stats.fe_cycles_active
    be_cycles = stats.total_be_cycles
    structures = (flywheel_structures() if is_flywheel
                  else baseline_structures())
    clock = clock_energy_pj(tech, be_cycles, fe_active, be_cycles)

    time_s = stats.sim_time_ps * 1e-12
    static = leakage_power_w(tech, structures) * time_s * 1e12  # -> pJ

    return EnergyReport(
        name=result.name,
        tech=tech,
        dynamic_pj=dynamic,
        clock_pj=clock,
        static_pj=static,
        time_s=time_s,
        by_event=by_event,
    )
