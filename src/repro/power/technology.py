"""Technology-node electrical parameters (Table 2).

The paper gives supply/threshold voltages and normalized per-device
leakage currents for 0.13um, 0.09um and 0.06um; 0.18um values are filled
in from the same STMicro-derived trend for completeness (the performance
baseline runs at 0.18um but all *power* results are reported at 0.13um and
below, as in the paper).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.errors import ConfigError


@dataclass(frozen=True)
class TechNode:
    """Electrical parameters of one process node."""

    name: str
    feature_um: float
    vdd: float
    vt: float
    leak_na_per_device: float    # normalized leakage current per device

    def __post_init__(self) -> None:
        if self.vdd <= self.vt:
            raise ConfigError(f"{self.name}: Vdd must exceed Vt")

    @property
    def cap_scale(self) -> float:
        """Switched-capacitance multiplier vs 0.18um (linear shrink)."""
        return self.feature_um / 0.18

    @property
    def dyn_scale(self) -> float:
        """Dynamic energy-per-access multiplier vs 0.18um (C * Vdd^2)."""
        return self.cap_scale * (self.vdd / 1.6) ** 2


TECH_180 = TechNode("180nm", 0.18, vdd=1.6, vt=0.30, leak_na_per_device=20.0)
TECH_130 = TechNode("130nm", 0.13, vdd=1.4, vt=0.22, leak_na_per_device=80.0)
TECH_90 = TechNode("90nm", 0.09, vdd=1.2, vt=0.20, leak_na_per_device=280.0)
# Table 2 lists 280 nA for 0.06um as well (same normalized current), but
# the lower Vdd shrinks dynamic energy further, so the static *fraction*
# keeps growing — the effect behind Fig. 15.
TECH_60 = TechNode("60nm", 0.06, vdd=1.1, vt=0.18, leak_na_per_device=280.0)

TECH_BY_NAME: Dict[str, TechNode] = {
    t.name: t for t in (TECH_180, TECH_130, TECH_90, TECH_60)
}
