"""Per-access dynamic energies (Wattch-style switched-capacitance model).

Values are picojoules per event at the 0.18um reference node, scaled to
other nodes by ``TechNode.dyn_scale``. The relative magnitudes follow the
usual Wattch breakdown for a 4-wide out-of-order core: array accesses cost
roughly in proportion to their size and port count, the issue window's CAM
broadcast is the most expensive per-operation structure, and functional
units dominate per executed instruction.

The event names are exactly the counters emitted by the cores into
``SimStats.events``; adding a new activity to a core only requires a new
entry here.
"""

from __future__ import annotations

from typing import Dict, Mapping

from repro.power.technology import TechNode

#: pJ per event at 0.18um.
ACCESS_ENERGY_PJ: Dict[str, float] = {
    # Front-end
    "icache_access": 640.0,      # one 4-instruction fetch group
    "bpred_lookup": 110.0,
    "decode_op": 90.0,
    "rename_op": 150.0,
    # Dual-clock dispatch path
    "sync_fifo_push": 35.0,
    "sync_fifo_pop": 35.0,
    # Issue window
    "iw_write": 190.0,
    "iw_broadcast": 290.0,       # CAM tag match across 128 entries
    "iw_select": 110.0,
    # Register update / renaming tables (Flywheel)
    "update_op": 70.0,
    "srt_swap": 180.0,
    "checkpoint": 180.0,
    # Register file and execution
    "rf_read": 95.0,
    "rf_write": 120.0,
    "fu_op": 430.0,
    "rob_write": 95.0,
    "rob_read": 70.0,
    "lsq_write": 75.0,
    # Data-side memory
    "dcache_access": 560.0,
    "l2_access": 1400.0,
    # Execution Cache
    "ec_ta_lookup": 120.0,
    "ec_block_write": 700.0,     # one 8-slot DA block
    "ec_block_read": 400.0,      # single active bank
    "ec_invalidate": 900.0,
    # Mode plumbing (negligible but tracked)
    "mode_switch": 50.0,
}

#: Structures whose per-access energy grows with the Flywheel's larger
#: register file (512 entries, two cycles) relative to the baseline's 192.
_FLYWHEEL_RF_FACTOR = 1.9


def dynamic_energy_pj(events: Mapping[str, int], tech: TechNode,
                      flywheel_rf: bool = False) -> Dict[str, float]:
    """Energy per event type (pJ) for one run's event counts."""
    out: Dict[str, float] = {}
    scale = tech.dyn_scale
    for event, count in events.items():
        base = ACCESS_ENERGY_PJ.get(event)
        if base is None or not count:
            continue
        if flywheel_rf and event in ("rf_read", "rf_write"):
            base *= _FLYWHEEL_RF_FACTOR
        out[event] = base * count * scale
    return out
