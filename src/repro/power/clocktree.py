"""Clock-distribution energy (Alpha 21264-style grids).

The model charges a fixed switched capacitance per clock edge for the
global grid and for each synchronous island's local grid. A clock-gated
domain (the Flywheel's front-end during trace execution) stops its local
grid: gated cycles burn no grid energy, which is a large part of the
Flywheel's savings since the 21264-class clock network is ~30% of chip
power.
"""

from __future__ import annotations

from repro.power.technology import TechNode

#: pJ per cycle at 0.18um for each grid.
GLOBAL_GRID_PJ = 900.0
FE_LOCAL_GRID_PJ = 700.0     # fetch/decode/rename island
BE_LOCAL_GRID_PJ = 1100.0    # issue window + execution core island


def clock_energy_pj(tech: TechNode, global_cycles: int,
                    fe_active_cycles: int, be_cycles: int) -> float:
    """Total clock-network dynamic energy (pJ).

    ``global_cycles`` should be the fast master-clock cycle count (the
    paper derives both back-end clocks from one master by division); using
    the back-end cycle count is an adequate proxy for single-clock runs.
    """
    scale = tech.dyn_scale
    return scale * (GLOBAL_GRID_PJ * global_cycles
                    + FE_LOCAL_GRID_PJ * fe_active_cycles
                    + BE_LOCAL_GRID_PJ * be_cycles)
