"""Two-component (logic + wire) delay scaling.

Every structure's access time is decomposed as::

    D(node) = logic_ps * logic_scale(node) + wire_ps * wire_scale(node)

with both components expressed at the 0.18um reference. Transistor delay
scales linearly with feature size; wire delay per structure is roughly
constant (shorter wires, but higher RC per unit length), with a mild
degradation at the smallest nodes — the behaviour Palacharla et al. derive
and the paper's Fig. 1 plots.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError

#: Feature sizes (um) used across the paper, in plot order.
TECH_NODES = (0.25, 0.18, 0.13, 0.09, 0.06)

_REF = 0.18


def logic_scale(node_um: float) -> float:
    """Transistor-delay multiplier relative to 0.18um (linear in feature)."""
    _check(node_um)
    return node_um / _REF


def wire_scale(node_um: float) -> float:
    """Wire-delay multiplier relative to 0.18um.

    Wires shrink with the structure but RC per unit length rises; the net
    effect is near-flat with a slight worsening below 90nm (the reason the
    wakeup loop stops scaling).
    """
    _check(node_um)
    if node_um >= _REF:
        return 1.0 + 0.15 * (node_um / _REF - 1.0)
    # Mildly super-unity as nodes shrink: +8% at 0.13, +14% at 0.09, +20% at 0.06.
    return 1.0 + 0.24 * (_REF - node_um) / (_REF - 0.06)


def _check(node_um: float) -> None:
    if not 0.01 <= node_um <= 1.0:
        raise ConfigError(f"implausible feature size {node_um} um")


@dataclass(frozen=True)
class DelayModel:
    """One structure's calibrated delay decomposition (ps at 0.18um)."""

    name: str
    logic_ps: float
    wire_ps: float

    def delay_ps(self, node_um: float) -> float:
        return (self.logic_ps * logic_scale(node_um)
                + self.wire_ps * wire_scale(node_um))

    def frequency_mhz(self, node_um: float, cycles: int = 1) -> float:
        """Achievable clock if the access is pipelined over ``cycles``."""
        if cycles < 1:
            raise ConfigError("cycles must be >= 1")
        return 1e6 * cycles / self.delay_ps(node_um)
