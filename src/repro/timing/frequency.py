"""Table 1: achievable module clock frequencies per technology node.

Each module's frequency is its pipelined access count divided by the total
access time from the calibrated delay models. The baseline's cycle time is
set by the slowest single-cycle module — the issue window — which is the
paper's entire premise: everything else could be clocked faster.
"""

from __future__ import annotations

from typing import Dict

from repro.timing.structures import (
    cache_latency_ps,
    ec_latency_ps,
    iw_latency_ps,
    rf_latency_ps,
)

#: Nodes reported in Table 1 (the paper's frequency table omits 0.25um).
TABLE1_NODES = (0.18, 0.13, 0.09, 0.06)


def module_frequencies_mhz(node_um: float) -> Dict[str, float]:
    """All Table 1 rows for one technology node, in MHz."""
    return {
        "iw_single_cycle": 1e6 / iw_latency_ps(node_um, 128, 6),
        "icache_two_cycle": 2e6 / cache_latency_ps(node_um, 64, 2, 1),
        "dcache_two_cycle": 2e6 / cache_latency_ps(node_um, 64, 4, 2),
        "rf_single_cycle": 1e6 / rf_latency_ps(node_um, 192),
        "ec_three_cycle": 3e6 / ec_latency_ps(node_um),
        "rf512_two_cycle": 2e6 / rf_latency_ps(node_um, 512),
    }


#: Table 1 as printed in the paper, for comparison in reports and tests.
PAPER_TABLE1: Dict[str, Dict[float, int]] = {
    "iw_single_cycle": {0.18: 950, 0.13: 1150, 0.09: 1500, 0.06: 1950},
    "icache_two_cycle": {0.18: 1300, 0.13: 1800, 0.09: 2600, 0.06: 3800},
    "dcache_two_cycle": {0.18: 1000, 0.13: 1400, 0.09: 2000, 0.06: 3000},
    "rf_single_cycle": {0.18: 1150, 0.13: 1650, 0.09: 2250, 0.06: 3250},
    "ec_three_cycle": {0.18: 1000, 0.13: 1400, 0.09: 2050, 0.06: 3000},
    "rf512_two_cycle": {0.18: 1050, 0.13: 1500, 0.09: 2000, 0.06: 2950},
}
