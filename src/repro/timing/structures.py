"""Calibrated access-time models for the paper's structures.

Anchors are fitted so that the 0.18um and 0.06um columns of Table 1
reproduce exactly; intermediate nodes then fall out of the logic/wire
scaling model within a few percent of the paper (the paper's own numbers
are CACTI extrapolations, so the *shape* is the claim, not the last MHz).

Parametric size factors extend the anchors to the other configurations of
Fig. 1 (64-entry issue window, 32K cache, 128/256-entry register files):

* issue window — wakeup wire delay grows with ``entries * width**2``
  (Palacharla et al.), logic with the tag-match depth (log entries);
* cache — decode logic grows with log capacity, associativity and ports;
  bit/word-line wire grows with the array side and port count;
* register file — logic ~ (entries)^0.8, wire ~ entries.
"""

from __future__ import annotations

import math

from repro.errors import ConfigError
from repro.timing.delay import DelayModel

# Anchors at 0.18um (logic_ps, wire_ps), fitted to Table 1.
_IW_128x6 = DelayModel("iw-128x6", logic_ps=874.0, wire_ps=178.6)
_CACHE_64K2W1P = DelayModel("cache-64k-2w-1p", logic_ps=1523.6, wire_ps=14.9)
_RF_192 = DelayModel("rf-192", logic_ps=850.0, wire_ps=19.6)
_EC_128K = DelayModel("ec-128k", logic_ps=2990.0, wire_ps=10.0)


def iw_latency_ps(node_um: float, entries: int = 128, width: int = 6) -> float:
    """Issue-window (single-cycle wakeup+select) access time."""
    if entries < 2 or width < 1:
        raise ConfigError("implausible issue window shape")
    logic_factor = math.log2(entries) / math.log2(128)
    wire_factor = (entries / 128.0) * (width / 6.0) ** 2
    model = DelayModel(
        f"iw-{entries}x{width}",
        _IW_128x6.logic_ps * logic_factor,
        _IW_128x6.wire_ps * wire_factor,
    )
    return model.delay_ps(node_um)


def cache_latency_ps(node_um: float, kb: int = 64, ways: int = 2,
                     ports: int = 1) -> float:
    """SRAM cache total access time (unpipelined, ps)."""
    if kb < 1 or ways < 1 or ports < 1:
        raise ConfigError("implausible cache shape")
    logic_factor = ((1.0 + 0.07 * math.log2(kb / 64.0))
                    * (1.0 + 0.12 * (ways - 2) / 2.0)
                    * (1.0 + 0.15 * (ports - 1)))
    wire_factor = math.sqrt(kb / 64.0) * ports
    model = DelayModel(
        f"cache-{kb}k-{ways}w-{ports}p",
        _CACHE_64K2W1P.logic_ps * logic_factor,
        _CACHE_64K2W1P.wire_ps * wire_factor,
    )
    return model.delay_ps(node_um)


def rf_latency_ps(node_um: float, entries: int = 192) -> float:
    """Register-file total access time (ps)."""
    if entries < 32:
        raise ConfigError("implausible register file size")
    model = DelayModel(
        f"rf-{entries}",
        _RF_192.logic_ps * (entries / 192.0) ** 0.8,
        _RF_192.wire_ps * (entries / 192.0),
    )
    return model.delay_ps(node_um)


def ec_latency_ps(node_um: float) -> float:
    """Execution Cache (TA + chained DA) total access time (ps)."""
    return _EC_128K.delay_ps(node_um)
