"""CACTI-style access-time scaling model (Fig. 1 and Table 1).

The paper derives module latencies from CACTI [4] extended with the
logic-vs-wire decomposition of Palacharla et al. [2]: transistor-dominated
paths speed up roughly linearly with feature size while wire-dominated
paths barely improve. This package reproduces that analysis with a
two-component delay model calibrated to the paper's published 0.18um and
0.06um anchors.
"""

from repro.timing.delay import TECH_NODES, logic_scale, wire_scale, DelayModel
from repro.timing.structures import (
    iw_latency_ps,
    cache_latency_ps,
    rf_latency_ps,
    ec_latency_ps,
)
from repro.timing.frequency import module_frequencies_mhz, TABLE1_NODES

__all__ = [
    "TECH_NODES",
    "logic_scale",
    "wire_scale",
    "DelayModel",
    "iw_latency_ps",
    "cache_latency_ps",
    "rf_latency_ps",
    "ec_latency_ps",
    "module_frequencies_mhz",
    "TABLE1_NODES",
]
