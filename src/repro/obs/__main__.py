"""Observability CLI: ``python -m repro.obs <command>``.

``pipeview``
    Run one machine with the flight recorder armed and render a
    cycle x instruction Gantt for a cycle window.
``chrome``
    Same run, exported as Chrome trace-event JSON (open the file in
    ``about://tracing`` or ui.perfetto.dev).
``metrics``
    Run one machine and print the MetricRegistry snapshot.
``profile``
    Self-profile the simulator: wall seconds per engine phase.

Every command takes the same machine axes (``--kind``, ``--bench``,
``--instructions``, ``--warmup``, ``--seed``); budgets default to the
golden-stats sizes so a smoke invocation stays cheap.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro.obs.profiler import format_profile, profile_machine, write_profile
from repro.obs.render import chrome_trace, render_pipeview
from repro.obs.spec import EVENT_KINDS, TraceSpec


def _add_machine_args(sub: argparse.ArgumentParser) -> None:
    sub.add_argument("--kind", default="baseline",
                     help="registered core kind (default: baseline)")
    sub.add_argument("--bench", default="gcc",
                     help="benchmark profile name (default: gcc)")
    sub.add_argument("--instructions", type=int, default=8000,
                     help="instruction budget (default: 8000)")
    sub.add_argument("--warmup", type=int, default=3000,
                     help="functional warmup instructions (default: 3000)")
    sub.add_argument("--seed", type=int, default=None,
                     help="workload generation seed")


def _add_trace_args(sub: argparse.ArgumentParser) -> None:
    sub.add_argument("--start", type=int, default=0,
                     help="first back-end cycle to record (default: 0)")
    sub.add_argument("--cycles", type=int, default=0,
                     help="record/render this many cycles from --start "
                          "(default: whole run)")
    sub.add_argument("--buffer", type=int, default=65536,
                     help="ring-buffer capacity in events (default: 65536)")
    sub.add_argument("--events", default="",
                     help="comma-separated event mask, subset of: "
                          + ",".join(EVENT_KINDS))


def _traced_result(args):
    """Run the requested machine with the recorder armed."""
    from repro.core.sim import default_config, execute_kind

    mask = tuple(k for k in args.events.split(",") if k)
    spec = TraceSpec(buffer=args.buffer, events=mask, start=args.start,
                     stop=(args.start + args.cycles) if args.cycles else 0)
    config = default_config(args.kind).with_variant(trace=spec)
    return execute_kind(args.kind, args.bench, config=config,
                        max_instructions=args.instructions,
                        warmup=args.warmup, seed=args.seed)


def _cmd_pipeview(args) -> int:
    result = _traced_result(args)
    events = result.trace["events"]
    stop = (args.start + args.cycles) if args.cycles else None
    print(f"{args.kind}/{args.bench}  "
          f"{result.trace['emitted']} events recorded, "
          f"{result.trace['dropped']} dropped")
    print(render_pipeview(events, start=args.start or None, stop=stop,
                          width=args.width, max_instrs=args.limit))
    return 0


def _cmd_chrome(args) -> int:
    result = _traced_result(args)
    payload = chrome_trace(result.trace["events"],
                           label=f"{args.kind}/{args.bench}")
    with open(args.out, "w", encoding="utf-8") as fh:
        json.dump(payload, fh)
    print(f"wrote {len(payload['traceEvents'])} trace events -> {args.out}")
    return 0


def _cmd_metrics(args) -> int:
    from repro.core.sim import execute_kind

    result = execute_kind(args.kind, args.bench,
                          max_instructions=args.instructions,
                          warmup=args.warmup, seed=args.seed)
    metrics = result.stats.metrics
    width = max((len(name) for name in metrics), default=0)
    for name in sorted(metrics):
        value = metrics[name]
        if isinstance(value, dict):
            value = json.dumps(value, sort_keys=True)
        print(f"{name:<{width}}  {value}")
    return 0


def _cmd_profile(args) -> int:
    config = None
    if args.engine != "legacy":
        from repro.core.sim import default_config

        config = default_config(args.kind).with_variant(engine=args.engine)
    report = profile_machine(args.kind, args.bench, config=config,
                             instructions=args.instructions,
                             warmup=args.warmup, seed=args.seed)
    print(format_profile(report))
    if args.out:
        write_profile(report, args.out)
        print(f"wrote {args.out}")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="Flight-recorder tooling: pipeview, Chrome traces, "
                    "metric snapshots, simulator self-profiles.")
    subs = parser.add_subparsers(dest="command", required=True)

    pipeview = subs.add_parser("pipeview",
                               help="render a cycle x instruction Gantt")
    _add_machine_args(pipeview)
    _add_trace_args(pipeview)
    pipeview.add_argument("--width", type=int, default=100,
                          help="Gantt width in columns (default: 100)")
    pipeview.add_argument("--limit", type=int, default=48,
                          help="max instruction rows (default: 48)")
    pipeview.set_defaults(fn=_cmd_pipeview)

    chrome = subs.add_parser("chrome",
                             help="export a Chrome trace-event JSON file")
    _add_machine_args(chrome)
    _add_trace_args(chrome)
    chrome.add_argument("--out", default="trace.json",
                        help="output path (default: trace.json)")
    chrome.set_defaults(fn=_cmd_chrome)

    metrics = subs.add_parser("metrics",
                              help="print the MetricRegistry snapshot")
    _add_machine_args(metrics)
    metrics.set_defaults(fn=_cmd_metrics)

    profile = subs.add_parser("profile",
                              help="wall-time per engine phase")
    _add_machine_args(profile)
    profile.add_argument("--engine", choices=("legacy", "turbo", "vector"),
                         default="legacy",
                         help="execution backend to profile (turbo "
                              "buckets are pool/loop, vector buckets "
                              "are pool/kernel/horizon)")
    profile.add_argument("--out", default="",
                         help="also write the JSON report here")
    profile.set_defaults(fn=_cmd_profile)

    args = parser.parse_args(argv)
    try:
        return args.fn(args)
    except BrokenPipeError:
        # Downstream pager/head closed the pipe; exit quietly the way
        # well-behaved Unix filters do.
        sys.stderr.close()
        return 0


if __name__ == "__main__":
    sys.exit(main())
