"""Named metric registry: one namespace over every layer's counters.

The engine, cores, memory hierarchy and DVFS controllers each keep their
hot counters as plain attributes (``stats.committed``, ``rob.writes``,
``mshr`` aggregates) because attribute increments are what the tick loop
can afford.  The registry does not change that: publishers register
*pull sources* — zero-cost closures over the live structures — and the
registry materialises one flat, dotted-name snapshot on demand
(end of run, per DVFS interval, on deadlock).  Counters, gauges and
histograms created directly through the registry are for code that is
not on the simulator's hot path (renderers, the profiler, tooling).

Snapshots are deterministic for a deterministic simulation, which is
what lets them ride on :class:`SimStats` through the golden-stats gate
and the content-addressed store.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import Callable, Dict, List, Tuple


def _flatten(prefix: str, value, out: Dict[str, object]) -> None:
    if isinstance(value, dict):
        for key in value:
            _flatten(f"{prefix}.{key}" if prefix else str(key),
                     value[key], out)
    else:
        out[prefix] = value


class MetricCounter:
    """Monotonic counter handle."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def inc(self, n: int = 1) -> None:
        self.value += n


class MetricHistogram:
    """Fixed-bucket histogram (upper bounds, plus an overflow bucket)."""

    __slots__ = ("name", "bounds", "counts", "total", "sum")

    def __init__(self, name: str, bounds: Tuple[float, ...]):
        self.name = name
        self.bounds = tuple(sorted(bounds))
        self.counts = [0] * (len(self.bounds) + 1)
        self.total = 0
        self.sum = 0.0

    def observe(self, value: float) -> None:
        self.counts[bisect_right(self.bounds, value)] += 1
        self.total += 1
        self.sum += value

    def to_dict(self) -> Dict[str, object]:
        return {"bounds": list(self.bounds), "counts": list(self.counts),
                "total": self.total, "sum": self.sum}


class MetricRegistry:
    """Flat namespace of counters, gauges, histograms and pull sources."""

    def __init__(self):
        self._counters: Dict[str, MetricCounter] = {}
        self._gauges: Dict[str, Callable[[], object]] = {}
        self._histograms: Dict[str, MetricHistogram] = {}
        self._sources: List[Tuple[str, Callable[[], Dict[str, object]]]] = []
        self._last: Dict[str, float] = {}

    # ------------------------------------------------------- registration

    def counter(self, name: str) -> MetricCounter:
        """Create (or fetch) a push-style counter handle."""
        handle = self._counters.get(name)
        if handle is None:
            handle = self._counters[name] = MetricCounter(name)
        return handle

    def gauge(self, name: str, fn: Callable[[], object]) -> None:
        """Register a point-in-time value read at snapshot time."""
        self._gauges[name] = fn

    def histogram(self, name: str,
                  bounds: Tuple[float, ...]) -> MetricHistogram:
        handle = self._histograms.get(name)
        if handle is None:
            handle = self._histograms[name] = MetricHistogram(name, bounds)
        return handle

    def source(self, prefix: str,
               fn: Callable[[], Dict[str, object]]) -> None:
        """Register a pull source: ``fn()`` returns a (possibly nested)
        dict merged into the snapshot under ``prefix``."""
        self._sources.append((prefix, fn))

    # --------------------------------------------------------- snapshots

    def snapshot(self) -> Dict[str, object]:
        """One flat ``name -> value`` dict over everything registered.

        Keys are sorted so serialized snapshots are byte-stable.
        """
        out: Dict[str, object] = {}
        for name, counter in self._counters.items():
            out[name] = counter.value
        for name, fn in self._gauges.items():
            out[name] = fn()
        for name, hist in self._histograms.items():
            out[name] = hist.to_dict()
        for prefix, fn in self._sources:
            _flatten(prefix, fn(), out)
        return dict(sorted(out.items()))

    def interval(self) -> Dict[str, float]:
        """Deltas of every numeric metric since the previous call.

        Gauges are points in time, not accumulations, so they appear
        with their absolute value; histograms are skipped.
        """
        snap = self.snapshot()
        out: Dict[str, float] = {}
        last = self._last
        for name, value in snap.items():
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                continue
            if name in self._gauges:
                out[name] = value
            else:
                out[name] = value - last.get(name, 0)
            last[name] = value
        return out


def metrics_delta(a: Dict[str, object], b: Dict[str, object],
                  limit: int = 0) -> List[Dict[str, object]]:
    """Changed numeric metrics between two flat snapshots, biggest first.

    ``a`` and ``b`` are :meth:`MetricRegistry.snapshot`-shaped dicts
    (e.g. ``SimStats.metrics`` of two stored runs).  Rows carry both
    values, the absolute delta and the relative change (``None`` when
    the metric is absent on one side — a code-version difference — or
    divides by zero).  Unchanged metrics and non-numeric values
    (histogram dicts, labels) are dropped; rows sort by relative change
    magnitude, metrics without one last.  ``limit`` truncates (0 = all).
    """
    def numeric(value):
        return (value if isinstance(value, (int, float))
                and not isinstance(value, bool) else None)

    rows: List[Dict[str, object]] = []
    for name in sorted(set(a) | set(b)):
        va, vb = numeric(a.get(name)), numeric(b.get(name))
        if va is None and vb is None:
            continue
        if va == vb:
            continue
        delta = vb - va if va is not None and vb is not None else None
        rel = (delta / va if delta is not None and va else None)
        rows.append({"metric": name, "a": va, "b": vb,
                     "delta": delta, "rel": rel})
    rows.sort(key=lambda r: (r["rel"] is None,
                             -abs(r["rel"]) if r["rel"] is not None else 0.0,
                             r["metric"]))
    return rows[:limit] if limit else rows


def register_core_sources(registry: MetricRegistry, core) -> None:
    """Wire a core's live structures into the registry as pull sources.

    Works against the attribute contract shared by the built-in kinds
    (``stats``, ``be``, ``iw``, ``hierarchy``, optional ``trace``);
    anything absent is simply not registered.
    """
    stats = core.stats
    registry.source("engine", lambda: {
        "committed": stats.committed,
        "fetched": stats.fetched,
        "issued": stats.issued,
        "cycles": stats.total_be_cycles,
        "branches": stats.branches,
        "mispredicts": stats.mispredicts,
        "traces_built": stats.traces_built,
        "instrs_from_ec": stats.instrs_from_ec,
        "rename_pool_stalls": stats.rename_pool_stalls,
    })
    registry.source("power", lambda: dict(stats.events))
    be = getattr(core, "be", None)
    if be is not None:
        registry.source("engine.rob", lambda: {
            "occupancy": len(be.rob), "capacity": be.rob.capacity,
            "writes": be.rob.writes,
        })
        registry.source("engine.lsq", lambda: {
            "occupancy": len(be.lsq), "capacity": be.lsq.capacity,
            "inserts": be.lsq.inserts,
        })
    iw = getattr(core, "iw", None)
    if iw is not None:
        registry.source("engine.iw", lambda: {
            "occupancy": len(iw), "capacity": iw.capacity,
            "writes": iw.writes, "broadcasts": iw.broadcasts,
        })
    hierarchy = getattr(core, "hierarchy", None)
    if hierarchy is not None:
        registry.source("mem", hierarchy.stats_dict)
    registry.source("dvfs", lambda: {
        "retunes": stats.dvfs_retunes,
        "freq_points": len(stats.freq_trace),
    })
    trace = getattr(core, "trace", None)
    if trace is not None:
        registry.source("trace", lambda: {
            "emitted": trace.emitted, "dropped": trace.dropped,
            "retained": len(trace.events),
        })
