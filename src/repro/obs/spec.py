"""Declarative tracing spec: what the flight recorder should capture.

:class:`TraceSpec` is the user-facing knob, carried on
:class:`~repro.core.config.CoreConfig` the same way :class:`MemorySpec`
is: a frozen dataclass that serializes through ``asdict`` and rebuilds
from a plain dict, so it travels through cache keys, the campaign store
and worker processes unchanged.  ``trace=None`` (the default) means *no
recorder is ever constructed* — the cores then carry a single ``None``
attribute and every emission site is one ``is not None`` branch, which
is the whole no-op-path guarantee.

This module deliberately imports nothing from ``repro.core`` so that
``repro.core.config`` can import it without a cycle.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field, fields
from typing import Dict, Tuple

from repro.errors import ConfigError

#: Every event kind the recorder understands, in pipeline order where
#: that is meaningful.  An empty ``events`` mask on the spec means "all
#: of these".
EVENT_KINDS: Tuple[str, ...] = (
    "fetch", "decode", "rename", "dispatch", "issue", "complete",
    "retire", "stall", "mem", "clock",
)

#: Stall-reason taxonomy carried in the ``info`` slot of ``stall``
#: events.  DESIGN.md §7 documents where each one is emitted.
STALL_REASONS: Tuple[str, ...] = (
    "rob_full",     # dispatch blocked: reorder buffer at capacity
    "iw_full",      # dispatch blocked: issue window at capacity
    "lsq_full",     # dispatch blocked: load/store queue at capacity
    "pool_full",    # rename blocked: flywheel checkpoint pool exhausted
    "mshr_full",    # memory request blocked: all MSHRs busy
    "fu_busy",      # ready instructions exist but no functional unit
    "dep_wait",     # window occupied, nothing has ready operands
)


@dataclass(frozen=True)
class TraceSpec:
    """Flight-recorder configuration.

    ``buffer``
        Ring-buffer capacity in events; the recorder keeps the *last*
        ``buffer`` events and counts the rest as dropped.
    ``events``
        Event-kind mask, a subset of :data:`EVENT_KINDS`.  Empty means
        record everything.
    ``start`` / ``stop``
        Back-end cycle window: events before ``start`` or at/after
        ``stop`` are not recorded.  ``stop=0`` means "until the end".
    """

    buffer: int = 65536
    events: Tuple[str, ...] = field(default_factory=tuple)
    start: int = 0
    stop: int = 0

    def __post_init__(self) -> None:
        # Dict payloads (store records, worker processes) carry the mask
        # as a list; normalise so equality and hashing behave.
        if isinstance(self.events, list):
            object.__setattr__(self, "events", tuple(self.events))
        if self.buffer < 1:
            raise ConfigError(f"trace buffer must be >= 1, got {self.buffer}")
        if self.start < 0:
            raise ConfigError(f"trace start must be >= 0, got {self.start}")
        if self.stop and self.stop <= self.start:
            raise ConfigError(
                f"trace stop ({self.stop}) must be 0 or > start ({self.start})")
        for kind in self.events:
            if kind not in EVENT_KINDS:
                raise ConfigError(
                    f"unknown trace event kind {kind!r}; "
                    f"known: {', '.join(EVENT_KINDS)}")

    @property
    def label(self) -> str:
        """Compact human-readable tag for report lines."""
        bits = [f"buf{self.buffer}"]
        if self.start or self.stop:
            bits.append(f"[{self.start}:{self.stop or ''}]")
        if self.events:
            bits.append("+".join(self.events))
        return "trace(" + ",".join(bits) + ")"

    def to_dict(self) -> Dict[str, object]:
        payload = asdict(self)
        payload["events"] = list(self.events)   # JSON-stable, not a tuple
        return payload

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "TraceSpec":
        known = {f.name for f in fields(cls)}
        return cls(**{k: v for k, v in payload.items() if k in known})
