"""Trace renderers: text pipeview and Chrome trace-event JSON.

Both renderers consume the flight recorder's ``(cycle, kind, seq,
info)`` event list — live (``recorder.events``) or serialized
(``result.trace["events"]``) — and never touch the simulator, so they
can run long after a campaign finished, against store records.

The pipeview is a gem5-O3/Konata-style Gantt: one row per instruction,
one column per cycle (or per bucket of cycles when the window is wider
than the terminal), stage events marked with capital letters and the
spans between them with fillers, so dependence stalls and memory
shadows are visible at a glance.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

Event = Sequence  # (cycle, kind, seq, info), tuple or list

#: Lifecycle stages in pipeline order with their pipeview markers.
STAGE_CHARS: Dict[str, str] = {
    "fetch": "F", "decode": "D", "rename": "N", "dispatch": "P",
    "issue": "I", "complete": "C", "retire": "R",
}
STAGE_ORDER: Tuple[str, ...] = tuple(STAGE_CHARS)

#: Filler drawn between a stage and the next one: the phase the
#: instruction is *in* after that stage fires.
_SPAN_CHARS: Dict[str, str] = {
    "fetch": ".", "decode": ".", "rename": ".",
    "dispatch": "w",            # waiting in the issue window
    "issue": "=",               # executing
    "complete": "-",            # done, waiting to retire in order
}

PIPEVIEW_LEGEND = (
    "F fetch  D decode  N rename  P dispatch  I issue  C complete  "
    "R retire  |  . in-flight  w waiting  = executing  - done"
)


def lifecycles(events: Iterable[Event]) -> Dict[int, Dict[str, int]]:
    """``seq -> {stage: first cycle}`` for every traced instruction."""
    out: Dict[int, Dict[str, int]] = {}
    for cycle, kind, seq, _info in events:
        if seq < 0 or kind not in STAGE_CHARS:
            continue
        stages = out.setdefault(seq, {})
        if kind not in stages:
            stages[kind] = cycle
    return out


def render_pipeview(events: Iterable[Event], start: Optional[int] = None,
                    stop: Optional[int] = None, width: int = 100,
                    max_instrs: int = 48) -> str:
    """Cycle x instruction Gantt over ``[start, stop)`` as one string."""
    events = [ev for ev in events]
    lives = lifecycles(events)
    if not lives:
        return "(no lifecycle events in trace window)"
    all_cycles = [c for stages in lives.values() for c in stages.values()]
    lo = min(all_cycles) if start is None else start
    hi = (max(all_cycles) + 1) if stop is None else stop
    span = max(hi - lo, 1)
    # One column per cycle until the window outgrows the terminal, then
    # fixed-size buckets; stage markers win over fillers within a bucket.
    step = max(1, -(-span // width))
    cols = -(-span // step)

    rows: List[Tuple[int, Dict[str, int]]] = sorted(
        (seq, stages) for seq, stages in lives.items()
        if any(lo <= c < hi for c in stages.values()))
    clipped = max(0, len(rows) - max_instrs)
    if clipped:
        rows = rows[:max_instrs]

    lines = [
        f"pipeview  cycles [{lo}, {hi})  step={step}  "
        f"{len(rows)} instruction(s)" + (f"  (+{clipped} clipped)"
                                         if clipped else ""),
        PIPEVIEW_LEGEND,
        "",
    ]
    for seq, stages in rows:
        cells = [" "] * cols
        ordered = sorted(((c, st) for st, c in stages.items()),
                         key=lambda item: (item[0],
                                           STAGE_ORDER.index(item[1])))
        # Fillers first, markers after, so markers always survive.
        for (c, st), nxt in zip(ordered, ordered[1:] + [None]):
            filler = _SPAN_CHARS.get(st)
            if filler and nxt is not None:
                a = max(c + 1, lo)
                b = min(nxt[0], hi)
                for cyc in range(a, b):
                    cells[(cyc - lo) // step] = filler
        for c, st in ordered:
            if lo <= c < hi:
                cells[(c - lo) // step] = STAGE_CHARS[st]
        lines.append(f"{seq:>8} |{''.join(cells)}|")
    return "\n".join(lines)


def chrome_trace(events: Iterable[Event],
                 label: str = "repro") -> Dict[str, object]:
    """Chrome trace-event JSON (load in ``about://tracing`` / Perfetto).

    One back-end cycle maps to one microsecond of trace time.  Each
    instruction becomes a thread (its seq is the tid) carrying complete
    ("X") events for its pipeline spans; stalls and cache misses become
    instant events and clock retunes a counter track.
    """
    events = [ev for ev in events]
    lives = lifecycles(events)
    trace_events: List[Dict[str, object]] = [{
        "name": "process_name", "ph": "M", "pid": 0,
        "args": {"name": label},
    }]
    for seq in sorted(lives):
        stages = lives[seq]
        ordered = sorted(((c, st) for st, c in stages.items()),
                         key=lambda item: (item[0],
                                           STAGE_ORDER.index(item[1])))
        trace_events.append({
            "name": "thread_name", "ph": "M", "pid": 0, "tid": seq,
            "args": {"name": f"instr {seq}"},
        })
        for (c, st), nxt in zip(ordered, ordered[1:] + [None]):
            dur = (nxt[0] - c) if nxt is not None else 1
            trace_events.append({
                "name": st, "cat": "instr", "ph": "X",
                "ts": c, "dur": max(dur, 1), "pid": 0, "tid": seq,
            })
    for cycle, kind, seq, info in events:
        if kind == "stall":
            trace_events.append({
                "name": f"stall:{info}", "cat": "stall", "ph": "i",
                "ts": cycle, "pid": 0, "tid": max(seq, 0), "s": "p",
            })
        elif kind == "mem":
            trace_events.append({
                "name": f"miss@L{info}", "cat": "mem", "ph": "i",
                "ts": cycle, "pid": 0, "tid": max(seq, 0), "s": "p",
            })
        elif kind == "clock":
            trace_events.append({
                "name": "freq_mhz", "ph": "C", "ts": cycle, "pid": 0,
                "args": {"mhz": info},
            })
    return {"traceEvents": trace_events, "displayTimeUnit": "ms",
            "otherData": {"cycle_unit": "1 cycle = 1us of trace time"}}
