"""Observability: flight recorder, metric registry, renderers, profiler.

The simulator's fourth subsystem (after the engine, the memory system
and the DVFS layer): a :class:`TraceSpec` on a ``CoreConfig`` arms a
:class:`TraceRecorder` inside every core kind, a
:class:`MetricRegistry` gives every layer's counters one dotted
namespace, the renderers turn recorded events into a text pipeview or a
Chrome trace, and the self-profiler buckets the simulator's own wall
time per engine phase.  ``python -m repro.obs`` is the CLI over all of
it.  DESIGN.md §7 documents the event schema and the no-op-path
guarantee.
"""

from repro.obs.metrics import (
    MetricCounter,
    MetricHistogram,
    MetricRegistry,
    metrics_delta,
    register_core_sources,
)
from repro.obs.profiler import PhaseProfile, install, profile_machine
from repro.obs.render import chrome_trace, lifecycles, render_pipeview
from repro.obs.spec import EVENT_KINDS, STALL_REASONS, TraceSpec
from repro.obs.trace import TraceRecorder

__all__ = [
    "EVENT_KINDS",
    "MetricCounter",
    "MetricHistogram",
    "MetricRegistry",
    "PhaseProfile",
    "STALL_REASONS",
    "TraceRecorder",
    "TraceSpec",
    "chrome_trace",
    "install",
    "lifecycles",
    "metrics_delta",
    "profile_machine",
    "register_core_sources",
    "render_pipeview",
]
