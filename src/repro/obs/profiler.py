"""Self-profiler: wall-time per engine phase of the *simulator*.

Where the trace recorder watches the simulated machine, the profiler
watches the Python that simulates it: how many wall-clock seconds each
pipeline phase of the tick loop costs.  Its output is the target list
for the ROADMAP's compiled-hot-loop work, written next to
``BENCH_core.json`` by ``bench_sim_speed --profile`` and by
``python -m repro.obs profile``.

Phase buckets (mapping the frontend/schedule/exec/mem/retire phases of
the engine onto the code that implements them):

``frontend``   fetch + decode (I-cache model, branch prediction)
``rename``     register renaming
``dispatch``   ROB/LSQ/window admission
``schedule``   wake-up/select plus execution scheduling — includes the
               D-cache/MSHR model, which is invoked at load scheduling
``backend``    the engine tick: FU bookkeeping, writeback broadcast,
               in-order retire (and store D-cache traffic at commit)

For the dual-clock Flywheel the domain boundary is the honest cut:
``frontend`` is the FE-domain tick, ``backend`` the BE-domain tick.

The synchronous cores are profiled through a *mirrored* step function
installed as an instance attribute: ``BaselineCore.run`` calls
``self.step()``, so the shadow takes over without touching the hot
loop for unprofiled runs.  The mirror must stay in lockstep with
``BaselineCore.step`` — ``tests/test_obs.py`` pins equal stats from a
profiled and an unprofiled run.  Anything left of the run loop that no
bucket claims (skip-ahead analysis, watchdog polling, the loop itself)
shows up as ``other``, which is itself a useful number.
"""

from __future__ import annotations

import json
from time import perf_counter
from typing import Dict, Optional

PHASES = ("frontend", "rename", "dispatch", "schedule", "backend")

#: The turbo backend's buckets: it has no per-stage boundaries to clock
#: (the whole point is one fused loop), so it reports the two phases it
#: actually has — building/warming the instruction pool, and the loop.
TURBO_PHASES = ("pool", "loop")

#: The vector tier's buckets: pool/plan build, the fused kernel loop,
#: and the event-horizon analysis (the skip-ahead bound computation),
#: reported separately so its overhead is a tracked number.
VECTOR_PHASES = ("pool", "kernel", "horizon")


class PhaseProfile:
    """Accumulated wall seconds per engine phase of one run.

    ``phases`` is per-instance: the legacy engines bucket by pipeline
    stage (:data:`PHASES`), the turbo backend by :data:`TURBO_PHASES`.
    """

    def __init__(self, phases=PHASES):
        self.phases = tuple(phases)
        self.seconds: Dict[str, float] = {ph: 0.0 for ph in self.phases}
        self.ticks = 0
        self.warmup_s = 0.0
        self.run_s = 0.0

    @property
    def other_s(self) -> float:
        """Run-loop time outside every phase bucket (skip-ahead
        analysis, watchdog polling, loop overhead)."""
        return max(0.0, self.run_s - sum(self.seconds.values()))

    def to_dict(self) -> Dict[str, object]:
        total = self.run_s or 1.0
        return {
            "phases_s": {ph: round(s, 6) for ph, s in self.seconds.items()},
            "phase_frac": {ph: round(s / total, 4)
                           for ph, s in self.seconds.items()},
            "other_s": round(self.other_s, 6),
            "warmup_s": round(self.warmup_s, 6),
            "run_s": round(self.run_s, 6),
            "ticks": self.ticks,
        }


def _profiled_sync_step(core, prof, pc=perf_counter):
    """Mirror of :meth:`BaselineCore.step` with per-phase timestamps.

    Must perform exactly the same stage calls under exactly the same
    guards; the stats-equivalence test in tests/test_obs.py enforces it.
    """
    seconds = prof.seconds

    def step():
        c = core.cycle
        t0 = pc()
        core.be.tick(c, core.mem_scale)
        t1 = pc()
        seconds["backend"] += t1 - t0
        if core.iw._count and not (core._wakeup_gate and (c & 1)):
            core._do_issue(c)
        t2 = pc()
        seconds["schedule"] += t2 - t1
        if core._rename_out:
            core._do_dispatch(c)
        t3 = pc()
        seconds["dispatch"] += t3 - t2
        if core._decode_out:
            core._do_rename(c)
        t4 = pc()
        seconds["rename"] += t4 - t3
        if core._fetch_out:
            core.fe.decode(c)
        if not core._fetch_blocked and c >= core._fetch_resume_cycle:
            core._do_fetch(c)
        seconds["frontend"] += pc() - t4
        core.cycle = c + 1
        prof.ticks += 1

    return step


def _wrap_domain_tick(fn, seconds, bucket, pc=perf_counter):
    def tick(now_ps):
        t0 = pc()
        fn(now_ps)
        seconds[bucket] += pc() - t0
    return tick


def install(core) -> PhaseProfile:
    """Attach phase timing to a core; must run before ``core.run()``.

    Dispatches on the engine first: a core configured with
    ``engine="turbo"`` or ``engine="vector"`` never calls
    ``step``/``_fe_tick``/``_be_tick`` (the whole run is one fused
    loop), so the profile is handed to the engine entry point via
    ``core._turbo_prof``, which stamps the ``pool``/``loop`` buckets
    itself (``pool``/``kernel``/``horizon`` on the vector tier).  Legacy engines dispatch on the
    attribute contract of the built-in kinds: a single-clock core
    exposes ``step``; a dual-clock core exposes ``_fe_tick``/``_be_tick``
    (rebound by its run loop from ``self``, so instance-attribute
    shadows take effect).  Raises ``TypeError`` for cores exposing
    neither.
    """
    engine = getattr(getattr(core, "config", None), "engine", "legacy")
    if engine != "legacy":
        # Dual-clock cores run the turbo hybrid loop whatever the
        # engine tier, so only single-clock vector runs get the
        # kernel/horizon buckets.
        vec = engine == "vector" and not hasattr(core, "_fe_tick")
        prof = PhaseProfile(VECTOR_PHASES if vec else TURBO_PHASES)
        core._turbo_prof = prof
        return prof
    prof = PhaseProfile()
    if hasattr(core, "_fe_tick") and hasattr(core, "_be_tick"):
        core._fe_tick = _wrap_domain_tick(core._fe_tick, prof.seconds,
                                          "frontend")
        core._be_tick = _wrap_domain_tick(core._be_tick, prof.seconds,
                                          "backend")
    elif hasattr(core, "step"):
        core.step = _profiled_sync_step(core, prof)
    else:
        raise TypeError(
            f"cannot profile {type(core).__name__}: exposes neither "
            "step() nor _fe_tick/_be_tick")
    return prof


def profile_machine(kind: str, workload, config=None, fly=None, clock=None,
                    instructions: Optional[int] = None,
                    warmup: Optional[int] = None,
                    seed: Optional[int] = None,
                    mem_scale: float = 1.0) -> Dict[str, object]:
    """Run one machine with phase profiling; returns the profile report.

    Follows the built-in runners' construction contract (kind registry,
    default config/clock, functional warmup), so the simulated machine
    is the same one ``Session.run`` would produce — only the wall clock
    is watched more closely.
    """
    # Deferred imports: repro.core.sim imports nothing from repro.obs,
    # but keeping the profiler importable without the core package costs
    # nothing and mirrors the render/trace modules' independence.
    from repro.core.config import ClockPlan, FlywheelConfig
    from repro.core.registry import get_kind
    from repro.core.sim import (DEFAULT_INSTRUCTIONS, DEFAULT_WARMUP,
                                _resolve_workload)
    from repro.workloads import InstructionStream

    info = get_kind(kind)
    config = config or info.default_config()
    clock = clock or ClockPlan()
    instructions = DEFAULT_INSTRUCTIONS if instructions is None else instructions
    warmup = DEFAULT_WARMUP if warmup is None else warmup
    program = _resolve_workload(workload, seed)
    stream = InstructionStream(program)
    if info.dual_clock:
        fly = fly or FlywheelConfig()
        core = info.core_cls(config, fly, clock, stream,
                             mem_scale=mem_scale)
    else:
        core = info.core_cls(config, stream, mem_scale=mem_scale,
                             clock=clock)
    prof = install(core)

    t0 = perf_counter()
    if warmup:
        core._functional_warmup(warmup)
        if core.dvfs is not None:
            core.dvfs.reset_baseline(core)
    t1 = perf_counter()
    stats = core.run(instructions, warmup=0)
    prof.run_s = perf_counter() - t1
    prof.warmup_s = t1 - t0

    cycles = stats.total_be_cycles
    report = {
        "kind": kind,
        "workload": program.name,
        "instructions": instructions,
        "warmup": warmup,
        "cycles": cycles,
        "cycles_per_sec": round(cycles / prof.run_s, 1) if prof.run_s else 0.0,
        "profile": prof.to_dict(),
    }
    return report


def write_profile(report: Dict[str, object], path: str) -> None:
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
        fh.write("\n")


def format_profile(report: Dict[str, object]) -> str:
    """Human-readable table for the CLI."""
    prof = report["profile"]
    lines = [
        f"{report['kind']}/{report['workload']}  "
        f"{report['cycles']} cycles in {prof['run_s']:.3f}s  "
        f"({report['cycles_per_sec']:.0f} cyc/s)",
        f"  warmup: {prof['warmup_s']:.3f}s",
    ]
    # Iterate the report's own buckets (legacy stage phases or the turbo
    # backend's pool/loop), not the module-level tuple.
    for ph in prof["phases_s"]:
        s = prof["phases_s"][ph]
        frac = prof["phase_frac"][ph]
        bar = "#" * int(round(frac * 40))
        lines.append(f"  {ph:<9} {s:8.3f}s  {frac:6.1%}  {bar}")
    lines.append(f"  {'other':<9} {prof['other_s']:8.3f}s")
    return "\n".join(lines)
