"""The flight recorder: a bounded ring buffer of lifecycle events.

One event is a 4-tuple ``(cycle, kind, seq, info)``:

``cycle``
    Back-end cycle of the event.  The Flywheel front end runs in its own
    clock domain; its fetch/rename events are stamped with the back-end
    cycle current at emission time so one monotone axis covers a run.
``kind``
    One of :data:`repro.obs.spec.EVENT_KINDS`.
``seq``
    Dynamic instruction sequence number, or ``-1`` for machine-level
    events (clock retunes, per-cycle scheduler stalls).
``info``
    Kind-specific payload, always JSON-safe: a stall reason string, an
    execution latency for ``issue``, the miss service level for ``mem``,
    the new frequency in MHz for ``clock``, else ``None``.

The recorder is only ever constructed when a :class:`TraceSpec` is
present on the core config.  Cores hold ``self.trace = None`` otherwise
and guard every emission with a single ``is not None`` branch — the
recorder itself never needs a "disabled" mode.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Optional, Tuple

from repro.obs.spec import EVENT_KINDS, TraceSpec

Event = Tuple[int, str, int, object]


class TraceRecorder:
    """Bounded ring buffer of ``(cycle, kind, seq, info)`` events."""

    __slots__ = ("spec", "events", "emitted", "_mask", "_start", "_stop")

    def __init__(self, spec: TraceSpec):
        self.spec = spec
        self.events: "deque[Event]" = deque(maxlen=spec.buffer)
        self.emitted = 0                    # accepted (incl. overwritten)
        self._mask = frozenset(spec.events or EVENT_KINDS)
        self._start = spec.start
        self._stop = spec.stop

    def wants(self, kind: str) -> bool:
        """True if ``kind`` passes the event mask (window not checked)."""
        return kind in self._mask

    def active(self, cycle: int) -> bool:
        """True if ``cycle`` falls inside the recording window."""
        if cycle < self._start:
            return False
        return not self._stop or cycle < self._stop

    def emit(self, cycle: int, kind: str, seq: int,
             info: object = None) -> None:
        if cycle < self._start or (self._stop and cycle >= self._stop):
            return
        if kind not in self._mask:
            return
        self.emitted += 1
        self.events.append((cycle, kind, seq, info))

    @property
    def dropped(self) -> int:
        """Events accepted but overwritten by newer ones (ring full)."""
        return self.emitted - len(self.events)

    def window(self, last_cycles: Optional[int] = None) -> List[Event]:
        """The retained events, optionally only the final N cycles."""
        events = list(self.events)
        if last_cycles is None or not events:
            return events
        horizon = events[-1][0] - last_cycles
        return [ev for ev in events if ev[0] > horizon]

    def serialize(self) -> Dict[str, object]:
        """JSON-safe payload carried on :class:`SimResult`."""
        return {
            "spec": self.spec.to_dict(),
            "emitted": self.emitted,
            "dropped": self.dropped,
            "events": [list(ev) for ev in self.events],
        }
