"""Exception hierarchy for the repro package.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch one type. Sub-types distinguish configuration mistakes
from internal simulation invariant violations (the latter indicate a bug
in the simulator, not in user input).
"""


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class ConfigError(ReproError):
    """A configuration value is invalid or inconsistent."""


class WorkloadError(ReproError):
    """A synthetic program or profile is malformed."""


class SimulationError(ReproError):
    """An internal simulation invariant was violated (simulator bug)."""


class DeadlockError(SimulationError):
    """No instruction committed for a full watchdog window.

    ``snapshot`` carries the machine state at the moment the watchdog
    tripped — occupancies (ROB/LSQ/issue window/MSHR), the oldest
    in-flight instruction, and (when the flight recorder is armed) the
    last trace-window events — so a deadlock is debuggable from the
    exception alone, without re-running under a tracer.
    """

    def __init__(self, message: str, snapshot=None):
        super().__init__(message)
        self.snapshot = snapshot or {}


class CampaignError(ReproError):
    """A campaign spec is invalid or a campaign run failed (bad run kind,
    corrupt store record, worker failure or per-job timeout)."""
