"""Instruction-set model used by the simulated cores.

The ISA is deliberately abstract: instructions carry the information the
timing and power models need (operation class, register dependencies,
memory address, branch outcome) without data values. This mirrors the
level of detail of trace-driven performance simulators.
"""

from repro.isa.opclasses import (
    OpClass,
    EXEC_LATENCY,
    FU_KIND,
    FuKind,
    is_memory,
    is_branch,
)
from repro.isa.registers import (
    NUM_INT_REGS,
    NUM_FP_REGS,
    NUM_ARCH_REGS,
    INT_REG_BASE,
    FP_REG_BASE,
    ZERO_REG,
    reg_name,
)
from repro.isa.instruction import (
    BranchKind,
    MemRef,
    BranchSpec,
    StaticInstr,
    DynInstr,
)

__all__ = [
    "OpClass",
    "EXEC_LATENCY",
    "FU_KIND",
    "FuKind",
    "is_memory",
    "is_branch",
    "NUM_INT_REGS",
    "NUM_FP_REGS",
    "NUM_ARCH_REGS",
    "INT_REG_BASE",
    "FP_REG_BASE",
    "ZERO_REG",
    "reg_name",
    "BranchKind",
    "MemRef",
    "BranchSpec",
    "StaticInstr",
    "DynInstr",
]
