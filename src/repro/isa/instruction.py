"""Static and dynamic instruction representations.

A :class:`StaticInstr` lives in a synthetic program's basic block and
describes *how* to produce dynamic behaviour (which registers, which memory
region, what kind of branch). A :class:`DynInstr` is one dynamic instance
produced by the architectural walker: it has a concrete address, branch
outcome and sequence number, and is what the pipeline models actually move
around.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional, Tuple

from repro.isa.opclasses import OpClass, is_branch, is_memory


class BranchKind(enum.IntEnum):
    """Control-flow behaviour of a block terminator."""

    NONE = 0        # fall through
    COND = 1        # conditional branch (loop or data-dependent)
    UNCOND = 2      # unconditional jump
    CALL = 3        # call (pushes return address)
    RET = 4         # return (pops return address)


@dataclass(frozen=True)
class MemRef:
    """Static description of a memory access pattern.

    ``region`` names a memory region declared by the program; the walker
    turns (region, stride, random) into concrete addresses. Sequential
    accesses use ``stride`` bytes per dynamic instance; ``random`` accesses
    draw uniformly from the region, which defeats spatial locality and is
    how large-working-set benchmarks produce cache misses.

    ``stream`` accesses advance a cursor *shared per region* instead of
    the per-static-instruction one: every load/store in the program
    marches the same front through the region, the way a copy/scan
    kernel walks its buffers. The shared front leaves the caches behind
    at a rate set by ``stride``, producing the sustained, sequential
    (prefetchable, MSHR-overlappable) miss traffic that the
    memory-system experiments need — per-sid cursors instead re-walk
    the same first few KB and stay L1-resident.
    """

    region: int
    stride: int = 8
    random: bool = False
    stream: bool = False


@dataclass(frozen=True)
class BranchSpec:
    """Static description of a conditional branch's outcome behaviour.

    Exactly one of the behaviours applies:

    * ``loop_trip > 0`` — deterministic loop back-edge: taken ``loop_trip-1``
      times, then not taken once (counter resets each time the loop is
      re-entered).
    * otherwise — Bernoulli with probability ``taken_prob`` of being taken,
      drawn from the walker's seeded RNG. ``taken_prob`` near 0 or 1 makes
      the branch highly predictable; near 0.5 makes it essentially
      unpredictable by gshare.
    """

    loop_trip: int = 0
    taken_prob: float = 0.5


@dataclass(frozen=True)
class StaticInstr:
    """One instruction slot in a basic block of a synthetic program."""

    sid: int                               # unique static id within program
    op: OpClass
    dest: Optional[int] = None             # flat architected register or None
    srcs: Tuple[int, ...] = ()
    mem: Optional[MemRef] = None           # for LOAD/STORE
    branch_kind: BranchKind = BranchKind.NONE
    branch: Optional[BranchSpec] = None    # for COND terminators
    taken_target: Optional[int] = None     # block id if taken / jump target
    fall_target: Optional[int] = None      # block id if not taken

    def __post_init__(self) -> None:
        if is_memory(self.op) and self.mem is None:
            raise ValueError(f"memory instruction {self.sid} lacks a MemRef")
        if self.branch_kind == BranchKind.COND and self.branch is None:
            raise ValueError(f"conditional branch {self.sid} lacks a BranchSpec")
        if is_branch(self.op) and self.branch_kind == BranchKind.NONE:
            raise ValueError(f"branch instruction {self.sid} lacks a branch kind")


@dataclass(slots=True)
class DynInstr:
    """One dynamic instance of a static instruction.

    Produced in program order by the architectural walker; fields that the
    pipeline fills in during simulation (rename tags, timestamps) live in
    the pipeline's own bookkeeping, not here, so a DynInstr can be shared
    between the oracle stream and the core without aliasing bugs.

    Slotted: millions of these are created per campaign, and the cores
    touch their fields in every pipeline stage.
    """

    seq: int                               # program-order sequence number
    pc: int                                # byte address of the instruction
    op: OpClass
    dest: Optional[int]
    srcs: Tuple[int, ...]
    sid: int                               # static id (trace path matching)
    mem_addr: Optional[int] = None
    branch_kind: BranchKind = BranchKind.NONE
    taken: bool = False                    # actual outcome
    target_pc: int = 0                     # actual next PC if taken
    fall_pc: int = 0                       # next sequential PC

    # Fields annotated by pipelines (kept here to avoid per-core wrappers;
    # each core owns its DynInstr instances exclusively).
    dest_tag: int = -1                     # physical destination tag
    src_tags: Tuple[int, ...] = field(default_factory=tuple)
    old_dest_tag: int = -1                 # previous mapping (for freeing)
    dest_lid: int = -1                     # Flywheel logical id of dest
    src_lids: Tuple[int, ...] = field(default_factory=tuple)
    trace_start: bool = False              # first instruction of a trace
    trace_pos: int = -1                    # program-order position in trace
    trace_gen: int = 0                     # trace generation (drain tracking)
    #: Cycle at which this instruction leaves its current pipeline latch.
    #: Owned by whichever latch currently holds the instruction (an
    #: instruction sits in exactly one latch at a time), replacing
    #: per-stage (cycle, dyn) tuples on the hot path.
    lat_ready: int = 0

    @property
    def is_branch(self) -> bool:
        return self.branch_kind != BranchKind.NONE

    @property
    def next_pc(self) -> int:
        """The architecturally correct next PC."""
        return self.target_pc if self.taken else self.fall_pc

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"DynInstr(seq={self.seq}, pc={self.pc:#x}, op={self.op.name}, "
            f"dest={self.dest}, srcs={self.srcs})"
        )
