"""Operation classes, execution latencies and functional-unit mapping.

Latencies follow the common SimpleScalar/Alpha-like defaults also used by
the paper's baseline (Table 2): single-cycle integer ALU, pipelined
multiplier, long non-pipelined divider, two-cycle FP add, and cache-latency
dominated memory operations.
"""

from __future__ import annotations

import enum


class OpClass(enum.IntEnum):
    """Functional class of an instruction.

    The class determines execution latency, which functional unit pool
    executes the instruction, and how the pipeline treats it (memory ops
    go through the LSQ, branches resolve in Execute).
    """

    INT_ALU = 0
    INT_MUL = 1
    INT_DIV = 2
    LOAD = 3
    STORE = 4
    BRANCH = 5
    FP_ADD = 6
    FP_MUL = 7
    FP_DIV = 8
    NOP = 9


class FuKind(enum.IntEnum):
    """Functional-unit pool kinds (Table 2 of the paper)."""

    INT_ALU = 0
    INT_MULDIV = 1
    MEM_PORT = 2
    FP_ADD = 3
    FP_MULDIV = 4


#: Execution latency in cycles, *excluding* cache access time for memory
#: operations (loads add the D-cache/L2/DRAM latency resolved by the
#: memory hierarchy at issue time).
EXEC_LATENCY: dict[OpClass, int] = {
    OpClass.INT_ALU: 1,
    OpClass.INT_MUL: 3,
    OpClass.INT_DIV: 12,
    OpClass.LOAD: 1,  # address generation; cache latency added on top
    OpClass.STORE: 1,
    OpClass.BRANCH: 1,
    OpClass.FP_ADD: 2,
    OpClass.FP_MUL: 4,
    OpClass.FP_DIV: 12,
    OpClass.NOP: 1,
}

#: Which FU pool executes each op class.
FU_KIND: dict[OpClass, FuKind] = {
    OpClass.INT_ALU: FuKind.INT_ALU,
    OpClass.INT_MUL: FuKind.INT_MULDIV,
    OpClass.INT_DIV: FuKind.INT_MULDIV,
    OpClass.LOAD: FuKind.MEM_PORT,
    OpClass.STORE: FuKind.MEM_PORT,
    OpClass.BRANCH: FuKind.INT_ALU,
    OpClass.FP_ADD: FuKind.FP_ADD,
    OpClass.FP_MUL: FuKind.FP_MULDIV,
    OpClass.FP_DIV: FuKind.FP_MULDIV,
    OpClass.NOP: FuKind.INT_ALU,
}

#: Op classes whose execution is not pipelined (a new operation cannot
#: start on the same unit until the previous one finishes).
UNPIPELINED: frozenset = frozenset({OpClass.INT_DIV, OpClass.FP_DIV})

# ------------------------------------------------------------------ tables
# Op-indexed lookup tables for the per-cycle hot loops. ``OpClass`` is an
# IntEnum, so ``TAB[op]`` is a plain sequence index — no enum hashing per
# instruction per cycle. The dicts above remain the single editable source;
# these are derived views (rebuild order matters if you add an op class).

N_OPS = len(OpClass)

#: EXEC_LATENCY as a tuple indexed by ``int(OpClass)``.
EXEC_LATENCY_TAB: tuple = tuple(EXEC_LATENCY[OpClass(i)] for i in range(N_OPS))

#: FU_KIND as a tuple of plain ints indexed by ``int(OpClass)``.
FU_KIND_TAB: tuple = tuple(int(FU_KIND[OpClass(i)]) for i in range(N_OPS))

#: Membership of UNPIPELINED as a tuple of bools indexed by ``int(OpClass)``.
UNPIPELINED_TAB: tuple = tuple(OpClass(i) in UNPIPELINED for i in range(N_OPS))

#: Number of functional-unit pool kinds (sizes the FuPool's flat arrays).
N_FU_KINDS = len(FuKind)


def is_memory(op: OpClass) -> bool:
    """Return True for loads and stores."""
    return op is OpClass.LOAD or op is OpClass.STORE


def is_branch(op: OpClass) -> bool:
    """Return True for control-transfer instructions."""
    return op is OpClass.BRANCH
