"""Architected register namespace.

The simulated ISA has 32 integer and 32 floating-point architected
registers, numbered in a single flat space so rename structures can be
indexed directly: integer registers are ``0..31`` and FP registers are
``32..63``. Register 0 is a hard-wired zero (never renamed, always ready),
as in MIPS.
"""

from __future__ import annotations

NUM_INT_REGS = 32
NUM_FP_REGS = 32
NUM_ARCH_REGS = NUM_INT_REGS + NUM_FP_REGS

INT_REG_BASE = 0
FP_REG_BASE = NUM_INT_REGS

#: The hard-wired zero register: writes are discarded, reads always ready.
ZERO_REG = 0


def reg_name(reg: int) -> str:
    """Human-readable name for a flat register index (``r3``, ``f7``)."""
    if not 0 <= reg < NUM_ARCH_REGS:
        raise ValueError(f"register index out of range: {reg}")
    if reg < FP_REG_BASE:
        return f"r{reg}"
    return f"f{reg - FP_REG_BASE}"
