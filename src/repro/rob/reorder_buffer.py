"""Reorder buffer: in-order completion window.

Entries are appended at dispatch and retired in order once done. Because
the cores model wrong paths as fetch stalls (no wrong-path instructions
enter the machine), the ROB never squashes mid-flight instructions in the
baseline; the Flywheel flushes it wholesale on trace aborts.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List, Optional

from repro.errors import SimulationError
from repro.isa import DynInstr


class RobEntry:
    """Bookkeeping attached to every in-flight instruction."""

    __slots__ = ("dyn", "done", "mispredicted", "is_mem", "from_ec",
                 "trace_id", "end_of_trace")

    def __init__(self, dyn: DynInstr, mispredicted: bool = False,
                 from_ec: bool = False, trace_id: int = -1):
        self.dyn = dyn
        self.done = False
        self.mispredicted = mispredicted
        self.is_mem = dyn.mem_addr is not None
        self.from_ec = from_ec
        self.trace_id = trace_id
        self.end_of_trace = False


class ReorderBuffer:
    """Bounded FIFO of :class:`RobEntry`."""

    def __init__(self, entries: int):
        self.capacity = entries
        self._queue: Deque[RobEntry] = deque()
        self.writes = 0

    def __len__(self) -> int:
        return len(self._queue)

    @property
    def full(self) -> bool:
        return len(self._queue) >= self.capacity

    @property
    def free_slots(self) -> int:
        return self.capacity - len(self._queue)

    @property
    def empty(self) -> bool:
        return not self._queue

    def head(self) -> Optional[RobEntry]:
        return self._queue[0] if self._queue else None

    def insert(self, entry: RobEntry) -> None:
        if self.full:
            raise SimulationError("ROB overflow")
        self._queue.append(entry)
        self.writes += 1

    def retire_ready(self, width: int) -> List[RobEntry]:
        """Pop up to ``width`` consecutive done entries from the head."""
        out: List[RobEntry] = []
        while self._queue and len(out) < width and self._queue[0].done:
            out.append(self._queue.popleft())
        return out

    def flush(self) -> None:
        self._queue.clear()
