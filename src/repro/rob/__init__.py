"""Reorder buffer."""

from repro.rob.reorder_buffer import ReorderBuffer, RobEntry

__all__ = ["ReorderBuffer", "RobEntry"]
