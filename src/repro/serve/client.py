"""Thin urllib client for the campaign service.

``ServeClient`` speaks the daemon's JSON/SSE wire format; the
``python -m repro.serve submit|tail|ls|status`` subcommands are thin
wrappers over it. No third-party HTTP stack — ``urllib.request`` plus a
25-line SSE parser is the whole dependency surface, so the client works
anywhere the simulator does.
"""

from __future__ import annotations

import json
from typing import Dict, Iterator, List, Optional, Tuple
from urllib.error import HTTPError, URLError
from urllib.parse import urlencode
from urllib.request import Request, urlopen

from repro.errors import CampaignError

DEFAULT_URL = "http://127.0.0.1:8023"


class ServeClient:
    """One daemon endpoint: ``submit`` / ``tail`` / ``ls`` / ``status``."""

    def __init__(self, base_url: str = DEFAULT_URL,
                 timeout_s: float = 10.0):
        self.base_url = base_url.rstrip("/")
        self.timeout_s = timeout_s

    # ---------------------------------------------------------- plumbing

    def _request(self, path: str, body: Optional[Dict] = None) -> Dict:
        data = None
        headers = {"Accept": "application/json"}
        if body is not None:
            data = json.dumps(body).encode("utf-8")
            headers["Content-Type"] = "application/json"
        request = Request(self.base_url + path, data=data, headers=headers)
        try:
            with urlopen(request, timeout=self.timeout_s) as response:
                return json.loads(response.read())
        except HTTPError as exc:
            detail = exc.read().decode("utf-8", "replace")
            try:
                detail = json.loads(detail).get("error", detail)
            except ValueError:
                pass
            raise CampaignError(
                f"{path}: HTTP {exc.code}: {detail}") from None
        except URLError as exc:
            raise CampaignError(
                f"cannot reach campaign service at {self.base_url}: "
                f"{exc.reason}") from None

    # -------------------------------------------------------------- API

    def health(self) -> Dict:
        return self._request("/healthz")

    def submit(self, payload: Dict) -> Dict:
        """POST a Sweep JSON body; returns ``{"campaign", "total", ...}``."""
        return self._request("/campaigns", body=payload)

    def campaigns(self) -> List[Dict]:
        return self._request("/campaigns")

    def status(self, campaign_id: str) -> Dict:
        return self._request(f"/campaigns/{campaign_id}")

    def results(self, **filters) -> List[Dict]:
        query = {k: v for k, v in filters.items() if v not in (None, "", 0)}
        path = "/results"
        if query:
            path += "?" + urlencode(query)
        return self._request(path)

    def events(self, campaign_id: str,
               timeout_s: Optional[float] = None) -> Iterator[
                   Tuple[str, Dict]]:
        """Yield ``(event type, data)`` from the campaign's SSE stream.

        Blocks while the campaign runs; the stream (and this iterator)
        ends when the server closes it after the terminal event.
        """
        request = Request(
            f"{self.base_url}/campaigns/{campaign_id}/events",
            headers={"Accept": "text/event-stream"})
        try:
            with urlopen(request, timeout=timeout_s) as response:
                if response.status != 200:
                    raise CampaignError(
                        f"events stream: HTTP {response.status}")
                yield from _parse_sse(response)
        except HTTPError as exc:
            raise CampaignError(
                f"events stream: HTTP {exc.code}: "
                f"{exc.read().decode('utf-8', 'replace')}") from None
        except URLError as exc:
            raise CampaignError(
                f"cannot reach campaign service at {self.base_url}: "
                f"{exc.reason}") from None


def _parse_sse(stream) -> Iterator[Tuple[str, Dict]]:
    """Minimal SSE parser: ``event:``/``data:`` fields, blank-line framed."""
    event_type = "message"
    data_lines: List[str] = []
    for raw in stream:
        line = raw.decode("utf-8").rstrip("\n").rstrip("\r")
        if not line:              # dispatch on blank line
            if data_lines:
                try:
                    data = json.loads("\n".join(data_lines))
                except ValueError:
                    data = {"raw": "\n".join(data_lines)}
                yield event_type, data
            event_type, data_lines = "message", []
            continue
        if line.startswith(":"):  # comment / keep-alive
            continue
        field, _, value = line.partition(":")
        value = value[1:] if value.startswith(" ") else value
        if field == "event":
            event_type = value
        elif field == "data":
            data_lines.append(value)
