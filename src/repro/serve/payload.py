"""Wire formats for the campaign service.

Two translations live here, shared by the daemon and the client:

* **Sweep JSON → job list** (:func:`specs_from_payload`) — the body of
  ``POST /campaigns``. Either a pre-expanded ``{"specs": [RunSpec
  payload, ...]}`` (the lossless form — anything ``RunSpec.to_dict``
  emits round-trips, including third-party registered kinds), or a
  declarative sweep::

      {"kinds": ["baseline", "flywheel"],
       "benchmarks": ["gcc"],
       "clocks": [{"base_mhz": 400.0}, {"base_mhz": 600.0}],
       "seeds": [null, 7],
       "mem_scales": [1.0],
       "instructions": 2000, "warmup": 500}

  which expands through :class:`repro.campaign.spec.Sweep` — same
  normalization, dedup and content addressing as the Python API.

* **SessionEvent → SSE data** (:func:`event_payload`) — the JSON body
  of each server-sent event. Results are summarized (label, key, source
  and headline stats), not shipped whole: a traced SimResult can be
  megabytes, and the store already holds the full record for anyone
  who wants it (``GET /results`` returns the key to fetch by).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.campaign.spec import RunSpec, Sweep, dedup
from repro.core.config import ClockPlan
from repro.errors import CampaignError

#: Sweep-axis keys accepted by the declarative POST body.
SWEEP_AXES = ("kinds", "benchmarks", "clocks", "seeds", "mem_scales")


def _clock_from(data) -> Optional[ClockPlan]:
    if data is None:
        return None
    if isinstance(data, (int, float)):      # sugar: bare base MHz
        return ClockPlan(base_mhz=float(data))
    if isinstance(data, dict):
        governor = data.get("governor")
        if isinstance(governor, dict):
            from repro.dvfs import GovernorConfig

            data = dict(data)
            data["governor"] = GovernorConfig(**governor)
        return ClockPlan(**data)
    raise CampaignError(f"cannot interpret clock payload {data!r}")


def specs_from_payload(data: Dict[str, object]) -> List[RunSpec]:
    """Expand one ``POST /campaigns`` body into a deduplicated job list.

    Raises :class:`CampaignError` (→ HTTP 400) for anything that does
    not describe at least one valid job.
    """
    if not isinstance(data, dict):
        raise CampaignError("campaign payload must be a JSON object")
    try:
        if "specs" in data:
            specs = data["specs"]
            if not isinstance(specs, list) or not specs:
                raise CampaignError("'specs' must be a non-empty list")
            return dedup(RunSpec.from_dict(payload) for payload in specs)
        if not data.get("benchmarks"):
            raise CampaignError(
                "campaign payload needs 'benchmarks' (or explicit 'specs')")
        sweep_kwargs = {
            "benchmarks": tuple(data["benchmarks"]),
            "clocks": tuple(_clock_from(c)
                            for c in data.get("clocks") or (None,)),
            "seeds": tuple(data.get("seeds") or (None,)),
            "mem_scales": tuple(float(m)
                                for m in data.get("mem_scales") or (1.0,)),
        }
        if data.get("kinds"):
            sweep_kwargs["kinds"] = tuple(data["kinds"])
        for budget in ("instructions", "warmup"):
            if data.get(budget) is not None:
                sweep_kwargs[budget] = int(data[budget])
        return Sweep(**sweep_kwargs).expand()
    except CampaignError:
        raise
    except Exception as exc:
        raise CampaignError(f"bad campaign payload: {exc}") from exc


def event_payload(event) -> Dict[str, object]:
    """JSON-safe SSE body for one :class:`SessionEvent`."""
    out: Dict[str, object] = {
        "event": event.event,
        "done": event.done,
        "total": event.total,
    }
    if event.spec is not None:
        out["label"] = event.spec.label
        out["key"] = event.spec.cache_key()
        out["kind"] = event.spec.kind
        out["bench"] = event.spec.bench
    if event.result is not None:
        out["source"] = event.source
        stats = event.result.stats
        out["stats"] = {
            "committed": stats.committed,
            "cycles": stats.total_be_cycles,
            "ipc": round(stats.ipc, 6),
            "sim_time_ps": stats.sim_time_ps,
        }
    if event.event == "summary":
        out.update(hits=event.hits, executed=event.executed,
                   quarantined=event.quarantined,
                   elapsed_s=round(event.elapsed_s, 6))
    if event.error:
        out["error"] = event.error
    return out
