"""HTTP/SSE front end for the campaign engine.

``python -m repro.serve`` starts the daemon (:mod:`repro.serve.app`);
``python -m repro.serve submit|tail|ls|status|health`` is the bundled
client (:mod:`repro.serve.client`). Everything is stdlib —
``http.server`` on the daemon side, ``urllib`` on the client side —
and all durable state lives in the campaign store + journals, so the
daemon itself is disposable.
"""

from repro.serve.app import CampaignFeed, ServeApp, make_server
from repro.serve.client import DEFAULT_URL, ServeClient
from repro.serve.payload import event_payload, specs_from_payload

__all__ = [
    "CampaignFeed",
    "DEFAULT_URL",
    "ServeApp",
    "ServeClient",
    "event_payload",
    "make_server",
    "specs_from_payload",
]
