"""The campaign service daemon: stdlib HTTP + SSE over the scheduler.

:class:`ServeApp` owns one sharded :class:`ResultStore` and launches
one :class:`~repro.campaign.scheduler.CampaignScheduler` thread per
submitted campaign; :class:`CampaignFeed` buffers each campaign's
:class:`~repro.session.SessionEvent` s so any number of SSE clients can
attach at any time (each replays from event 0, then follows live).

Endpoints (JSON unless noted):

==========================  =============================================
``GET  /healthz``           liveness + store root/record count
``POST /campaigns``         Sweep JSON (see :mod:`repro.serve.payload`)
                            → ``202 {"campaign": id, "total": n}``
``GET  /campaigns``         status summaries of every journaled campaign
``GET  /campaigns/<id>``    one campaign's journal status
``GET  /campaigns/<id>/events``  ``text/event-stream`` of the campaign's
                            plan/result/quarantine/summary events
``GET  /results``           indexed store query; ``?kind=&bench=&gov=``
                            ``&engine=&code=&limit=`` all optional
==========================  =============================================

Campaigns survive the daemon: the journal + store are the state, the
feed is only a live view. Tailing a campaign from a previous daemon
process replays its events from the journal (summaries only — the
stats come back from the store) and ends with the same ``summary``
event a live tail would see; an interrupted campaign's replay ends
with an ``end`` event instead, naming the states left behind — that is
the signal to ``campaign resume`` it.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Dict, Iterator, List, Optional, Tuple
from urllib.parse import parse_qs, urlparse

from repro.campaign.journal import CampaignRun, list_campaigns
from repro.campaign.scheduler import submit_campaign
from repro.campaign.store import ResultStore
from repro.errors import CampaignError, ReproError
from repro.serve.payload import event_payload, specs_from_payload


class CampaignFeed:
    """Append-only event buffer with blocking fan-out subscription."""

    def __init__(self):
        self.events: List[Dict[str, object]] = []
        self.done = False
        self._cond = threading.Condition()

    def publish(self, event: Dict[str, object]) -> None:
        with self._cond:
            self.events.append(event)
            self._cond.notify_all()

    def close(self) -> None:
        with self._cond:
            self.done = True
            self._cond.notify_all()

    def subscribe(self, start: int = 0,
                  poll_s: float = 1.0) -> Iterator[
                      Tuple[int, Dict[str, object]]]:
        """Yield ``(index, event)`` from ``start``; ends when the feed
        closes and everything has been delivered."""
        index = start
        while True:
            with self._cond:
                while index >= len(self.events) and not self.done:
                    self._cond.wait(poll_s)
                if index >= len(self.events) and self.done:
                    return
                event = self.events[index]
            yield index, event
            index += 1


class ServeApp:
    """Daemon state: the store, live feeds, and scheduler threads."""

    def __init__(self,
                 store: ResultStore,
                 jobs: int = 2,
                 timeout_s: Optional[float] = None,
                 retries: int = 1,
                 backoff_s: float = 0.25):
        self.store = store
        self.jobs = jobs
        self.timeout_s = timeout_s
        self.retries = retries
        self.backoff_s = backoff_s
        self.feeds: Dict[str, CampaignFeed] = {}
        self._lock = threading.Lock()

    # ------------------------------------------------------------ submit

    def submit(self, payload: Dict[str, object]) -> Dict[str, object]:
        """Journal a campaign, start its scheduler thread, return ids."""
        specs = specs_from_payload(payload)
        feed = CampaignFeed()
        scheduler = submit_campaign(
            specs, self.store,
            jobs=int(payload.get("jobs") or self.jobs),
            timeout_s=self.timeout_s, retries=self.retries,
            backoff_s=self.backoff_s,
            on_event=lambda ev: feed.publish(event_payload(ev)))
        campaign_id = scheduler.run.campaign_id
        with self._lock:
            self.feeds[campaign_id] = feed

        def drive() -> None:
            try:
                scheduler.execute()
            except BaseException as exc:   # surface, never kill the daemon
                feed.publish({"event": "error", "error": repr(exc)})
            finally:
                feed.close()

        thread = threading.Thread(target=drive, daemon=True,
                                  name=f"campaign-{campaign_id}")
        thread.start()
        return {"campaign": campaign_id, "total": len(specs),
                "keys": [spec.cache_key() for spec in specs]}

    # ------------------------------------------------------------ events

    def events(self, campaign_id: str) -> Iterator[
            Tuple[int, Dict[str, object]]]:
        """Live subscription, or a journal replay for past campaigns."""
        with self._lock:
            feed = self.feeds.get(campaign_id)
        if feed is not None:
            return feed.subscribe()
        return iter(enumerate(self._replay(campaign_id)))

    def _replay(self, campaign_id: str) -> List[Dict[str, object]]:
        run = CampaignRun.load(self.store.root, campaign_id)  # or raises
        total = len(run.jobs)
        events: List[Dict[str, object]] = [
            {"event": "plan", "done": 0, "total": total}]
        done = 0
        hits = 0
        for job in run.jobs:
            if job.state == "done":
                done += 1
                hits += 1
                event = {"event": "result", "done": done, "total": total,
                         "key": job.key, "source": "store"}
                record = self.store._read(job.key)
                if record is not None:
                    from repro.core.stats import SimStats

                    stats = SimStats.from_dict(
                        (record.get("result") or {}).get("stats") or {})
                    spec = record.get("spec") or {}
                    event["kind"] = spec.get("kind", "")
                    event["bench"] = spec.get("bench", "")
                    # Same shape as event_payload() so a replayed tail is
                    # indistinguishable from the live one.
                    event["stats"] = {
                        "committed": stats.committed,
                        "cycles": stats.total_be_cycles,
                        "ipc": round(stats.ipc, 6),
                        "sim_time_ps": stats.sim_time_ps,
                    }
                events.append(event)
            elif job.state == "quarantined":
                done += 1
                events.append({"event": "quarantine", "done": done,
                               "total": total, "key": job.key,
                               "error": job.error})
        counts = run.state_counts()
        if run.complete:
            events.append({"event": "summary", "done": done, "total": total,
                           "hits": hits, "executed": 0,
                           "quarantined": counts["quarantined"],
                           "elapsed_s": 0.0, "replayed": True})
        else:
            events.append({"event": "end", "done": done, "total": total,
                           "states": counts, "resumable": True})
        return events

    # ------------------------------------------------------------- reads

    def health(self) -> Dict[str, object]:
        return {"ok": True, "store": str(self.store.root),
                "records": len(self.store),
                "campaigns": len(list_campaigns(self.store.root))}

    def campaigns(self) -> List[Dict[str, object]]:
        return list_campaigns(self.store.root)

    def status(self, campaign_id: str) -> Dict[str, object]:
        status = CampaignRun.load(self.store.root, campaign_id).status()
        with self._lock:
            feed = self.feeds.get(campaign_id)
        status["live"] = feed is not None and not feed.done
        return status

    def results(self, query: Dict[str, List[str]]) -> List[Dict[str, object]]:
        filters = {name: values[0]
                   for name, values in query.items()
                   if name in ("kind", "bench", "code", "engine", "gov",
                               "mem", "key") and values}
        limit = int(query.get("limit", ["0"])[0] or 0)
        return self.store.query(limit=limit, **filters)


class ServeHandler(BaseHTTPRequestHandler):
    """Routes HTTP requests into the :class:`ServeApp` on the server."""

    protocol_version = "HTTP/1.1"
    server_version = "repro-serve"

    @property
    def app(self) -> ServeApp:
        return self.server.app    # type: ignore[attr-defined]

    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        if getattr(self.server, "verbose", False):
            super().log_message(format, *args)

    # --------------------------------------------------------- plumbing

    def _json(self, payload, status: int = 200) -> None:
        blob = json.dumps(payload, sort_keys=True).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(blob)))
        self.end_headers()
        self.wfile.write(blob)

    def _error(self, status: int, message: str) -> None:
        self._json({"ok": False, "error": message}, status=status)

    # ------------------------------------------------------------ routes

    def do_GET(self) -> None:  # noqa: N802 - stdlib naming
        url = urlparse(self.path)
        parts = [p for p in url.path.split("/") if p]
        try:
            if parts == ["healthz"]:
                self._json(self.app.health())
            elif parts == ["campaigns"]:
                self._json(self.app.campaigns())
            elif len(parts) == 2 and parts[0] == "campaigns":
                self._json(self.app.status(parts[1]))
            elif (len(parts) == 3 and parts[0] == "campaigns"
                  and parts[2] == "events"):
                self._sse(parts[1])
            elif parts == ["results"]:
                self._json(self.app.results(parse_qs(url.query)))
            else:
                self._error(404, f"no route for {url.path}")
        except CampaignError as exc:
            self._error(404, str(exc))
        except ReproError as exc:
            self._error(400, str(exc))
        except BrokenPipeError:
            pass                  # client hung up mid-response

    def do_POST(self) -> None:  # noqa: N802 - stdlib naming
        url = urlparse(self.path)
        if url.path.rstrip("/") != "/campaigns":
            self._error(404, f"no route for {url.path}")
            return
        try:
            length = int(self.headers.get("Content-Length") or 0)
            try:
                payload = json.loads(self.rfile.read(length) or b"{}")
            except ValueError as exc:
                raise CampaignError(f"body is not JSON: {exc}") from exc
            self._json(self.app.submit(payload), status=202)
        except ReproError as exc:
            self._error(400, str(exc))
        except BrokenPipeError:
            pass

    # --------------------------------------------------------------- SSE

    def _sse(self, campaign_id: str) -> None:
        events = self.app.events(campaign_id)   # raises for unknown ids
        self.send_response(200)
        self.send_header("Content-Type", "text/event-stream")
        self.send_header("Cache-Control", "no-cache")
        # SSE is an unbounded stream: no Content-Length, so the
        # connection closes when the feed ends (HTTP/1.1 keep-alive is
        # explicitly declined for this response).
        self.send_header("Connection", "close")
        self.end_headers()
        try:
            for index, event in events:
                blob = json.dumps(event, sort_keys=True)
                self.wfile.write(
                    (f"id: {index}\nevent: {event.get('event', 'message')}"
                     f"\ndata: {blob}\n\n").encode("utf-8"))
                self.wfile.flush()
        except (BrokenPipeError, ConnectionResetError):
            return                # client stopped tailing
        finally:
            self.close_connection = True


def make_server(app: ServeApp, host: str = "127.0.0.1",
                port: int = 8000,
                verbose: bool = False) -> ThreadingHTTPServer:
    """A ready-to-run threading HTTP server bound to ``app``."""
    server = ThreadingHTTPServer((host, port), ServeHandler)
    server.daemon_threads = True
    server.app = app              # type: ignore[attr-defined]
    server.verbose = verbose      # type: ignore[attr-defined]
    return server
