"""``python -m repro.serve`` — campaign service daemon and client.

Daemon (the default when no subcommand is given)::

    python -m repro.serve [--host 127.0.0.1] [--port 8023] \\
        [--store PATH] [--jobs N] [--timeout S] [--verbose]

Client subcommands (all take ``--url``, default ``http://127.0.0.1:8023``)::

    python -m repro.serve submit --kind baseline --kind flywheel \\
        --bench gcc --clock 400 --clock 600 -n 20000 [--tail]
    python -m repro.serve submit --file sweep.json --tail
    python -m repro.serve tail <campaign-id>
    python -m repro.serve ls [--kind K] [--bench B] [--limit N]
    python -m repro.serve status [<campaign-id>]
    python -m repro.serve health
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro.errors import CampaignError, ReproError
from repro.serve.client import DEFAULT_URL, ServeClient


def _client(args: argparse.Namespace) -> ServeClient:
    return ServeClient(args.url)


# ------------------------------------------------------------------ daemon

def _cmd_daemon(args: argparse.Namespace) -> int:
    from repro.campaign.store import ResultStore
    from repro.serve.app import ServeApp, make_server

    store = ResultStore(args.store)
    app = ServeApp(store, jobs=args.jobs, timeout_s=args.timeout,
                   retries=args.retries)
    server = make_server(app, host=args.host, port=args.port,
                         verbose=args.verbose)
    host, port = server.server_address[:2]
    print(f"repro.serve on http://{host}:{port}  store={store.root}",
          flush=True)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print("\nshutting down", file=sys.stderr)
    finally:
        server.server_close()
    return 0


# ------------------------------------------------------------------ client

def _print_event(event_type: str, data: dict) -> None:
    done, total = data.get("done"), data.get("total")
    prefix = f"[{done}/{total}]" if total else f"[{event_type}]"
    if event_type == "plan":
        print(f"{prefix} campaign planned: {total} jobs", flush=True)
    elif event_type == "result":
        stats = data.get("stats") or {}
        label = data.get("label") or data.get("key", "")[:12]
        source = data.get("source", "?")
        detail = ""
        if stats.get("committed") is not None:
            detail = (f"  {stats['committed']} instrs"
                      f"  ipc={stats.get('ipc', '?')}")
        print(f"{prefix} {label}  ({source}){detail}", flush=True)
    elif event_type == "quarantine":
        label = data.get("label") or data.get("key", "")[:12]
        error = (data.get("error") or "").strip().splitlines()
        print(f"{prefix} QUARANTINED {label}: "
              f"{error[-1] if error else 'unknown error'}", flush=True)
    elif event_type == "summary":
        print(f"{prefix} done: {data.get('hits', 0)} from cache, "
              f"{data.get('executed', 0)} simulated, "
              f"{data.get('quarantined', 0)} quarantined"
              + (f"  ({data['elapsed_s']:.2f}s)"
                 if data.get("elapsed_s") else ""), flush=True)
    else:
        print(f"{prefix} {json.dumps(data, sort_keys=True)}", flush=True)


def _tail(client: ServeClient, campaign_id: str) -> int:
    quarantined = 0
    for event_type, data in client.events(campaign_id):
        _print_event(event_type, data)
        if event_type == "summary":
            quarantined = int(data.get("quarantined") or 0)
    return 1 if quarantined else 0


def _cmd_submit(args: argparse.Namespace) -> int:
    if args.file:
        with open(args.file, encoding="utf-8") as fh:
            payload = json.load(fh)
    else:
        if not args.bench:
            raise CampaignError(
                "submit needs --bench (or --file sweep.json)")
        payload = {"benchmarks": args.bench}
        if args.kind:
            payload["kinds"] = args.kind
        if args.clock:
            payload["clocks"] = [float(c) for c in args.clock]
        if args.seed:
            payload["seeds"] = args.seed
        if args.instructions:
            payload["instructions"] = args.instructions
        if args.warmup is not None:
            payload["warmup"] = args.warmup
    if args.jobs:
        payload["jobs"] = args.jobs
    client = _client(args)
    response = client.submit(payload)
    print(f"campaign {response['campaign']}: "
          f"{response['total']} jobs submitted", flush=True)
    if args.tail:
        return _tail(client, response["campaign"])
    return 0


def _cmd_tail(args: argparse.Namespace) -> int:
    return _tail(_client(args), args.campaign)


def _cmd_ls(args: argparse.Namespace) -> int:
    rows = _client(args).results(kind=args.kind, bench=args.bench,
                                 limit=args.limit)
    if not rows:
        print("no matching results")
        return 0
    for row in rows:
        print(f"{row['key'][:12]}  {row.get('kind', ''):<10} "
              f"{row.get('bench', ''):<10} {row.get('engine', ''):<7} "
              f"{row.get('elapsed_s', 0.0):7.2f}s")
    print(f"{len(rows)} result(s)")
    return 0


def _cmd_status(args: argparse.Namespace) -> int:
    client = _client(args)
    if args.campaign:
        print(json.dumps(client.status(args.campaign), indent=2,
                         sort_keys=True))
        return 0
    campaigns = client.campaigns()
    if not campaigns:
        print("no campaigns")
        return 0
    for status in campaigns:
        states = status["states"]
        print(f"{status['campaign']}  total={status['total']} "
              f"done={states['done']} pending={states['pending']} "
              f"quarantined={states['quarantined']} "
              f"{'complete' if status['complete'] else 'open'}")
    return 0


def _cmd_health(args: argparse.Namespace) -> int:
    print(json.dumps(_client(args).health(), indent=2, sort_keys=True))
    return 0


# ------------------------------------------------------------------- main

def _parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve",
        description="campaign service daemon and client")
    sub = parser.add_subparsers(dest="command")

    def add_url(p):
        p.add_argument("--url", default=DEFAULT_URL,
                       help=f"service base URL (default {DEFAULT_URL})")

    daemon = sub.add_parser("daemon", help="run the HTTP/SSE daemon "
                            "(also the default with no subcommand)")
    daemon.add_argument("--host", default="127.0.0.1")
    daemon.add_argument("--port", type=int, default=8023)
    daemon.add_argument("--store", default=None,
                        help="store root (default: repro's default store)")
    daemon.add_argument("--jobs", type=int, default=2,
                        help="default worker processes per campaign")
    daemon.add_argument("--timeout", type=float, default=None,
                        help="per-job timeout in seconds")
    daemon.add_argument("--retries", type=int, default=1,
                        help="retries before quarantine (default 1)")
    daemon.add_argument("--verbose", action="store_true",
                        help="log every HTTP request")

    submit = sub.add_parser("submit", help="POST a campaign")
    add_url(submit)
    submit.add_argument("--file", help="JSON file with the campaign body")
    submit.add_argument("--kind", action="append", default=[])
    submit.add_argument("--bench", action="append", default=[])
    submit.add_argument("--clock", action="append", default=[],
                        help="base MHz (repeatable)")
    submit.add_argument("--seed", action="append", type=int, default=[])
    submit.add_argument("-n", "--instructions", type=int, default=None)
    submit.add_argument("--warmup", type=int, default=None)
    submit.add_argument("--jobs", type=int, default=None)
    submit.add_argument("--tail", action="store_true",
                        help="stream events until the campaign finishes")

    tail = sub.add_parser("tail", help="stream a campaign's events")
    add_url(tail)
    tail.add_argument("campaign")

    ls = sub.add_parser("ls", help="query stored results")
    add_url(ls)
    ls.add_argument("--kind")
    ls.add_argument("--bench")
    ls.add_argument("--limit", type=int, default=20)

    status = sub.add_parser("status", help="campaign status (all or one)")
    add_url(status)
    status.add_argument("campaign", nargs="?")

    health = sub.add_parser("health", help="daemon liveness")
    add_url(health)
    return parser


_COMMANDS = {
    "daemon": _cmd_daemon,
    "submit": _cmd_submit,
    "tail": _cmd_tail,
    "ls": _cmd_ls,
    "status": _cmd_status,
    "health": _cmd_health,
}


def main(argv: Optional[List[str]] = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    # No subcommand (bare flags or nothing at all) means "daemon" —
    # except --help, which should show the full command tree.
    if not argv or (argv[0].startswith("-")
                    and argv[0] not in ("-h", "--help")):
        argv.insert(0, "daemon")
    args = _parser().parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    raise SystemExit(main())
