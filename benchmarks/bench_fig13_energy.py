"""Fig. 13 bench: normalized energy at 130nm."""

from conftest import once

from repro.experiments import fig13_energy


def test_fig13_energy(benchmark, ctx):
    rows = once(benchmark, lambda: fig13_energy.run(ctx))
    by_bench = {r["benchmark"]: r for r in rows}
    # Shape: the high-residency benchmark saves energy; the low-residency
    # one (vortex) saves the least (paper: gcc/equake most, vortex least).
    assert by_bench["mesa"]["FE100%,BE50%"] < by_bench["vortex"]["FE100%,BE50%"]
    assert by_bench["mesa"]["FE100%,BE50%"] < 1.15
