"""Fig. 12 bench: the clock-speedup sweep."""

from conftest import once

from repro.experiments import fig12_performance


def test_fig12_clock_sweep(benchmark, ctx):
    rows = once(benchmark, lambda: fig12_performance.run(ctx))
    avg = rows[-1]
    # Shape: raising the front-end clock never collapses performance, and
    # the fastest configuration beats the slow-front-end one on average.
    assert avg["FE100%,BE50%"] > 0.85 * avg["FE0%,BE50%"]
    # Trace-execution speedup is visible: best config beats equal clocks.
    mesa = next(r for r in rows if r["benchmark"] == "mesa")
    assert mesa["FE50%,BE50%"] > 0.7
