"""Section-5 residency bench: time on the Execution-Cache path."""

from conftest import once

from repro.experiments import residency


def test_ec_residency(benchmark, ctx):
    rows = once(benchmark, lambda: residency.run(ctx))
    by_bench = {r["benchmark"]: r for r in rows}
    # Shape: loopy codes live on the EC path; vortex (huge code footprint)
    # has the lowest residency (paper: most >90%, vortex <60%).
    assert by_bench["mesa"]["ec_residency_%"] > 50.0
    assert by_bench["vortex"]["ec_residency_%"] < 75.0
