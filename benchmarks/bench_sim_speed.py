"""Simulator-throughput microbenchmarks (not a paper figure).

Tracks instructions-per-second of the cores so regressions in the
simulator's own performance are caught. Two entry points:

* pytest-benchmark tests (``pytest benchmarks/bench_sim_speed.py``) for
  statistical tracking of the small smoke runs;
* ``python benchmarks/bench_sim_speed.py [--out BENCH_core.json]`` runs a
  larger, fixed-budget measurement per core kind and writes a
  machine-readable ``BENCH_core.json`` so successive PRs have a
  comparable cycles/sec trajectory. Program generation is excluded from
  the timed region (it is identical across kinds and code versions).

The CLI also tracks regressions perun-style: ``--against PATH`` compares
the fresh measurement to a committed report and prints a per-kind
delta table; ``--fail-on-regression PCT`` turns any slowdown beyond PCT
percent into a non-zero exit for CI (omit it for report-only mode —
cross-machine comparisons are informative, not gating). The gate covers
the paired ``@turbo``/``@vector`` series and the speedup tables too,
but report-only: engine warnings never fail the run, so NumPy-less
runners (which skip the engine series entirely) stay green.
``--quick`` runs one repeat on a reduced budget with no history append,
for the CI regression step and local iteration.

Every measurement also appends a schema-versioned snapshot (series,
engine speedups, code fingerprint, timestamp — injected here, at the
CLI boundary) to ``BENCH_history.jsonl``; ``python -m repro.perf
check`` runs the statistical degradation detectors over that history.

Reference points measured on the PR-1 tree (same protocol, same
container class) before the engine refactor:
``baseline/gcc ~64k cycles/s, flywheel/gcc ~69k cycles/s``.
"""

import json
import sys
import time

import pytest

from repro.core.engine.turbo import HAVE_NUMPY
from repro.core.registry import kind_names
from repro.session import Session
from repro.workloads import generate_program, get_profile

#: Fixed measurement protocol for BENCH_core.json.
BENCH_BENCHMARKS = ("gcc", "smoke")
BENCH_INSTRUCTIONS = 30_000
BENCH_WARMUP = 10_000
BENCH_REPEATS = 3

#: ``--quick`` protocol: one repeat on a reduced budget, meant for the
#: CI regression step and local iteration.  Quick numbers are noisier
#: and measured on a different budget, so they are never appended to
#: the history file and should only ever be compared against another
#: quick run.
QUICK_INSTRUCTIONS = 8_000
QUICK_WARMUP = 3_000
QUICK_MEMBOUND_INSTRUCTIONS = 4_000
QUICK_MEMBOUND_WARMUP = 2_000

#: Miss-path series: the baseline on the pointer_chase profile, once on
#: the default (fast-path) memory system and once through the general
#: MemorySpec path with a non-blocking MSHR file — so BENCH_core.json
#: tracks the cost of the memory subsystem's miss machinery over time,
#: not just the L1-hit hot loop the other series exercise.
MEMBOUND_BENCH = "pointer_chase"
MEMBOUND_INSTRUCTIONS = 8_000
MEMBOUND_WARMUP = 4_000

#: Measured through the Session facade's uncached path, so any overhead
#: the front door adds to a simulation call is part of the number. The
#: kind list comes from the registry: a new machine kind is benchmarked
#: (and perf-tracked via ``compare``'s missing-series check) the moment
#: it registers.
_SESSION = Session()


def _run(kind, workload, instructions, warmup, config=None):
    return _SESSION.run_workload(kind, workload,
                                 max_instructions=instructions,
                                 warmup=warmup, config=config)


def test_baseline_sim_speed(benchmark):
    result = benchmark(lambda: _run("baseline", "smoke", 4000, 1000))
    assert result.stats.committed >= 4000


@pytest.mark.skipif(not HAVE_NUMPY,
                    reason="turbo extra (NumPy) not installed")
def test_baseline_sim_speed_turbo(benchmark):
    from repro.core.config import CoreConfig

    config = CoreConfig(engine="turbo")
    result = benchmark(lambda: _run("baseline", "smoke", 4000, 1000,
                                    config=config))
    assert result.stats.committed >= 4000


def test_flywheel_sim_speed(benchmark):
    result = benchmark(lambda: _run("flywheel", "smoke", 4000, 1000))
    assert result.stats.committed >= 4000


def test_pipelined_wakeup_sim_speed(benchmark):
    result = benchmark(lambda: _run("pipelined_wakeup", "smoke", 4000, 1000))
    assert result.stats.committed >= 4000


def measure(benchmarks=BENCH_BENCHMARKS,
            instructions=BENCH_INSTRUCTIONS,
            warmup=BENCH_WARMUP,
            repeats=BENCH_REPEATS,
            engines=("legacy", "turbo", "vector"),
            membound_instructions=MEMBOUND_INSTRUCTIONS,
            membound_warmup=MEMBOUND_WARMUP) -> dict:
    """Best-of-``repeats`` cycles/sec and instrs/sec per kind/benchmark.

    ``engines`` is the backend axis: the legacy engine keeps the bare
    series name (``baseline/gcc``) so the cycles/sec trajectory across
    PRs stays unbroken, the other engines append ``@<engine>``
    (``baseline/gcc@turbo``, ``baseline/gcc@vector``). When an engine
    pair runs, the report also carries per-engine speedup tables
    (``turbo_speedup``/``vector_speedup``: engine / legacy
    cycles-per-sec per series). Engine repeats share one instruction
    pool (by design — the pool is cross-run state), so best-of-repeats
    measures the warm path.

    The engine series run the *kind's* default config with only the
    engine swapped — a bare ``CoreConfig(engine=...)`` would silently
    drop kind-specific defaults (the flywheel's 512-entry register
    file, its two regread stages) and measure a different machine than
    the legacy series, with more cycles to simulate
    (tests/test_bench_speed.py pins the config path).
    """
    from repro.core.registry import get_kind

    programs = {b: generate_program(get_profile(b)) for b in benchmarks}
    series = {}
    for kind in kind_names():
        for bench in benchmarks:
            for engine in engines:
                config = (None if engine == "legacy"
                          else get_kind(kind).default_config()
                          .with_variant(engine=engine))
                best = float("inf")
                result = None
                for _ in range(repeats):
                    t0 = time.perf_counter()
                    result = _run(kind, programs[bench], instructions,
                                  warmup, config=config)
                    best = min(best, time.perf_counter() - t0)
                cycles = result.stats.total_be_cycles
                name = f"{kind}/{bench}"
                if engine != "legacy":
                    name += f"@{engine}"
                series[name] = {
                    "seconds": round(best, 4),
                    "cycles": cycles,
                    "cycles_per_sec": round(cycles / best),
                    "instrs_per_sec": round(result.stats.committed / best),
                }
    series.update(_measure_membound(repeats, engines,
                                    membound_instructions,
                                    membound_warmup))
    report = {
        "protocol": {
            "benchmarks": list(benchmarks),
            "engines": list(engines),
            "instructions": instructions,
            "warmup": warmup,
            "repeats": repeats,
            "timing": "best-of-repeats, program generation excluded",
        },
        "python": sys.version.split()[0],
        "series": series,
    }
    for engine in engines:
        if engine == "legacy":
            continue
        speedups = engine_speedups(series, engine)
        if speedups:
            report[f"{engine}_speedup"] = speedups
    return report


def engine_speedups(series: dict, engine: str) -> dict:
    """``base series -> engine/legacy cycles-per-sec ratio`` table."""
    suffix = f"@{engine}"
    speedups = {}
    for name, row in series.items():
        if name.endswith(suffix):
            base = series.get(name[: -len(suffix)])
            if base and base.get("cycles_per_sec"):
                speedups[name[: -len(suffix)]] = round(
                    row["cycles_per_sec"] / base["cycles_per_sec"], 2)
    return speedups


def turbo_speedups(series: dict) -> dict:
    """``base series -> turbo/legacy cycles-per-sec ratio`` table."""
    return engine_speedups(series, "turbo")


def _measure_membound(repeats: int, engines=("legacy",),
                      instructions=MEMBOUND_INSTRUCTIONS,
                      warmup=MEMBOUND_WARMUP) -> dict:
    """The miss-path series (see :data:`MEMBOUND_BENCH`).

    The budget is smaller than the main series — a memory-bound run
    simulates far more cycles per committed instruction — so the whole
    measurement stays in the same time envelope.
    """
    from repro.core.config import CoreConfig
    from repro.mem import MemorySpec

    program = generate_program(get_profile(MEMBOUND_BENCH))
    points = (("membound", {}),
              ("membound-mshr4", {"mem": MemorySpec(mshrs=4)}))
    series = {}
    for label, kw in points:
        for engine in engines:
            if engine == "legacy":
                config = CoreConfig(**kw) if kw else None
            else:
                config = CoreConfig(engine=engine, **kw)
            best = float("inf")
            result = None
            for _ in range(repeats):
                t0 = time.perf_counter()
                result = _run("baseline", program, instructions,
                              warmup, config=config)
                best = min(best, time.perf_counter() - t0)
            cycles = result.stats.total_be_cycles
            name = f"{label}/{MEMBOUND_BENCH}"
            if engine != "legacy":
                name += f"@{engine}"
            series[name] = {
                "seconds": round(best, 4),
                "cycles": cycles,
                "cycles_per_sec": round(cycles / best),
                "instrs_per_sec": round(result.stats.committed / best),
            }
    return series


def compare_speedups(fresh: dict, committed: dict,
                     key: str = "turbo_speedup") -> list:
    """Delta rows of one speedup table (fresh vs committed).

    Same shape as :func:`compare` rows, but over the engine/legacy
    ratios: a quietly shrinking speedup is visible even when both raw
    series move together. Series present on one side only carry a None
    delta.
    """
    fresh_table = fresh.get(key, {})
    committed_table = committed.get(key, {})
    rows = []
    for name in sorted(set(fresh_table) | set(committed_table)):
        new = fresh_table.get(name)
        old = committed_table.get(name)
        delta = ((new - old) / old * 100.0) if new and old else None
        rows.append({"series": name, "old": old, "new": new,
                     "delta_pct": delta})
    return rows


def compare(fresh: dict, committed: dict) -> list:
    """Per-series delta rows between a fresh and a committed report.

    Positive ``delta_pct`` is an improvement (more cycles/sec); series
    present on only one side are listed with a None delta rather than
    dropped, so a renamed kind cannot silently leave perf tracking.
    """
    fresh_series = fresh.get("series", {})
    committed_series = committed.get("series", {})
    rows = []
    for name in sorted(set(fresh_series) | set(committed_series)):
        new = fresh_series.get(name, {}).get("cycles_per_sec")
        old = committed_series.get(name, {}).get("cycles_per_sec")
        delta = ((new - old) / old * 100.0) if new and old else None
        rows.append({"series": name, "old": old, "new": new,
                     "delta_pct": delta})
    return rows


def print_comparison(rows: list) -> None:
    print(f"\n{'series':28s} {'committed':>12s} {'fresh':>12s} "
          f"{'delta':>8s}")
    for row in rows:
        old = f"{row['old']:,}" if row["old"] else "-"
        new = f"{row['new']:,}" if row["new"] else "-"
        delta = (f"{row['delta_pct']:+7.1f}%" if row["delta_pct"] is not None
                 else "      -")
        print(f"{row['series']:28s} {old:>12s} {new:>12s} {delta:>8s}")


def main(argv=None) -> int:
    import argparse

    parser = argparse.ArgumentParser(
        description="Measure per-kind simulator throughput and write a "
                    "machine-readable report.")
    parser.add_argument("--out", default="BENCH_core.json",
                        help="output path (default: ./BENCH_core.json)")
    parser.add_argument("--engine",
                        choices=("legacy", "turbo", "vector", "both",
                                 "all"),
                        default="all",
                        help="execution backend(s) to measure; 'all' "
                             "(default) emits paired series "
                             "(kind/bench, kind/bench@turbo and "
                             "kind/bench@vector) plus per-engine "
                             "speedup tables; 'both' is the historical "
                             "legacy+turbo pair")
    parser.add_argument("--repeats", type=int, default=BENCH_REPEATS)
    parser.add_argument("--quick", action="store_true",
                        help="one repeat on a reduced instruction "
                             "budget, history append skipped — for the "
                             "CI regression step and local iteration "
                             "(only comparable against another --quick "
                             "report)")
    parser.add_argument("--against", default=None, metavar="PATH",
                        help="committed report to diff the fresh "
                             "measurement against (e.g. BENCH_core.json)")
    parser.add_argument("--fail-on-regression", type=float, default=None,
                        metavar="PCT",
                        help="exit non-zero if any series is more than "
                             "PCT percent slower than --against "
                             "(default: report-only)")
    parser.add_argument("--profile", nargs="?", const="BENCH_profile.json",
                        default=None, metavar="PATH",
                        help="additionally self-profile each kind on the "
                             "first benchmark (wall time per engine phase) "
                             "and write the reports to PATH "
                             "(default: ./BENCH_profile.json)")
    parser.add_argument("--history", default="BENCH_history.jsonl",
                        metavar="PATH",
                        help="profile history to append this measurement "
                             "to (default: ./BENCH_history.jsonl)")
    parser.add_argument("--no-history", action="store_true",
                        help="skip the history append")
    args = parser.parse_args(argv)
    if args.fail_on_regression is not None and not args.against:
        parser.error("--fail-on-regression requires --against")

    # Read the committed report BEFORE measuring: --out and --against may
    # name the same file (refresh-and-diff in one invocation).
    committed = None
    if args.against:
        try:
            with open(args.against, encoding="utf-8") as fh:
                committed = json.load(fh)
        except (OSError, ValueError) as exc:
            print(f"cannot read {args.against}: {exc}", file=sys.stderr)
            if args.fail_on_regression is not None:
                return 1

    if args.engine == "all":
        engines = ("legacy", "turbo", "vector")
    elif args.engine == "both":
        engines = ("legacy", "turbo")
    else:
        engines = (args.engine,)
    if not HAVE_NUMPY and any(e != "legacy" for e in engines):
        if args.engine in ("turbo", "vector"):
            print(f"--engine {args.engine} requires NumPy "
                  "(pip install 'repro[turbo]')", file=sys.stderr)
            return 2
        # Default 'all' degrades gracefully so the legacy trajectory
        # is still measurable on a dependency-free checkout.
        print("NumPy not installed: skipping engine series",
              file=sys.stderr)
        engines = ("legacy",)
    if args.quick:
        report = measure(repeats=1, engines=engines,
                         instructions=QUICK_INSTRUCTIONS,
                         warmup=QUICK_WARMUP,
                         membound_instructions=QUICK_MEMBOUND_INSTRUCTIONS,
                         membound_warmup=QUICK_MEMBOUND_WARMUP)
        report["protocol"]["quick"] = True
    else:
        report = measure(repeats=args.repeats, engines=engines)
    with open(args.out, "w", encoding="utf-8") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
        fh.write("\n")
    for name, row in sorted(report["series"].items()):
        print(f"{name:28s} {row['cycles_per_sec']:>9,} cycles/s "
              f"{row['instrs_per_sec']:>9,} instrs/s")
    for eng in ("turbo", "vector"):
        for name, ratio in sorted(report.get(f"{eng}_speedup",
                                             {}).items()):
            print(f"{name:28s} {eng} speedup {ratio:.2f}x")
    print(f"wrote {args.out}")

    if not args.no_history and not args.quick:
        from repro.perf import append_snapshot, make_snapshot

        # The timestamp is injected here, at the CLI boundary — the
        # perf library itself never reads the wall clock.
        snapshot = make_snapshot(report, timestamp=time.time())
        append_snapshot(args.history, snapshot)
        print(f"appended snapshot (code={snapshot['code']}) "
              f"to {args.history}")

    if args.profile is not None:
        from repro.obs.profiler import format_profile, profile_machine

        profiles = {}
        for kind in kind_names():
            prof = profile_machine(kind, BENCH_BENCHMARKS[0],
                                   instructions=BENCH_INSTRUCTIONS,
                                   warmup=BENCH_WARMUP)
            profiles[kind] = prof
            print(format_profile(prof))
        with open(args.profile, "w", encoding="utf-8") as fh:
            json.dump(profiles, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"wrote {args.profile}")

    if committed is not None:
        rows = compare(report, committed)
        print_comparison(rows)
        speedup_rows = []
        for eng in ("turbo", "vector"):
            eng_rows = compare_speedups(report, committed,
                                        key=f"{eng}_speedup")
            if not eng_rows:
                continue
            speedup_rows.extend(eng_rows)
            print(f"\n{eng + ' speedup':28s} {'committed':>12s} "
                  f"{'fresh':>12s} {'delta':>8s}")
            for row in eng_rows:
                old = f"{row['old']:.2f}x" if row["old"] else "-"
                new = f"{row['new']:.2f}x" if row["new"] else "-"
                delta = (f"{row['delta_pct']:+7.1f}%"
                         if row["delta_pct"] is not None else "      -")
                print(f"{row['series']:28s} {old:>12s} {new:>12s} "
                      f"{delta:>8s}")
        if args.fail_on_regression is not None:
            # The gate *fails* on the legacy series only: their
            # trajectory is the simulator-cost contract. The paired
            # ``@turbo`` series and the turbo_speedup table are covered
            # too, but report-only — turbo warnings never fail the run,
            # so a NumPy-less runner (no ``@turbo`` series at all)
            # stays green and cross-machine turbo ratios stay
            # informative rather than gating.
            def is_turbo(name):
                return "@" in name
            bad = [r for r in rows if r["delta_pct"] is not None
                   and not is_turbo(r["series"])
                   and r["delta_pct"] < -args.fail_on_regression]
            # A committed legacy series with no fresh measurement is
            # lost perf tracking (renamed/dropped kind), not a pass.
            lost = [r for r in rows if r["old"] and not r["new"]
                    and not is_turbo(r["series"])]
            turbo_rows = ([r for r in rows if is_turbo(r["series"])]
                          + speedup_rows)
            warn = [r for r in turbo_rows
                    if (r["delta_pct"] is not None
                        and r["delta_pct"] < -args.fail_on_regression)
                    or (r["old"] and not r["new"])]
            for row in warn:
                what = ("missing from the fresh report"
                        if row["old"] and not row["new"]
                        else f"regressed {row['delta_pct']:+.1f}%")
                print(f"warning (report-only): turbo series "
                      f"{row['series']} {what}", file=sys.stderr)
            if bad or lost:
                if bad:
                    print(f"FAIL: regression beyond "
                          f"{args.fail_on_regression:g}% in: "
                          + ", ".join(r["series"] for r in bad),
                          file=sys.stderr)
                if lost:
                    print("FAIL: committed series missing from the "
                          "fresh report: "
                          + ", ".join(r["series"] for r in lost),
                          file=sys.stderr)
                return 1
            print(f"ok: no gating series regressed beyond "
                  f"{args.fail_on_regression:g}%")
    return 0


if __name__ == "__main__":
    sys.exit(main())
