"""Simulator-throughput microbenchmarks (not a paper figure).

Tracks instructions-per-second of both cores so regressions in the
simulator's own performance are caught.
"""

from repro.core.sim import run_baseline, run_flywheel


def test_baseline_sim_speed(benchmark):
    def run():
        return run_baseline("smoke", max_instructions=4000, warmup=1000)
    result = benchmark(run)
    assert result.stats.committed >= 4000


def test_flywheel_sim_speed(benchmark):
    def run():
        return run_flywheel("smoke", max_instructions=4000, warmup=1000)
    result = benchmark(run)
    assert result.stats.committed >= 4000
