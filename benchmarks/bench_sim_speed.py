"""Simulator-throughput microbenchmarks (not a paper figure).

Tracks instructions-per-second of the cores so regressions in the
simulator's own performance are caught. Two entry points:

* pytest-benchmark tests (``pytest benchmarks/bench_sim_speed.py``) for
  statistical tracking of the small smoke runs;
* ``python benchmarks/bench_sim_speed.py [--out BENCH_core.json]`` runs a
  larger, fixed-budget measurement per core kind and writes a
  machine-readable ``BENCH_core.json`` so successive PRs have a
  comparable cycles/sec trajectory. Program generation is excluded from
  the timed region (it is identical across kinds and code versions).

Reference points measured on the PR-1 tree (same protocol, same
container class) before the engine refactor:
``baseline/gcc ~64k cycles/s, flywheel/gcc ~69k cycles/s``.
"""

import json
import sys
import time

from repro.core.sim import run_baseline, run_flywheel, run_pipelined_wakeup
from repro.workloads import generate_program, get_profile

#: Fixed measurement protocol for BENCH_core.json.
BENCH_BENCHMARKS = ("gcc", "smoke")
BENCH_INSTRUCTIONS = 30_000
BENCH_WARMUP = 10_000
BENCH_REPEATS = 3

KIND_RUNNERS = (
    ("baseline", run_baseline),
    ("flywheel", run_flywheel),
    ("pipelined_wakeup", run_pipelined_wakeup),
)


def test_baseline_sim_speed(benchmark):
    def run():
        return run_baseline("smoke", max_instructions=4000, warmup=1000)
    result = benchmark(run)
    assert result.stats.committed >= 4000


def test_flywheel_sim_speed(benchmark):
    def run():
        return run_flywheel("smoke", max_instructions=4000, warmup=1000)
    result = benchmark(run)
    assert result.stats.committed >= 4000


def test_pipelined_wakeup_sim_speed(benchmark):
    def run():
        return run_pipelined_wakeup("smoke", max_instructions=4000,
                                    warmup=1000)
    result = benchmark(run)
    assert result.stats.committed >= 4000


def measure(benchmarks=BENCH_BENCHMARKS,
            instructions=BENCH_INSTRUCTIONS,
            warmup=BENCH_WARMUP,
            repeats=BENCH_REPEATS) -> dict:
    """Best-of-``repeats`` cycles/sec and instrs/sec per kind/benchmark."""
    programs = {b: generate_program(get_profile(b)) for b in benchmarks}
    series = {}
    for kind, runner in KIND_RUNNERS:
        for bench in benchmarks:
            best = float("inf")
            result = None
            for _ in range(repeats):
                t0 = time.perf_counter()
                result = runner(programs[bench],
                                max_instructions=instructions,
                                warmup=warmup)
                best = min(best, time.perf_counter() - t0)
            cycles = result.stats.total_be_cycles
            series[f"{kind}/{bench}"] = {
                "seconds": round(best, 4),
                "cycles": cycles,
                "cycles_per_sec": round(cycles / best),
                "instrs_per_sec": round(result.stats.committed / best),
            }
    return {
        "protocol": {
            "benchmarks": list(benchmarks),
            "instructions": instructions,
            "warmup": warmup,
            "repeats": repeats,
            "timing": "best-of-repeats, program generation excluded",
        },
        "python": sys.version.split()[0],
        "series": series,
    }


def main(argv=None) -> int:
    import argparse

    parser = argparse.ArgumentParser(
        description="Measure per-kind simulator throughput and write a "
                    "machine-readable report.")
    parser.add_argument("--out", default="BENCH_core.json",
                        help="output path (default: ./BENCH_core.json)")
    parser.add_argument("--repeats", type=int, default=BENCH_REPEATS)
    args = parser.parse_args(argv)

    report = measure(repeats=args.repeats)
    with open(args.out, "w", encoding="utf-8") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
        fh.write("\n")
    for name, row in sorted(report["series"].items()):
        print(f"{name:28s} {row['cycles_per_sec']:>9,} cycles/s "
              f"{row['instrs_per_sec']:>9,} instrs/s")
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
