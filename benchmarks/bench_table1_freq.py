"""Table 1 bench: module frequencies vs the paper's numbers."""

from conftest import once

from repro.experiments import table1_freq
from repro.timing.frequency import PAPER_TABLE1, TABLE1_NODES


def test_table1_frequencies(benchmark):
    rows = once(benchmark, lambda: table1_freq.run(None))
    for row in rows:
        for node in TABLE1_NODES:
            paper = PAPER_TABLE1[row["module"]][node]
            assert abs(row[f"{node}um"] - paper) / paper < 0.06
