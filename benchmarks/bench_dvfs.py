"""Governor-vs-static energy/performance curves (the DVFS benchmark).

Runs one benchmark through the Flywheel under every static clock plan of
the DVFS sweep and under each requested adaptive governor, then prints
the energy/performance frontier: wall-clock time, total energy, average
power and the energy-delay product per point, normalized against the
slowest static plan. The same sweep constants as
``repro.experiments.dvfs_sweep`` are used so the CLI and the experiment
cannot drift.

Usage::

    python benchmarks/bench_dvfs.py --benchmark gcc
    python benchmarks/bench_dvfs.py --benchmark vortex \
        --governors occupancy,ipc_ladder --instructions 2000 --warmup 500
    python benchmarks/bench_dvfs.py --json dvfs_curve.json

Exits 0 as long as the runs complete — the curves are data, not a gate;
CI uses it as the DVFS smoke (2 governors x 1 workload).
"""

import json
import sys
import time

from repro.analysis.report import format_freq_trace
from repro.session import Session
from repro.dvfs import GOVERNOR_NAMES
from repro.experiments.dvfs_sweep import (
    GOV_INTERVAL,
    STATIC_POINTS,
    SWEEP_GOVERNORS,
    governor_points,
)
from repro.power import TECH_130, energy_report
from repro.workloads import generate_program, get_profile


def sweep(benchmark: str, governors, instructions: int, warmup: int,
          seed=None, tech=TECH_130) -> list:
    """Evaluate every static point and requested governor on one bench."""
    program = generate_program(get_profile(benchmark), seed=seed)
    points = list(STATIC_POINTS) + governor_points(tuple(governors))
    session = Session()
    rows = []
    for label, clock in points:
        t0 = time.perf_counter()
        result = session.run_workload("flywheel", program, clock=clock,
                                      max_instructions=instructions,
                                      warmup=warmup)
        host_s = time.perf_counter() - t0
        rep = energy_report(result, tech)
        stats = result.stats
        rows.append({
            "label": label,
            "adaptive": clock.governor is not None,
            "cycles": stats.total_be_cycles,
            "ipc": stats.ipc,
            "time_ms": rep.time_s * 1e3,
            "energy_uj": rep.total_j * 1e6,
            "power_w": rep.power_w,
            "edp": rep.total_j * rep.time_s,
            "retunes": stats.dvfs_retunes,
            "freq_trace": stats.freq_trace,
            "host_seconds": round(host_s, 3),
        })
    base = rows[0]["edp"]
    for row in rows:
        row["edp_norm"] = row["edp"] / base if base else 0.0
    return rows


def print_curve(benchmark: str, rows: list) -> None:
    best = min(rows, key=lambda r: r["edp"])
    print(f"\n== DVFS curve: flywheel/{benchmark} (130nm) ==")
    print(f"{'point':>20s} {'cycles':>9s} {'ipc':>6s} {'time_ms':>9s} "
          f"{'energy_uJ':>10s} {'power_W':>8s} {'EDP_norm':>9s} "
          f"{'retunes':>8s}")
    for row in rows:
        mark = " *" if row is best else ""
        print(f"{row['label']:>20s} {row['cycles']:>9,} "
              f"{row['ipc']:>6.2f} {row['time_ms']:>9.4f} "
              f"{row['energy_uj']:>10.2f} {row['power_w']:>8.2f} "
              f"{row['edp_norm']:>9.3f} {row['retunes']:>8d}{mark}")
    print(f"best EDP: {best['label']}"
          + (" (adaptive)" if best["adaptive"] else " (static)"))
    for row in rows:
        if row["adaptive"] and row["retunes"]:
            stub = type("S", (), {"freq_trace": row["freq_trace"],
                                  "dvfs_retunes": row["retunes"]})
            print(f"{row['label']}: {format_freq_trace(stub)}")


def main(argv=None) -> int:
    import argparse

    parser = argparse.ArgumentParser(
        description="Governor-vs-static energy/performance curves.")
    parser.add_argument("--benchmark", default="gcc")
    parser.add_argument("--governors",
                        default=",".join(SWEEP_GOVERNORS),
                        metavar="A,B,...",
                        help=f"governors to evaluate (known: "
                             f"{', '.join(n for n in GOVERNOR_NAMES)})")
    # Budget defaults match repro.experiments.common so the curves agree
    # with what `python -m repro.experiments dvfs` prints.
    parser.add_argument("--instructions", type=int, default=30_000)
    parser.add_argument("--warmup", type=int, default=60_000)
    parser.add_argument("--seed", type=int, default=None)
    parser.add_argument("--json", default=None, metavar="PATH",
                        help="also write the rows as JSON")
    args = parser.parse_args(argv)

    governors = [g.strip() for g in args.governors.split(",") if g.strip()]
    unknown = [g for g in governors if g not in GOVERNOR_NAMES]
    if unknown:
        parser.error(f"unknown governor(s): {', '.join(unknown)}")

    rows = sweep(args.benchmark, governors, args.instructions, args.warmup,
                 seed=args.seed)
    print_curve(args.benchmark, rows)
    if args.json:
        payload = {"benchmark": args.benchmark,
                   "interval": GOV_INTERVAL,
                   "instructions": args.instructions,
                   "warmup": args.warmup,
                   "rows": rows}
        with open(args.json, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"wrote {args.json}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
