"""Ablation bench: knock out each Flywheel design choice."""

from conftest import once

from repro.experiments import ablations


def test_ablations(benchmark, ctx):
    rows = once(benchmark, lambda: ablations.run(ctx))
    avg = rows[-1]
    # Shape: no knocked-out mechanism should *improve* the geomean much —
    # each exists for a reason — and a 4x smaller EC never helps.
    assert avg["ec_4k"] <= avg["full"] * 1.10
    assert avg["no_redistribution"] <= avg["full"] * 1.10
