"""Campaign-engine benchmarks (not a paper figure).

Measures what the subsystem is for: cold campaign wall-time vs a warm
(fully cached) rerun, and the ``--jobs 1`` vs ``--jobs 4`` fan-out
speedup on the same job list. Uses the shared harness budgets from
``conftest.py``; the warm rerun should be orders of magnitude faster
than cold, and the parallel run should beat serial on any multi-core
machine (pytest-benchmark prints the ratios).
"""

import pytest

from repro.campaign import ResultStore, Sweep, run_campaign
from repro.core.config import ClockPlan

from conftest import BENCH_INSTRUCTIONS, BENCH_WARMUP, once

#: A small but real campaign: both cores on two contrasting benchmarks
#: under two clock plans (6 deduplicated jobs).
_SWEEP = Sweep(
    benchmarks=("ijpeg", "gcc"),
    clocks=(ClockPlan(), ClockPlan(fe_speedup=0.5, be_speedup=0.5)),
    instructions=BENCH_INSTRUCTIONS,
    warmup=BENCH_WARMUP,
)


@pytest.fixture()
def jobs():
    return _SWEEP.expand()


def test_campaign_cold_jobs1(benchmark, jobs, tmp_path):
    report = once(benchmark, lambda: run_campaign(
        jobs, store=ResultStore(tmp_path), jobs=1))
    assert report.executed == len(jobs)


def test_campaign_cold_jobs4(benchmark, jobs, tmp_path):
    report = once(benchmark, lambda: run_campaign(
        jobs, store=ResultStore(tmp_path), jobs=4))
    assert report.executed == len(jobs)


def test_campaign_warm(benchmark, jobs, tmp_path):
    run_campaign(jobs, store=ResultStore(tmp_path), jobs=4)  # prime
    report = once(benchmark, lambda: run_campaign(
        jobs, store=ResultStore(tmp_path), jobs=4))
    assert (report.hits, report.executed) == (len(jobs), 0)
