"""Fig. 11 bench: Flywheel vs baseline at equal clock speeds."""

from conftest import once

from repro.experiments import fig11_same_clock


def test_fig11_same_clock(benchmark, ctx):
    rows = once(benchmark, lambda: fig11_same_clock.run(ctx))
    by_bench = {r["benchmark"]: r for r in rows}
    # Shape: both configurations stay within sane bounds of the baseline,
    # and the loopy benchmark keeps the most of its performance.
    assert 0.3 < by_bench["geomean"]["flywheel"] <= 1.3
    assert by_bench["mesa"]["flywheel"] > by_bench["vortex"]["flywheel"]
