"""Fig. 1 bench: latency-scaling model across all five nodes."""

from conftest import once

from repro.experiments import fig01_latency


def test_fig01_latency(benchmark):
    rows = once(benchmark, lambda: fig01_latency.run(None))
    assert len(rows) == 6
    # Shape: the cache catches up with the issue window by 0.06um.
    iw, cache = rows[0], rows[2]
    assert cache["0.25um"] / iw["0.25um"] > cache["0.06um"] / iw["0.06um"]
