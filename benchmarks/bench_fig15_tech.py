"""Fig. 15 bench: energy savings across 130/90/60nm."""

from conftest import once

from repro.experiments import fig15_technology


def test_fig15_technology(benchmark, ctx):
    rows = once(benchmark, lambda: fig15_technology.run(ctx))
    by_bench = {r["benchmark"]: r for r in rows}
    mesa = by_bench["mesa"]
    # Shape: relative energy creeps up as leakage grows (paper 0.70->0.80).
    assert mesa["130nm"] <= mesa["90nm"] + 0.02
    assert mesa["90nm"] <= mesa["60nm"] + 0.02
