"""Fig. 2 bench: pipeline-loop sensitivity on the baseline core."""

from conftest import once

from repro.experiments import fig02_loops


def test_fig02_pipeline_loops(benchmark, ctx):
    rows = once(benchmark, lambda: fig02_loops.run(ctx))
    avg = rows[-1]
    # Shape: losing back-to-back scheduling hurts far more than one more
    # front-end stage (paper: <3% vs ~30%).
    assert avg["wakeup_select_%"] > 2 * avg["fetch_mispredict_%"]
    assert avg["fetch_mispredict_%"] < 5.0
