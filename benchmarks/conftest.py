"""Shared fixtures for the benchmark harness.

Each ``bench_*`` module regenerates one table or figure of the paper at a
reduced instruction budget (pytest-benchmark measures the harness; the
figures' full-budget numbers live in EXPERIMENTS.md and are produced by
``python -m repro.experiments all``).
"""

import pytest

from repro.experiments.common import ExperimentContext

#: Reduced budgets so the whole benchmark suite completes in minutes.
BENCH_INSTRUCTIONS = 15_000
BENCH_WARMUP = 50_000
BENCH_SET = ("ijpeg", "gcc", "mesa", "vortex")


@pytest.fixture(scope="session")
def ctx():
    """One shared run-cache across all benchmark modules."""
    return ExperimentContext(instructions=BENCH_INSTRUCTIONS,
                             warmup=BENCH_WARMUP,
                             benchmarks=BENCH_SET)


def once(benchmark, fn):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
