"""Fig. 14 bench: normalized power at 130nm."""

from conftest import once

from repro.experiments import fig14_power


def test_fig14_power(benchmark, ctx):
    rows = once(benchmark, lambda: fig14_power.run(ctx))
    avg = rows[-1]
    # Shape: power rises with the front-end clock (paper: +2% -> +15%).
    assert avg["FE100%,BE50%"] > avg["FE0%,BE50%"]
    assert avg["FE0%,BE50%"] < 1.5
