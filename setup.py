from setuptools import find_packages, setup

setup(
    name="repro",
    version="0.7.0",
    description=(
        "Cycle-level reproduction of Talpes & Marculescu, 'Multiple "
        "Speed Pipelines' (ISCA 2005): dual-clock Flywheel core with "
        "Execution Cache vs. a synchronous baseline"),
    package_dir={"": "src"},
    packages=find_packages("src"),
    python_requires=">=3.10",
    # The core package is dependency-free by design (DESIGN.md). The
    # turbo engine backend is the single optional NumPy consumer; when
    # the extra is absent, CoreConfig(engine="turbo") raises the
    # canonical ConfigError carrying this install hint.
    extras_require={
        "turbo": ["numpy"],
        "test": ["pytest", "pytest-benchmark", "hypothesis"],
    },
)
