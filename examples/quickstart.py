#!/usr/bin/env python3
"""Quickstart: describe machines with MachineSpec, run them in a Session.

Simulates the ``gcc``-like synthetic benchmark on the fully synchronous
baseline and on the Flywheel microarchitecture at the paper's headline
clock plan (front-end +50%, trace-execution back-end +50%), then prints
performance, EC-path residency and an energy comparison at 130nm.

``MachineSpec`` is the declarative description of one machine+run;
``Session`` is the front door that executes (and memoizes) specs. Both
runs below go through ``Session.map``, which dedups the batch and — for
a session built with ``jobs=N`` or a persistent ``store=`` — fans it
out over worker processes / resolves it from earlier invocations.
"""

from repro import ClockPlan, MachineSpec, Session
from repro.power import TECH_130, energy_report


def main() -> None:
    bench = "gcc"
    budget = dict(instructions=20_000, warmup=40_000)

    specs = [
        MachineSpec("baseline", bench, **budget),
        MachineSpec("flywheel", bench,
                    clock=ClockPlan(fe_speedup=0.5, be_speedup=0.5),
                    **budget),
    ]
    print(f"simulating '{bench}' ({len(specs)} specs) ...")
    with Session() as session:
        base, fly = session.map(specs)

    bs, fs = base.stats, fly.stats
    print(f"\nbaseline : {bs.committed} instrs in {bs.total_be_cycles} "
          f"cycles (IPC {bs.ipc:.2f}), {bs.time_seconds * 1e6:.1f} us")
    print(f"flywheel : {fs.committed} instrs in {fs.total_be_cycles} "
          f"BE cycles (IPC {fs.ipc:.2f}), {fs.time_seconds * 1e6:.1f} us")
    print(f"speedup  : {bs.sim_time_ps / fs.sim_time_ps:.2f}x")
    print(f"EC path  : {fs.ec_residency:.0%} of back-end time "
          f"({fs.traces_built} traces built, {fs.trace_hits} replays)")
    print(f"mispredicts: baseline {bs.mispredict_rate:.1%}, "
          f"flywheel {fs.mispredict_rate:.1%}")

    eb = energy_report(base, TECH_130)
    ef = energy_report(fly, TECH_130)
    print(f"\nenergy @130nm: baseline {eb.total_j * 1e3:.2f} mJ, "
          f"flywheel {ef.total_j * 1e3:.2f} mJ "
          f"(ratio {ef.total_pj / eb.total_pj:.2f})")
    print(f"power  @130nm: baseline {eb.power_w:.1f} W, "
          f"flywheel {ef.power_w:.1f} W")


if __name__ == "__main__":
    main()
