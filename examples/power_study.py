#!/usr/bin/env python3
"""Energy/power breakdown study across technology nodes.

Runs the Flywheel and the baseline on two contrasting workloads (loopy
`mesa` vs code-heavy `vortex`) and prints a per-structure dynamic-energy
breakdown plus the static/clock split at 130nm, 90nm and 60nm — the
mechanics behind the paper's Figs. 13 and 15.
"""

from repro import ClockPlan, MachineSpec, Session
from repro.power import TECH_130, TECH_60, TECH_90, energy_report


def _top_events(report, n=6):
    items = sorted(report.by_event.items(), key=lambda kv: -kv[1])[:n]
    total = report.dynamic_pj
    return ", ".join(f"{k} {v / total:.0%}" for k, v in items)


def main() -> None:
    budget = dict(instructions=15_000, warmup=40_000)
    clock = ClockPlan(fe_speedup=1.0, be_speedup=0.5)

    session = Session()
    for bench in ("mesa", "vortex"):
        base, fly = session.map([
            MachineSpec("baseline", bench, **budget),
            MachineSpec("flywheel", bench, clock=clock, **budget),
        ])
        print(f"\n=== {bench} (EC residency "
              f"{fly.stats.ec_residency:.0%}) ===")
        for tech in (TECH_130, TECH_90, TECH_60):
            eb = energy_report(base, tech)
            ef = energy_report(fly, tech)
            print(f"{tech.name}: E(fly)/E(base) = "
                  f"{ef.total_pj / eb.total_pj:.2f}   "
                  f"baseline split dyn/clk/static = "
                  f"{eb.dynamic_pj / eb.total_pj:.0%}/"
                  f"{eb.clock_pj / eb.total_pj:.0%}/"
                  f"{eb.static_fraction:.0%}")
        eb = energy_report(base, TECH_130)
        print(f"top baseline consumers: {_top_events(eb)}")


if __name__ == "__main__":
    main()
