#!/usr/bin/env python3
"""Clock-plan design study on a chosen workload.

Sweeps front-end and back-end speedups independently (a superset of the
paper's Fig. 12 grid) and prints a speedup matrix, showing where the
returns of each clock domain saturate. Useful for exploring design points
the paper did not publish, e.g. a faster back-end with an unchanged
front-end.

Usage: python examples/clock_sweep_study.py [benchmark]
"""

import sys

from repro.core import run_baseline, run_flywheel
from repro.core.config import ClockPlan

FE_STEPS = (0.0, 0.5, 1.0)
BE_STEPS = (0.0, 0.25, 0.5)


def main() -> None:
    bench = sys.argv[1] if len(sys.argv) > 1 else "mesa"
    budget = dict(max_instructions=15_000, warmup=40_000)

    base = run_baseline(bench, **budget)
    print(f"workload '{bench}': baseline IPC {base.stats.ipc:.2f}\n")
    header = "FE\\BE".ljust(8) + "".join(f"+{int(b*100)}%".rjust(9)
                                         for b in BE_STEPS)
    print(header)
    for fe in FE_STEPS:
        row = f"+{int(fe*100)}%".ljust(8)
        for be in BE_STEPS:
            fly = run_flywheel(
                bench, clock=ClockPlan(fe_speedup=fe, be_speedup=be),
                **budget)
            speedup = base.stats.sim_time_ps / fly.stats.sim_time_ps
            row += f"{speedup:8.2f}x"
        print(row)
    print("\nrows: front-end speedup; columns: trace-execution back-end "
          "speedup; cells: total speedup over the baseline")


if __name__ == "__main__":
    main()
