#!/usr/bin/env python3
"""Clock-plan design study on a chosen workload.

Sweeps front-end and back-end speedups independently (a superset of the
paper's Fig. 12 grid) and prints a speedup matrix, showing where the
returns of each clock domain saturate. Useful for exploring design points
the paper did not publish, e.g. a faster back-end with an unchanged
front-end.

The whole grid is declared up front as ``MachineSpec`` s and executed in
one ``Session.map`` call — deduplicated and fanned out over worker
processes.

Usage: python examples/clock_sweep_study.py [benchmark] [jobs]
"""

import sys

from repro import ClockPlan, MachineSpec, Session

FE_STEPS = (0.0, 0.5, 1.0)
BE_STEPS = (0.0, 0.25, 0.5)


def main() -> None:
    bench = sys.argv[1] if len(sys.argv) > 1 else "mesa"
    jobs = int(sys.argv[2]) if len(sys.argv) > 2 else 1
    budget = dict(instructions=15_000, warmup=40_000)

    grid = [MachineSpec("flywheel", bench,
                        clock=ClockPlan(fe_speedup=fe, be_speedup=be),
                        **budget)
            for fe in FE_STEPS for be in BE_STEPS]
    with Session(jobs=jobs) as session:
        results = session.map([MachineSpec("baseline", bench, **budget)]
                              + grid)
    base, fly_results = results[0], iter(results[1:])

    print(f"workload '{bench}': baseline IPC {base.stats.ipc:.2f}\n")
    header = "FE\\BE".ljust(8) + "".join(f"+{int(b*100)}%".rjust(9)
                                         for b in BE_STEPS)
    print(header)
    for fe in FE_STEPS:
        row = f"+{int(fe*100)}%".ljust(8)
        for _be in BE_STEPS:
            fly = next(fly_results)
            speedup = base.stats.sim_time_ps / fly.stats.sim_time_ps
            row += f"{speedup:8.2f}x"
        print(row)
    print("\nrows: front-end speedup; columns: trace-execution back-end "
          "speedup; cells: total speedup over the baseline")


if __name__ == "__main__":
    main()
