#!/usr/bin/env python3
"""Define a custom synthetic workload and measure Flywheel sensitivity.

Shows the library's workload API: build a profile from scratch (here, a
deliberately branch-hostile pointer-chaser and a branch-friendly vector
kernel), generate the programs, and see how EC residency and the
Flywheel's advantage react — the core trade-off of the paper.
"""

from repro import ClockPlan, Session
from repro.workloads import WorkloadProfile, generate_program

KERNELS = (
    WorkloadProfile(
        name="vector-kernel",
        num_funcs=3, blocks_per_func=(2, 3), instrs_per_block=(10, 14),
        inner_loop_prob=0.9, diamond_prob=0.1, loop_trip=(64, 128),
        fp_frac=0.5, serial_frac=0.15, hot_dest_bias=0.05,
        random_branch_frac=0.05, hot_frac=0.9, warm_frac=0.08,
        random_access_frac=0.05,
    ),
    WorkloadProfile(
        name="pointer-chaser",
        num_funcs=24, blocks_per_func=(4, 8), instrs_per_block=(3, 6),
        inner_loop_prob=0.2, diamond_prob=0.9, loop_trip=(3, 10),
        serial_frac=0.7, hot_dest_bias=0.3, hot_dest_count=2,
        random_branch_frac=0.5, hot_frac=0.6, warm_frac=0.3,
        random_access_frac=0.5,
    ),
)


def main() -> None:
    clock = ClockPlan(fe_speedup=0.5, be_speedup=0.5)
    budget = dict(max_instructions=15_000, warmup=40_000)
    # Ad-hoc programs aren't content-addressable benchmark names, so they
    # go through Session.run_workload (the uncached escape hatch) rather
    # than a MachineSpec.
    session = Session()
    for profile in KERNELS:
        program = generate_program(profile)
        print(f"\n=== {profile.name} ===")
        print(f"static instructions: {program.num_static_instrs}, "
              f"code footprint: {program.code_bytes // 1024} KiB")
        base = session.run_workload("baseline", program, **budget)
        fly = session.run_workload("flywheel", program, clock=clock,
                                   **budget)
        print(f"baseline IPC {base.stats.ipc:.2f}, "
              f"mispredict rate {base.stats.mispredict_rate:.1%}")
        print(f"flywheel: EC residency {fly.stats.ec_residency:.0%}, "
              f"speedup {base.stats.sim_time_ps / fly.stats.sim_time_ps:.2f}x")


if __name__ == "__main__":
    main()
