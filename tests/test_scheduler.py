"""Resumable scheduler: journal replay, retry/backoff, quarantine,
per-job timeout, and crash-resume equivalence."""

import json
import time
from pathlib import Path

import pytest

from repro.campaign import (
    CampaignRun,
    ResultStore,
    RunSpec,
    list_campaigns,
    resume_campaign,
    submit_campaign,
)
from repro.errors import CampaignError

#: Tiny budgets: every simulated spec in this file finishes in ~50ms.
N, W = 1200, 2500


def spec(kind="baseline", bench="smoke", **kw):
    kw.setdefault("instructions", N)
    kw.setdefault("warmup", W)
    return RunSpec(kind=kind, bench=bench, **kw)


def specs(n):
    return [spec(seed=i + 1) for i in range(n)]


def fail_once_hook(marker_dir):
    """Worker hook: first attempt per key raises, later attempts pass."""
    def hook(s):
        marker = Path(marker_dir) / s.cache_key()
        if not marker.exists():
            marker.write_text("seen")
            raise RuntimeError("injected first-attempt failure")
    return hook


def always_fail_hook(s):
    raise ValueError("this spec is poisoned")


def sleepy_hook(s):
    time.sleep(30)


class TestSchedulerBasics:
    def test_cold_run_then_resume_is_all_hits(self, tmp_path):
        store = ResultStore(tmp_path)
        scheduler = submit_campaign(specs(3), store, jobs=2)
        report = scheduler.execute()
        assert report.executed == 3 and report.hits == 0
        assert not report.quarantined
        assert scheduler.run.complete

        resumed = resume_campaign(scheduler.run.campaign_id, store)
        report2 = resumed.execute()
        assert report2.hits == 3 and report2.executed == 0
        assert report2.stats_payload() == report.stats_payload()

    def test_event_stream_shape(self, tmp_path):
        events = []
        scheduler = submit_campaign(specs(2), ResultStore(tmp_path),
                                    jobs=2, on_event=events.append)
        scheduler.execute()
        kinds = [e.event for e in events]
        assert kinds[0] == "plan" and kinds[-1] == "summary"
        assert kinds.count("result") == 2
        assert all(e.source == "run" for e in events
                   if e.event == "result")
        summary = events[-1]
        assert summary.executed == 2 and summary.hits == 0
        assert summary.done == summary.total == 2

    def test_options_journaled_and_overridable(self, tmp_path):
        store = ResultStore(tmp_path)
        scheduler = submit_campaign(specs(1), store, jobs=3,
                                    timeout_s=42.0, retries=5)
        cid = scheduler.run.campaign_id
        resumed = resume_campaign(cid, store)
        assert resumed.jobs == 3
        assert resumed.timeout_s == 42.0
        assert resumed.retries == 5
        overridden = resume_campaign(cid, store, jobs=1, retries=0)
        assert overridden.jobs == 1 and overridden.retries == 0
        assert overridden.timeout_s == 42.0


class TestFailureHandling:
    def test_retry_with_backoff_then_success(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        markers = tmp_path / "markers"
        markers.mkdir()
        scheduler = submit_campaign(
            specs(2), store, jobs=2, retries=2, backoff_s=0.01,
            worker_hook=fail_once_hook(str(markers)))
        report = scheduler.execute()
        assert report.executed == 2
        assert report.retried == 2          # one failed attempt per job
        assert not report.quarantined
        # The journal kept the failed attempts on record.
        run = CampaignRun.load(store.root, scheduler.run.campaign_id)
        assert all(job.state == "done" for job in run.jobs)
        assert all(job.attempts == 2 for job in run.jobs)

    def test_quarantine_does_not_abort_campaign(self, tmp_path):
        store = ResultStore(tmp_path)
        good, bad = spec(seed=1), spec(seed=2, bench="gcc")

        def poison_gcc(s):
            if s.bench == "gcc":
                raise ValueError("this spec is poisoned")

        events = []
        scheduler = submit_campaign(
            [good, bad], store, jobs=1, retries=1, backoff_s=0.01,
            worker_hook=poison_gcc, on_event=events.append)
        report = scheduler.execute()
        assert report.executed == 1
        assert len(report.quarantined) == 1
        assert "poisoned" in report.quarantined[0]["error"]
        assert "Traceback" in report.quarantined[0]["error"]
        assert "quarantined" in report.summary()
        assert any(e.event == "quarantine" and e.error for e in events)
        # Journal: quarantined state with traceback, campaign complete.
        run = CampaignRun.load(store.root, scheduler.run.campaign_id)
        states = {job.key: job.state for job in run.jobs}
        assert states[bad.cache_key()] == "quarantined"
        assert states[good.cache_key()] == "done"
        assert run.complete
        # Resume does not retry quarantined jobs.
        report2 = resume_campaign(scheduler.run.campaign_id, store,
                                  worker_hook=poison_gcc).execute()
        assert report2.hits == 1 and report2.executed == 0
        assert len(report2.quarantined) == 1

    def test_timeout_terminates_wedged_worker(self, tmp_path):
        store = ResultStore(tmp_path)
        scheduler = submit_campaign(
            specs(1), store, jobs=1, timeout_s=0.5, retries=0,
            backoff_s=0.01, worker_hook=sleepy_hook)
        t0 = time.monotonic()
        report = scheduler.execute()
        assert time.monotonic() - t0 < 20   # nowhere near the 30s sleep
        assert len(report.quarantined) == 1
        assert "timeout" in report.quarantined[0]["error"]


class _Crash(BaseException):
    """Raised by the dispatch hook; BaseException so nothing swallows it."""


class TestCrashResume:
    def test_resume_executes_exactly_the_remaining_jobs(self, tmp_path):
        jobs = specs(4)
        store = ResultStore(tmp_path / "a")
        dispatches = []

        def crash_on_third(s, index, attempt):
            dispatches.append(index)
            if len(dispatches) == 3:
                raise _Crash("injected scheduler crash")

        scheduler = submit_campaign(jobs, store, jobs=1,
                                    dispatch_hook=crash_on_third)
        cid = scheduler.run.campaign_id
        with pytest.raises(_Crash):
            scheduler.execute()

        # The journal alone knows the split: 2 done, 2 owed.
        run = CampaignRun.load(store.root, cid)
        counts = run.state_counts()
        assert counts["done"] == 2 and counts["pending"] == 2
        assert not run.complete

        events = []
        report = resume_campaign(cid, store,
                                 on_event=events.append).execute()
        assert report.executed == 2          # exactly N - K, no rework
        assert report.hits == 2
        assert report.total == 4
        assert CampaignRun.load(store.root, cid).complete
        sources = [e.source for e in events if e.event == "result"]
        assert sources.count("store") == 2 and sources.count("run") == 2

        # Byte-identical final report vs. an uninterrupted campaign.
        clean = submit_campaign(jobs, ResultStore(tmp_path / "b"),
                                jobs=1).execute()
        assert report.stats_payload() == clean.stats_payload()

    def test_kill_mid_flight_folds_running_back_to_pending(self, tmp_path):
        store = ResultStore(tmp_path)
        run = CampaignRun.create(store.root, specs(2))
        run.record(0, "running", attempt=1)   # then the process dies
        reloaded = CampaignRun.load(store.root, run.campaign_id)
        assert [j.state for j in reloaded.jobs] == ["pending", "pending"]


class TestJournal:
    def test_create_rejects_empty_and_duplicate(self, tmp_path):
        with pytest.raises(CampaignError):
            CampaignRun.create(tmp_path, [])
        CampaignRun.create(tmp_path, specs(1), campaign_id="dup")
        with pytest.raises(CampaignError):
            CampaignRun.create(tmp_path, specs(1), campaign_id="dup")

    def test_load_tolerates_torn_tail(self, tmp_path):
        run = CampaignRun.create(tmp_path, specs(2))
        run.record(0, "done", source="run")
        with open(run.path, "a", encoding="utf-8") as fh:
            fh.write('{"job": 1, "state": "don')   # SIGKILL mid-append
        reloaded = CampaignRun.load(tmp_path, run.campaign_id)
        assert reloaded.jobs[0].state == "done"
        assert reloaded.jobs[1].state == "pending"

    def test_load_ignores_foreign_lines(self, tmp_path):
        run = CampaignRun.create(tmp_path, specs(1))
        with open(run.path, "a", encoding="utf-8") as fh:
            fh.write(json.dumps({"job": 99, "state": "done"}) + "\n")
            fh.write(json.dumps({"job": 0, "state": "warp"}) + "\n")
        reloaded = CampaignRun.load(tmp_path, run.campaign_id)
        assert reloaded.jobs[0].state == "pending"

    def test_load_unknown_campaign_raises(self, tmp_path):
        with pytest.raises(CampaignError):
            CampaignRun.load(tmp_path, "missing")

    def test_status_and_listing(self, tmp_path):
        first = CampaignRun.create(tmp_path, specs(2), campaign_id="one")
        first.record(0, "done", source="run")
        first.record(1, "quarantined", error="Traceback ... boom")
        first.record_complete(hits=0, executed=1)
        time.sleep(0.01)
        CampaignRun.create(tmp_path, specs(1), campaign_id="two")

        status = CampaignRun.load(tmp_path, "one").status()
        assert status["complete"] is True
        assert status["states"]["done"] == 1
        assert status["quarantined"][0]["error"].endswith("boom")
        json.dumps(status)                   # JSON-safe end to end

        listed = list_campaigns(tmp_path)
        assert [s["campaign"] for s in listed] == ["two", "one"]
