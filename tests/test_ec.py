"""Unit + property tests for the Execution Cache machinery."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.config import FlywheelConfig
from repro.ec.builder import TraceBuilder
from repro.ec.cache import ExecutionCache
from repro.ec.fill_buffer import FillBuffer
from repro.ec.trace import IssueUnit, Trace, TraceInstr
from repro.errors import SimulationError
from repro.isa import DynInstr, OpClass


def _dyn(seq, pos):
    d = DynInstr(seq=seq, pc=0x1000 + 4 * seq, op=OpClass.INT_ALU, dest=8,
                 srcs=(1,), sid=seq)
    d.dest_lid = 1
    d.src_lids = (0,)
    d.trace_pos = pos
    return d


def _trace(tid, start_pc, n_instrs, unit_size=2):
    units, pos = [], 0
    while pos < n_instrs:
        size = min(unit_size, n_instrs - pos)
        units.append(IssueUnit(
            [TraceInstr(pos + k, _dyn(pos + k, pos + k))
             for k in range(size)]))
        pos += size
    return Trace(tid, start_pc, units)


class TestTrace:
    def test_empty_trace_rejected(self):
        with pytest.raises(SimulationError):
            Trace(0, 0x100, [])

    def test_lengths(self):
        t = _trace(0, 0x100, 10, unit_size=3)
        assert t.length == 10
        assert t.blocks(8) == 2

    def test_program_order_is_sorted_permutation(self):
        # Build units in scrambled issue order
        units = [IssueUnit([TraceInstr(2, _dyn(2, 2))]),
                 IssueUnit([TraceInstr(0, _dyn(0, 0)),
                            TraceInstr(3, _dyn(3, 3))]),
                 IssueUnit([TraceInstr(1, _dyn(1, 1))])]
        t = Trace(0, 0x100, units)
        assert [r.pos for r in t.program_order()] == [0, 1, 2, 3]


class TestBuilder:
    def test_records_and_seals(self):
        b = TraceBuilder(block_slots=8, max_units=512)
        b.begin(0x400)
        b.record_unit([(0, _dyn(0, 0)), (1, _dyn(1, 1))])
        b.record_unit([(2, _dyn(2, 2))])
        t = b.seal(7)
        assert t.tid == 7
        assert t.start_pc == 0x400
        assert t.length == 3
        assert not b.active

    def test_seal_empty_returns_none(self):
        b = TraceBuilder(8, 512)
        b.begin(0x400)
        assert b.seal(0) is None

    def test_block_write_accounting(self):
        b = TraceBuilder(block_slots=4, max_units=512)
        b.begin(0x400)
        for u in range(3):
            b.record_unit([(3 * u + k, _dyn(3 * u + k, 3 * u + k))
                           for k in range(3)])   # 9 slots -> 2 full blocks
        before = b.da_block_writes
        assert before == 2
        b.seal(0)
        assert b.da_block_writes == 3   # final partial block


class TestExecutionCache:
    def test_insert_lookup(self):
        ec = ExecutionCache(FlywheelConfig())
        t = _trace(ec.alloc_tid(), 0x100, 8)
        ec.insert(t)
        assert ec.lookup(0x100) is t
        assert ec.lookup(0x104) is None

    def test_same_pc_replaces(self):
        ec = ExecutionCache(FlywheelConfig())
        t1 = _trace(0, 0x100, 8)
        t2 = _trace(1, 0x100, 12)
        ec.insert(t1)
        ec.insert(t2)
        assert not t1.valid
        assert ec.lookup(0x100) is t2

    def test_capacity_eviction_lru(self):
        cfg = FlywheelConfig(ec_kb=1)   # 16 blocks
        ec = ExecutionCache(cfg)
        t1 = _trace(0, 0x100, 48)       # 6 blocks each: three do not fit
        t2 = _trace(1, 0x200, 48)
        t3 = _trace(2, 0x300, 48)
        ec.insert(t1)
        ec.insert(t2)
        ec.lookup(0x100)                # refresh t1
        ec.insert(t3)                   # must evict t2 (LRU)
        assert t1.valid
        assert not t2.valid
        assert ec.used_blocks <= ec.total_blocks

    def test_oversized_trace_skipped(self):
        cfg = FlywheelConfig(ec_kb=1)
        ec = ExecutionCache(cfg)
        assert not ec.insert(_trace(0, 0x100, 1000))
        assert ec.used_blocks == 0
        assert ec.stats.oversized == 1

    def test_invalidate_all(self):
        ec = ExecutionCache(FlywheelConfig())
        ec.insert(_trace(0, 0x100, 8))
        ec.invalidate_all()
        assert ec.lookup(0x100) is None
        assert ec.used_blocks == 0
        assert ec.trace_count == 0

    def test_stats(self):
        ec = ExecutionCache(FlywheelConfig())
        ec.insert(_trace(0, 0x100, 8))
        ec.lookup(0x100)
        ec.lookup(0x999)
        assert ec.stats.hits == 1
        assert ec.stats.misses == 1
        assert ec.stats.hit_rate == pytest.approx(0.5)


@settings(max_examples=25, deadline=None)
@given(lengths=st.lists(st.integers(1, 64), min_size=1, max_size=40))
def test_ec_block_accounting_invariant(lengths):
    """used_blocks always equals the sum over valid traces."""
    ec = ExecutionCache(FlywheelConfig(ec_kb=8))   # 128 blocks
    for i, n in enumerate(lengths):
        ec.insert(_trace(i, 0x100 + 0x40 * i, n))
        expected = sum(t.blocks(8) for t in ec._by_pc.values() if t.valid)
        assert ec.used_blocks == expected
        assert ec.used_blocks <= ec.total_blocks


class TestFillBuffer:
    def test_first_block_latency(self):
        fb = FillBuffer(block_slots=8, latency=3)
        fb.start(cycle=10, total_slots=24)
        fb.tick(12)
        assert not fb.can_consume(1)
        fb.tick(13)
        assert fb.can_consume(8)

    def test_streaming_rate(self):
        fb = FillBuffer(8, 3)
        fb.start(0, 64)
        fb.tick(3)
        fb.tick(4)
        assert fb.can_consume(16)     # two blocks arrived
        assert not fb.can_consume(17)  # buffer depth bound

    def test_depth_bound_until_consumed(self):
        fb = FillBuffer(8, 3)
        fb.start(0, 64)
        for c in range(3, 10):
            fb.tick(c)
        assert not fb.can_consume(17)   # never more than 2 blocks ahead
        fb.consume(8)
        fb.tick(10)
        assert fb.can_consume(16)

    def test_underflow_guard(self):
        fb = FillBuffer(8, 3)
        fb.start(0, 8)
        with pytest.raises(SimulationError):
            fb.consume(1)

    def test_total_slots_cap(self):
        fb = FillBuffer(8, 3)
        fb.start(0, 5)
        for c in range(3, 8):
            fb.tick(c)
        assert fb.can_consume(5)
        assert not fb.can_consume(6)
