"""Unit tests for the ISA layer."""

import pytest

from repro.isa import (
    EXEC_LATENCY,
    FU_KIND,
    BranchKind,
    BranchSpec,
    DynInstr,
    MemRef,
    OpClass,
    StaticInstr,
    is_branch,
    is_memory,
    reg_name,
)
from repro.isa.opclasses import UNPIPELINED, FuKind
from repro.isa.registers import FP_REG_BASE, NUM_ARCH_REGS, NUM_INT_REGS


class TestOpClasses:
    def test_every_class_has_latency(self):
        for op in OpClass:
            assert EXEC_LATENCY[op] >= 1

    def test_every_class_has_fu(self):
        for op in OpClass:
            assert FU_KIND[op] in FuKind

    def test_divides_are_unpipelined(self):
        assert OpClass.INT_DIV in UNPIPELINED
        assert OpClass.FP_DIV in UNPIPELINED
        assert OpClass.INT_ALU not in UNPIPELINED

    def test_memory_predicate(self):
        assert is_memory(OpClass.LOAD)
        assert is_memory(OpClass.STORE)
        assert not is_memory(OpClass.INT_ALU)

    def test_branch_predicate(self):
        assert is_branch(OpClass.BRANCH)
        assert not is_branch(OpClass.LOAD)

    def test_loads_slower_than_alu(self):
        assert EXEC_LATENCY[OpClass.INT_DIV] > EXEC_LATENCY[OpClass.INT_MUL]
        assert EXEC_LATENCY[OpClass.INT_MUL] > EXEC_LATENCY[OpClass.INT_ALU]


class TestRegisters:
    def test_flat_space_layout(self):
        assert NUM_ARCH_REGS == NUM_INT_REGS + 32
        assert FP_REG_BASE == NUM_INT_REGS

    def test_reg_names(self):
        assert reg_name(0) == "r0"
        assert reg_name(31) == "r31"
        assert reg_name(32) == "f0"
        assert reg_name(63) == "f31"

    def test_reg_name_bounds(self):
        with pytest.raises(ValueError):
            reg_name(64)
        with pytest.raises(ValueError):
            reg_name(-1)


class TestStaticInstr:
    def test_memory_requires_memref(self):
        with pytest.raises(ValueError):
            StaticInstr(sid=0, op=OpClass.LOAD, dest=5, srcs=(1,))

    def test_cond_requires_spec(self):
        with pytest.raises(ValueError):
            StaticInstr(sid=0, op=OpClass.BRANCH, srcs=(1,),
                        branch_kind=BranchKind.COND)

    def test_branch_requires_kind(self):
        with pytest.raises(ValueError):
            StaticInstr(sid=0, op=OpClass.BRANCH, srcs=(1,))

    def test_valid_load(self):
        instr = StaticInstr(sid=1, op=OpClass.LOAD, dest=8, srcs=(2,),
                            mem=MemRef(region=0))
        assert instr.mem.region == 0

    def test_valid_cond_branch(self):
        instr = StaticInstr(
            sid=2, op=OpClass.BRANCH, srcs=(3,),
            branch_kind=BranchKind.COND,
            branch=BranchSpec(loop_trip=4),
            taken_target=0, fall_target=1)
        assert instr.branch.loop_trip == 4


class TestDynInstr:
    def test_next_pc_taken(self):
        dyn = DynInstr(seq=0, pc=0x100, op=OpClass.BRANCH, dest=None,
                       srcs=(), sid=0, branch_kind=BranchKind.COND,
                       taken=True, target_pc=0x200, fall_pc=0x104)
        assert dyn.next_pc == 0x200

    def test_next_pc_not_taken(self):
        dyn = DynInstr(seq=0, pc=0x100, op=OpClass.BRANCH, dest=None,
                       srcs=(), sid=0, branch_kind=BranchKind.COND,
                       taken=False, target_pc=0x200, fall_pc=0x104)
        assert dyn.next_pc == 0x104

    def test_is_branch(self):
        dyn = DynInstr(seq=0, pc=0, op=OpClass.INT_ALU, dest=1, srcs=(),
                       sid=0)
        assert not dyn.is_branch
