"""Tests for the adaptive clock governor subsystem (repro.dvfs).

Covers the config/ladder validation, the individual governor policies as
pure decision functions over synthetic telemetry, the controller
integration on all three core kinds (retunes happen, traces record them,
time accounting stays exact across frequency segments), and the campaign
plumbing (governed specs are distinct cache keys and round-trip through
JSON). The bit-exactness of the ``static`` governor is pinned separately
in test_golden_stats.py.
"""

import json

import pytest

from repro.campaign.spec import RunSpec
from repro.campaign.store import ResultStore
from repro.clocks.domain import mhz_to_period_ps
from repro.core.config import ClockPlan
from repro.core.sim import (
    SimResult,
    run_baseline,
    run_flywheel,
    run_pipelined_wakeup,
)
from repro.core.stats import SimStats
from repro.dvfs import (
    EnergyBudgetGovernor,
    GovernorConfig,
    IntervalTelemetry,
    IpcLadderGovernor,
    OccupancyGovernor,
    StaticGovernor,
    make_governor,
)
from repro.errors import ConfigError
from repro.power import TECH_130, energy_report

#: Small budgets so adaptive runs stay fast but still see many intervals.
_N, _W = 6000, 1500


def _plan(name, **kw):
    kw.setdefault("interval", 250)
    return ClockPlan(governor=GovernorConfig(name=name, **kw))


# --------------------------------------------------------------- config


class TestGovernorConfig:
    def test_rejects_unknown_name(self):
        with pytest.raises(ConfigError):
            GovernorConfig(name="overclock")

    def test_rejects_bad_ladder(self):
        with pytest.raises(ConfigError):
            GovernorConfig(scale_steps=())
        with pytest.raises(ConfigError):
            GovernorConfig(scale_steps=(1.0, 0.8))       # not ascending
        with pytest.raises(ConfigError):
            GovernorConfig(scale_steps=(0.5, 0.5, 1.0))  # duplicate
        with pytest.raises(ConfigError):
            GovernorConfig(scale_steps=(-1.0, 1.0))

    def test_rejects_bad_interval_tech_thresholds(self):
        with pytest.raises(ConfigError):
            GovernorConfig(interval=0)
        with pytest.raises(ConfigError):
            GovernorConfig(tech="7nm")
        with pytest.raises(ConfigError):
            GovernorConfig(occ_low=0.8, occ_high=0.4)
        with pytest.raises(ConfigError):
            GovernorConfig(budget_headroom=0.0)

    def test_start_index_snaps_to_nearest_rung(self):
        cfg = GovernorConfig(scale_steps=(0.5, 0.75, 1.0), start_scale=0.8)
        assert cfg.scale_steps[cfg.start_index] == 0.75

    def test_numeric_coercion_makes_equal_configs_hash_equal(self):
        a = GovernorConfig(scale_steps=[1, 1.5], start_scale=1)
        b = GovernorConfig(scale_steps=(1.0, 1.5), start_scale=1.0)
        assert a == b
        assert a.cache_key() == b.cache_key()

    def test_cache_key_sees_every_knob(self):
        base = GovernorConfig()
        assert base.cache_key() != GovernorConfig(interval=2000).cache_key()
        assert base.cache_key() != GovernorConfig(occ_high=0.7).cache_key()


class TestClockPlanGovernor:
    def test_plan_coerces_payload_dict(self):
        plan = ClockPlan(governor={"name": "occupancy", "interval": 123})
        assert isinstance(plan.governor, GovernorConfig)
        assert plan.governor.interval == 123

    def test_governed_plan_changes_cache_key(self):
        assert (ClockPlan().cache_key()
                != ClockPlan(governor=GovernorConfig()).cache_key())


# ------------------------------------------------------------- policies


def _telemetry(**kw):
    kw.setdefault("cycles", 250)
    kw.setdefault("time_ps", 250_000)
    kw.setdefault("committed", 500)
    return IntervalTelemetry(**kw)


class TestPolicies:
    def test_static_never_moves(self):
        gov = StaticGovernor(GovernorConfig())
        assert gov.decide(_telemetry(iw_occ=1.0)) == 0
        assert gov.decide(_telemetry(iw_occ=0.0)) == 0

    def test_occupancy_ratio_control(self):
        gov = OccupancyGovernor(GovernorConfig(name="occupancy"))
        assert gov.decide(_telemetry(iw_occ=0.9)) == +1
        assert gov.decide(_telemetry(iw_occ=0.05)) == -1
        assert gov.decide(_telemetry(iw_occ=0.4)) == 0

    def test_occupancy_sees_rob_pressure_when_window_bypassed(self):
        # EC replay: window empty, ROB backed up -> still "pressure up".
        gov = OccupancyGovernor(GovernorConfig(name="occupancy"))
        assert gov.decide(_telemetry(iw_occ=0.0, rob_occ=0.95)) == +1

    def test_ladder_reverses_on_worse_edp(self):
        gov = IpcLadderGovernor(GovernorConfig(name="ipc_ladder"))
        first = gov.decide(_telemetry(scale=1.0, energy_pj=1e6))
        assert first == -1                      # probes down from nominal
        # Much worse score at the lower rung: reverse to climbing.
        assert gov.decide(_telemetry(scale=0.9, energy_pj=5e6)) == +1

    def test_ladder_keeps_direction_while_improving(self):
        gov = IpcLadderGovernor(GovernorConfig(name="ipc_ladder"))
        gov.decide(_telemetry(scale=1.0, energy_pj=4e6))
        assert gov.decide(_telemetry(scale=0.9, energy_pj=3e6)) == -1

    def test_ladder_bounces_off_the_ends(self):
        cfg = GovernorConfig(name="ipc_ladder", scale_steps=(0.5, 1.0))
        gov = IpcLadderGovernor(cfg)
        gov.decide(_telemetry(scale=1.0, energy_pj=1e6))
        # Sitting on the bottom rung with a clearly improving score
        # (outside the hold band): must turn instead of pushing out.
        assert gov.decide(_telemetry(scale=0.5, energy_pj=0.5e6)) == +1

    def test_ladder_holds_without_progress(self):
        gov = IpcLadderGovernor(GovernorConfig(name="ipc_ladder"))
        assert gov.decide(_telemetry(committed=0, energy_pj=1e6)) == 0

    def test_ladder_settles_on_a_plateau(self):
        """Scores inside the margin band hold the rung: a settled climber
        stops retuning instead of oscillating once per interval."""
        gov = IpcLadderGovernor(GovernorConfig(name="ipc_ladder"))
        gov.decide(_telemetry(scale=1.0, energy_pj=1e6))
        moves = [gov.decide(_telemetry(scale=0.9, energy_pj=1.01e6))
                 for _ in range(5)]
        assert moves == [0] * 5
        # A phase change breaks the plateau and the climb resumes.
        assert gov.decide(_telemetry(scale=0.9, energy_pj=2e6)) != 0

    def test_energy_budget_autocalibrates_then_regulates(self):
        cfg = GovernorConfig(name="energy_budget", budget_headroom=0.8)
        gov = EnergyBudgetGovernor(cfg)
        # First interval: 4 W observed -> budget 3.2 W, start throttling.
        assert gov.decide(_telemetry(energy_pj=1e6, time_ps=250_000)) == -1
        # Above budget -> keep throttling; far below -> step back up.
        assert gov.decide(_telemetry(energy_pj=1e6, time_ps=250_000)) == -1
        assert gov.decide(_telemetry(energy_pj=0.5e6,
                                     time_ps=250_000)) == +1

    def test_explicit_budget_respected(self):
        cfg = GovernorConfig(name="energy_budget", budget_watts=10.0)
        gov = EnergyBudgetGovernor(cfg)
        # 20 W observed against a 10 W envelope: throttle immediately
        # (no auto-calibration when the budget is explicit).
        assert gov.decide(_telemetry(energy_pj=5e6, time_ps=250_000)) == -1
        # 4 W is comfortably inside the envelope: step back up.
        assert gov.decide(_telemetry(energy_pj=1e6, time_ps=250_000)) == +1

    def test_factory_builds_every_policy(self):
        for name in ("static", "occupancy", "ipc_ladder", "energy_budget"):
            assert make_governor(GovernorConfig(name=name)) is not None


# ------------------------------------------------- controller integration


class TestSyncIntegration:
    def test_static_attaches_controller_but_never_retunes(self):
        res = run_baseline("smoke", clock=_plan("static"),
                           max_instructions=_N, warmup=_W)
        assert res.core.dvfs is not None
        assert res.stats.dvfs_retunes == 0
        assert res.stats.freq_trace == [[0, 950.0]]

    def test_occupancy_retunes_and_traces(self):
        res = run_baseline("gcc", clock=_plan("occupancy"),
                           max_instructions=_N, warmup=_W)
        stats = res.stats
        assert stats.dvfs_retunes > 0
        assert len(stats.freq_trace) == stats.dvfs_retunes + 1
        cycles = [c for c, _m in stats.freq_trace]
        assert cycles == sorted(cycles)
        ladder = {950.0 * s for s in GovernorConfig().scale_steps}
        assert all(m in ladder for _c, m in stats.freq_trace)

    def test_sim_time_is_exact_piecewise_sum(self):
        """Cycles spanning multiple frequencies account time segment by
        segment — the invariant the energy model's static/EDP terms rest
        on. Recomputed independently from the frequency trace."""
        res = run_baseline("gcc", clock=_plan("occupancy"),
                           max_instructions=_N, warmup=_W)
        stats = res.stats
        assert stats.dvfs_retunes > 0
        trace = stats.freq_trace
        total = stats.total_be_cycles
        expect = 0
        for i, (cycle, mhz) in enumerate(trace):
            nxt = trace[i + 1][0] if i + 1 < len(trace) else total
            expect += (int(nxt) - int(cycle)) * mhz_to_period_ps(mhz)
        assert stats.sim_time_ps == expect
        # And it must differ from the naive single-frequency formula,
        # i.e. the piecewise path was genuinely exercised.
        assert stats.sim_time_ps != total * mhz_to_period_ps(950.0)

    def test_pipelined_wakeup_supports_governors(self):
        res = run_pipelined_wakeup("gcc", clock=_plan("occupancy"),
                                   max_instructions=_N, warmup=_W)
        assert res.stats.dvfs_retunes > 0

    def test_energy_baseline_excludes_functional_warmup(self):
        """The first interval's power estimate must not include warmup's
        cache traffic: the controller re-snapshots its event/L2 baselines
        after warmup, so energy_budget's auto-calibrated envelope tracks
        *run* power and the governor genuinely regulates (pre-fix it
        calibrated ~2x high off warmup L2 accesses and pinned at
        nominal)."""
        res = run_baseline("gcc", clock=_plan("energy_budget",
                                              interval=500),
                           max_instructions=20_000, warmup=20_000)
        stats = res.stats
        assert stats.dvfs_retunes >= 4
        assert min(m for _c, m in stats.freq_trace) < 950.0 * 0.9

    def test_energy_report_spans_frequency_segments(self):
        governed = run_baseline("gcc", clock=_plan("occupancy"),
                                max_instructions=_N, warmup=_W)
        fixed = run_baseline("gcc", max_instructions=_N, warmup=_W)
        gov_rep = energy_report(governed, TECH_130)
        fix_rep = energy_report(fixed, TECH_130)
        assert governed.stats.dvfs_retunes > 0
        assert gov_rep.time_s == pytest.approx(
            governed.stats.sim_time_ps * 1e-12)
        # Leakage integrates over the (longer, throttled) wall clock.
        assert gov_rep.time_s > fix_rep.time_s
        assert gov_rep.static_pj > fix_rep.static_pj


class TestFlywheelIntegration:
    def test_ladder_retunes_only_the_fast_clock(self):
        clock = ClockPlan(fe_speedup=1.0, be_speedup=0.5,
                          governor=GovernorConfig(name="ipc_ladder",
                                                  interval=250))
        res = run_flywheel("gcc", clock=clock, max_instructions=_N,
                           warmup=_W)
        stats = res.stats
        assert stats.dvfs_retunes > 0
        fast = clock.be_fast_mhz
        ladder = {fast * s for s in GovernorConfig().scale_steps}
        assert all(m in ladder for _c, m in stats.freq_trace)
        # Creation clock untouched: the trace never dips below the
        # lowest fast-clock rung.
        assert min(m for _c, m in stats.freq_trace) >= fast * 0.6

    def test_wall_clock_consistent_with_cycle_mix(self):
        """sim_time_ps (domain timeline) stays within the bounds set by
        the slowest/fastest frequencies the run ever used."""
        clock = ClockPlan(fe_speedup=1.0, be_speedup=0.5,
                          governor=GovernorConfig(name="ipc_ladder",
                                                  interval=250))
        res = run_flywheel("gcc", clock=clock, max_instructions=_N,
                           warmup=_W)
        stats = res.stats
        total = stats.total_be_cycles
        lo_period = mhz_to_period_ps(clock.be_fast_mhz)      # fastest
        hi_period = mhz_to_period_ps(clock.be_mhz * 0.6)     # slowest
        assert total * lo_period <= stats.sim_time_ps <= total * hi_period


# --------------------------------------------------- campaign plumbing


class TestCampaignPlumbing:
    def test_governed_spec_is_a_distinct_job(self):
        plain = RunSpec(kind="baseline", bench="gcc")
        governed = RunSpec(kind="baseline", bench="gcc",
                           clock=_plan("occupancy"))
        assert plain.cache_key() != governed.cache_key()
        assert "gov=occupancy" in governed.label

    def test_sync_normalization_keeps_the_governor(self):
        spec = RunSpec(kind="baseline", bench="gcc",
                       clock=ClockPlan(fe_speedup=1.0,
                                       governor=GovernorConfig()))
        assert spec.clock.fe_speedup == 0.0      # speedups collapse
        assert spec.clock.governor == GovernorConfig()

    def test_governed_spec_roundtrips_through_json(self):
        spec = RunSpec(kind="flywheel", bench="gcc",
                       clock=ClockPlan(be_speedup=0.5,
                                       governor=GovernorConfig(
                                           name="energy_budget")))
        back = RunSpec.from_dict(json.loads(json.dumps(spec.to_dict())))
        assert back == spec

    def test_result_with_freq_trace_survives_the_store(self, tmp_path):
        spec = RunSpec(kind="baseline", bench="gcc",
                       clock=_plan("occupancy"), instructions=_N,
                       warmup=_W)
        result = spec.execute()
        assert result.stats.dvfs_retunes > 0
        store = ResultStore(tmp_path)
        store.put(spec.cache_key(), spec, result)
        back = store.get(spec.cache_key())
        assert back.stats.freq_trace == result.stats.freq_trace
        assert back.stats.dvfs_retunes == result.stats.dvfs_retunes
        assert back.clock.governor == spec.clock.governor
        # Detached results still power the energy model.
        assert energy_report(back, TECH_130).total_pj > 0

    def test_stats_roundtrip_preserves_dvfs_fields(self):
        stats = SimStats(dvfs_retunes=2,
                         freq_trace=[[0, 950.0], [500, 855.0]])
        back = SimStats.from_dict(stats.to_dict())
        assert back.freq_trace == stats.freq_trace
        assert back.dvfs_retunes == 2


# ------------------------------------------------------------ reporting


class TestBenchRegressionGate:
    def test_compare_flags_lost_series_with_none_delta(self):
        import sys
        from pathlib import Path

        sys.path.insert(0, str(Path(__file__).parent.parent / "benchmarks"))
        try:
            import bench_sim_speed as b
        finally:
            sys.path.pop(0)
        committed = {"series": {"baseline/gcc": {"cycles_per_sec": 100},
                                "flywheel/gcc": {"cycles_per_sec": 100}}}
        fresh = {"series": {"baseline/gcc": {"cycles_per_sec": 80}}}
        rows = b.compare(fresh, committed)
        by_name = {r["series"]: r for r in rows}
        assert by_name["baseline/gcc"]["delta_pct"] == -20.0
        # A committed series missing from the fresh report surfaces with
        # old set and new/delta None — what main()'s gate fails on.
        lost = by_name["flywheel/gcc"]
        assert lost["old"] == 100
        assert lost["new"] is None and lost["delta_pct"] is None


class TestReporting:
    def test_freq_trace_rows_and_format(self):
        from repro.analysis.report import format_freq_trace, freq_trace_rows

        stats = SimStats(be_cycles_create=2000, dvfs_retunes=1,
                         freq_trace=[[0, 950.0], [500, 855.0]])
        rows = freq_trace_rows(stats)
        assert rows == [{"cycle": 0, "mhz": 950.0, "dwell": 500},
                        {"cycle": 500, "mhz": 855.0, "dwell": 1500}]
        text = format_freq_trace(stats)
        assert "0:950" in text and "500:855" in text
        assert "1 retunes" in text

    def test_format_handles_ungoverned_runs(self):
        from repro.analysis.report import format_freq_trace

        assert "no governor" in format_freq_trace(SimStats())
