"""Unit + property tests for the cache model and hierarchy."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ConfigError
from repro.mem import Cache, MemoryConfig, MemoryHierarchy


class TestCacheGeometry:
    def test_bad_ways(self):
        with pytest.raises(ConfigError):
            Cache("c", 1024, 0)

    def test_bad_line(self):
        with pytest.raises(ConfigError):
            Cache("c", 1024, 2, line_bytes=33)

    def test_indivisible_size(self):
        with pytest.raises(ConfigError):
            Cache("c", 1000, 2, line_bytes=32)

    def test_set_count(self):
        cache = Cache("c", 64 * 1024, 2, line_bytes=32)
        assert cache.num_sets == 1024


class TestCacheBehaviour:
    def test_miss_then_hit(self):
        cache = Cache("c", 1024, 2, line_bytes=32)
        assert not cache.access(0x100)
        assert cache.access(0x100)

    def test_same_line_hits(self):
        cache = Cache("c", 1024, 2, line_bytes=32)
        cache.access(0x100)
        assert cache.access(0x11F)   # same 32B line
        assert not cache.access(0x120)  # next line

    def test_lru_eviction(self):
        # 2-way: two distinct tags fit, a third evicts the least recent.
        cache = Cache("c", 64, 2, line_bytes=32)  # 1 set, 2 ways
        cache.access(0x0)      # A
        cache.access(0x1000)   # B
        cache.access(0x0)      # touch A (B becomes LRU)
        cache.access(0x2000)   # C evicts B
        assert cache.access(0x0)
        assert not cache.access(0x1000)

    def test_flush(self):
        cache = Cache("c", 1024, 2)
        cache.access(0x40)
        cache.flush()
        assert not cache.probe(0x40)

    def test_probe_does_not_count(self):
        cache = Cache("c", 1024, 2)
        cache.access(0x40)
        before = cache.stats.accesses
        cache.probe(0x40)
        assert cache.stats.accesses == before

    def test_stats(self):
        cache = Cache("c", 1024, 2)
        cache.access(0x40)
        cache.access(0x40)
        assert cache.stats.accesses == 2
        assert cache.stats.hits == 1
        assert cache.stats.miss_rate == pytest.approx(0.5)


@settings(max_examples=30, deadline=None)
@given(addrs=st.lists(st.integers(min_value=0, max_value=1 << 20),
                      min_size=1, max_size=200))
def test_cache_occupancy_bounded(addrs):
    """Lines resident never exceed ways x sets; re-access always hits."""
    cache = Cache("c", 2048, 2, line_bytes=32)
    for addr in addrs:
        cache.access(addr)
    resident = sum(len(s) for s in cache._sets)
    assert resident <= cache.num_sets * cache.ways
    # Re-touching the most recent address must hit.
    assert cache.access(addrs[-1])


@settings(max_examples=30, deadline=None)
@given(addrs=st.lists(st.integers(min_value=0, max_value=1 << 16),
                      min_size=1, max_size=100))
def test_small_working_set_never_evicts(addrs):
    """A working set smaller than the cache has no capacity misses."""
    cache = Cache("c", 1 << 20, 4, line_bytes=32)   # 1MB
    for addr in addrs:
        cache.access(addr)
    assert cache.stats.evictions == 0
    for addr in addrs:
        assert cache.access(addr)


class TestHierarchy:
    def test_latency_ordering(self):
        h = MemoryHierarchy(MemoryConfig())
        cold = h.load(0x10000)
        warm = h.load(0x10000)
        assert cold > warm
        assert warm == h.config.l1_latency

    def test_l2_hit_latency(self):
        h = MemoryHierarchy(MemoryConfig())
        h.load(0x40)                       # fill L1 + L2
        # Evict from tiny... instead use a fresh hierarchy and touch via l2
        h2 = MemoryHierarchy(MemoryConfig())
        h2.l2.access(0x40)                 # resident only in L2
        lat = h2.load(0x40)
        assert lat == h2.config.l1_latency + h2.config.l2_latency

    def test_mem_scale_inflates_dram(self):
        h = MemoryHierarchy(MemoryConfig())
        slow = h.load(0x999000, mem_scale=1.0)
        h.flush()
        fast = h.load(0x999000, mem_scale=1.5)
        assert fast == slow + round(0.5 * h.config.dram_latency)

    def test_ifetch_separate_from_data(self):
        h = MemoryHierarchy(MemoryConfig())
        h.ifetch(0x40)
        assert h.l1i.stats.accesses == 1
        assert h.l1d.stats.accesses == 0

    def test_store_write_allocates(self):
        h = MemoryHierarchy(MemoryConfig())
        h.store(0x40)
        assert h.load(0x40) == h.config.l1_latency
