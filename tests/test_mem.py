"""Unit + property tests for the cache model and hierarchy."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ConfigError
from repro.mem import Cache, MemoryConfig, MemoryHierarchy, MemorySpec


class TestCacheGeometry:
    def test_bad_ways(self):
        with pytest.raises(ConfigError):
            Cache("c", 1024, 0)

    def test_bad_line(self):
        with pytest.raises(ConfigError):
            Cache("c", 1024, 2, line_bytes=33)

    def test_indivisible_size(self):
        with pytest.raises(ConfigError):
            Cache("c", 1000, 2, line_bytes=32)

    def test_set_count(self):
        cache = Cache("c", 64 * 1024, 2, line_bytes=32)
        assert cache.num_sets == 1024


class TestCacheBehaviour:
    def test_miss_then_hit(self):
        cache = Cache("c", 1024, 2, line_bytes=32)
        assert not cache.access(0x100)
        assert cache.access(0x100)

    def test_same_line_hits(self):
        cache = Cache("c", 1024, 2, line_bytes=32)
        cache.access(0x100)
        assert cache.access(0x11F)   # same 32B line
        assert not cache.access(0x120)  # next line

    def test_lru_eviction(self):
        # 2-way: two distinct tags fit, a third evicts the least recent.
        cache = Cache("c", 64, 2, line_bytes=32)  # 1 set, 2 ways
        cache.access(0x0)      # A
        cache.access(0x1000)   # B
        cache.access(0x0)      # touch A (B becomes LRU)
        cache.access(0x2000)   # C evicts B
        assert cache.access(0x0)
        assert not cache.access(0x1000)

    def test_flush(self):
        cache = Cache("c", 1024, 2)
        cache.access(0x40)
        cache.flush()
        assert not cache.probe(0x40)

    def test_probe_does_not_count(self):
        cache = Cache("c", 1024, 2)
        cache.access(0x40)
        before = cache.stats.accesses
        cache.probe(0x40)
        assert cache.stats.accesses == before

    def test_stats(self):
        cache = Cache("c", 1024, 2)
        cache.access(0x40)
        cache.access(0x40)
        assert cache.stats.accesses == 2
        assert cache.stats.hits == 1
        assert cache.stats.miss_rate == pytest.approx(0.5)

    def test_lru_eviction_order_over_many_fills(self):
        # 4-way, 1 set: fill A,B,C,D then stream E,F,G,H — victims must
        # leave in exact insertion (LRU) order A,B,C,D.
        cache = Cache("c", 128, 4, line_bytes=32)   # 1 set, 4 ways
        fills = [0x0, 0x1000, 0x2000, 0x3000]
        for a in fills:
            cache.access(a)
        for i, newcomer in enumerate((0x4000, 0x5000, 0x6000, 0x7000)):
            cache.access(newcomer)
            # The i-th original line (and only that one) is gone.
            assert not cache.probe(fills[i])
            for survivor in fills[i + 1:]:
                assert cache.probe(survivor)

    def test_set_aliasing(self):
        # Two addresses a set-span apart map to the same set with
        # different tags; a third address in another set is untouched.
        cache = Cache("c", 2048, 2, line_bytes=32)  # 32 sets
        span = cache.num_sets * cache.line_bytes
        assert not cache.access(0x40)
        assert not cache.access(0x40 + span)        # same set, new tag
        assert not cache.access(0x40 + 2 * span)    # evicts the LRU alias
        assert cache.stats.evictions == 1
        assert not cache.probe(0x40)                # the LRU alias left
        assert cache.probe(0x40 + span)
        assert cache.probe(0x40 + 2 * span)

    def test_flush_preserves_stats_and_resets_contents(self):
        cache = Cache("c", 1024, 2)
        cache.access(0x40)
        cache.access(0x40)
        cache.flush()
        assert cache.stats.accesses == 2 and cache.stats.hits == 1
        assert not cache.access(0x40)               # compulsory again

    def test_install_does_not_count_demand_accesses(self):
        cache = Cache("c", 1024, 2)
        assert cache.install(0x40) is None
        assert cache.stats.accesses == 0
        assert cache.probe(0x40)
        assert cache.access(0x40)                   # demand hit now

    def test_install_reports_victim_line(self):
        cache = Cache("c", 64, 2, line_bytes=32)    # 1 set, 2 ways
        cache.install(0x0)
        cache.install(0x1000)
        victim = cache.install(0x2000)
        assert victim == 0x0 >> 5                   # line id of the LRU
        assert cache.stats.evictions == 1

    def test_access_ex_matches_access_semantics(self):
        a, b = Cache("a", 1024, 2), Cache("b", 1024, 2)
        stream = [0x40, 0x40, 0x2040, 0x4040, 0x6040, 0x40]
        for addr in stream:
            hit_a = a.access(addr)
            hit_b, _victim = b.access_ex(addr)
            assert hit_a == hit_b
        assert a.stats == b.stats


@settings(max_examples=40, deadline=None)
@given(bases=st.lists(st.integers(min_value=0, max_value=1 << 18),
                      min_size=1, max_size=120),
       offsets=st.lists(st.integers(min_value=0, max_value=31),
                        min_size=1, max_size=120))
def test_hit_miss_counts_invariant_under_line_offsets(bases, offsets):
    """Shifting each access within its 32B line never changes hit/miss
    behaviour: the cache is line-granular by construction."""
    aligned = Cache("a", 2048, 2, line_bytes=32)
    shifted = Cache("s", 2048, 2, line_bytes=32)
    for i, base in enumerate(bases):
        line_addr = (base >> 5) << 5
        aligned.access(line_addr)
        shifted.access(line_addr + offsets[i % len(offsets)])
    assert aligned.stats == shifted.stats


@settings(max_examples=30, deadline=None)
@given(addrs=st.lists(st.integers(min_value=0, max_value=1 << 20),
                      min_size=1, max_size=200))
def test_cache_occupancy_bounded(addrs):
    """Lines resident never exceed ways x sets; re-access always hits."""
    cache = Cache("c", 2048, 2, line_bytes=32)
    for addr in addrs:
        cache.access(addr)
    resident = sum(len(s) for s in cache._sets)
    assert resident <= cache.num_sets * cache.ways
    # Re-touching the most recent address must hit.
    assert cache.access(addrs[-1])


@settings(max_examples=30, deadline=None)
@given(addrs=st.lists(st.integers(min_value=0, max_value=1 << 16),
                      min_size=1, max_size=100))
def test_small_working_set_never_evicts(addrs):
    """A working set smaller than the cache has no capacity misses."""
    cache = Cache("c", 1 << 20, 4, line_bytes=32)   # 1MB
    for addr in addrs:
        cache.access(addr)
    assert cache.stats.evictions == 0
    for addr in addrs:
        assert cache.access(addr)


class TestHierarchy:
    def test_latency_ordering(self):
        h = MemoryHierarchy(MemoryConfig())
        cold = h.load(0x10000)
        warm = h.load(0x10000)
        assert cold > warm
        assert warm == h.config.l1_latency

    def test_l2_hit_latency(self):
        h = MemoryHierarchy(MemoryConfig())
        h.load(0x40)                       # fill L1 + L2
        # Evict from tiny... instead use a fresh hierarchy and touch via l2
        h2 = MemoryHierarchy(MemoryConfig())
        h2.l2.access(0x40)                 # resident only in L2
        lat = h2.load(0x40)
        assert lat == h2.config.l1_latency + h2.config.l2_latency

    def test_mem_scale_inflates_dram(self):
        h = MemoryHierarchy(MemoryConfig())
        slow = h.load(0x999000, mem_scale=1.0)
        h.flush()
        fast = h.load(0x999000, mem_scale=1.5)
        assert fast == slow + round(0.5 * h.config.dram_latency)

    def test_ifetch_separate_from_data(self):
        h = MemoryHierarchy(MemoryConfig())
        h.ifetch(0x40)
        assert h.l1i.stats.accesses == 1
        assert h.l1d.stats.accesses == 0

    def test_store_write_allocates(self):
        h = MemoryHierarchy(MemoryConfig())
        h.store(0x40)
        assert h.load(0x40) == h.config.l1_latency


def _legacy_spec(**overrides) -> MemorySpec:
    from dataclasses import replace

    return replace(MemorySpec.from_config(MemoryConfig()), **overrides)


class TestGeneralPathParity:
    """The general chain walk with a legacy-equivalent spec must behave
    exactly like the fast path (latencies and per-level counters)."""

    def _streams(self):
        import random

        rng = random.Random(7)
        return [rng.randrange(1 << 24) for _ in range(4000)]

    def test_load_latencies_and_stats_match_fast_path(self):
        fast = MemoryHierarchy(MemoryConfig())
        general = MemoryHierarchy(MemoryConfig(), force_general=True)
        assert fast.ifetch.__func__ is fast._ifetch_fast.__func__
        assert general.load.__func__ is general._load_general.__func__
        for addr in self._streams():
            assert fast.load(addr, 1.5) == general.load(addr, 1.5)
            assert fast.ifetch(addr ^ 0x40) == general.ifetch(addr ^ 0x40)
        for (n1, c1), (n2, c2) in zip(fast.named_caches(),
                                      general.named_caches()):
            assert n1 == n2 and c1.stats == c2.stats

    def test_store_latencies_match_fast_path(self):
        fast = MemoryHierarchy(MemoryConfig())
        general = MemoryHierarchy(MemoryConfig(), force_general=True)
        for addr in self._streams():
            assert fast.store(addr) == general.store(addr)
        assert fast.l1d.stats == general.l1d.stats
        assert fast.l2.stats == general.l2.stats

    def test_custom_l1i_latency_stays_fast_and_correct(self):
        # A simple spec with its own L1I latency still takes the fast
        # path, and the I-side latency matches the general walk.
        spec = _legacy_spec()
        spec = type(spec)(l1i=type(spec.l1i)(64, 2, 4),
                          levels=spec.levels)
        fast = MemoryHierarchy(spec=spec)
        general = MemoryHierarchy(spec=spec, force_general=True)
        assert fast.ifetch.__func__ is fast._ifetch_fast.__func__
        for addr in self._streams():
            assert fast.ifetch(addr) == general.ifetch(addr)
        fast.ifetch(0x4000_0040)            # install the line...
        assert fast.ifetch(0x4000_0040) == 4   # ...hit pays the I latency


class TestStoreAllocation:
    """The PR's satellite fix: a store that misses L1 but hits L2 must
    install the line in L1 under every write policy."""

    @pytest.mark.parametrize("spec", [
        _legacy_spec(),                               # legacy-equivalent
        _legacy_spec(write_policy="back"),            # write-back
    ], ids=["allocate", "write-back"])
    def test_store_miss_l1_hit_l2_installs_in_l1(self, spec):
        h = MemoryHierarchy(spec=spec, force_general=True)
        h.l2.install(0x40)                  # resident only in L2
        assert not h.l1d.probe(0x40)
        h.store(0x40)
        assert h.l1d.probe(0x40)            # explicitly allocated
        assert h.load(0x40) == h.spec.levels[0].latency

    def test_fast_path_store_also_allocates(self):
        h = MemoryHierarchy(MemoryConfig())
        h.l2.install(0x40)
        h.store(0x40)
        assert h.l1d.probe(0x40)


class TestWriteBack:
    def test_dirty_eviction_counts_writeback(self):
        # One-set L1D (2 ways): dirty a line, then evict it with two
        # newcomers — the spill must count a writeback at L1D.
        spec = MemorySpec(
            l1i=_legacy_spec().l1i,
            levels=(type(_legacy_spec().levels[0])(1, 2, 2),  # 1KB, 2-way
                    _legacy_spec().levels[1]),
            write_policy="back")
        h = MemoryHierarchy(spec=spec)
        h.store(0x0)
        span = h.l1d.num_sets * 32
        h.load(0x0 + span)
        h.load(0x0 + 2 * span)              # evicts the dirty line
        assert h.l1d.stats.writebacks == 1

    def test_clean_eviction_writes_nothing_back(self):
        spec = _legacy_spec(write_policy="back")
        h = MemoryHierarchy(spec=spec)
        for i in range(64):
            h.load(i * 64 * 1024)           # loads only: nothing dirty
        assert h.l1d.stats.writebacks == 0

    def test_spilled_victim_stays_dirty_at_the_next_level(self):
        # A dirty L1D victim spilled into a one-set L2 must write back
        # *again* when the L2 evicts it — dirtiness follows the line
        # down the chain, it is not laundered by the spill.
        from repro.mem import CacheLevelSpec

        spec = MemorySpec(
            levels=(CacheLevelSpec(1, 2, 2),     # 1KB 2-way L1D, 16 sets
                    CacheLevelSpec(1, 2, 10)),   # 1KB 2-way L2, 16 sets
            write_policy="back")
        h = MemoryHierarchy(spec=spec)
        h.store(0x0)                             # dirty in L1D
        span = h.l1d.num_sets * 32               # same-set alias stride
        h.load(span)
        # This load spills dirty 0x0 into the (equally tiny) L2, whose
        # own eviction of it in the same walk must write back again.
        h.load(2 * span)
        assert h.l1d.stats.writebacks == 1
        assert h.l2.stats.writebacks == 1


class TestMshrTiming:
    def _hier(self, mshrs):
        return MemoryHierarchy(spec=_legacy_spec(mshrs=mshrs))

    def test_blocking_serializes_independent_misses(self):
        h = self._hier(1)
        first = h.load(0x100_0000, 1.0, now=0)       # full DRAM miss
        second = h.load(0x200_0000, 1.0, now=0)      # must wait behind it
        assert second > first
        assert h.stats_dict()["mshr"]["stall_cycles"] > 0

    def test_nonblocking_overlaps_independent_misses(self):
        h = self._hier(4)
        lats = [h.load(0x100_0000 + i * (1 << 20), 1.0, now=0)
                for i in range(4)]
        assert len(set(lats)) == 1          # all four fills in flight
        assert h.stats_dict()["mshr"]["peak"] == 4

    def test_miss_to_inflight_line_merges(self):
        h = self._hier(4)
        full = h.load(0x100_0000, 1.0, now=0)
        # Same 32B line, 10 cycles later: only the remaining fill time.
        merged = h.load(0x100_0010, 1.0, now=10)
        assert merged == full - 10
        assert h.stats_dict()["mshr"]["merges"] == 1

    def test_full_file_keeps_inflight_entries_mergeable(self):
        # A request queued behind a full file must NOT evict the
        # in-flight entry: a later access to that line still merges
        # (pays remaining fill time) instead of pretending the data
        # arrived.
        h = self._hier(1)
        first = h.load(0x100_0000, 1.0, now=0)   # fill lands at `first`-2+2
        h.load(0x200_0000, 1.0, now=5)           # queued behind it
        again = h.load(0x100_0010, 1.0, now=20)  # same line as the first
        assert again == first - 20               # merged, not an L1 hit
        assert h.stats_dict()["mshr"]["merges"] == 1

    def test_queued_requests_stack_completion_waits(self):
        # With one MSHR, the k-th queued miss waits for k completions.
        h = self._hier(1)
        first = h.load(0x100_0000, 1.0, now=0)
        second = h.load(0x200_0000, 1.0, now=0)
        third = h.load(0x300_0000, 1.0, now=0)
        assert second > first
        assert third > second

    def test_mshrs_free_after_fill_completes(self):
        h = self._hier(1)
        first = h.load(0x100_0000, 1.0, now=0)
        late = h.load(0x200_0000, 1.0, now=first + 1)
        assert late == first                # no contention left
        assert h.stats_dict()["mshr"]["stall_cycles"] == 0

    def test_warmup_never_touches_the_mshr_timeline(self):
        h = self._hier(1)
        for i in range(64):
            h.warm_load(0x100_0000 + i * (1 << 20))
        assert not h._mshr_table
        assert h.stats_dict()["mshr"]["allocs"] == 0
        # ...but contents did warm:
        assert h.l1d.stats.accesses == 64


class TestPrefetch:
    def test_next_line_installs_successor(self):
        h = MemoryHierarchy(spec=_legacy_spec(prefetch="next_line"))
        h.load(0x100_0000)                  # miss trains the prefetcher
        assert h.l1d.probe(0x100_0020)      # next 32B line present
        assert h.l1d.stats.prefetches >= 1
        assert h.load(0x100_0020) == h.spec.levels[0].latency

    def test_stride_detector_needs_two_matching_strides(self):
        h = MemoryHierarchy(spec=_legacy_spec(prefetch="stride"))
        line = 1 << 5
        h.load(0x100_0000)
        h.load(0x100_0000 + 4 * line)       # stride observed once
        assert not h.l1d.probe(0x100_0000 + 8 * line)
        h.load(0x100_0000 + 8 * line)       # stride confirmed
        assert h.l1d.probe(0x100_0000 + 12 * line)

    def test_l1_hits_do_not_train(self):
        h = MemoryHierarchy(spec=_legacy_spec(prefetch="next_line"))
        h.load(0x100_0000)
        before = h.l1d.stats.prefetches
        h.load(0x100_0000)                  # hit: no training
        assert h.l1d.stats.prefetches == before


class TestDeepAndShallowChains:
    def test_three_level_chain_latencies_accumulate(self):
        from repro.mem import CacheLevelSpec

        spec = MemorySpec(levels=(CacheLevelSpec(64, 4, 2),
                                  CacheLevelSpec(512, 4, 10),
                                  CacheLevelSpec(2048, 8, 24)))
        h = MemoryHierarchy(spec=spec)
        cold = h.load(0x100_0000)
        assert cold == 2 + 10 + 24 + spec.dram_latency
        h.l1d.flush()
        h.l2.flush()
        assert h.load(0x100_0000) == 2 + 10 + 24    # L3 hit
        assert h.named_caches()[-1][0] == "l3"

    def test_single_level_chain_exposes_empty_l2_tap(self):
        from repro.mem import CacheLevelSpec

        spec = MemorySpec(levels=(CacheLevelSpec(64, 4, 2),))
        h = MemoryHierarchy(spec=spec)
        assert h.load(0x100_0000) == 2 + spec.dram_latency
        assert h.l2.stats.accesses == 0     # power tap reads zero
