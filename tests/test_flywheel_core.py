"""Integration tests for the Flywheel core (dual clock + Execution Cache)."""

import pytest

from repro.core.config import ClockPlan, CoreConfig, FlywheelConfig
from repro.core.flywheel import FlywheelCore
from repro.core.sim import run_baseline, run_flywheel
from repro.workloads import InstructionStream, generate_program, get_profile


def _core(name="smoke", clock=None, fly=None, config=None):
    prog = generate_program(get_profile(name))
    return FlywheelCore(
        config or CoreConfig(phys_regs=512, regread_stages=2),
        fly or FlywheelConfig(),
        clock or ClockPlan(),
        InstructionStream(prog))


class TestFlywheelProgress:
    def test_commits_requested(self):
        core = _core()
        stats = core.run(4000, warmup=2000)
        assert stats.committed >= 4000

    def test_deterministic(self):
        s1 = _core().run(4000, warmup=1000)
        s2 = _core().run(4000, warmup=1000)
        assert s1.total_be_cycles == s2.total_be_cycles
        assert s1.trace_hits == s2.trace_hits

    def test_time_advances(self):
        stats = _core().run(3000, warmup=1000)
        assert stats.sim_time_ps > 0

    def test_architectural_equivalence_with_baseline(self):
        """Both cores must commit the exact same instruction stream."""
        rb = run_baseline("smoke", max_instructions=4000, warmup=0)
        rf = run_flywheel("smoke", max_instructions=4000, warmup=0)
        # Same workload seed => same dynamic stream => same final walker
        # position modulo pipeline drain differences.
        assert abs(rb.core.stream.emitted - rf.core.stream.emitted) < 3000


class TestTraceMachinery:
    def test_builds_and_replays_traces(self):
        core = _core("ijpeg")
        stats = core.run(15000, warmup=8000)
        assert stats.traces_built > 0
        assert stats.trace_hits > 0
        assert stats.instrs_from_ec > 0

    def test_ec_residency_bounds(self):
        core = _core("ijpeg")
        stats = core.run(15000, warmup=8000)
        assert 0.0 < stats.ec_residency < 1.0
        assert (stats.be_cycles_create + stats.be_cycles_execute
                == stats.total_be_cycles)

    def test_ec_disabled_never_replays(self):
        core = _core("ijpeg", fly=FlywheelConfig(ec_enabled=False))
        stats = core.run(8000, warmup=2000)
        assert stats.trace_hits == 0
        assert stats.be_cycles_execute == 0
        assert stats.instrs_from_ec == 0

    def test_loopy_code_has_high_residency(self):
        core = _core("mesa")
        stats = core.run(20000, warmup=30000)
        assert stats.ec_residency > 0.5

    def test_fe_gated_only_in_execute_mode(self):
        core = _core("ijpeg")
        stats = core.run(15000, warmup=8000)
        if stats.be_cycles_execute > 0:
            assert stats.fe_cycles_gated > 0

    def test_srt_fast_switches_happen(self):
        core = _core("mesa")
        stats = core.run(20000, warmup=30000)
        assert stats.srt_switches > 0

    def test_no_srt_still_correct(self):
        core = _core("ijpeg", fly=FlywheelConfig(use_srt=False))
        stats = core.run(8000, warmup=2000)
        assert stats.committed >= 8000
        assert stats.srt_switches == 0


class TestClockScaling:
    def test_faster_backend_improves_time(self):
        slow = _core("mesa", clock=ClockPlan()).run(12000, warmup=20000)
        fast = _core("mesa", clock=ClockPlan(be_speedup=0.5)).run(
            12000, warmup=20000)
        assert fast.sim_time_ps < slow.sim_time_ps

    def test_faster_frontend_never_pathological(self):
        base = _core("gcc", clock=ClockPlan()).run(8000, warmup=4000)
        fe = _core("gcc", clock=ClockPlan(fe_speedup=1.0)).run(
            8000, warmup=4000)
        assert fe.sim_time_ps < base.sim_time_ps * 1.15

    def test_dram_scaling_with_fast_backend(self):
        """A 50% faster back-end must see more DRAM cycles, not fewer."""
        plan = ClockPlan(be_speedup=0.5)
        assert plan.mem_scale(plan.be_fast_mhz) == pytest.approx(1.5)


class TestRedistribution:
    def test_redistribution_fires_under_pressure(self):
        core = _core("vpr", fly=FlywheelConfig(redistribution_interval=2000))
        stats = core.run(15000, warmup=5000)
        assert stats.redistributions >= 1

    def test_redistribution_disabled(self):
        core = _core("vpr",
                     fly=FlywheelConfig(redistribution_enabled=False))
        stats = core.run(8000, warmup=2000)
        assert stats.redistributions == 0

    def test_pool_sizes_stay_budgeted(self):
        core = _core("vpr", fly=FlywheelConfig(redistribution_interval=2000))
        core.run(15000, warmup=5000)
        assert sum(core.pools.sizes) == 512


class TestPowerEvents:
    def test_flywheel_specific_events(self):
        core = _core("ijpeg")
        stats = core.run(15000, warmup=8000)
        for event in ("update_op", "sync_fifo_push", "ec_ta_lookup",
                      "ec_block_write"):
            assert stats.events[event] > 0, event

    def test_mode_switches_counted(self):
        core = _core("ijpeg")
        stats = core.run(15000, warmup=8000)
        assert stats.events["mode_switch"] > 0
