"""End-to-end architectural correctness: commit order and completeness.

The strongest invariant a trace-replaying machine must keep: whatever the
mode transitions, checkpoint games and wrong-path issues, the committed
instruction stream is exactly the program-order dynamic stream — every
sequence number once, in order.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.baseline import BaselineCore
from repro.core.config import ClockPlan, CoreConfig, FlywheelConfig
from repro.core.flywheel import FlywheelCore
from repro.workloads import InstructionStream, generate_program, get_profile


def _committed_seqs(core, n, warmup=0):
    """Run a core, recording the seq of every committed instruction."""
    seqs = []
    orig = core.rob.retire_ready

    def spy(width):
        entries = orig(width)
        seqs.extend(e.dyn.seq for e in entries)
        return entries

    core.rob.retire_ready = spy
    core.run(n, warmup=warmup)
    return seqs


def _baseline(name, seed=None):
    prog = generate_program(get_profile(name), seed=seed)
    return BaselineCore(CoreConfig(), InstructionStream(prog))


def _flywheel(name, seed=None, clock=None):
    prog = generate_program(get_profile(name), seed=seed)
    return FlywheelCore(CoreConfig(phys_regs=512, regread_stages=2),
                        FlywheelConfig(), clock or ClockPlan(),
                        InstructionStream(prog))


class TestCommitOrder:
    @pytest.mark.parametrize("bench", ["smoke", "ijpeg", "gcc"])
    def test_baseline_commits_in_program_order(self, bench):
        seqs = _committed_seqs(_baseline(bench), 4000)
        assert seqs == list(range(len(seqs)))

    @pytest.mark.parametrize("bench", ["smoke", "ijpeg", "gcc", "vpr"])
    def test_flywheel_commits_in_program_order(self, bench):
        """Replay reorders issue, never commit."""
        seqs = _committed_seqs(_flywheel(bench), 6000)
        assert seqs == list(range(len(seqs)))

    def test_flywheel_order_with_fast_clocks(self):
        core = _flywheel("ijpeg",
                         clock=ClockPlan(fe_speedup=1.0, be_speedup=0.5))
        seqs = _committed_seqs(core, 6000)
        assert seqs == list(range(len(seqs)))


@settings(max_examples=6, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_flywheel_commit_order_any_seed(seed):
    core = _flywheel("smoke", seed=seed)
    seqs = _committed_seqs(core, 3000)
    assert seqs == list(range(len(seqs)))


@settings(max_examples=4, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_both_cores_commit_identical_streams(seed):
    """Same workload seed -> bit-identical committed instruction ids."""
    s_base = _committed_seqs(_baseline("smoke", seed=seed), 2500)
    s_fly = _committed_seqs(_flywheel("smoke", seed=seed), 2500)
    n = min(len(s_base), len(s_fly))
    assert s_base[:n] == s_fly[:n]
