"""Golden-stats regression pins for the core refactors.

The baseline/flywheel numbers were captured from the pre-engine cores
(PR 1 tree) on the seed benchmarks; the pipelined_wakeup numbers from the
PR 2 tree that introduced the kind. Refactors over these machines are
required to be *timing-transparent*: every core, however composed, must
reproduce these counters exactly. Any change here is a modelling change,
not a refactor, and must be justified.

The same pins gate the DVFS subsystem (PR 3): a run with the ``static``
governor attached — the interval hook firing, telemetry collected, zero
ladder moves — must be bit-identical to the governor-less machine on
every pinned counter, including ``sim_time_ps`` (the piecewise time sum
must degenerate to cycles x period exactly).

The same pins gate the API redesign (PR 4): every kind is executed
through the ``Session``/``MachineSpec`` front door, and the deprecated
``run_*`` wrappers must return byte-identical serialized payloads.

Budgets are small (8k measured / 3k warmup) so the whole module stays
cheap, but large enough that the Flywheel passes through every mode
transition (create, replay, divergence, SRT swaps).
"""

import pytest

from repro.core.config import ClockPlan, CoreConfig
from repro.core.engine.turbo import HAVE_NUMPY
from repro.core.sim import run_baseline, run_flywheel, run_pipelined_wakeup
from repro.dvfs import GovernorConfig
from repro.mem import MemorySpec
from repro.obs.metrics import MetricRegistry, register_core_sources
from repro.session import MachineSpec, Session

#: kind/bench -> pinned counters (captured before the engine refactor;
#: pipelined_wakeup captured when the kind was introduced).
GOLDEN = {
    "baseline/smoke": {
        "committed": 8003, "fetched": 8129, "issued": 8101,
        "be_cycles_create": 8409, "be_cycles_execute": 0,
        "fe_cycles_active": 8409, "fe_cycles_gated": 0,
        "branches": 1202, "mispredicts": 68,
        "traces_built": 0, "trace_hits": 0, "trace_misses": 0,
        "instrs_from_ec": 0, "sim_time_ps": 8854677,
        "iw_write": 8113, "iw_select": 8101, "rob_write": 8113,
        "fu_op": 8101, "dcache_access": 3555,
    },
    "flywheel/smoke": {
        "committed": 8001, "fetched": 2532, "issued": 8092,
        "be_cycles_create": 6103, "be_cycles_execute": 14707,
        "fe_cycles_active": 6364, "fe_cycles_gated": 14445,
        "branches": 1197, "mispredicts": 87,
        "traces_built": 33, "trace_hits": 92, "trace_misses": 32,
        "instrs_from_ec": 5572, "sim_time_ps": 21911877,
        "iw_write": 2532, "iw_select": 2520, "rob_write": 8104,
        "fu_op": 8505, "dcache_access": 3552,
    },
    "baseline/gcc": {
        "committed": 8000, "fetched": 8057, "issued": 8047,
        "be_cycles_create": 11351, "be_cycles_execute": 0,
        "fe_cycles_active": 11351, "fe_cycles_gated": 0,
        "branches": 253, "mispredicts": 67,
        "traces_built": 0, "trace_hits": 0, "trace_misses": 0,
        "instrs_from_ec": 0, "sim_time_ps": 11952603,
        "iw_write": 8057, "iw_select": 8047, "rob_write": 8057,
        "fu_op": 8047, "dcache_access": 3191,
    },
    "flywheel/gcc": {
        "committed": 8001, "fetched": 4012, "issued": 8032,
        "be_cycles_create": 9041, "be_cycles_execute": 12228,
        "fe_cycles_active": 9385, "fe_cycles_gated": 11883,
        "branches": 253, "mispredicts": 74,
        "traces_built": 36, "trace_hits": 88, "trace_misses": 34,
        "instrs_from_ec": 3989, "sim_time_ps": 22395204,
        "iw_write": 4012, "iw_select": 4012, "rob_write": 8057,
        "fu_op": 8640, "dcache_access": 3188,
    },
    "pipelined_wakeup/smoke": {
        "committed": 8003, "fetched": 8125, "issued": 8087,
        "be_cycles_create": 8875, "be_cycles_execute": 0,
        "fe_cycles_active": 8875, "fe_cycles_gated": 0,
        "branches": 1201, "mispredicts": 68,
        "traces_built": 0, "trace_hits": 0, "trace_misses": 0,
        "instrs_from_ec": 0, "sim_time_ps": 9345375,
        "iw_write": 8112, "iw_select": 8087, "rob_write": 8112,
        "fu_op": 8087, "dcache_access": 3553,
    },
    "pipelined_wakeup/gcc": {
        "committed": 8000, "fetched": 8057, "issued": 8047,
        "be_cycles_create": 11887, "be_cycles_execute": 0,
        "fe_cycles_active": 11887, "fe_cycles_gated": 0,
        "branches": 253, "mispredicts": 67,
        "traces_built": 0, "trace_hits": 0, "trace_misses": 0,
        "instrs_from_ec": 0, "sim_time_ps": 12517011,
        "iw_write": 8057, "iw_select": 8047, "rob_write": 8057,
        "fu_op": 8047, "dcache_access": 3191,
    },
}

_EVENT_KEYS = ("iw_write", "iw_select", "rob_write", "fu_op",
               "dcache_access")

_WRAPPERS = {"baseline": run_baseline, "flywheel": run_flywheel,
             "pipelined_wakeup": run_pipelined_wakeup}

#: Shared session: the API-redesign acceptance gate runs every pin
#: through the ``Session``/``MachineSpec`` front door (and memoizes, so
#: the wrapper-parity test below only re-simulates its wrapper side).
_SESSION = Session()


def _result(kind: str, bench: str, clock=None):
    return _SESSION.run(MachineSpec(kind, bench, clock=clock,
                                    instructions=8000, warmup=3000))


def _pin_counters(stats, key: str) -> dict:
    out = {k: getattr(stats, k) for k in GOLDEN[key]
           if k not in _EVENT_KEYS}
    out.update({k: stats.events[k] for k in _EVENT_KEYS})
    return out


def _observed(kind: str, bench: str, clock=None) -> dict:
    return _pin_counters(_result(kind, bench, clock=clock).stats,
                         f"{kind}/{bench}")


@pytest.mark.parametrize("key", sorted(GOLDEN))
def test_golden_counters(key):
    kind, bench = key.split("/")
    assert _observed(kind, bench) == GOLDEN[key]


@pytest.mark.parametrize("key", sorted(GOLDEN))
def test_static_governor_is_timing_transparent(key):
    """governor="static" must reproduce the pinned numbers bit-for-bit.

    The controller is attached, the interval hook fires and telemetry is
    collected — but the clock never moves, so every pinned counter
    (including the piecewise ``sim_time_ps``) must match exactly.
    """
    kind, bench = key.split("/")
    clock = ClockPlan(governor=GovernorConfig(name="static"))
    assert _observed(kind, bench, clock=clock) == GOLDEN[key]


@pytest.mark.parametrize("key", sorted(GOLDEN))
def test_deprecated_wrappers_match_session_byte_for_byte(key):
    """The legacy ``run_*`` wrappers are the same machine as the new API.

    Their serialized payloads — stats, clock, kind tag, L2 count — must
    be byte-identical to the ``Session``/``MachineSpec`` path (which
    also means they reproduce the golden pins above).
    """
    kind, bench = key.split("/")
    via_wrapper = _WRAPPERS[kind](bench, max_instructions=8000, warmup=3000)
    via_session = _result(kind, bench)
    assert via_wrapper.to_dict() == via_session.to_dict()
    assert via_wrapper.core is not None     # wrappers keep the live core


# --------------------------------------------------------------------------
# Engine-backend golden equivalence (PR 7: turbo; this PR: vector). An
# engine backend is an implementation of the same machine, never a
# different machine: every observable — SimStats, the cache hierarchy's
# counters, the full metric registry snapshot — must be byte-identical
# to the legacy engine. Skipped (not failed) where the repro[turbo]
# extra is not installed: CI runs the legacy matrix dependency-free and
# a dedicated engine job with NumPy.

turbo_required = pytest.mark.skipif(
    not HAVE_NUMPY, reason="turbo extra (NumPy) not installed")

#: The non-legacy tiers, both held to the same golden gate. On the
#: dual-clock flywheel "vector" routes to the turbo hybrid loop — the
#: gate still runs it, pinning that routing to the same numbers.
ENGINES = ("turbo", "vector")


def _full_observables(result):
    """(stats dict, cache stats, metric snapshot) for one live-core run."""
    registry = MetricRegistry()
    register_core_sources(registry, result.core)
    return (result.stats.to_dict(),
            result.core.hierarchy.stats_dict(),
            registry.snapshot())


def _engine_pair(kind, bench, engine, config_kw=None, clock=None):
    out = []
    for eng in ("legacy", engine):
        config = CoreConfig(engine=eng, **(config_kw or {}))
        out.append(_full_observables(_SESSION.run_workload(
            kind, bench, config=config, clock=clock,
            max_instructions=8000, warmup=3000)))
    return out


@turbo_required
@pytest.mark.parametrize("engine", ENGINES)
@pytest.mark.parametrize("key", sorted(GOLDEN))
def test_engine_reproduces_golden_pins(key, engine):
    """Every engine tier must land exactly on the pre-turbo pinned
    counters."""
    kind, bench = key.split("/")
    spec = MachineSpec(kind, bench, engine=engine,
                       instructions=8000, warmup=3000)
    assert _pin_counters(_SESSION.run(spec).stats, key) == GOLDEN[key]


@turbo_required
@pytest.mark.parametrize("engine", ENGINES)
@pytest.mark.parametrize("key", sorted(GOLDEN))
def test_engine_full_observable_parity(key, engine):
    """All backends: identical stats, cache stats and metric snapshot."""
    kind, bench = key.split("/")
    legacy, other = _engine_pair(kind, bench, engine)
    assert legacy == other


@pytest.mark.parametrize("gov", ("static", "occupancy", "ipc_ladder",
                                 "energy_budget"))
@turbo_required
@pytest.mark.parametrize("engine", ENGINES)
@pytest.mark.parametrize("kind", sorted(_WRAPPERS))
def test_engine_parity_under_governors(kind, engine, gov):
    """The DVFS interval hook fires at the same cycles under every engine

    (a skip-ahead must never jump across an interval boundary — the
    vector tier explicitly rejoins the event-bounded tick set when a
    jump nears one), so every governor decision — and therefore every
    counter and the piecewise ``sim_time_ps`` — is reproduced exactly.
    """
    clock = ClockPlan(governor=GovernorConfig(name=gov, interval=1000))
    legacy, other = _engine_pair(kind, "gcc", engine, clock=clock)
    assert legacy == other


@turbo_required
@pytest.mark.parametrize("engine", ENGINES)
@pytest.mark.parametrize("kind", sorted(_WRAPPERS))
def test_engine_parity_with_mshr_memory_spec(kind, engine):
    """The general MemorySpec miss path (bounded MSHRs) is engine-neutral."""
    legacy, other = _engine_pair(kind, "gcc", engine,
                                 config_kw=dict(mem=MemorySpec(mshrs=4)))
    assert legacy == other
